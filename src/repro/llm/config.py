"""Model architecture configurations.

The hardware experiments need the *shapes* of the Llama2 family — number of
decoder layers, attention heads (query and key/value), hidden size and feed
forward size — to count softmax work, attention FLOPs and memory traffic.
These are public architecture facts of the Llama2 release (Touvron et al.,
2023) and are encoded exactly.  ``TINY_LLAMA`` is the reduced configuration
used by the trainable numpy substitute model for the perplexity study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.utils.validation import check_positive_int

__all__ = [
    "LlamaConfig",
    "LLAMA2_7B",
    "LLAMA2_13B",
    "LLAMA2_70B",
    "TINY_LLAMA",
    "LLAMA2_MODELS",
]


@dataclass(frozen=True)
class LlamaConfig:
    """Decoder-only transformer shape (Llama2 conventions).

    Attributes
    ----------
    name:
        Model name used in reports.
    num_layers:
        Number of decoder blocks.
    num_heads:
        Number of query attention heads per block.
    num_kv_heads:
        Number of key/value heads (grouped-query attention; equals
        ``num_heads`` for the 7b/13b models, 8 for 70b).
    hidden_size:
        Model (embedding) dimension.
    intermediate_size:
        Feed-forward (SwiGLU) hidden dimension.
    vocab_size:
        Vocabulary size.
    max_context:
        Native context length.
    """

    name: str
    num_layers: int
    num_heads: int
    num_kv_heads: int
    hidden_size: int
    intermediate_size: int
    vocab_size: int
    max_context: int

    def __post_init__(self) -> None:
        for attribute in (
            "num_layers",
            "num_heads",
            "num_kv_heads",
            "hidden_size",
            "intermediate_size",
            "vocab_size",
            "max_context",
        ):
            check_positive_int(getattr(self, attribute), attribute)
        if self.hidden_size % self.num_heads != 0:
            raise ValueError("hidden_size must be divisible by num_heads")
        if self.num_heads % self.num_kv_heads != 0:
            raise ValueError("num_heads must be divisible by num_kv_heads")

    @property
    def head_dim(self) -> int:
        """Per-head dimension."""
        return self.hidden_size // self.num_heads

    @property
    def parameter_count(self) -> int:
        """Approximate parameter count (embeddings + decoder blocks)."""
        embed = self.vocab_size * self.hidden_size
        kv_dim = self.num_kv_heads * self.head_dim
        attention = self.hidden_size * (
            self.hidden_size  # W_Q
            + kv_dim           # W_K
            + kv_dim           # W_V
            + self.hidden_size  # W_O
        )
        ffn = 3 * self.hidden_size * self.intermediate_size
        norms = 2 * self.hidden_size
        per_layer = attention + ffn + norms
        head = self.vocab_size * self.hidden_size
        return embed + self.num_layers * per_layer + head + self.hidden_size

    def attention_score_elements(self, sequence_length: int, batch_size: int = 1) -> int:
        """Number of attention-score (softmax input) elements produced by one
        forward pass over ``sequence_length`` tokens (prefill)."""
        check_positive_int(sequence_length, "sequence_length")
        check_positive_int(batch_size, "batch_size")
        return (
            batch_size
            * self.num_layers
            * self.num_heads
            * sequence_length
            * sequence_length
        )

    def softmax_vectors_per_layer(self, sequence_length: int, batch_size: int = 1) -> int:
        """Number of softmax vectors (one per query position per head) in one
        decoder layer during prefill."""
        return batch_size * self.num_heads * sequence_length

    def flops_per_token(self, sequence_length: int) -> float:
        """Approximate FLOPs to process one token at context length
        ``sequence_length`` (weight FLOPs + attention score/value FLOPs)."""
        check_positive_int(sequence_length, "sequence_length")
        weight_flops = 2.0 * self.parameter_count
        attention_flops = (
            4.0 * self.num_layers * self.num_heads * self.head_dim * sequence_length
        )
        return weight_flops + attention_flops


#: Llama2-7b: 32 layers, 32 heads, d_model 4096.
LLAMA2_7B = LlamaConfig(
    name="Llama2-7b",
    num_layers=32,
    num_heads=32,
    num_kv_heads=32,
    hidden_size=4096,
    intermediate_size=11008,
    vocab_size=32000,
    max_context=4096,
)

#: Llama2-13b: 40 layers, 40 heads, d_model 5120.
LLAMA2_13B = LlamaConfig(
    name="Llama2-13b",
    num_layers=40,
    num_heads=40,
    num_kv_heads=40,
    hidden_size=5120,
    intermediate_size=13824,
    vocab_size=32000,
    max_context=4096,
)

#: Llama2-70b: 80 layers, 64 query heads with 8 KV heads (GQA), d_model 8192.
LLAMA2_70B = LlamaConfig(
    name="Llama2-70b",
    num_layers=80,
    num_heads=64,
    num_kv_heads=8,
    hidden_size=8192,
    intermediate_size=28672,
    vocab_size=32000,
    max_context=4096,
)

#: Reduced configuration for the trainable numpy substitute model.
TINY_LLAMA = LlamaConfig(
    name="TinyLlama",
    num_layers=2,
    num_heads=4,
    num_kv_heads=4,
    hidden_size=64,
    intermediate_size=128,
    vocab_size=128,
    max_context=256,
)

#: The three models evaluated by the paper, keyed by short name.
LLAMA2_MODELS: Dict[str, LlamaConfig] = {
    "7b": LLAMA2_7B,
    "13b": LLAMA2_13B,
    "70b": LLAMA2_70B,
}
