"""Benchmarks regenerating Tables III & IV — precision sensitivity of the
integer-only softmax.

Two views are produced (see DESIGN.md §4):

* the end-to-end perplexity sweep on the trained substitute model;
* the softmax-fidelity sweep at the paper's 2048-token row length, which
  exposes the ``N`` (sum headroom) effect directly.
"""

from repro.experiments import (
    render_perplexity_table,
    run_perplexity_sweep,
    run_softmax_fidelity_sweep,
)
from repro.experiments.table3_4_perplexity import render_fidelity_table


def test_table3_4_perplexity_sweep(benchmark):
    points = benchmark.pedantic(
        run_perplexity_sweep,
        kwargs={"m_values": (6, 8), "n_values": (8, 16), "vcorr_deltas": (0,),
                "include_m4": True, "training_steps": 200},
        iterations=1,
        rounds=1,
    )
    print()
    print(render_perplexity_table(points))
    values = {p.label: p.perplexity for p in points}
    fp = values["FP softmax"]
    # Integer softmax never improves on the FP baseline beyond noise.  At
    # this reduced scale the absolute gaps are small (EXPERIMENTS.md
    # discusses the muted sensitivity of the tiny substitute model); the
    # companion fidelity sweep below reproduces the paper's ordering.
    assert all(v >= fp - 0.05 for label, v in values.items() if label != "FP softmax")
    assert values["M=4, vcorr=M, N=16"] >= values["M=8, vcorr=M, N=16"] - 0.05


def test_table3_4_softmax_fidelity(benchmark):
    points = benchmark.pedantic(
        run_softmax_fidelity_sweep,
        kwargs={"sequence_length": 2048, "rows": 32},
        iterations=1,
        rounds=1,
    )
    print()
    print(render_fidelity_table(points))
    by_key = {(p.precision.input_bits, p.precision.vcorr_delta,
               p.precision.sum_extra_bits): p for p in points}
    # N = 8 truncates the sum at 2048 tokens; N >= 16 does not (Table III).
    assert by_key[(6, 0, 8)].mass_error > by_key[(6, 0, 16)].mass_error
    assert by_key[(6, 0, 16)].mass_error == by_key[(6, 0, 20)].mass_error
    # vcorr width never matters (Table III columns are identical).
    assert by_key[(6, 1, 16)].kl_to_fp == by_key[(6, 0, 16)].kl_to_fp
    # M = 8 tracks the FP softmax better than M = 6, which beats M = 4.
    assert by_key[(8, 0, 16)].kl_to_fp < by_key[(6, 0, 16)].kl_to_fp < by_key[(4, 0, 16)].kl_to_fp
