"""Repository-level pytest configuration.

Provides the deterministic ``rng`` seed fixture shared by the randomized
(differential) test suites and the ``--runslow`` opt-in for tests marked
``slow``, so the tier-1 ``pytest -x -q`` run stays fast and reproducible.
"""

import numpy as np
import pytest

#: Single seed for every randomized suite; change deliberately, never ad hoc.
GLOBAL_TEST_SEED = 0xC0DE5EED


def pytest_addoption(parser):
    parser.addoption(
        "--runslow",
        action="store_true",
        default=False,
        help="also run tests marked as slow",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--runslow"):
        return
    skip_slow = pytest.mark.skip(reason="slow test: pass --runslow to run")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


@pytest.fixture
def rng():
    """Deterministic numpy Generator for randomized tests."""
    return np.random.default_rng(GLOBAL_TEST_SEED)
