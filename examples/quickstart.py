"""Quickstart: integer-only softmax vs floating-point softmax.

Runs Algorithm 1 of the SoftmAP paper on a random attention-score vector at
the paper's best precision (M=6, vcorr=M, N=16), compares it with the exact
softmax, prints the offline constants the hardware would be loaded with, and
finishes by executing a whole batch of score vectors on the functional AP
simulator with the fast vectorized backend.

Usage::

    python examples/quickstart.py
"""

import time

import numpy as np

from repro.quant import BEST_PRECISION, PrecisionConfig
from repro.softmax import IntegerSoftmax, kl_divergence, max_abs_error, softmax


def main() -> None:
    rng = np.random.default_rng(0)
    scores = rng.normal(0.0, 2.0, 32)

    integer = IntegerSoftmax(BEST_PRECISION)
    result = integer.forward(scores)
    reference = softmax(scores)

    constants = integer.constants
    print("Offline constants (computed once per scaling factor):")
    print(f"  scale S       = {constants.scale:.5f}")
    print(f"  vln2          = {constants.vln2}")
    print(f"  mu (Barrett)  = {constants.mu}")
    print(f"  vb, vc        = {constants.vb}, {constants.vc}")
    print()

    print("First 8 probabilities:")
    print("  integer :", np.array2string(result.probabilities[:8], precision=4))
    print("  fp      :", np.array2string(reference[:8], precision=4))
    print()
    print(f"max abs error  : {max_abs_error(result.probabilities, reference):.5f}")
    print(f"KL(fp || int)  : {kl_divergence(reference, result.probabilities):.6f}")
    print()

    print("Effect of the input precision M (same vector):")
    for m in (4, 6, 8):
        probabilities = IntegerSoftmax(PrecisionConfig(m, 0, 16))(scores)
        error = max_abs_error(probabilities, reference)
        print(f"  M = {m}: max abs error = {error:.5f}")
    print()

    # A whole (batch, seq) score tensor on the functional AP simulator: every
    # probability below is produced by CAM compare/write semantics, executed
    # by the vectorized packed-word backend in one batched call.
    batch = rng.normal(0.0, 2.0, (16, 64))
    start = time.perf_counter()
    ap_probabilities = integer.forward_on_ap(batch, backend="vectorized")
    elapsed = time.perf_counter() - start
    ap_error = max_abs_error(ap_probabilities, softmax(batch))
    print("Batched execution on the functional AP (vectorized backend):")
    print(f"  {batch.shape[0]} softmax vectors of {batch.shape[1]} scores "
          f"in {elapsed * 1e3:.1f} ms")
    print(f"  max abs error vs FP softmax: {ap_error:.5f}")


if __name__ == "__main__":
    main()
