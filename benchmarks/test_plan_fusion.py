"""Fused-vs-loop benchmark: the compiled-plan layer's pinned speedups.

The acceptance workload is the Tables III/IV cluster shape — a
``(batch, heads, seq)`` attention-score tensor executed on the
:class:`~repro.mapping.cluster.ApCluster`.  Two pins:

* the fused compiled-plan pass (one wide head-major row space, fields kept
  packed end to end) must be **bit-identical** to the PR 2 per-head loop
  (one per-operation engine execution per head) and at least **3x faster**
  wall-clock; in practice the gap is an order of magnitude or more;
* the scratch-arena ``"compiled"`` engine must be **bit-identical** to the
  fused (vectorized) pass and at least **1.5x faster** on the 64-vector x
  256-seq shape — the win of buffer-planned, allocation-free execution
  over the packed interpreter.

This module is the CI ``benchmark-smoke`` target: it runs without
``--runslow`` and, when ``REPRO_PERF_DIR`` is set, writes the measured
timings as JSON artifacts (including ``BENCH_plan_fusion.json``); with
``REPRO_BENCH_TRAJECTORY_DIR`` set the same numbers append to the
committed in-repo trajectory file.
"""

import json
import os
import pathlib

from repro.runtime import get_experiment
from repro.runtime.bench import (
    COMPILED_SPEEDUP_FLOOR,
    COMPILED_WORKLOAD,
    FUSED_SPEEDUP_FLOOR,
    plan_fusion_payload as _report_payload,
)
from repro.utils.trajectory import record_benchmark

#: Noise guard for the sub-millisecond compiled-vs-vectorized legs: on a
#: loaded single-core runner one measurement window can land under the
#: floor, so it applies to the best of this many attempts (the same
#: practice as the serving benchmark).
MAX_ATTEMPTS = 3


def _emit_perf_artifact(report, filename, pinned_floor, benchmark_name) -> None:
    """Write the timing JSON artifact when REPRO_PERF_DIR is set."""
    perf_dir = os.environ.get("REPRO_PERF_DIR")
    if not perf_dir:
        return
    path = pathlib.Path(perf_dir)
    path.mkdir(parents=True, exist_ok=True)
    payload = {"benchmark": benchmark_name, **_report_payload(report, pinned_floor)}
    with open(path / filename, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def test_fused_cluster_pass_beats_per_head_loop(benchmark):
    """Pin: fused >= 3x over the PR 2 per-head loop, bit-identical."""
    experiment = get_experiment("cluster-parity")
    report = benchmark.pedantic(experiment.run, iterations=1, rounds=1)
    print()
    print(experiment.render(report))
    _emit_perf_artifact(
        report, "fused_speedup.json", FUSED_SPEEDUP_FLOOR, "fused-vs-loop"
    )
    record_benchmark(
        "plan_fusion", {"fused_vs_loop": _report_payload(report, FUSED_SPEEDUP_FLOOR)}
    )
    assert report.bit_identical, "fused pass diverged from the loop baselines"
    assert report.fused_speedup >= FUSED_SPEEDUP_FLOOR, (
        f"fused pass only {report.fused_speedup:.1f}x faster than the "
        f"per-head loop (floor {FUSED_SPEEDUP_FLOOR:.0f}x)"
    )


def test_compiled_engine_beats_vectorized(benchmark):
    """Pin: compiled >= 1.5x over vectorized on 64x256, bit-identical."""
    experiment = get_experiment("cluster-parity")
    report = benchmark.pedantic(
        experiment.run, args=(dict(COMPILED_WORKLOAD),), iterations=1, rounds=1
    )
    attempts = 1
    while report.compiled_speedup < COMPILED_SPEEDUP_FLOOR and attempts < MAX_ATTEMPTS:
        candidate = experiment.run(dict(COMPILED_WORKLOAD))
        if candidate.compiled_speedup > report.compiled_speedup:
            report = candidate
        attempts += 1
    print()
    print(experiment.render(report))
    _emit_perf_artifact(
        report,
        "BENCH_plan_fusion.json",
        COMPILED_SPEEDUP_FLOOR,
        "compiled-vs-vectorized",
    )
    record_benchmark(
        "plan_fusion",
        {"compiled_vs_vectorized": _report_payload(report, COMPILED_SPEEDUP_FLOOR)},
    )
    assert report.bit_identical, "fused pass diverged from the loop baselines"
    assert report.compiled_identical, (
        "compiled engine diverged from the vectorized fused pass"
    )
    assert report.compiled_speedup >= COMPILED_SPEEDUP_FLOOR, (
        f"compiled engine only {report.compiled_speedup:.2f}x faster than "
        f"the vectorized engine (floor {COMPILED_SPEEDUP_FLOOR:.1f}x)"
    )
