"""LLM substrate.

Two roles:

* **Model-shape configurations** (:mod:`repro.llm.config`) — the exact
  Llama2-7b / 13b / 70b architecture parameters (layers, heads, hidden
  size, context) used by the hardware characterization (Figs. 1, 6-8,
  Tables V, VI and the area figures).
* **A runnable numpy language model** (:mod:`repro.llm.model`,
  :mod:`repro.llm.tokenizer`, :mod:`repro.llm.dataset`,
  :mod:`repro.llm.trainer`, :mod:`repro.llm.perplexity`) — a tiny
  Llama-architecture decoder-only transformer (RMSNorm, RoPE, SwiGLU,
  multi-head attention with a pluggable softmax) that substitutes for the
  Llama2 checkpoints in the perplexity sensitivity study (Tables III/IV),
  as documented in DESIGN.md.
"""

from repro.llm.config import (
    LlamaConfig,
    LLAMA2_7B,
    LLAMA2_13B,
    LLAMA2_70B,
    TINY_LLAMA,
    LLAMA2_MODELS,
)

__all__ = [
    "LlamaConfig",
    "LLAMA2_7B",
    "LLAMA2_13B",
    "LLAMA2_70B",
    "TINY_LLAMA",
    "LLAMA2_MODELS",
]
