"""Perplexity-sweep process pool survives chaos-injected worker crashes."""

import pytest

from repro.experiments import run_perplexity_sweep
from repro.experiments.table3_4_perplexity import train_reference_model
from repro.reliability.faults import FaultInjector, FaultSpec


@pytest.fixture(scope="module")
def trained():
    return train_reference_model(seed=0, training_steps=30)


class TestSweepCrashResilience:
    def test_crashed_worker_configs_are_recomputed_identically(self, trained):
        """A crash spec kills the worker that picks up one configuration;
        the sweep resubmits the poisoned futures once on a fresh pool and
        still returns the serial sweep's exact floats, in order."""
        model, corpus = trained
        kwargs = dict(
            model=model, corpus=corpus, m_values=(6, 8), n_values=(16,),
            include_m4=True,
        )
        serial = run_perplexity_sweep(**kwargs)
        injector = FaultInjector(
            [
                FaultSpec(
                    site="sweep:task:M=8, vcorr=M, N=16",
                    kind="crash",
                    count=1,
                    name="worker-death",
                )
            ]
        )
        survived = run_perplexity_sweep(
            workers=2, fault_injector=injector, **kwargs
        )
        assert [p.label for p in survived] == [p.label for p in serial]
        for alone, recovered in zip(serial, survived):
            assert alone.perplexity == recovered.perplexity  # exact floats
            assert recovered.seconds > 0

    def test_crash_in_every_worker_still_recovers(self, trained):
        """A prefix crash spec kills *each* worker's first task (the
        injector replays from fresh state per process): the whole first
        pool dies and every configuration is recomputed on the retry
        pool."""
        model, corpus = trained
        kwargs = dict(
            model=model, corpus=corpus, m_values=(6,), n_values=(16,),
            include_m4=True,
        )
        serial = run_perplexity_sweep(**kwargs)
        injector = FaultInjector(
            [FaultSpec(site="sweep:task", kind="crash", name="rampage")]
        )
        survived = run_perplexity_sweep(
            workers=2, fault_injector=injector, **kwargs
        )
        assert [p.label for p in survived] == [p.label for p in serial]
        for alone, recovered in zip(serial, survived):
            assert alone.perplexity == recovered.perplexity
