"""Perplexity evaluation with a pluggable attention softmax.

The paper's protocol (Section IV): concatenate the validation set, split it
into non-overlapping segments of the model's context width, feed each
segment to the model, and report the exponentiated average next-token
negative log-likelihood.  :func:`evaluate_perplexity` follows that protocol
on the synthetic corpus; the ``softmax_fn`` argument selects between the
floating-point attention softmax (``None``) and any replacement such as
:class:`~repro.softmax.integer_softmax.IntegerSoftmax`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.llm.model import SoftmaxFn, TinyLlamaModel
from repro.nn.autograd import no_grad
from repro.quant.precision import PrecisionConfig
from repro.softmax.integer_softmax import IntegerSoftmax
from repro.utils.validation import check_positive_int

__all__ = ["evaluate_perplexity", "integer_softmax_fn", "ap_cluster_softmax_fn"]


class _BatchedIntegerSoftmaxFn:
    """Batched software-pipeline softmax honouring the model's extended
    ``softmax_fn`` contract (see :mod:`repro.llm.model`).

    Rows are grouped by their causal prefix length and each group's valid
    prefix is evaluated in one vectorized :class:`IntegerSoftmax` call —
    bit-identical to applying the pipeline row by row (every stage of the
    integer core is row-wise), but without the per-row Python loop.
    """

    supports_batch = True

    def __init__(self, integer_softmax: IntegerSoftmax) -> None:
        self.integer_softmax = integer_softmax

    def __call__(
        self,
        scores: np.ndarray,
        valid_lengths: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        scores = np.asarray(scores, dtype=np.float64)
        if scores.ndim == 1:
            if valid_lengths is None:
                return self.integer_softmax(scores)
            lengths = np.asarray(valid_lengths, dtype=np.int64).reshape(-1)
            if lengths.shape != (1,):
                raise ValueError(
                    "a 1-D score vector takes exactly one valid_lengths entry"
                )
            probabilities = np.zeros_like(scores)
            probabilities[: lengths[0]] = self.integer_softmax(scores[: lengths[0]])
            return probabilities
        if valid_lengths is None:
            return self.integer_softmax(scores)
        valid_lengths = np.asarray(valid_lengths, dtype=np.int64)
        probabilities = np.zeros_like(scores)
        for length in np.unique(valid_lengths):
            rows = valid_lengths == length
            probabilities[rows, :length] = self.integer_softmax(
                scores[rows, :length]
            )
        return probabilities


def integer_softmax_fn(
    precision: PrecisionConfig, batched: bool = False, **kwargs
) -> SoftmaxFn:
    """Build a replacement softmax callable from a precision configuration.

    The returned callable maps score vectors to probabilities using the
    integer-only pipeline, exactly as the per-head AP would.  With
    ``batched=True`` the callable implements the model's batched contract
    (``supports_batch = True``; one ``(rows, seq)`` call per layer instead
    of one call per attention row) and produces bit-identical results.
    """
    integer_softmax = IntegerSoftmax(precision=precision, **kwargs)
    if batched:
        return _BatchedIntegerSoftmaxFn(integer_softmax)

    def apply(scores: np.ndarray) -> np.ndarray:
        return integer_softmax(np.asarray(scores, dtype=np.float64))

    return apply


def ap_cluster_softmax_fn(
    num_heads: int,
    precision: PrecisionConfig,
    sequence_length: int,
    backend: str = "vectorized",
    **kwargs,
) -> SoftmaxFn:
    """An attention softmax executed on the functional multi-AP cluster.

    Builds an :class:`~repro.mapping.cluster.ApCluster` with one per-head AP
    and returns its batched ``softmax_fn`` adapter, so the whole perplexity
    evaluation runs the attention softmax through CAM compare/write
    semantics.  The result is bit-identical to the software pipeline with
    ``barrett_correction=False`` (the AP dataflow uses the raw Barrett
    quotient) as long as the sum accumulator does not saturate.
    """
    from repro.mapping.cluster import ApCluster

    cluster = ApCluster(
        num_heads=num_heads,
        precision=precision,
        sequence_length=sequence_length,
        backend=backend,
        **kwargs,
    )
    return cluster.softmax_fn()


def evaluate_perplexity(
    model: TinyLlamaModel,
    tokens: np.ndarray,
    segment_length: Optional[int] = None,
    softmax_fn: Optional[SoftmaxFn] = None,
) -> float:
    """Perplexity of ``model`` on ``tokens`` following the paper's protocol.

    Parameters
    ----------
    model:
        The (trained) language model.
    tokens:
        Validation token ids (1-D).
    segment_length:
        Width of the non-overlapping evaluation segments; defaults to the
        model's full context (the paper uses the models' 2048-token context).
    softmax_fn:
        Optional replacement attention softmax (see
        :func:`integer_softmax_fn`).
    """
    tokens = np.asarray(tokens, dtype=np.int64)
    if segment_length is None:
        segment_length = model.config.max_context
    check_positive_int(segment_length, "segment_length")
    segment_length = min(segment_length, model.config.max_context)
    if tokens.shape[0] < 2:
        raise ValueError("need at least two tokens to evaluate perplexity")

    total_log_likelihood = 0.0
    total_predictions = 0
    with no_grad():
        for start in range(0, tokens.shape[0] - 1, segment_length):
            segment = tokens[start : start + segment_length + 1]
            if segment.shape[0] < 2:
                break
            logits = model.forward(segment[:-1], softmax_fn=softmax_fn).numpy()
            shifted = logits - np.max(logits, axis=-1, keepdims=True)
            log_probs = shifted - np.log(np.sum(np.exp(shifted), axis=-1, keepdims=True))
            targets = segment[1:]
            total_log_likelihood += float(
                np.sum(log_probs[np.arange(targets.shape[0]), targets])
            )
            total_predictions += int(targets.shape[0])
    if total_predictions == 0:
        raise ValueError("no predictions were made; check the token stream length")
    return float(np.exp(-total_log_likelihood / total_predictions))
