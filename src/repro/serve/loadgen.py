"""Closed-loop load generator for the serving layer.

Generates deterministic, seeded request streams — Poisson arrivals at a
configurable rate, ragged request shapes (mixed row counts, mixed
sequence lengths, a fraction with explicit per-row causal
``valid_lengths``) — and drives them through a
:class:`~repro.serve.server.SoftmaxServer`, recording per-request latency
and batch-composition telemetry.

The same request stream can be replayed through
:func:`run_serial_baseline` — one standalone backend pass per request, the
"serial one-request-per-pass" deployment the server's continuous batching
is measured against — so the ``serve-load`` experiment can report both a
throughput/latency curve *and* bit-identity of every coalesced response
against its standalone execution.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.runtime.backend import (
    BackendSpec,
    SoftmaxBackend,
    resolve_backend,
    rows_runner,
)
from repro.serve.server import ServeResponse, SoftmaxServer
from repro.utils.validation import check_positive_int

__all__ = [
    "LoadProfile",
    "LoadReport",
    "LoadRequest",
    "RequestOutcome",
    "drive_load",
    "run_load",
    "run_serial_baseline",
]


@dataclass(frozen=True)
class LoadRequest:
    """One generated request: arrival offset plus payload."""

    arrival_s: float
    scores: np.ndarray
    valid_lengths: Optional[np.ndarray]


@dataclass(frozen=True)
class LoadProfile:
    """Deterministic description of one request stream.

    Inter-arrival times are exponential (Poisson arrivals) at
    ``rate_rps``; each request draws a row count uniformly from ``rows``
    (inclusive), a sequence length from ``sequence_lengths``, and — with
    probability ``ragged_fraction`` — explicit per-row ``valid_lengths``
    (causally ragged prefixes).  Scores are standard-normal times
    ``score_scale``.  The stream is a pure function of the profile: the
    same profile always generates the same requests, so the serving run
    and the serial baseline see identical workloads.
    """

    rate_rps: float
    num_requests: int = 64
    rows: Tuple[int, int] = (1, 4)
    sequence_lengths: Tuple[int, ...] = (16, 32, 64)
    ragged_fraction: float = 0.5
    score_scale: float = 3.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rate_rps <= 0:
            raise ValueError(f"rate_rps must be > 0, got {self.rate_rps}")
        check_positive_int(self.num_requests, "num_requests")
        if not (1 <= self.rows[0] <= self.rows[1]):
            raise ValueError(f"rows must be an increasing range, got {self.rows}")
        if not self.sequence_lengths:
            raise ValueError("sequence_lengths must not be empty")
        if not 0.0 <= self.ragged_fraction <= 1.0:
            raise ValueError(
                f"ragged_fraction must lie in [0, 1], got {self.ragged_fraction}"
            )

    @property
    def max_sequence_length(self) -> int:
        return max(self.sequence_lengths)

    def requests(self) -> List[LoadRequest]:
        """Generate the stream (same profile -> same requests, always)."""
        rng = np.random.default_rng(self.seed)
        arrivals = np.cumsum(
            rng.exponential(1.0 / self.rate_rps, size=self.num_requests)
        )
        stream: List[LoadRequest] = []
        for arrival in arrivals:
            rows = int(rng.integers(self.rows[0], self.rows[1] + 1))
            seq = int(rng.choice(np.asarray(self.sequence_lengths)))
            scores = rng.standard_normal((rows, seq)) * self.score_scale
            lengths: Optional[np.ndarray] = None
            if rng.random() < self.ragged_fraction:
                lengths = rng.integers(1, seq + 1, size=rows)
            stream.append(
                LoadRequest(
                    arrival_s=float(arrival), scores=scores, valid_lengths=lengths
                )
            )
        return stream


@dataclass(frozen=True)
class RequestOutcome:
    """One served request's client-side measurements.

    ``response`` is ``None`` when the request failed (``error`` holds the
    exception — e.g. an exhausted retry budget or a missed deadline under
    a chaos run); a fault-free load run has ``ok`` outcomes only.
    """

    request: LoadRequest
    response: Optional[ServeResponse]
    latency_s: float
    error: Optional[BaseException] = None

    @property
    def ok(self) -> bool:
        return self.error is None and self.response is not None


@dataclass(frozen=True)
class LoadReport:
    """Aggregate latency/throughput statistics of one load run."""

    outcomes: List[RequestOutcome] = field(repr=False)
    makespan_s: float

    @property
    def num_requests(self) -> int:
        return len(self.outcomes)

    @property
    def successes(self) -> List[RequestOutcome]:
        """Outcomes that got a response (all of them, fault-free)."""
        return [o for o in self.outcomes if o.ok]

    @property
    def failures(self) -> List[RequestOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def availability(self) -> float:
        """Fraction of the stream that got a response (1.0 fault-free)."""
        return len(self.successes) / self.num_requests if self.outcomes else 1.0

    @property
    def throughput_rps(self) -> float:
        return self.num_requests / self.makespan_s if self.makespan_s else 0.0

    @property
    def latencies_ms(self) -> np.ndarray:
        """Client-observed latencies of the *successful* requests."""
        return np.asarray([o.latency_s * 1000.0 for o in self.successes])

    @property
    def p50_ms(self) -> float:
        return float(np.percentile(self.latencies_ms, 50))

    @property
    def p99_ms(self) -> float:
        return float(np.percentile(self.latencies_ms, 99))

    @property
    def mean_ms(self) -> float:
        return float(np.mean(self.latencies_ms))

    @property
    def total_retries(self) -> int:
        """Serving-side retry attempts across the successful responses."""
        return sum(o.response.retries for o in self.successes)

    @property
    def mean_batch_requests(self) -> float:
        """Mean coalesced requests per tick, weighted per request."""
        return float(
            np.mean([o.response.batch_requests for o in self.successes])
        )

    @property
    def max_batch_requests(self) -> int:
        return max(o.response.batch_requests for o in self.successes)

    @property
    def mean_batch_rows(self) -> float:
        return float(np.mean([o.response.batch_rows for o in self.successes]))

    @property
    def mean_occupancy(self) -> float:
        """Mean pass-row-budget occupancy over plan-carrying responses
        (1.0 when no response carried plan telemetry)."""
        values = [
            o.response.result.plan.occupancy
            for o in self.successes
            if o.response.result.plan is not None
        ]
        return float(np.mean(values)) if values else 1.0


async def drive_load(
    server: SoftmaxServer, requests: Sequence[LoadRequest]
) -> LoadReport:
    """Fire a request stream at the server on its arrival schedule.

    Each request sleeps until its Poisson arrival offset, submits, and
    awaits its response; the report's makespan runs from the stream start
    to the last completion.
    """
    await server.start()
    loop = asyncio.get_running_loop()
    epoch = loop.time()

    async def fire(request: LoadRequest) -> RequestOutcome:
        delay = epoch + request.arrival_s - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        sent = loop.time()
        try:
            response = await server.submit(
                request.scores, valid_lengths=request.valid_lengths
            )
        except Exception as error:  # noqa: BLE001 — a chaos run's failures
            # become per-request outcomes, not a failed load run
            return RequestOutcome(
                request=request,
                response=None,
                latency_s=loop.time() - sent,
                error=error,
            )
        return RequestOutcome(
            request=request, response=response, latency_s=loop.time() - sent
        )

    outcomes = await asyncio.gather(*(fire(r) for r in requests))
    return LoadReport(outcomes=list(outcomes), makespan_s=loop.time() - epoch)


def run_load(
    server: SoftmaxServer,
    profile_or_requests: Union[LoadProfile, Sequence[LoadRequest]],
) -> LoadReport:
    """Synchronous front end: run one load profile to completion.

    Owns the event loop for the duration of the run and closes the server
    afterwards (the server's asyncio plumbing is bound to the loop that
    ran it, so it cannot be reused across ``run_load`` calls).
    """
    requests = (
        profile_or_requests.requests()
        if isinstance(profile_or_requests, LoadProfile)
        else list(profile_or_requests)
    )

    async def _run() -> LoadReport:
        async with server:
            return await drive_load(server, requests)

    return asyncio.run(_run())


def run_serial_baseline(
    backend: Union[str, BackendSpec, SoftmaxBackend],
    requests: Sequence[LoadRequest],
) -> Tuple[List[np.ndarray], float]:
    """One standalone backend pass per request, back to back.

    This is the deployment the serving layer replaces: every request pays
    its own full pass, no coalescing.  Returns the per-request probability
    matrices (the bit-identity references for the coalesced responses) and
    the total wall-clock of the sweep.
    """
    run_rows = rows_runner(resolve_backend(backend))
    probabilities: List[np.ndarray] = []
    start = time.perf_counter()
    for request in requests:
        probabilities.append(
            run_rows(
                request.scores, valid_lengths=request.valid_lengths
            ).probabilities
        )
    return probabilities, time.perf_counter() - start
