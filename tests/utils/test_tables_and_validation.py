"""Tests for the text-table renderer and the validation helpers."""

import pytest

from repro.utils.tables import TextTable, format_float
from repro.utils.validation import (
    check_in_choices,
    check_non_negative_int,
    check_positive,
    check_positive_int,
    check_probability,
)


class TestFormatFloat:
    def test_zero(self):
        assert format_float(0.0) == "0"

    def test_plain(self):
        assert format_float(3.14159, 3) == "3.142"

    def test_scientific_for_large(self):
        assert "e" in format_float(1.23e7)

    def test_scientific_for_small(self):
        assert "e" in format_float(1.23e-7)

    def test_trailing_zeros_stripped(self):
        assert format_float(2.0) == "2"


class TestTextTable:
    def test_render_alignment(self):
        table = TextTable(["name", "value"], title="demo")
        table.add_row(["alpha", 1])
        table.add_row(["b", 123.456])
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert all(line.startswith("|") for line in lines[1:])
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all lines aligned

    def test_row_length_mismatch(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_add_rows_and_rows_property(self):
        table = TextTable(["a"])
        table.add_rows([[1], [2]])
        assert table.rows == [["1"], ["2"]]


class TestValidation:
    def test_positive_int_accepts(self):
        assert check_positive_int(3, "x") == 3

    @pytest.mark.parametrize("bad", [0, -1])
    def test_positive_int_rejects_value(self, bad):
        with pytest.raises(ValueError):
            check_positive_int(bad, "x")

    @pytest.mark.parametrize("bad", [1.5, "a", True])
    def test_positive_int_rejects_type(self, bad):
        with pytest.raises(TypeError):
            check_positive_int(bad, "x")

    def test_non_negative_int(self):
        assert check_non_negative_int(0, "x") == 0
        with pytest.raises(ValueError):
            check_non_negative_int(-1, "x")

    def test_check_positive(self):
        assert check_positive(0.5, "x") == 0.5
        with pytest.raises(ValueError):
            check_positive(0.0, "x")

    def test_check_in_choices(self):
        assert check_in_choices("a", ("a", "b"), "x") == "a"
        with pytest.raises(ValueError):
            check_in_choices("c", ("a", "b"), "x")

    def test_check_probability(self):
        assert check_probability(0.5, "x") == 0.5
        with pytest.raises(ValueError):
            check_probability(1.5, "x")
