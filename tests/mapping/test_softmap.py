"""Tests for the SoftmAP mapping: analytical cost and functional execution."""

import numpy as np
import pytest

from repro.mapping.softmap import SoftmAPMapping
from repro.quant.precision import BEST_PRECISION, PrecisionConfig
from repro.softmax.integer_softmax import IntegerSoftmax
from repro.softmax.reference import softmax


class TestCostModel:
    def test_sixteen_step_costs(self):
        cost = SoftmAPMapping(BEST_PRECISION, sequence_length=2048).cost()
        assert len(cost.steps) == 16
        assert cost.cycles == pytest.approx(sum(s.cost.cycles for s in cost.steps))
        assert cost.latency_s > 0
        assert cost.energy_j > 0

    def test_rows_follow_words_per_row(self):
        assert SoftmAPMapping(BEST_PRECISION, 2048, words_per_row=2).rows == 1024
        assert SoftmAPMapping(BEST_PRECISION, 2048, words_per_row=1).rows == 2048

    def test_packing_two_words_doubles_elementwise_work(self):
        one = SoftmAPMapping(BEST_PRECISION, 1024, words_per_row=1).cost()
        two = SoftmAPMapping(BEST_PRECISION, 1024, words_per_row=2).cost()
        assert two.cycles > one.cycles

    def test_latency_nearly_flat_in_sequence_length(self):
        short = SoftmAPMapping(BEST_PRECISION, 128).cost()
        long = SoftmAPMapping(BEST_PRECISION, 4096).cost()
        # Only the reduction's log term grows with the sequence length.
        assert long.cycles < 1.1 * short.cycles

    def test_energy_grows_with_sequence_length(self):
        short = SoftmAPMapping(BEST_PRECISION, 128).cost()
        long = SoftmAPMapping(BEST_PRECISION, 4096).cost()
        assert long.energy_j > 10 * short.energy_j

    def test_higher_precision_costs_more_cycles(self):
        low = SoftmAPMapping(PrecisionConfig(4, 0, 16), 1024).cost()
        high = SoftmAPMapping(PrecisionConfig(8, 0, 16), 1024).cost()
        assert high.cycles > low.cycles

    def test_reciprocal_division_is_cheaper(self):
        restoring = SoftmAPMapping(BEST_PRECISION, 1024, division="restoring").cost()
        reciprocal = SoftmAPMapping(BEST_PRECISION, 1024, division="reciprocal").cost()
        assert reciprocal.cycles < restoring.cycles

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            SoftmAPMapping(BEST_PRECISION, 128, words_per_row=3)
        with pytest.raises(ValueError):
            SoftmAPMapping(BEST_PRECISION, 128, division="newton")

    def test_general_multiplication_reduces_to_table_ii(self):
        mapping = SoftmAPMapping(BEST_PRECISION, 128)
        assert mapping.multiplication_cycles_general(6, 6) == \
            mapping.cost_model.multiplication_cycles(6)


class TestFunctionalExecution:
    @pytest.mark.parametrize("m", [4, 6, 8])
    def test_bit_exact_against_software_pipeline(self, m):
        rng = np.random.default_rng(m)
        precision = PrecisionConfig(m, 0, 20)
        scores = rng.normal(0, 2, 24)
        mapping = SoftmAPMapping(precision, sequence_length=24)
        hardware = mapping.execute_functional(scores)
        software = IntegerSoftmax(precision, barrett_correction=False)(scores)
        assert np.allclose(hardware, software, atol=1e-12)

    def test_close_to_fp_softmax(self):
        rng = np.random.default_rng(0)
        scores = rng.normal(0, 1.5, 32)
        mapping = SoftmAPMapping(PrecisionConfig(8, 0, 20), sequence_length=32)
        hardware = mapping.execute_functional(scores)
        assert np.max(np.abs(hardware - softmax(scores))) < 0.03

    def test_requires_one_dimensional_input(self):
        mapping = SoftmAPMapping(BEST_PRECISION, sequence_length=8)
        with pytest.raises(ValueError):
            mapping.execute_functional(np.zeros((2, 4)))
