"""Optimisers for the tiny training substrate."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.nn.autograd import Parameter

__all__ = ["Adam"]


class Adam:
    """Adam optimiser (Kingma & Ba, 2015) over :class:`Parameter` objects."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("Adam needs at least one parameter")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be > 0")
        self.learning_rate = float(learning_rate)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._step = 0

    def zero_grad(self) -> None:
        """Clear every parameter gradient."""
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        """Apply one Adam update using the accumulated gradients."""
        self._step += 1
        bias1 = 1.0 - self.beta1 ** self._step
        bias2 = 1.0 - self.beta2 ** self._step
        for i, parameter in enumerate(self.parameters):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            self._m[i] = self.beta1 * self._m[i] + (1.0 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1.0 - self.beta2) * grad * grad
            m_hat = self._m[i] / bias1
            v_hat = self._v[i] / bias2
            parameter.data -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.eps)
