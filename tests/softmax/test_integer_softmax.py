"""Tests for the full integer-only softmax pipeline (Algorithm 1)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.quant.precision import BEST_PRECISION, PrecisionConfig
from repro.softmax.integer_softmax import IntegerSoftmax, integer_softmax
from repro.softmax.metrics import kl_divergence, max_abs_error
from repro.softmax.reference import softmax


class TestBasicBehaviour:
    def test_output_close_to_fp_softmax_m8(self):
        rng = np.random.default_rng(0)
        x = rng.normal(0, 2, (6, 128))
        approx = IntegerSoftmax(PrecisionConfig(8, 0, 16))(x)
        assert max_abs_error(approx, softmax(x)) < 0.02

    def test_sums_close_to_one(self):
        rng = np.random.default_rng(1)
        x = rng.normal(0, 1, (4, 256))
        probabilities = IntegerSoftmax(BEST_PRECISION)(x)
        assert np.allclose(probabilities.sum(axis=-1), 1.0, atol=2e-3)

    def test_probabilities_non_negative(self):
        rng = np.random.default_rng(2)
        x = rng.normal(0, 3, (3, 64))
        assert np.all(IntegerSoftmax(BEST_PRECISION)(x) >= 0)

    def test_monotone_in_logits(self):
        x = np.linspace(-4, 0, 32)
        probabilities = IntegerSoftmax(PrecisionConfig(8, 0, 16))(x)
        assert probabilities[-1] == probabilities.max()

    def test_axis_argument(self):
        rng = np.random.default_rng(3)
        x = rng.normal(0, 1, (8, 5))
        p = IntegerSoftmax(BEST_PRECISION)(x, axis=0)
        assert np.allclose(p.sum(axis=0), 1.0, atol=2e-3)

    def test_functional_wrapper(self):
        x = np.array([0.0, -1.0, -2.0])
        assert np.allclose(
            integer_softmax(x, BEST_PRECISION),
            IntegerSoftmax(BEST_PRECISION)(x),
        )

    def test_scalar_input_rejected(self):
        with pytest.raises(ValueError):
            IntegerSoftmax(BEST_PRECISION)(np.float64(1.0))

    def test_precision_type_checked(self):
        with pytest.raises(TypeError):
            IntegerSoftmax(precision="M=6")


class TestPrecisionOrdering:
    def test_higher_m_is_more_accurate(self):
        rng = np.random.default_rng(4)
        x = rng.normal(0, 2, (8, 512))
        reference = softmax(x)
        errors = {
            m: kl_divergence(reference, IntegerSoftmax(PrecisionConfig(m, 0, 16))(x))
            for m in (4, 6, 8)
        }
        assert errors[8] < errors[6] < errors[4]

    def test_vcorr_width_has_no_effect(self):
        # The paper observes that varying the vcorr precision does not
        # change perplexity at all; the outputs are bit-identical.
        rng = np.random.default_rng(5)
        x = rng.normal(0, 2, (4, 128))
        outputs = [
            IntegerSoftmax(PrecisionConfig(6, delta, 16))(x) for delta in (0, 1, 2)
        ]
        assert np.array_equal(outputs[0], outputs[1])
        assert np.array_equal(outputs[1], outputs[2])


class TestSumHeadroom:
    def test_small_n_saturates_on_flat_long_rows(self):
        rng = np.random.default_rng(6)
        x = rng.normal(0, 0.3, (4, 2048))  # nearly flat attention rows
        result_small = IntegerSoftmax(PrecisionConfig(6, 0, 8)).forward(x)
        result_large = IntegerSoftmax(PrecisionConfig(6, 0, 16)).forward(x)
        assert result_small.saturated_fraction > 0.9
        assert result_large.saturated_fraction == 0.0
        # Saturation inflates the probability mass above one.
        assert np.all(result_small.probabilities.sum(axis=-1) > 1.05)
        assert np.allclose(result_large.probabilities.sum(axis=-1), 1.0, atol=2e-3)

    def test_n_16_and_20_identical(self):
        rng = np.random.default_rng(7)
        x = rng.normal(0, 1, (4, 1024))
        p16 = IntegerSoftmax(PrecisionConfig(6, 0, 16))(x)
        p20 = IntegerSoftmax(PrecisionConfig(6, 0, 20))(x)
        assert np.array_equal(p16, p20)

    def test_wrap_overflow_mode(self):
        rng = np.random.default_rng(8)
        x = rng.normal(0, 0.2, (2, 2048))
        wrapped = IntegerSoftmax(PrecisionConfig(6, 0, 8), sum_overflow="wrap").forward(x)
        assert wrapped.saturated_fraction > 0.9

    def test_sum_register_bits_definition(self):
        sm = IntegerSoftmax(PrecisionConfig(6, 0, 16))
        assert sm.sum_register_bits == int(sm.max_summand).bit_length() + 16
        assert sm.sum_limit == (sm.max_summand + 1) * (1 << 16) - 1


class TestQuantizedEntryPoint:
    def test_forward_quantized_matches_forward(self):
        rng = np.random.default_rng(9)
        x = rng.normal(0, 2, (3, 64))
        sm = IntegerSoftmax(BEST_PRECISION)
        full = sm.forward(x)
        via_quantized = sm.forward_quantized(full.quantized_input.values)
        assert np.array_equal(full.output_int, via_quantized.output_int)

    def test_forward_quantized_rejects_floats(self):
        sm = IntegerSoftmax(BEST_PRECISION)
        with pytest.raises(TypeError):
            sm.forward_quantized(np.array([-1.0, 0.0]))

    def test_forward_quantized_rejects_positive(self):
        sm = IntegerSoftmax(BEST_PRECISION)
        with pytest.raises(ValueError):
            sm.forward_quantized(np.array([1, 0]))


class TestProperties:
    @given(arrays(np.float64, st.tuples(st.integers(1, 4), st.integers(2, 64)),
                  elements=st.floats(min_value=-30, max_value=30)))
    @settings(max_examples=40, deadline=None)
    def test_output_is_distribution_like(self, x):
        probabilities = IntegerSoftmax(BEST_PRECISION)(x)
        assert np.all(probabilities >= 0)
        assert np.all(probabilities.sum(axis=-1) <= 1.0 + 1e-9)

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_shift_invariance_property(self, seed):
        # Softmax is shift invariant and the pipeline stabilises inputs, so
        # adding a constant must not change the output.
        rng = np.random.default_rng(seed)
        x = rng.normal(0, 2, 32)
        sm = IntegerSoftmax(BEST_PRECISION)
        assert np.array_equal(sm(x), sm(x + 37.5))
