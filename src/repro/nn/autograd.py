"""Reverse-mode automatic differentiation over numpy arrays.

A deliberately small engine: a :class:`Tensor` wraps a numpy array, records
the operation that produced it and its parents, and :meth:`Tensor.backward`
walks the graph in reverse topological order accumulating gradients.  Only
the operations the tiny Llama-style model needs are implemented (in
:mod:`repro.nn.functional`); each operation supplies its own backward
closure, so the engine itself stays generic.

Gradient checking against finite differences lives in the test suite
(``tests/nn/test_autograd.py``).
"""

from __future__ import annotations

import contextlib
from typing import Callable, List, Optional, Sequence

import numpy as np

__all__ = ["Tensor", "Parameter", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = [True]


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (used for evaluation)."""
    _GRAD_ENABLED.append(False)
    try:
        yield
    finally:
        _GRAD_ENABLED.pop()


def is_grad_enabled() -> bool:
    """Whether newly created tensors will record the autograd graph."""
    return _GRAD_ENABLED[-1]


class Tensor:
    """A numpy array plus the bookkeeping needed for backpropagation.

    Parameters
    ----------
    data:
        The underlying value (converted to a float64 numpy array).
    parents:
        Tensors this one was computed from.
    backward_fn:
        Callable receiving the upstream gradient and returning one gradient
        per parent (or ``None`` for parents that do not need one).
    requires_grad:
        Whether gradients should be accumulated into this tensor.
    name:
        Optional label for debugging.
    """

    def __init__(
        self,
        data,
        parents: Sequence["Tensor"] = (),
        backward_fn: Optional[Callable[[np.ndarray], Sequence[Optional[np.ndarray]]]] = None,
        requires_grad: bool = False,
        name: str = "",
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.parents: List[Tensor] = list(parents) if is_grad_enabled() else []
        self.backward_fn = backward_fn if is_grad_enabled() else None
        self.requires_grad = bool(requires_grad) or any(
            p.requires_grad for p in self.parents
        )
        self.grad: Optional[np.ndarray] = None
        self.name = name

    # ------------------------------------------------------------------ #
    # Introspection                                                        #
    # ------------------------------------------------------------------ #
    @property
    def shape(self):
        """Shape of the underlying array."""
        return self.data.shape

    def item(self) -> float:
        """The scalar value of a 0-d / single-element tensor."""
        return float(self.data.reshape(-1)[0])

    def numpy(self) -> np.ndarray:
        """The underlying numpy array (not a copy)."""
        return self.data

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        label = f" name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.data.shape}, requires_grad={self.requires_grad}{label})"

    # ------------------------------------------------------------------ #
    # Backpropagation                                                      #
    # ------------------------------------------------------------------ #
    def backward(self, gradient: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if gradient is None:
            if self.data.size != 1:
                raise ValueError("backward() without a gradient needs a scalar output")
            gradient = np.ones_like(self.data)
        gradient = np.asarray(gradient, dtype=np.float64)
        if gradient.shape != self.data.shape:
            raise ValueError(
                f"gradient shape {gradient.shape} does not match tensor shape {self.data.shape}"
            )

        # Children are processed before their parents (reverse topological
        # order), so every upstream gradient is complete when it is consumed.
        order = self._topological_order()
        grads = {id(self): gradient}
        for tensor in reversed(order):
            upstream = grads.pop(id(tensor), None)
            if upstream is None:
                continue
            if tensor.requires_grad:
                tensor.grad = upstream if tensor.grad is None else tensor.grad + upstream
            if tensor.backward_fn is None:
                continue
            parent_grads = tensor.backward_fn(upstream)
            if len(parent_grads) != len(tensor.parents):
                raise RuntimeError(
                    f"backward of {tensor.name or 'op'} returned "
                    f"{len(parent_grads)} gradients for {len(tensor.parents)} parents"
                )
            for parent, parent_grad in zip(tensor.parents, parent_grads):
                if parent_grad is None:
                    continue
                parent_grad = np.asarray(parent_grad, dtype=np.float64)
                if parent_grad.shape != parent.data.shape:
                    raise RuntimeError(
                        f"gradient shape {parent_grad.shape} does not match parent "
                        f"shape {parent.data.shape} in op {tensor.name or 'op'}"
                    )
                key = id(parent)
                grads[key] = parent_grad if key not in grads else grads[key] + parent_grad

    def _topological_order(self) -> List["Tensor"]:
        """Topological order with parents before children (iterative DFS
        post-order, so deep graphs do not hit the recursion limit)."""
        order: List[Tensor] = []
        visited = set()
        stack: List[tuple] = [(self, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node.parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        return order

    def zero_grad(self) -> None:
        """Clear the accumulated gradient."""
        self.grad = None


class Parameter(Tensor):
    """A trainable tensor (``requires_grad=True`` and kept out of no_grad).

    Parameters additionally carry a monotonically increasing :attr:`version`
    counter, bumped every time ``data`` is (re)assigned.  Every optimiser
    update goes through an assignment (``p.data -= ...`` is
    ``p.data = p.data.__isub__(...)``), so consumers caching derived views
    of the weights — e.g. the stacked-head attention arrays of the LLM
    inference path — can detect staleness by comparing versions.  In-place
    *slice* writes (``p.data[i] = v``) bypass the counter; callers doing
    weight surgery must invalidate such caches explicitly (see
    ``TinyLlamaModel.invalidate_inference_cache``).
    """

    def __init__(self, data, name: str = "") -> None:
        self._version = 0
        super().__init__(data, requires_grad=True, name=name)
        # Parameters must keep requires_grad even when created inside a
        # no_grad block (e.g. lazily initialised weights).
        self.requires_grad = True

    @property
    def data(self) -> np.ndarray:
        return self._data

    @data.setter
    def data(self, value) -> None:
        self._data = value
        self._version += 1

    @property
    def version(self) -> int:
        """Mutation counter of ``data`` (assignment-based writes only)."""
        return self._version
