"""Look-Up Tables (LUTs) for bit-serial AP operations.

Every arithmetic/logic operation on the AP is a short sequence of
compare/write *passes* applied to one bit position at a time (Section II-B,
Fig. 3).  A pass searches the CAM for a bit pattern over a small set of
*roles* (operand bit ``a``, operand bit ``b``, result bit ``r``, carry
``cy``, borrow ``bw`` ...) and rewrites some of those roles in the matching
rows.  The processor binds roles to physical columns per bit position and
sweeps the passes bit-serially.

The LUTs defined here follow the associative-processing literature the paper
builds on (Yantir et al.):

* ``XOR_LUT`` — the worked example of Fig. 3 (two passes, result column
  assumed pre-cleared);
* ``ADD_LUT`` — in-place addition ``b <- a + b`` with a carry column
  (four passes per bit);
* ``SUB_LUT`` — in-place subtraction ``a <- a - b`` with a borrow column
  (four passes per bit);
* single-pass ``AND``/``OR``/``NOT``/``COPY`` helpers.

Pass ordering matters: a row rewritten by an earlier pass must never match
the search key of a later pass of the same bit position, otherwise it would
be transformed twice.  The orderings below satisfy that property; the test
suite checks the resulting arithmetic exhaustively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Sequence, Tuple

__all__ = [
    "LutPass",
    "Lut",
    "XOR_LUT",
    "AND_LUT",
    "OR_LUT",
    "NOT_LUT",
    "COPY_LUT",
    "ADD_LUT",
    "SUB_LUT",
]


@dataclass(frozen=True)
class LutPass:
    """One compare/write pass of a LUT.

    Attributes
    ----------
    search:
        Mapping ``role -> bit`` describing the key/mask of the compare cycle.
    write:
        Mapping ``role -> bit`` written to the matching rows.
    """

    search: Mapping[str, int]
    write: Mapping[str, int]

    def __post_init__(self) -> None:
        if not self.search:
            raise ValueError("a LUT pass must search at least one role")
        if not self.write:
            raise ValueError("a LUT pass must write at least one role")
        for mapping in (self.search, self.write):
            for role, bit in mapping.items():
                if bit not in (0, 1):
                    raise ValueError(f"bit for role {role!r} must be 0 or 1, got {bit}")


@dataclass(frozen=True)
class Lut:
    """A named sequence of passes plus bookkeeping metadata.

    Attributes
    ----------
    name:
        Operation name (``"add"``, ``"xor"``, ...).
    passes:
        The ordered compare/write passes applied to each bit position.
    roles:
        All roles referenced by the passes.
    in_place:
        Whether the destination is one of the operands (``add``/``sub``)
        rather than a separate, pre-cleared result column.
    uses_state:
        Name of the carry/borrow role threaded across bit positions, if any.
    """

    name: str
    passes: Tuple[LutPass, ...]
    in_place: bool = False
    uses_state: str = ""

    def __post_init__(self) -> None:
        if not self.passes:
            raise ValueError("a LUT needs at least one pass")

    @property
    def roles(self) -> Tuple[str, ...]:
        seen = []
        for p in self.passes:
            for role in list(p.search) + list(p.write):
                if role not in seen:
                    seen.append(role)
        return tuple(seen)

    @property
    def passes_per_bit(self) -> int:
        """Number of compare/write pairs applied per bit position."""
        return len(self.passes)

    def cycles_per_bit(self) -> int:
        """Compare + write cycles per bit position (2 per pass)."""
        return 2 * len(self.passes)


# --------------------------------------------------------------------------- #
# Logic LUTs (out of place: result column `r` must be pre-cleared to 0)        #
# --------------------------------------------------------------------------- #

#: Fig. 3 of the paper: ``r <- a XOR b``; rows with (a, b) = (0, 1) are
#: rewritten in the first pass, rows with (1, 0) in the second.
XOR_LUT = Lut(
    name="xor",
    passes=(
        LutPass(search={"a": 0, "b": 1}, write={"r": 1}),
        LutPass(search={"a": 1, "b": 0}, write={"r": 1}),
    ),
)

AND_LUT = Lut(
    name="and",
    passes=(LutPass(search={"a": 1, "b": 1}, write={"r": 1}),),
)

OR_LUT = Lut(
    name="or",
    passes=(
        LutPass(search={"a": 1}, write={"r": 1}),
        LutPass(search={"b": 1}, write={"r": 1}),
    ),
)

NOT_LUT = Lut(
    name="not",
    passes=(LutPass(search={"a": 0}, write={"r": 1}),),
)

COPY_LUT = Lut(
    name="copy",
    passes=(LutPass(search={"a": 1}, write={"r": 1}),),
)


# --------------------------------------------------------------------------- #
# Arithmetic LUTs                                                               #
# --------------------------------------------------------------------------- #

#: In-place addition ``b <- a + b`` with carry role ``cy``.
#:
#: Truth table of the full adder restricted to the rows whose state changes;
#: the pass order guarantees that a freshly written row never matches a later
#: pass of the same bit position.
ADD_LUT = Lut(
    name="add",
    in_place=True,
    uses_state="cy",
    passes=(
        # (cy=0, a=1, b=1): sum 0, carry 1
        LutPass(search={"cy": 0, "a": 1, "b": 1}, write={"cy": 1, "b": 0}),
        # (cy=0, a=1, b=0): sum 1, carry 0
        LutPass(search={"cy": 0, "a": 1, "b": 0}, write={"b": 1}),
        # (cy=1, a=0, b=0): sum 1, carry 0
        LutPass(search={"cy": 1, "a": 0, "b": 0}, write={"cy": 0, "b": 1}),
        # (cy=1, a=0, b=1): sum 0, carry 1
        LutPass(search={"cy": 1, "a": 0, "b": 1}, write={"cy": 1, "b": 0}),
    ),
)

#: In-place subtraction ``a <- a - b`` with borrow role ``bw``.
SUB_LUT = Lut(
    name="sub",
    in_place=True,
    uses_state="bw",
    passes=(
        # (bw=0, a=0, b=1): diff 1, borrow 1
        LutPass(search={"bw": 0, "a": 0, "b": 1}, write={"bw": 1, "a": 1}),
        # (bw=0, a=1, b=1): diff 0, borrow 0
        LutPass(search={"bw": 0, "a": 1, "b": 1}, write={"a": 0}),
        # (bw=1, a=1, b=0): diff 0, borrow 0
        LutPass(search={"bw": 1, "a": 1, "b": 0}, write={"bw": 0, "a": 0}),
        # (bw=1, a=0, b=0): diff 1, borrow 1
        LutPass(search={"bw": 1, "a": 0, "b": 0}, write={"a": 1}),
    ),
)
