"""Pure request-coalescing logic for the serving layer.

The asyncio server (:mod:`repro.serve.server`) is deliberately thin: all
the batch-shaping decisions live here as pure functions over plain arrays,
so the continuous-batching semantics are unit-testable without an event
loop.

A *request* is one ``(rows, seq)`` score matrix (a 1-D vector counts as a
single row) plus optional per-row ``valid_lengths``.  One admission tick
coalesces several requests into a single fused head-major row space:

* every request's rows are stacked contiguously, in arrival order;
* ragged sequence lengths are padded to the widest request of the batch,
  with each row's true prefix recorded in the combined ``valid_lengths``
  (the masked execution of a prefix is pinned bit-identical to running
  the un-padded row alone — the PR 2 ``clear_rows`` masking contract every
  backend honours);
* when every request shares one sequence length and none carries explicit
  lengths, the combined ``valid_lengths`` stays ``None`` so the coalesced
  call is *exactly* the call each request would have made alone.

:func:`split` inverts the stacking: given the batch's probability matrix
it returns each request's slice, cropped back to the request's own
sequence length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "CoalescedBatch",
    "RequestSlice",
    "as_request_matrix",
    "coalesce",
    "split",
    "take_admissible",
]


def as_request_matrix(
    scores: np.ndarray, valid_lengths: Optional[np.ndarray] = None
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Normalise one request into a ``(rows, seq)`` float64 matrix.

    Accepts a 1-D vector (one row) or a 2-D matrix, validating the
    optional per-row ``valid_lengths`` eagerly — a malformed request must
    fail at submission, not poison a whole coalesced batch later.
    """
    matrix = np.asarray(scores, dtype=np.float64)
    if matrix.ndim == 1:
        matrix = matrix[None, :]
    if matrix.ndim != 2:
        raise ValueError(
            f"a serving request is a 1-D score vector or a (rows, seq) "
            f"matrix, got a {np.asarray(scores).ndim}-D array"
        )
    if matrix.shape[0] < 1 or matrix.shape[1] < 1:
        raise ValueError(f"empty request of shape {matrix.shape}")
    lengths: Optional[np.ndarray] = None
    if valid_lengths is not None:
        lengths = np.asarray(valid_lengths, dtype=np.int64).reshape(-1)
        if lengths.shape != (matrix.shape[0],):
            raise ValueError(
                f"valid_lengths must hold one entry per request row "
                f"({matrix.shape[0]}), got shape "
                f"{np.asarray(valid_lengths).shape}"
            )
        if np.any(lengths < 1) or np.any(lengths > matrix.shape[1]):
            raise ValueError("valid_lengths must lie in 1..seq for every row")
    return matrix, lengths


@dataclass(frozen=True)
class RequestSlice:
    """Where one request's rows live inside a coalesced batch."""

    start: int
    rows: int
    sequence_length: int


@dataclass(frozen=True)
class CoalescedBatch:
    """One admission tick's fused row space.

    ``scores`` is the stacked ``(rows, max_seq)`` matrix, ``valid_lengths``
    the combined per-row prefix lengths (``None`` when no padding or
    masking is needed), and ``slices`` maps each request back to its rows.
    """

    scores: np.ndarray
    valid_lengths: Optional[np.ndarray]
    slices: Tuple[RequestSlice, ...]

    @property
    def rows(self) -> int:
        return self.scores.shape[0]

    @property
    def sequence_length(self) -> int:
        return self.scores.shape[1]

    @property
    def requests(self) -> int:
        return len(self.slices)


def coalesce(
    requests: Sequence[Tuple[np.ndarray, Optional[np.ndarray]]]
) -> CoalescedBatch:
    """Stack several normalised requests into one fused row space.

    ``requests`` holds ``(matrix, lengths)`` pairs as returned by
    :func:`as_request_matrix`, in admission (arrival) order.
    """
    if not requests:
        raise ValueError("cannot coalesce an empty admission batch")
    max_seq = max(matrix.shape[1] for matrix, _ in requests)
    total_rows = sum(matrix.shape[0] for matrix, _ in requests)
    uniform = all(
        matrix.shape[1] == max_seq and lengths is None
        for matrix, lengths in requests
    )
    scores = np.zeros((total_rows, max_seq), dtype=np.float64)
    combined: Optional[np.ndarray] = (
        None if uniform else np.empty(total_rows, dtype=np.int64)
    )
    slices: List[RequestSlice] = []
    start = 0
    for matrix, lengths in requests:
        rows, seq = matrix.shape
        scores[start : start + rows, :seq] = matrix
        if combined is not None:
            combined[start : start + rows] = seq if lengths is None else lengths
        slices.append(RequestSlice(start=start, rows=rows, sequence_length=seq))
        start += rows
    return CoalescedBatch(
        scores=scores, valid_lengths=combined, slices=tuple(slices)
    )


def split(batch: CoalescedBatch, probabilities: np.ndarray) -> List[np.ndarray]:
    """Slice a batch-shaped probability matrix back into per-request arrays.

    Each request gets its own ``(rows, seq)`` crop — rows from its slice,
    columns up to its own sequence length (padding columns hold exact
    zeros under the masked execution contract and are dropped).
    """
    probabilities = np.asarray(probabilities)
    if probabilities.shape != batch.scores.shape:
        raise ValueError(
            f"probabilities shape {probabilities.shape} does not match the "
            f"coalesced batch shape {batch.scores.shape}"
        )
    return [
        probabilities[
            piece.start : piece.start + piece.rows, : piece.sequence_length
        ].copy()
        for piece in batch.slices
    ]


def take_admissible(
    row_counts: Sequence[int], max_batch_rows: Optional[int]
) -> int:
    """How many leading queued requests one admission tick may take.

    FIFO, whole requests only: requests are admitted in order until the
    next one would push the tick past ``max_batch_rows``.  The first
    request is always admitted (an oversized request still executes — as
    a tick of its own, where the planner's ``pass_row_budget`` tiling
    takes over).  ``None`` admits everything queued.
    """
    if not row_counts:
        return 0
    if max_batch_rows is None:
        return len(row_counts)
    if max_batch_rows < 1:
        raise ValueError(f"max_batch_rows must be >= 1, got {max_batch_rows}")
    taken, rows = 0, 0
    for count in row_counts:
        if taken > 0 and rows + count > max_batch_rows:
            break
        taken += 1
        rows += count
        if rows >= max_batch_rows:
            break
    return taken
