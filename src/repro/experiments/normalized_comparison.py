"""Normalized AP-vs-GPU comparison (Figs. 6, 7, 8 and Table V).

For every (model, GPU, sequence length, batch size) point the paper plots

* normalized energy  = ``Energy_GPU / Energy_AP``  (Fig. 6),
* normalized latency = ``Latency_GPU / Latency_AP`` (Fig. 7),
* normalized EDP     = the product of the two       (Fig. 8, Table V),

with the integer softmax at the best precision combination (``M=6``,
``vcorr=M``, ``N=16``).  The GPU side is the softmax operator over the
decode-step score tensor ``[batch, heads, seq]`` (analytical model); the AP
side is one pass of the 16-step dataflow on the per-head AP, with energy
scaled by the batch size (each batch element needs its own pass) — see
DESIGN.md §4 and EXPERIMENTS.md for the discussion of this accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.gpu.softmax_model import GpuSoftmaxModel
from repro.gpu.spec import GPUS, GpuSpec
from repro.llm.config import LLAMA2_MODELS, LlamaConfig
from repro.mapping.deployment import ApDeployment
from repro.quant.precision import BEST_PRECISION, PrecisionConfig
from repro.runtime.registry import Experiment, register
from repro.utils.tables import TextTable

__all__ = [
    "ComparisonPoint",
    "NormalizedComparisonExperiment",
    "run_normalized_comparison",
    "render_comparison",
    "SEQUENCE_LENGTHS",
    "BATCH_SIZES",
]

#: Sequence lengths swept by Figs. 6-8.
SEQUENCE_LENGTHS: Tuple[int, ...] = (128, 256, 512, 1024, 2048, 4096)
#: Batch sizes swept by Figs. 6-8.
BATCH_SIZES: Tuple[int, ...] = (1, 2, 4, 8, 16, 32)


@dataclass(frozen=True)
class ComparisonPoint:
    """One point of the normalized sweep."""

    model: str
    gpu: str
    sequence_length: int
    batch_size: int
    gpu_latency_s: float
    gpu_energy_j: float
    ap_latency_s: float
    ap_energy_j: float

    @property
    def normalized_energy(self) -> float:
        """``Energy_GPU / Energy_AP`` (Fig. 6)."""
        return self.gpu_energy_j / self.ap_energy_j

    @property
    def normalized_latency(self) -> float:
        """``Latency_GPU / Latency_AP`` (Fig. 7; above 1 favours the AP)."""
        return self.gpu_latency_s / self.ap_latency_s

    @property
    def normalized_edp(self) -> float:
        """Normalized energy-delay product (Fig. 8, Table V)."""
        return self.normalized_energy * self.normalized_latency


def run_normalized_comparison(
    models: Optional[Dict[str, LlamaConfig]] = None,
    gpus: Optional[Dict[str, GpuSpec]] = None,
    sequence_lengths: Iterable[int] = SEQUENCE_LENGTHS,
    batch_sizes: Iterable[int] = BATCH_SIZES,
    precision: PrecisionConfig = BEST_PRECISION,
) -> List[ComparisonPoint]:
    """Run the full sweep behind Figs. 6-8 and Table V."""
    models = models if models is not None else LLAMA2_MODELS
    gpus = gpus if gpus is not None else GPUS
    points: List[ComparisonPoint] = []
    for model in models.values():
        deployment = ApDeployment(model, precision=precision)
        # AP pass cost depends only on the sequence length; cache per length.
        ap_costs = {
            seq: deployment.pass_cost(seq) for seq in sequence_lengths
        }
        for gpu in gpus.values():
            softmax_model = GpuSoftmaxModel(gpu)
            for seq in sequence_lengths:
                ap_cost = ap_costs[seq]
                for batch in batch_sizes:
                    gpu_cost = softmax_model.decode_cost(batch, model.num_heads, seq)
                    points.append(
                        ComparisonPoint(
                            model=model.name,
                            gpu=gpu.name,
                            sequence_length=seq,
                            batch_size=batch,
                            gpu_latency_s=gpu_cost.latency_s,
                            gpu_energy_j=gpu_cost.energy_j,
                            ap_latency_s=ap_cost.latency_s,
                            ap_energy_j=ap_cost.energy_j * batch,
                        )
                    )
    return points


def render_comparison(
    points: List[ComparisonPoint], metric: str = "energy"
) -> str:
    """Render one metric of the sweep as a table (one row per model/GPU/seq,
    one column per batch size)."""
    if metric not in ("energy", "latency", "edp"):
        raise ValueError("metric must be 'energy', 'latency' or 'edp'")
    batches = sorted({p.batch_size for p in points})
    table = TextTable(
        ["model", "gpu", "seq"] + [f"batch {b}" for b in batches],
        title=f"Normalized {metric} (GPU / AP)",
    )
    keys = sorted({(p.model, p.gpu, p.sequence_length) for p in points},
                  key=lambda k: (k[0], k[1], k[2]))
    index = {(p.model, p.gpu, p.sequence_length, p.batch_size): p for p in points}
    for model, gpu, seq in keys:
        row = [model, gpu, seq]
        for batch in batches:
            point = index[(model, gpu, seq, batch)]
            value = {
                "energy": point.normalized_energy,
                "latency": point.normalized_latency,
                "edp": point.normalized_edp,
            }[metric]
            row.append(value)
        table.add_row(row)
    return table.render()


@register("figs6_8")
class NormalizedComparisonExperiment(Experiment):
    """Registry wrapper: the Figs. 6/7/8 sweep behind Table V.

    ``render`` emits all three normalized views (energy, latency, EDP);
    config accepts ``sequence_lengths`` / ``batch_sizes`` tuples plus
    ``models`` / ``gpus`` restricted by name (``--set models="['7b']"``).
    """

    title = "Figs. 6-8"
    description = "normalized AP-vs-GPU energy / latency / EDP sweep"
    row_type = ComparisonPoint
    fast_config = {"sequence_lengths": (128, 1024, 4096), "batch_sizes": (1, 8, 32)}

    def run(self, config=None):
        kwargs = self._config_kwargs(config)
        for key in ("sequence_lengths", "batch_sizes"):
            if key in kwargs:
                kwargs[key] = tuple(kwargs[key])
        if "models" in kwargs and not isinstance(kwargs["models"], dict):
            kwargs["models"] = {
                name: LLAMA2_MODELS[name] for name in kwargs["models"]
            }
        if "gpus" in kwargs and not isinstance(kwargs["gpus"], dict):
            kwargs["gpus"] = {name: GPUS[name] for name in kwargs["gpus"]}
        return run_normalized_comparison(**kwargs)

    def render(self, result):
        return "\n\n".join(
            render_comparison(result, metric) for metric in ("energy", "latency", "edp")
        )
