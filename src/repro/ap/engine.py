"""Vectorized bit-plane execution engine for the Associative Processor.

The reference simulator (:mod:`repro.ap.processor`) executes every operation
the way the hardware does: a Python loop over bit positions sweeps the
compare/write passes of the operation's LUT over the CAM.  That is the right
model for validating the paper's semantics, but the per-bit Python loop makes
the functional path the dominant cost of every experiment that actually runs
softmax vectors through the AP.

:class:`BitPlaneEngine` is the fast path.  It re-expresses the full AP
instruction set — compare/write LUT sweeps, in-place add/subtract, shift-add
multiplication, predicated barrel shifts and restoring division — as whole
row-batch numpy operations on *packed words*: each field's bit columns are
gathered once into one ``uint64`` per row, the operation is computed with a
handful of word-level numpy expressions (or a short loop over multiplier /
quotient bits, never over ``rows``), and the result is scattered back into
the CAM's bit matrix.  The CAM cell matrix therefore remains the single
source of truth, so fields that alias each other through
:meth:`~repro.ap.processor.AssociativeProcessor.shifted_view` /
:meth:`~repro.ap.fields.Field.slice` keep working unchanged.

Bit-exactness
-------------
The engine reproduces the reference backend *bit for bit*, including the
corner cases that fall out of the LUT-pass encoding rather than textbook
arithmetic:

* **zero-column collisions** — when a logic LUT reads two operand roles past
  both operand widths, both roles bind to the constant-zero service column
  and the compare key collapses dict-style (last role wins).  For example
  ``xor`` with a result wider than both operands sets the excess result bits
  to 1, because the ``{"a": 1, "b": 0}`` pass collapses to a key that
  matches every row.  The engine simulates the collapsed keys per width
  regime and reproduces the behaviour exactly.
* **service-column state** — the carry/borrow column holds the final
  carry-out (add), borrow (subtract, division) exactly as the reference
  leaves it, and the division flag column latches the final borrow.
* **modulo semantics** — additions wrap at the destination width, the
  division remainder register wraps at its own width (visible when dividing
  by zero), and variable shifts honour ``max_shift_bits`` by ignoring the
  higher shift bits, exactly like the reference barrel shifter.

Programs whose operands alias in ways the word-level rewrite cannot express
(overlapping operand/destination columns, predicate columns inside an
operand field) are detected by the ``supports_*`` guards; the processor then
falls back to the reference sweep, so *every* program produces reference
results on either backend.

Cycle accounting
----------------
``compare_cycles``, ``write_cycles`` and ``compared_bits`` are charged
exactly as the reference backend charges them (the controller issues the
same cycles regardless of tag outcomes, so these are data-independent).
``written_bits`` and ``row_writes`` of LUT-pass writes depend on how many
rows match each pass; the engine charges the all-rows upper bound for those
two counters instead of replaying every pass (the reference backend remains
the ground truth for exact data-dependent write activity).  Latch writes
whose tag popcount is already known (division flag/quotient writes, operand
loads, field clears) are charged exactly.
"""

from __future__ import annotations

import difflib
import importlib
import itertools
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.ap.fields import Field
from repro.ap.lut import Lut

__all__ = [
    "BitPlaneEngine",
    "ENGINE_NAMES",
    "EngineInfo",
    "UnknownEngineError",
    "canonical_engine_name",
    "engine_info",
    "engine_names",
    "is_plan_engine",
    "processor_engine_names",
    "register_engine",
    "resolve_plan_executor",
]


# --------------------------------------------------------------------------- #
# Engine registry                                                              #
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class EngineInfo:
    """One registered functional-engine implementation.

    ``supports_processor`` marks engines that can back per-operation
    :class:`~repro.ap.processor.AssociativeProcessor` sweeps (the bit-serial
    reference and the packed-word :class:`BitPlaneEngine`); plan-only
    engines (e.g. ``"compiled"``) execute whole lowered
    :class:`~repro.mapping.plan.ExecutionPlan` programs but cannot serve
    individual CAM instructions.

    ``plan_executor`` is a lazy ``"module:attribute"`` reference to the
    engine's plan-executor factory — a callable taking an
    :class:`~repro.mapping.plan.ExecutionPlan` and returning an object with
    ``run(z, pad_mask, batch) -> probabilities``.  ``None`` means the plan
    layer interprets the lowered program on the functional AP instead
    (:meth:`~repro.mapping.plan.ExecutionPlan._run_ap`).  The reference is
    resolved on first use so registration stays import-cycle-free (the plan
    module imports this one).
    """

    name: str
    description: str
    supports_processor: bool = True
    plan_executor: Optional[str] = None


#: Name -> EngineInfo, in registration order (the order error messages and
#: ``ENGINE_NAMES`` present them in).
_ENGINES: "OrderedDict[str, EngineInfo]" = OrderedDict()

#: Resolved plan-executor factories, keyed by engine name.
_PLAN_EXECUTOR_FACTORIES: Dict[str, Callable] = {}


def register_engine(
    name: str,
    description: str = "",
    *,
    supports_processor: bool = True,
    plan_executor: Optional[str] = None,
) -> EngineInfo:
    """Register a functional-engine name with every selection seam at once.

    Registration is the *only* step: mappings, clusters, plans, backend
    specs, the CLI and the LLM paths all validate through
    :func:`canonical_engine_name` and dispatch through
    :func:`engine_info`/:func:`resolve_plan_executor`, so a registered name
    flows through every seam without per-call-site string lists.
    """
    if not isinstance(name, str) or not name:
        raise TypeError("engine name must be a non-empty str")
    if name in _ENGINES:
        raise ValueError(f"engine {name!r} is already registered")
    if plan_executor is not None and ":" not in plan_executor:
        raise ValueError(
            f"plan_executor must be a 'module:attribute' reference, "
            f"got {plan_executor!r}"
        )
    info = EngineInfo(
        name=name,
        description=description,
        supports_processor=supports_processor,
        plan_executor=plan_executor,
    )
    _ENGINES[name] = info
    return info


def engine_names() -> Tuple[str, ...]:
    """Every registered engine name, in registration order."""
    return tuple(_ENGINES)


def processor_engine_names() -> Tuple[str, ...]:
    """Engines that can back per-operation ``AssociativeProcessor`` sweeps."""
    return tuple(
        name for name, info in _ENGINES.items() if info.supports_processor
    )


def engine_info(name: str) -> EngineInfo:
    """The :class:`EngineInfo` registered under ``name`` (validated)."""
    return _ENGINES[canonical_engine_name(name)]


def is_plan_engine(name: str) -> bool:
    """Whether ``name`` executes lowered plans natively (the fused path)."""
    return engine_info(name).plan_executor is not None


def resolve_plan_executor(name: str) -> Callable:
    """The plan-executor factory of engine ``name`` (lazily imported).

    Raises :class:`ValueError` for engines without a plan executor — the
    plan layer checks :func:`is_plan_engine` first and interprets on the
    functional AP for those.
    """
    factory = _PLAN_EXECUTOR_FACTORIES.get(name)
    if factory is None:
        info = engine_info(name)
        if info.plan_executor is None:
            raise ValueError(
                f"engine {name!r} has no plan executor; it interprets "
                f"lowered programs on the functional AP"
            )
        module_name, _, attribute = info.plan_executor.partition(":")
        factory = getattr(importlib.import_module(module_name), attribute)
        _PLAN_EXECUTOR_FACTORIES[name] = factory
    return factory


class UnknownEngineError(ValueError):
    """An unknown functional-engine name, with a "did you mean" suggestion.

    The same eager-validation pattern as
    :class:`repro.runtime.backend.UnknownBackendError`: engine strings are
    checked where they enter (plan/backend/processor construction), so a
    typo fails immediately with a suggestion instead of deep inside an
    execution pass.
    """

    def __init__(self, name: str, valid: Optional[Sequence[str]] = None) -> None:
        valid = tuple(valid) if valid is not None else engine_names()
        close = difflib.get_close_matches(str(name), valid, n=1, cutoff=0.5)
        hint = f" — did you mean {close[0]!r}?" if close else ""
        super().__init__(
            f"unknown functional AP engine {name!r}{hint} "
            f"(valid engines: {', '.join(valid)})"
        )
        self.name = name
        self.suggestion = close[0] if close else None


def canonical_engine_name(name: str, *, processor: bool = False) -> str:
    """Validate a functional-engine name eagerly against the registry.

    This is the single authority for engine strings; construction-time
    callers (mappings, plans, backends, the AP itself) resolve through here
    so an invalid name raises :class:`UnknownEngineError` before any
    hardware state is built.  ``processor=True`` additionally restricts the
    name to engines that can back per-operation AP sweeps, rejecting
    plan-only engines such as ``"compiled"`` with the same did-you-mean
    diagnostics.
    """
    if not isinstance(name, str):
        raise TypeError(f"engine name must be a str, got {type(name).__name__}")
    valid = processor_engine_names() if processor else engine_names()
    if name not in valid:
        raise UnknownEngineError(name, valid)
    return name


def __getattr__(attr: str) -> Tuple[str, ...]:
    # ENGINE_NAMES predates the registry; keep it as a live view so code
    # (and docs) reading the historical tuple see later registrations too.
    if attr == "ENGINE_NAMES":
        return engine_names()
    raise AttributeError(f"module {__name__!r} has no attribute {attr!r}")

#: Widest field the packed-word representation can hold.  One bit of headroom
#: is kept below 64 so shifted sums/carries never wrap the host word.
MAX_FIELD_BITS = 63

_ONE = np.uint64(1)
_ZERO = np.uint64(0)
_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


def _mask(bits: int) -> np.uint64:
    """All-ones mask covering the low ``bits`` bits."""
    if bits <= 0:
        return _ZERO
    if bits >= 64:
        return _ALL_ONES
    return np.uint64((1 << bits) - 1)


class BitPlaneEngine:
    """Word-parallel executor bound to one functional AP.

    Parameters
    ----------
    processor:
        The owning :class:`~repro.ap.processor.AssociativeProcessor`.  The
        engine reads and writes the processor's CAM cell matrix and charges
        cycles to the processor's :class:`~repro.ap.cam.CamStats`.
    """

    def __init__(self, processor) -> None:
        self.ap = processor

    # ------------------------------------------------------------------ #
    # Packed-word access                                                   #
    # ------------------------------------------------------------------ #
    @property
    def _cells(self) -> np.ndarray:
        return self.ap.cam.cells

    @property
    def _stats(self):
        return self.ap.cam.stats

    @property
    def _rows(self) -> int:
        return self.ap.rows

    def pack(self, field: Field) -> np.ndarray:
        """Gather ``field``'s bit columns into one ``uint64`` word per row."""
        bits = self._cells[:, list(field.columns)]
        weights = _ONE << np.arange(field.bits, dtype=np.uint64)
        return (bits * weights).sum(axis=1, dtype=np.uint64)

    def store(self, field: Field, values: np.ndarray) -> None:
        """Scatter one word per row back into ``field``'s bit columns."""
        positions = np.arange(field.bits, dtype=np.uint64)
        bits = ((values[:, None] >> positions[None, :]) & _ONE).astype(bool)
        self._cells[:, list(field.columns)] = bits

    # ------------------------------------------------------------------ #
    # Guards                                                               #
    # ------------------------------------------------------------------ #
    @staticmethod
    def _fits(*fields: Field) -> bool:
        return all(f.bits <= MAX_FIELD_BITS for f in fields)

    @staticmethod
    def _disjoint(a: Field, b: Field) -> bool:
        return not (set(a.columns) & set(b.columns))

    def _condition_ok(
        self, condition: Optional[Tuple[int, int]], *read_or_written: Field
    ) -> bool:
        """A predicate column is safe when it is outside every operand and
        result column (no compare-key collision, no mid-operation flips) and
        is not a column the LUT passes bind implicitly (zero/state)."""
        if condition is None:
            return True
        column = condition[0]
        blocked = {self.ap._zero_column, self.ap._state_column}
        for field in read_or_written:
            blocked.update(field.columns)
        return column not in blocked

    def _selection(
        self,
        condition: Optional[Tuple[int, int]],
        row_mask: Optional[np.ndarray],
    ) -> np.ndarray:
        """Boolean row selector equivalent to the per-pass compare predicate
        (valid because the guards forbid writes to the predicate column)."""
        selected = np.ones(self._rows, dtype=bool)
        if condition is not None:
            column, bit = condition
            selected &= self._cells[:, column] == bool(bit)
        if row_mask is not None:
            selected &= np.asarray(row_mask, dtype=bool)
        return selected

    # ------------------------------------------------------------------ #
    # Accounting helpers                                                   #
    # ------------------------------------------------------------------ #
    def _charge_passes(
        self,
        bit_positions: int,
        searched_columns_per_pass: Sequence[int],
        written_columns_per_pass: Sequence[int],
    ) -> None:
        """Charge ``bit_positions`` sweeps of a pass sequence.

        ``searched_columns_per_pass`` is the number of *distinct* key columns
        of each pass (the condition column included by the caller);
        ``written_columns_per_pass`` the number of written columns.
        ``written_bits``/``row_writes`` are the all-rows upper bound.
        """
        n = self._rows
        passes = len(searched_columns_per_pass)
        self._stats.compare_cycles += bit_positions * passes
        self._stats.write_cycles += bit_positions * passes
        self._stats.compared_bits += bit_positions * n * int(
            sum(searched_columns_per_pass)
        )
        self._stats.written_bits += bit_positions * n * int(
            sum(written_columns_per_pass)
        )
        self._stats.row_writes += bit_positions * n * passes

    def _charge_state_clear(self) -> None:
        """Mirror of the reference ``_clear_state`` (one all-rows write)."""
        n = self._rows
        self._stats.write_cycles += 1
        self._stats.written_bits += n
        self._stats.row_writes += n

    # ------------------------------------------------------------------ #
    # Logic LUT sweeps                                                     #
    # ------------------------------------------------------------------ #
    def supports_logic(
        self,
        lut: Lut,
        a: Field,
        r: Field,
        b: Optional[Field],
        condition: Optional[Tuple[int, int]],
    ) -> bool:
        """Whether an out-of-place logic sweep can run on the fast path."""
        fields = [a, r] + ([b] if b is not None else [])
        if not self._fits(*fields):
            return False
        if not self._disjoint(a, r):
            return False
        if b is not None and not self._disjoint(b, r):
            return False
        # Aliased operands collapse the compare key onto shared columns in
        # the reference; the word-level rewrite cannot express that.
        if b is not None and not self._disjoint(a, b):
            return False
        allowed_roles = {"a"} | ({"b"} if b is not None else set())
        for lut_pass in lut.passes:
            if not set(lut_pass.search) <= allowed_roles:
                return False
            if set(lut_pass.write) != {"r"}:
                return False
        return self._condition_ok(condition, *fields)

    def logic(
        self,
        lut: Lut,
        a: Field,
        r: Field,
        b: Optional[Field] = None,
        condition: Optional[Tuple[int, int]] = None,
        row_mask: Optional[np.ndarray] = None,
    ) -> None:
        """``r <- lut(a[, b])`` — clears ``r`` then applies the sweep.

        Bit positions are grouped into *regimes* by which operand roles are
        still inside their field widths; within one regime every pass binds
        to the same physical columns, so its collapsed compare key (the
        dict-style last-role-wins collapse of the reference) is constant and
        the result bit is a pure function of the live operand bits.
        """
        self.ap.clear_field(r)

        cuts = {0, r.bits, min(a.bits, r.bits)}
        if b is not None:
            cuts.add(min(b.bits, r.bits))
        edges = sorted(cuts)
        selected = self._selection(condition, row_mask)
        a_val = self.pack(a)
        b_val = self.pack(b) if b is not None else None
        extra_key = 1 if condition is not None else 0

        result = np.zeros(self._rows, dtype=np.uint64)
        searched_per_pass = [0.0 for _ in lut.passes]

        for lo, hi in zip(edges, edges[1:]):
            if hi <= lo:
                continue
            live = []
            if lo < a.bits:
                live.append("a")
            if b is not None and lo < b.bits:
                live.append("b")
            segment_mask = _mask(hi) & ~_mask(lo)
            segment_bits = hi - lo
            for pass_index, lut_pass in enumerate(lut.passes):
                # Collapse the key exactly like the reference builds it: one
                # dict entry per physical column, later roles overwriting.
                key: Dict[str, int] = {}
                for role, bit in lut_pass.search.items():
                    key[role if role in live else "__zero__"] = bit
                searched_per_pass[pass_index] += (
                    (len(key) + extra_key) * segment_bits
                )
            for combo in itertools.product((0, 1), repeat=len(live)):
                bound = dict(zip(live, combo))
                r_bit = 0
                for lut_pass in lut.passes:
                    key = {}
                    for role, bit in lut_pass.search.items():
                        key[role if role in live else "__zero__"] = bit
                    matched = all(
                        (bound[col] == bit) if col in bound else (bit == 0)
                        for col, bit in key.items()
                    )
                    if matched:
                        r_bit = lut_pass.write["r"]
                if not r_bit:
                    continue
                term = np.full(self._rows, _ALL_ONES, dtype=np.uint64)
                for role, bit in bound.items():
                    operand = a_val if role == "a" else b_val
                    term &= operand if bit else ~operand
                result |= term & segment_mask

        result = np.where(selected, result & _mask(r.bits), _ZERO)
        self.store(r, result)

        # Accounting: cycles per pass are exact; compared_bits uses the
        # collapsed per-regime key sizes accumulated above.
        n = self._rows
        passes = len(lut.passes)
        self._stats.compare_cycles += r.bits * passes
        self._stats.write_cycles += r.bits * passes
        self._stats.compared_bits += n * int(sum(searched_per_pass))
        self._stats.written_bits += n * r.bits * sum(
            len(p.write) for p in lut.passes
        )
        self._stats.row_writes += n * r.bits * passes

    # ------------------------------------------------------------------ #
    # Arithmetic                                                           #
    # ------------------------------------------------------------------ #
    def supports_add(
        self,
        a: Field,
        b: Field,
        condition: Optional[Tuple[int, int]],
        width: Optional[int],
    ) -> bool:
        """Whether an in-place add/subtract can run on the fast path."""
        if not self._fits(a, b):
            return False
        if not self._disjoint(a, b):
            return False
        if width is not None and width < 1:
            return False
        return self._condition_ok(condition, a, b)

    def add(
        self,
        a: Field,
        b: Field,
        condition: Optional[Tuple[int, int]] = None,
        row_mask: Optional[np.ndarray] = None,
        width: Optional[int] = None,
    ) -> None:
        """In-place ``b <- a + b`` modulo ``2**width`` on selected rows."""
        bits = b.bits if width is None else width
        selected = self._selection(condition, row_mask)
        a_low = self.pack(a) & _mask(bits)
        b_val = self.pack(b)
        total = (b_val & _mask(bits)) + a_low
        new_b = (b_val & ~_mask(bits)) | (total & _mask(bits))
        carry = (total >> np.uint64(bits)) & _ONE
        self.store(b, np.where(selected, new_b, b_val))
        # The carry/borrow service column ends up holding the carry-out of
        # the selected rows (it is cleared first, and no pass fires in the
        # unselected rows).
        self._cells[:, self.ap._state_column] = np.where(
            selected, carry.astype(bool), False
        )
        self._charge_state_clear()
        extra = 1 if condition is not None else 0
        self._charge_passes(bits, [3 + extra] * 4, [2, 1, 2, 2])

    def subtract(
        self,
        a: Field,
        b: Field,
        condition: Optional[Tuple[int, int]] = None,
        row_mask: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """In-place ``a <- a - b`` modulo ``2**a.bits``; returns the borrow."""
        bits = a.bits
        selected = self._selection(condition, row_mask)
        a_val = self.pack(a)
        b_low = self.pack(b) & _mask(bits)
        borrow = selected & (a_val < b_low)
        diff = (a_val - b_low) & _mask(bits)
        self.store(a, np.where(selected, diff, a_val))
        self._cells[:, self.ap._state_column] = borrow
        self._charge_state_clear()
        extra = 1 if condition is not None else 0
        self._charge_passes(bits, [3 + extra] * 4, [2, 1, 2, 1])
        return borrow.copy()

    def supports_multiply(self, a: Field, b: Field, r: Field) -> bool:
        """Whether a shift-add multiplication can run on the fast path.

        Operand/multiplier disjointness is already enforced by the
        processor; the engine additionally needs the result column clear of
        both operands so the word-level rewrite is faithful.
        """
        return (
            self._fits(a, b, r)
            and self._disjoint(a, r)
            and self._disjoint(b, r)
        )

    def multiply(self, a: Field, b: Field, r: Field) -> None:
        """Shift-add ``r <- a * b`` truncated to ``r.bits``.

        The loop runs over multiplier bits only (a handful of iterations),
        each one a word-parallel conditional add at offset ``j`` — the
        packed-word equivalent of folding the predicate into the compare
        key.  The final state column matches the carry-out of the last
        partial addition, as the reference leaves it.
        """
        self.ap.clear_field(r)
        a_val = self.pack(a)
        b_val = self.pack(b)
        r_val = np.zeros(self._rows, dtype=np.uint64)
        state = np.zeros(self._rows, dtype=bool)
        for j in range(b.bits):
            width_j = r.bits - j
            self._charge_state_clear()
            if width_j <= 0:
                state = np.zeros(self._rows, dtype=bool)
                continue
            predicate = ((b_val >> np.uint64(j)) & _ONE).astype(bool)
            a_used = a_val & _mask(width_j)
            partial = (r_val >> np.uint64(j)) + a_used
            carry = ((partial >> np.uint64(width_j)) & _ONE).astype(bool)
            updated = (r_val & _mask(j)) | (
                (partial & _mask(width_j)) << np.uint64(j)
            )
            r_val = np.where(predicate, updated, r_val)
            state = np.where(predicate, carry, False)
            self._charge_passes(width_j, [4] * 4, [2, 1, 2, 2])
        self.store(r, r_val)
        self._cells[:, self.ap._state_column] = state

    # ------------------------------------------------------------------ #
    # Shifts                                                               #
    # ------------------------------------------------------------------ #
    def supports_shift(self, src: Field, shift: Field, dst: Field) -> bool:
        """Whether a variable right shift can run on the fast path."""
        return (
            self._fits(src, shift, dst)
            and self._disjoint(src, dst)
            and self._disjoint(shift, dst)
        )

    def shift_right_variable(
        self, src: Field, shift: Field, dst: Field, stages: int
    ) -> None:
        """Barrel shifter ``dst <- src >> shift`` using ``stages`` stages.

        Only the low ``stages`` bits of the shift amount participate,
        exactly like the reference (higher shift bits are ignored).
        """
        # Initial copy: reference does clear + single-pass sweep.
        self.ap.clear_field(dst)
        current = self.pack(src) & _mask(dst.bits)
        self._charge_passes(dst.bits, [1], [1])
        shift_val = self.pack(shift)
        for k in range(stages):
            offset = 1 << k
            predicate = ((shift_val >> np.uint64(k)) & _ONE).astype(bool)
            if offset >= 64:
                shifted = np.zeros(self._rows, dtype=np.uint64)
            else:
                shifted = current >> np.uint64(offset)
            current = np.where(predicate, shifted, current)
            # Conditional copy: two passes (write-1 / write-0), each with a
            # one-column search plus the predicate column.
            self._charge_passes(dst.bits, [2, 2], [1, 1])
        self.store(dst, current)

    # ------------------------------------------------------------------ #
    # Division                                                             #
    # ------------------------------------------------------------------ #
    def supports_divide(
        self,
        dividend: Field,
        divisor: Field,
        quotient: Field,
        remainder: Field,
        fraction_bits: int,
    ) -> bool:
        """Whether a restoring division can run on the fast path."""
        fields = (dividend, divisor, quotient, remainder)
        if not self._fits(*fields):
            return False
        if dividend.bits + fraction_bits > MAX_FIELD_BITS:
            return False
        for i, first in enumerate(fields):
            for second in fields[i + 1 :]:
                if not self._disjoint(first, second):
                    return False
        return True

    def divide(
        self,
        dividend: Field,
        divisor: Field,
        quotient: Field,
        remainder: Field,
        fraction_bits: int,
    ) -> None:
        """Restoring division, word-parallel over rows.

        The quotient/remainder recurrence is replayed per output bit (a few
        dozen iterations of numpy expressions), which reproduces the
        reference exactly — including the remainder register wrapping at its
        own width when the divisor is zero, in which case the quotient
        saturates to all ones.
        """
        self.ap.clear_field(quotient)
        self.ap.clear_field(remainder)
        n = self._rows
        rem_bits = remainder.bits
        rem_mask = _mask(rem_bits)
        total_bits = dividend.bits + fraction_bits
        dividend_val = self.pack(dividend)
        divisor_low = self.pack(divisor) & rem_mask
        rem = np.zeros(n, dtype=np.uint64)
        q_val = np.zeros(n, dtype=np.uint64)
        borrow = np.zeros(n, dtype=bool)
        for j in reversed(range(total_bits)):
            if j >= fraction_bits:
                bit = (dividend_val >> np.uint64(j - fraction_bits)) & _ONE
            else:
                bit = _ZERO
            rem = ((rem << _ONE) | bit) & rem_mask
            borrow = rem < divisor_low
            diff = (rem - divisor_low) & rem_mask
            rem = np.where(borrow, rem, diff)
            q_val |= np.where(borrow, _ZERO, _ONE) << np.uint64(j)

            # Accounting per output bit, mirroring the reference sequence:
            # remainder shift + bring-down (single-column full copies) ...
            self._charge_passes(rem_bits - 1, [1, 1], [1, 1])
            self._charge_passes(1, [1, 1], [1, 1])
            # ... subtract, flag latch, conditional restore add ...
            self._charge_state_clear()
            self._charge_passes(rem_bits, [3] * 4, [2, 1, 2, 1])
            self._stats.write_cycles += 2  # flag latch: borrow + ~borrow
            self._stats.written_bits += n
            self._stats.row_writes += n
            self._charge_state_clear()
            self._charge_passes(rem_bits, [4] * 4, [2, 1, 2, 2])
            # ... quotient-bit compare/write (exact popcount known).
            ones = int(np.count_nonzero(~borrow))
            self._stats.compare_cycles += 1
            self._stats.compared_bits += n
            self._stats.write_cycles += 1
            self._stats.written_bits += ones
            self._stats.row_writes += ones

        self.store(quotient, q_val)
        self.store(remainder, rem)
        self._cells[:, self.ap._flag_column] = borrow
        self._cells[:, self.ap._state_column] = borrow

    # ------------------------------------------------------------------ #
    # Wide segmented reduction + broadcast                                 #
    # ------------------------------------------------------------------ #
    def supports_segmented_reduce(self, field: Field, dest: Field) -> bool:
        """Whether the fused segmented reduce+broadcast can run packed."""
        return self._fits(field, dest) and self._disjoint(field, dest)

    def reduce_and_broadcast_segments(self, dest: Field, segment_length: int) -> int:
        """Fused per-segment reduction + broadcast over ``dest``.

        ``dest`` must already hold a copy of the reduced operand (the caller
        issues the copy, exactly as the reference tree does).  Instead of
        replaying every binary-tree level as a pairwise row addition over
        the CAM bit matrix, the packed words of ``dest`` are summed per
        segment in one numpy reduction and each segment's total is written
        back to the whole segment — the state the reference leaves after
        its tree + broadcast, because the broadcast overwrites every row of
        ``dest`` with its segment head.  The cycle counters are charged
        level by level, identical to the pairwise-tree accounting, so both
        backends stay cycle-exact.  Returns the number of tree levels.
        """
        rows = self._rows
        values = self.pack(dest)
        segments = rows // segment_length
        totals = values.reshape(segments, segment_length).sum(
            axis=1, dtype=np.uint64
        ) & _mask(dest.bits)
        stride = 1
        level = 0
        while stride < segment_length:
            pairs_per_block = len(range(stride, segment_length, 2 * stride))
            if pairs_per_block:
                targets = segments * pairs_per_block
                self._stats.compare_cycles += dest.bits
                self._stats.write_cycles += dest.bits
                self._stats.compared_bits += dest.bits * 2 * targets
                self._stats.written_bits += dest.bits * targets
                self._stats.row_writes += targets
            stride *= 2
            level += 1
        self.store(dest, np.repeat(totals, segment_length))
        # Broadcast accounting: two tagged compare/write pairs per column,
        # as charged by AssociativeProcessor2D.broadcast_segments.
        self._stats.compare_cycles += 2 * dest.bits
        self._stats.compared_bits += 2 * dest.bits * rows
        self._stats.write_cycles += 2 * dest.bits
        self._stats.written_bits += dest.bits * rows
        self._stats.row_writes += dest.bits * rows
        return level


# --------------------------------------------------------------------------- #
# Built-in engine registrations                                                #
# --------------------------------------------------------------------------- #
register_engine(
    "reference",
    "bit-serial LUT sweeps on the functional CAM — the paper-faithful "
    "ground truth",
    supports_processor=True,
)
register_engine(
    "vectorized",
    "packed-word BitPlaneEngine: whole row-batches per numpy operation, "
    "bit-identical to the reference",
    supports_processor=True,
    plan_executor="repro.mapping.plan:PackedExecutor",
)
register_engine(
    "compiled",
    "buffer-planned scratch-arena executor: the lowered program runs "
    "in-place against preallocated uint64 slots, bit-identical to both "
    "other engines (plan-only)",
    supports_processor=False,
    plan_executor="repro.ap.compiled:CompiledEngine",
)
