"""Chaos benchmark: the pinned reliability floor under injected faults.

The default ``chaos-load`` schedule stages a compiled-engine outage plus
seeded tick-latency spikes against the full reliability stack (deadlines,
retries with capped backoff, the engine-fallback chain).  Three pins, all
asserted here and in the CI ``chaos-smoke`` job:

* availability >= 0.99 on the seeded request stream;
* every successful response bit-identical to the fault-free serial run;
* the breaker story actually happened — at least one degrade *and* one
  recovery in the chain's transition log.

With ``REPRO_PERF_DIR`` set the full chaos report lands in
``BENCH_chaos.json`` (the CI job uploads it as an artifact).
"""

import json
import os
import pathlib

from repro.runtime import get_experiment

#: The pinned availability floor under the default fault schedule.
CHAOS_AVAILABILITY_FLOOR = 0.99


def _emit_perf_artifact(experiment, rows) -> None:
    """Write the chaos report JSON when REPRO_PERF_DIR is set."""
    perf_dir = os.environ.get("REPRO_PERF_DIR")
    if not perf_dir:
        return
    path = pathlib.Path(perf_dir)
    path.mkdir(parents=True, exist_ok=True)
    payload = {"benchmark": "chaos-load", **experiment.to_dict(rows)}
    with open(path / "BENCH_chaos.json", "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def test_chaos_load_availability_and_bit_identity(benchmark):
    """Pin: the default seeded outage never costs availability or bits."""
    experiment = get_experiment("chaos-load")
    rows = benchmark.pedantic(experiment.run, iterations=1, rounds=1)
    report = rows[0]
    print()
    print(experiment.render(rows))
    _emit_perf_artifact(experiment, rows)
    assert report.fault_events > 0, "the fault schedule never fired"
    assert report.availability >= CHAOS_AVAILABILITY_FLOOR, (
        f"availability {report.availability:.4f} under the default fault "
        f"schedule (floor {CHAOS_AVAILABILITY_FLOOR})"
    )
    assert report.successes_identical, (
        "a response served under faults diverged from the fault-free run"
    )
    assert report.degrades >= 1, "the breaker never degraded the chain"
    assert report.recoveries >= 1, "the chain never recovered to primary"
