"""Small argument-validation helpers shared across the library.

These helpers exist to keep error messages uniform; every public constructor
in the library validates its arguments eagerly so that misconfiguration is
reported where it happens rather than deep inside a simulation loop.
"""

from __future__ import annotations

from typing import Iterable, TypeVar

T = TypeVar("T")

__all__ = [
    "check_positive_int",
    "check_non_negative_int",
    "check_in_choices",
    "check_probability",
    "check_positive",
]


def check_positive_int(value: int, name: str) -> int:
    """Return ``value`` if it is a strictly positive integer, else raise."""
    if not isinstance(value, (int,)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    return value


def check_non_negative_int(value: int, name: str) -> int:
    """Return ``value`` if it is a non-negative integer, else raise."""
    if not isinstance(value, (int,)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_positive(value: float, name: str) -> float:
    """Return ``value`` if it is a strictly positive number, else raise."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    return float(value)


def check_in_choices(value: T, choices: Iterable[T], name: str) -> T:
    """Return ``value`` if it is one of ``choices``, else raise."""
    choices = tuple(choices)
    if value not in choices:
        raise ValueError(f"{name} must be one of {choices}, got {value!r}")
    return value


def check_probability(value: float, name: str) -> float:
    """Return ``value`` if it lies in ``[0, 1]``, else raise."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return float(value)
