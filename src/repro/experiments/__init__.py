"""Experiment harness: one module per table/figure of the paper.

Every experiment module exposes its legacy ``run_*``/``render_*`` functions
*and* registers an :class:`repro.runtime.registry.Experiment` under the
artefact's registry name (``table1``, ``fig1``, ``figs6_8``, ...), so each
table/figure is reproducible three ways:

* programmatically — ``get_experiment("table2").run({...})`` (uniform
  ``run``/``render``/``to_dict``/``from_dict`` contract);
* from the command line — ``python -m repro run table2 --json out.json``;
* through the legacy functions (``run_table2`` / ``render_table2``), kept
  as thin, stable entry points.

The benchmark suite (``benchmarks/``) wraps the registry with
pytest-benchmark so that regenerating an artefact is a single test
invocation, and EXPERIMENTS.md records the registry name for every
table/figure.

Importing this package registers every experiment (the registry's lookup
functions import it lazily for exactly that reason).
"""

from repro.experiments.fig1_softmax_proportion import (
    Fig1Experiment,
    run_fig1_softmax_proportion,
    render_fig1,
)
from repro.experiments.table1_precisions import (
    Table1Experiment,
    run_table1,
    render_table1,
)
from repro.experiments.table2_runtime_formulas import (
    Table2Experiment,
    run_table2,
    render_table2,
)
from repro.experiments.table3_4_perplexity import (
    ClusterParityExperiment,
    InferenceSpeedExperiment,
    FidelityExperiment,
    PerplexityExperiment,
    run_ap_cluster_equivalence,
    run_inference_speed,
    run_perplexity_sweep,
    run_softmax_fidelity_sweep,
    render_cluster_equivalence,
    render_fidelity_table,
    render_inference_speed,
    render_perplexity_table,
)
from repro.experiments.normalized_comparison import (
    ComparisonPoint,
    NormalizedComparisonExperiment,
    run_normalized_comparison,
    render_comparison,
    SEQUENCE_LENGTHS,
    BATCH_SIZES,
)
from repro.experiments.table5_edp import Table5Experiment, run_table5, render_table5
from repro.experiments.table6_related_works import (
    Table6Experiment,
    run_table6,
    render_table6,
)
from repro.experiments.area import AreaExperiment, run_area, render_area
from repro.experiments.llm_generate import (
    GenerateSpeedExperiment,
    GenerateSpeedReport,
    run_generate_speed,
    render_generate_speed,
)
from repro.experiments.serve_load import (
    ServeLoadExperiment,
    ServeLoadPoint,
    run_serve_load,
    render_serve_load,
)
from repro.experiments.chaos_load import (
    ChaosLoadExperiment,
    ChaosLoadReport,
    run_chaos_load,
    render_chaos_load,
)

__all__ = [
    "Fig1Experiment",
    "run_fig1_softmax_proportion",
    "render_fig1",
    "Table1Experiment",
    "run_table1",
    "render_table1",
    "Table2Experiment",
    "run_table2",
    "render_table2",
    "ClusterParityExperiment",
    "InferenceSpeedExperiment",
    "FidelityExperiment",
    "PerplexityExperiment",
    "run_ap_cluster_equivalence",
    "run_inference_speed",
    "run_perplexity_sweep",
    "run_softmax_fidelity_sweep",
    "render_cluster_equivalence",
    "render_fidelity_table",
    "render_inference_speed",
    "render_perplexity_table",
    "ComparisonPoint",
    "NormalizedComparisonExperiment",
    "run_normalized_comparison",
    "render_comparison",
    "SEQUENCE_LENGTHS",
    "BATCH_SIZES",
    "Table5Experiment",
    "run_table5",
    "render_table5",
    "Table6Experiment",
    "run_table6",
    "render_table6",
    "AreaExperiment",
    "run_area",
    "render_area",
    "GenerateSpeedExperiment",
    "GenerateSpeedReport",
    "run_generate_speed",
    "render_generate_speed",
    "ServeLoadExperiment",
    "ServeLoadPoint",
    "run_serve_load",
    "render_serve_load",
    "ChaosLoadExperiment",
    "ChaosLoadReport",
    "run_chaos_load",
    "render_chaos_load",
]
