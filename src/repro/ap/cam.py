"""Content Addressable Memory (CAM) array with key/mask/tag registers.

The CAM is the building block of the Associative Processor (Fig. 3): a grid
of SRAM cells (``rows x columns`` bits) searched in parallel.  Two primitive
cycles exist:

* **compare** — the key register holds the searched bit per column, the mask
  register selects which columns take part; every row whose masked bits all
  equal the key is flagged in the tag register.
* **write** — the key/mask registers select bits to write, and the write is
  applied only to the rows flagged in the tag register.

Any arithmetic or logic operation is realised as a sequence of such
compare/write pairs dictated by the operation's LUT.  :class:`CamArray`
implements the two primitives on a boolean numpy matrix and keeps
:class:`CamStats` counters (compares, writes, tagged-row writes) that the
cost model converts to latency and energy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from repro.utils.validation import check_positive_int

__all__ = ["CamArray", "CamStats"]


@dataclass
class CamStats:
    """Cycle-level activity counters of a CAM array.

    Attributes
    ----------
    compare_cycles:
        Number of compare cycles issued (each searches all rows in parallel).
    write_cycles:
        Number of write cycles issued.
    compared_bits:
        Total number of (row, column) cells that participated in compare
        cycles — used for energy estimation.
    written_bits:
        Total number of cells actually written.
    row_writes:
        Total number of tagged rows across all write cycles.
    """

    compare_cycles: int = 0
    write_cycles: int = 0
    compared_bits: int = 0
    written_bits: int = 0
    row_writes: int = 0

    def merge(self, other: "CamStats") -> "CamStats":
        """Return the element-wise sum of two counters."""
        return CamStats(
            compare_cycles=self.compare_cycles + other.compare_cycles,
            write_cycles=self.write_cycles + other.write_cycles,
            compared_bits=self.compared_bits + other.compared_bits,
            written_bits=self.written_bits + other.written_bits,
            row_writes=self.row_writes + other.row_writes,
        )

    @property
    def total_cycles(self) -> int:
        """Total compare + write cycles."""
        return self.compare_cycles + self.write_cycles

    def reset(self) -> None:
        """Zero all counters."""
        self.compare_cycles = 0
        self.write_cycles = 0
        self.compared_bits = 0
        self.written_bits = 0
        self.row_writes = 0


class CamArray:
    """A bit-level CAM with compare/write primitives.

    Parameters
    ----------
    rows:
        Number of CAM rows (words stored side by side share a row).
    columns:
        Number of bit columns.
    """

    def __init__(self, rows: int, columns: int) -> None:
        self.rows = check_positive_int(rows, "rows")
        self.columns = check_positive_int(columns, "columns")
        self._cells = np.zeros((self.rows, self.columns), dtype=bool)
        self.tag = np.zeros(self.rows, dtype=bool)
        self.stats = CamStats()

    # ------------------------------------------------------------------ #
    # Raw cell access (used to load/unload operands, not counted as AP    #
    # cycles — the cost of writing operands is charged explicitly by the  #
    # cost model's "2M" write term).                                      #
    # ------------------------------------------------------------------ #
    @property
    def cells(self) -> np.ndarray:
        """The raw cell matrix (bool, ``rows x columns``).  Mutating it
        directly bypasses cycle accounting; use only for operand loading in
        tests or through :class:`~repro.ap.processor.AssociativeProcessor`
        helpers that charge the cost explicitly."""
        return self._cells

    def load_bits(self, column_indices: Sequence[int], bits: np.ndarray) -> None:
        """Load a bit matrix (``rows x len(column_indices)``) directly."""
        bits = np.asarray(bits, dtype=bool)
        if bits.shape != (self.rows, len(column_indices)):
            raise ValueError(
                f"expected bits of shape {(self.rows, len(column_indices))}, "
                f"got {bits.shape}"
            )
        self._cells[:, list(column_indices)] = bits

    def read_bits(self, column_indices: Sequence[int]) -> np.ndarray:
        """Read a bit matrix for the given columns."""
        return self._cells[:, list(column_indices)].copy()

    # ------------------------------------------------------------------ #
    # AP primitives                                                        #
    # ------------------------------------------------------------------ #
    def compare(
        self,
        key: Dict[int, int],
        row_mask: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Perform one compare cycle.

        Parameters
        ----------
        key:
            Mapping ``column index -> expected bit`` (the key register with
            the mask register implicitly selecting exactly those columns).
        row_mask:
            Optional boolean row selector; rows outside the mask can never
            match (used by the 2D AP to restrict operations to row pairs).

        Returns
        -------
        The tag vector (boolean per row); it is also latched in
        :attr:`tag`.
        """
        if not key:
            raise ValueError("compare needs at least one masked column")
        match = np.ones(self.rows, dtype=bool)
        for column, bit in key.items():
            self._check_column(column)
            match &= self._cells[:, column] == bool(bit)
        if row_mask is not None:
            match &= np.asarray(row_mask, dtype=bool)
        self.tag = match
        self.stats.compare_cycles += 1
        self.stats.compared_bits += len(key) * self.rows
        return match.copy()

    def write(
        self,
        values: Dict[int, int],
        tag: Optional[np.ndarray] = None,
    ) -> None:
        """Perform one write cycle on the tagged rows.

        Parameters
        ----------
        values:
            Mapping ``column index -> bit`` written to every tagged row.
        tag:
            Row selector; defaults to the tag latched by the last compare.
        """
        if not values:
            raise ValueError("write needs at least one masked column")
        if tag is None:
            tag = self.tag
        tag = np.asarray(tag, dtype=bool)
        if tag.shape != (self.rows,):
            raise ValueError(f"tag must have shape ({self.rows},), got {tag.shape}")
        for column, bit in values.items():
            self._check_column(column)
            self._cells[tag, column] = bool(bit)
        self.stats.write_cycles += 1
        tagged = int(np.count_nonzero(tag))
        self.stats.written_bits += len(values) * tagged
        self.stats.row_writes += tagged
        return None

    # ------------------------------------------------------------------ #
    # Helpers                                                              #
    # ------------------------------------------------------------------ #
    def clear_columns(self, column_indices: Iterable[int]) -> None:
        """Zero the given columns with a single counted write cycle (all
        rows tagged)."""
        columns = list(column_indices)
        for column in columns:
            self._check_column(column)
        self.write({column: 0 for column in columns}, tag=np.ones(self.rows, dtype=bool))

    def _check_column(self, column: int) -> None:
        if not 0 <= column < self.columns:
            raise IndexError(
                f"column {column} out of range for CAM with {self.columns} columns"
            )

    def snapshot(self) -> np.ndarray:
        """Copy of the cell matrix (for tests and debugging)."""
        return self._cells.copy()
