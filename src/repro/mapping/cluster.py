"""Functional multi-AP cluster: one per-head AP executing batched softmax.

The paper deploys one AP per attention head (Fig. 4).  Up to PR 1 that
deployment existed only analytically (:class:`~repro.mapping.deployment.ApDeployment`
derives area/latency/energy) while the functional path still evaluated the
integer softmax in plain numpy.  :class:`ApCluster` closes the gap: it holds
one :class:`~repro.mapping.softmap.SoftmAPMapping` per head, shards a
``(batch, heads, seq)`` attention-score tensor head by head, and executes
every head's ``(batch, seq)`` block through
:meth:`~repro.mapping.softmap.SoftmAPMapping.execute_functional_batch` —
so every probability the LLM substrate consumes is produced by CAM
compare/write semantics.

Concurrency accounting
----------------------
The cluster-level cost follows the paper's Section V-B assumption that all
per-head APs work concurrently on their own share of the score tensor:

* **latency** — the maximum over heads.  The heads are structurally
  identical, so the critical path equals the per-head pass latency.
* **energy** — the sum over heads: every AP switches its own CAM.
* **batch** — stacking ``batch`` score vectors in one AP adds rows, which
  scales energy linearly but leaves the cycle count unchanged (the AP is
  word-parallel; only the segmented reduction tree depends on the segment
  length, not on the number of segments).

Multi-batch schedule
--------------------
:meth:`ApCluster.schedule` models a two-stage pipeline over consecutive
batches: the operand/constant *load* phase of batch ``k + 1`` (the dataflow's
element-wise ``Write`` steps, issued by the controller ahead of time)
overlaps the *compute* phase of batch ``k`` (everything else — including the
step-15 sum broadcast, a write that depends on the same batch's reduction
and therefore cannot be preloaded).  The steady-state
initiation interval is therefore ``max(load, compute)`` and the makespan of
``n`` batches is ``load + compute + (n - 1) * max(load, compute)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.ap.processor2d import AssociativeProcessor2D
from repro.ap.tech import TECH_16NM, TechnologyParameters
from repro.mapping.dataflow import StepKind
from repro.mapping.softmap import MappingCost, SoftmAPMapping
from repro.quant.precision import BEST_PRECISION, PrecisionConfig
from repro.utils.validation import check_in_choices, check_positive_int

__all__ = ["ApCluster", "ClusterCost", "ClusterSchedule", "ClusterSoftmaxFn"]


@dataclass(frozen=True)
class ClusterCost:
    """Aggregate cost of one batched softmax pass over the whole cluster.

    Attributes
    ----------
    per_head:
        Cost of one pass on one per-head AP (all heads are identical).
    num_heads / batch:
        Cluster width and number of score vectors stacked per head.
    latency_s / cycles:
        Critical path: the maximum over the concurrent heads (equal to the
        per-head pass because the heads are structurally identical).
    energy_j:
        Sum over heads, scaled by the ``batch`` rows each AP activates.
    area_mm2:
        Total silicon: heads x per-AP area.
    """

    per_head: MappingCost
    num_heads: int
    batch: int
    latency_s: float
    cycles: float
    energy_j: float
    area_mm2: float


@dataclass(frozen=True)
class ClusterSchedule:
    """Pipelined execution of several consecutive batches on the cluster.

    ``latency_s`` is the pipelined makespan
    ``load + compute + (n - 1) * max(load, compute)``; ``sequential_latency_s``
    is the unpipelined reference ``n * (load + compute)``.
    """

    num_batches: int
    load_latency_s: float
    compute_latency_s: float
    latency_s: float
    sequential_latency_s: float
    energy_j: float

    @property
    def pipeline_speedup(self) -> float:
        """Sequential / pipelined makespan (>= 1)."""
        return self.sequential_latency_s / self.latency_s

    @property
    def throughput_passes_per_s(self) -> float:
        """Steady-state cluster passes per second."""
        return self.num_batches / self.latency_s


class ClusterSoftmaxFn:
    """Batched attention-softmax adapter backed by an :class:`ApCluster`.

    The callable implements the extended ``softmax_fn`` contract of
    :class:`~repro.llm.model.TinyLlamaModel` (``supports_batch = True``): it
    maps a head-major ``(rows, seq)`` score matrix — ``rows`` must be a
    multiple of the cluster's head count, with row ``h * batch + b`` holding
    batch row ``b`` of head ``h`` — to probabilities of the same shape,
    zeroing every position at or beyond the row's ``valid_lengths`` entry.
    A plain 1-D score vector is also accepted and runs on head 0.

    Since the unified runtime API landed this class is a thin shim over
    :meth:`ApCluster.as_backend`: every call delegates to the cluster's
    :class:`~repro.runtime.backend.ApClusterBackend`, whose ``telemetry``
    accumulates the cost of each pass (reachable via
    :meth:`runtime_backend`).
    """

    #: Marks the extended (rows, seq) -> (rows, seq) softmax_fn contract.
    supports_batch = True

    def __init__(self, cluster: "ApCluster", backend: Optional[str] = None) -> None:
        self.cluster = cluster
        self.backend = backend
        self._runtime_backend = None

    def runtime_backend(self):
        """The :class:`~repro.runtime.backend.ApClusterBackend` executing
        the calls (built lazily; runtime imports this module)."""
        if self._runtime_backend is None:
            self._runtime_backend = self.cluster.as_backend(engine=self.backend)
        return self._runtime_backend

    def __call__(
        self,
        scores: np.ndarray,
        valid_lengths: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        scores = np.asarray(scores, dtype=np.float64)
        if scores.ndim > 2:
            # The model's softmax_fn contract is (rows, seq); the backend's
            # run() additionally accepts (batch, heads, seq) tensors, which
            # this adapter deliberately does not expose.
            raise ValueError("cluster softmax_fn expects a (rows, seq) matrix")
        return self.runtime_backend().run(
            scores, valid_lengths=valid_lengths
        ).probabilities


class ApCluster:
    """A cluster of per-head functional APs for multi-head attention softmax.

    Parameters
    ----------
    num_heads:
        Number of APs (one per attention head).
    precision / words_per_row / columns / tech / division / clip_threshold:
        Forwarded to every per-head :class:`~repro.mapping.softmap.SoftmAPMapping`.
    sequence_length:
        The sequence length the cluster is provisioned for; longer score
        tensors are rejected (shorter ones are fine — the functional AP is
        rebuilt per call and the cost view accepts a runtime length).
    backend:
        Default functional backend; ``"vectorized"`` because the cluster is
        the model-scale fast path (``"reference"`` validates bit-exactness).
    """

    def __init__(
        self,
        num_heads: int,
        precision: PrecisionConfig = BEST_PRECISION,
        sequence_length: int = 2048,
        words_per_row: int = 2,
        columns: int = 64,
        tech: TechnologyParameters = TECH_16NM,
        division: str = "restoring",
        clip_threshold: Optional[float] = None,
        backend: str = "vectorized",
    ) -> None:
        self.num_heads = check_positive_int(num_heads, "num_heads")
        self.sequence_length = check_positive_int(sequence_length, "sequence_length")
        self.backend = check_in_choices(
            backend, AssociativeProcessor2D.BACKENDS, "backend"
        )
        self._head_mappings: List[SoftmAPMapping] = [
            SoftmAPMapping(
                precision=precision,
                sequence_length=sequence_length,
                words_per_row=words_per_row,
                columns=columns,
                tech=tech,
                division=division,
                clip_threshold=clip_threshold,
                backend=backend,
            )
            for _ in range(self.num_heads)
        ]
        self.precision = precision
        self.words_per_row = words_per_row
        self.columns = columns
        self.tech = tech
        self.division = self._head_mappings[0].division
        self.clip_threshold = clip_threshold

    # ------------------------------------------------------------------ #
    # Sharded functional execution                                         #
    # ------------------------------------------------------------------ #
    def head_mapping(self, head: int) -> SoftmAPMapping:
        """The per-head dataflow mapping owning shard ``head``."""
        if not 0 <= head < self.num_heads:
            raise IndexError(f"head {head} out of range ({self.num_heads} heads)")
        return self._head_mappings[head]

    def execute(
        self,
        scores: np.ndarray,
        valid_lengths: Optional[np.ndarray] = None,
        backend: Optional[str] = None,
    ) -> np.ndarray:
        """Execute a ``(batch, heads, seq)`` score tensor on the cluster.

        Head ``h``'s ``(batch, seq)`` block is handed to its own
        :class:`~repro.mapping.softmap.SoftmAPMapping` and executed in one
        :meth:`~repro.mapping.softmap.SoftmAPMapping.execute_functional_batch`
        call (all ``batch`` vectors stacked in that head's AP); the heads'
        results are reassembled into a ``(batch, heads, seq)`` probability
        tensor.  ``valid_lengths`` may be ``(batch,)`` (shared by all heads)
        or ``(batch, heads)``; see the mapping method for its semantics.
        """
        scores = np.asarray(scores, dtype=np.float64)
        if scores.ndim != 3:
            raise ValueError(
                "ApCluster.execute expects a (batch, heads, seq) score tensor"
            )
        batch, heads, seq = scores.shape
        if heads != self.num_heads:
            raise ValueError(
                f"score tensor has {heads} heads, cluster has {self.num_heads}"
            )
        if seq > self.sequence_length:
            raise ValueError(
                f"sequence length {seq} exceeds the provisioned "
                f"maximum {self.sequence_length}"
            )
        per_head_lengths: Optional[np.ndarray] = None
        if valid_lengths is not None:
            per_head_lengths = np.asarray(valid_lengths, dtype=np.int64)
            if per_head_lengths.ndim == 1:
                per_head_lengths = np.broadcast_to(
                    per_head_lengths[:, None], (batch, heads)
                )
            if per_head_lengths.shape != (batch, heads):
                raise ValueError(
                    f"valid_lengths must have shape ({batch},) or "
                    f"({batch}, {heads}), got {np.asarray(valid_lengths).shape}"
                )
        probabilities = np.empty_like(scores)
        for head, mapping in enumerate(self._head_mappings):
            probabilities[:, head, :] = mapping.execute_functional_batch(
                scores[:, head, :],
                backend=backend,
                valid_lengths=(
                    None if per_head_lengths is None else per_head_lengths[:, head]
                ),
            )
        return probabilities

    def softmax_fn(self, backend: Optional[str] = None) -> ClusterSoftmaxFn:
        """A batched attention-softmax callable for the LLM substrate."""
        return ClusterSoftmaxFn(self, backend=backend)

    def as_backend(self, engine: Optional[str] = None):
        """This cluster as a :class:`~repro.runtime.backend.SoftmaxBackend`.

        The returned :class:`~repro.runtime.backend.ApClusterBackend` wraps
        *this* cluster (no per-head APs are rebuilt) and exposes the uniform
        ``run(scores) -> SoftmaxResult`` contract — probabilities plus the
        concurrency-aware cost of every pass.  ``engine`` optionally
        overrides the functional engine per backend
        (``"reference"``/``"vectorized"``).
        """
        # Imported lazily: repro.runtime.backend imports this module.
        from repro.runtime.backend import ApClusterBackend

        return ApClusterBackend.from_cluster(self, engine=engine)

    # ------------------------------------------------------------------ #
    # Concurrency-aware analytical cost                                    #
    # ------------------------------------------------------------------ #
    def cost(
        self, sequence_length: Optional[int] = None, batch: int = 1
    ) -> ClusterCost:
        """Cluster-level cost of one (possibly batched) softmax pass.

        Latency is the max over the concurrently working heads, energy the
        sum; stacking ``batch`` vectors per head multiplies the active rows
        (energy) but not the cycle count (see the module docstring).
        """
        check_positive_int(batch, "batch")
        per_head = self._cost_mapping(sequence_length).cost()
        return ClusterCost(
            per_head=per_head,
            num_heads=self.num_heads,
            batch=batch,
            latency_s=per_head.latency_s,
            cycles=per_head.cycles,
            energy_j=per_head.energy_j * self.num_heads * batch,
            area_mm2=per_head.area_mm2 * self.num_heads,
        )

    def schedule(
        self,
        num_batches: int,
        sequence_length: Optional[int] = None,
        batch: int = 1,
    ) -> ClusterSchedule:
        """Pipelined schedule of ``num_batches`` consecutive cluster passes.

        The dataflow's *element-wise* ``Write`` steps (operand/constant
        loading, issued by the controller ahead of time) form the *load*
        stage; every other step — including step 15's sum broadcast, which
        is a ``Write`` but depends on the same batch's reduction — forms the
        *compute* stage that owns the match lines.  Batch ``k + 1``'s load
        overlaps batch ``k``'s compute, giving the classic two-stage
        pipeline makespan ``load + compute + (n - 1) * max(load, compute)``.
        """
        check_positive_int(num_batches, "num_batches")
        check_positive_int(batch, "batch")
        per_head = self._cost_mapping(sequence_length).cost()
        load = sum(
            s.cost.latency_s
            for s in per_head.steps
            if s.step.kind is StepKind.WRITE and s.step.elementwise
        )
        compute = per_head.latency_s - load
        pipelined = load + compute + (num_batches - 1) * max(load, compute)
        sequential = num_batches * (load + compute)
        return ClusterSchedule(
            num_batches=num_batches,
            load_latency_s=load,
            compute_latency_s=compute,
            latency_s=pipelined,
            sequential_latency_s=sequential,
            energy_j=per_head.energy_j * self.num_heads * batch * num_batches,
        )

    def _cost_mapping(self, sequence_length: Optional[int]) -> SoftmAPMapping:
        """A mapping sized for an (optional) runtime sequence length."""
        if sequence_length is None or sequence_length == self.sequence_length:
            return self._head_mappings[0]
        check_positive_int(sequence_length, "sequence_length")
        if sequence_length > self.sequence_length:
            raise ValueError(
                f"sequence length {sequence_length} exceeds the provisioned "
                f"maximum {self.sequence_length}"
            )
        return SoftmAPMapping(
            precision=self.precision,
            sequence_length=sequence_length,
            words_per_row=self.words_per_row,
            columns=self.columns,
            tech=self.tech,
            division=self.division,
            clip_threshold=self.clip_threshold,
            backend=self.backend,
        )
