"""Golden regression pins for the paper tables.

Every constant below was produced by the seed code base; the tests exist so
that future refactors (backend rewrites, cost-model cleanups) cannot
silently drift the numbers the paper reproduction reports.  If one of these
fails, either the change is a bug or the golden must be *deliberately*
updated with a note in EXPERIMENTS/CHANGES.
"""

import pytest

from repro.experiments.table2_runtime_formulas import run_table2
from repro.quant.precision import PrecisionConfig, table_i

#: Table I derived widths for the delta = 0 (vcorr = M) column family,
#: exactly as the seed produces them (N fixed at 8 for the width rows).
TABLE1_GOLDEN_DELTA0 = {
    4: {"M": 4, "v": 4, "vstable": 4, "vln2": 4, "vb": 4, "vc": 8,
        "vcorr": 4, "(vcorr+vb)^2+vc": 11, "vapprox": 10, "N": 8, "sum": 18},
    6: {"M": 6, "v": 6, "vstable": 6, "vln2": 4, "vb": 6, "vc": 12,
        "vcorr": 6, "(vcorr+vb)^2+vc": 15, "vapprox": 12, "N": 8, "sum": 20},
    8: {"M": 8, "v": 8, "vstable": 8, "vln2": 4, "vb": 8, "vc": 16,
        "vcorr": 8, "(vcorr+vb)^2+vc": 19, "vapprox": 14, "N": 8, "sum": 22},
}

#: ``sum`` width at N = 16 for every (M, vcorr_delta) pair of Table I.
TABLE1_GOLDEN_SUM_N16 = {
    (4, 0): 26, (6, 0): 28, (8, 0): 30,
    (4, 1): 28, (6, 1): 30, (8, 1): 32,
    (4, 2): 30, (6, 2): 32, (8, 2): 34,
}

#: Table II formula cycles per (operation, M), seed-produced.
TABLE2_GOLDEN_CYCLES = {
    ("addition", 4): 45, ("subtraction", 4): 45,
    ("multiplication", 4): 144, ("reduction", 4): 121,
    ("matrix-matrix multiplication", 4): 198,
    ("addition", 6): 67, ("subtraction", 6): 67,
    ("multiplication", 6): 312, ("reduction", 6): 141,
    ("matrix-matrix multiplication", 6): 366,
    ("addition", 8): 89, ("subtraction", 8): 89,
    ("multiplication", 8): 544, ("reduction", 8): 161,
    ("matrix-matrix multiplication", 8): 598,
}


class TestTable1Golden:
    @pytest.mark.parametrize("m", [4, 6, 8])
    def test_delta0_widths_pinned(self, m):
        config = PrecisionConfig(input_bits=m, vcorr_delta=0, sum_extra_bits=8)
        assert config.as_dict() == TABLE1_GOLDEN_DELTA0[m]

    def test_sum_widths_at_n16_pinned(self):
        produced = {
            (entry.config.input_bits, entry.config.vcorr_delta):
                entry.widths["sum(N=16)"]
            for entry in table_i()
        }
        assert produced == TABLE1_GOLDEN_SUM_N16

    def test_best_precision_result_column(self):
        best = PrecisionConfig(6, 0, 16)
        assert best.result_column_bits == 24  # the paper's 2M + 12


class TestTable2Golden:
    def test_formula_cycles_pinned(self):
        produced = {
            (row.operation, row.precision): row.formula_cycles
            for row in run_table2(simulate=False)
        }
        assert produced == TABLE2_GOLDEN_CYCLES

    #: Cycles the functional simulator issues (per operation, M), pinned
    #: from the seed's bit-serial backend.  The formulas include operand
    #: write/result-handling terms the functional measurement excludes, so
    #: these differ from ``TABLE2_GOLDEN_CYCLES`` by design.
    TABLE2_GOLDEN_SIMULATED = {
        ("addition", 4): 33, ("subtraction", 4): 33, ("multiplication", 4): 220,
        ("addition", 6): 49, ("subtraction", 6): 49, ("multiplication", 6): 474,
        ("addition", 8): 65, ("subtraction", 8): 65, ("multiplication", 8): 824,
    }

    @pytest.mark.parametrize("backend", ["reference", "vectorized"])
    def test_simulated_cycles_pinned_on_both_backends(self, backend):
        """Both backends must issue exactly the seed's simulated cycle
        counts — the vectorized engine is cycle-accounting-exact."""
        produced = {
            (row.operation, row.precision): row.simulated_cycles
            for row in run_table2(simulate=True, backend=backend)
            if row.simulated_cycles is not None
        }
        assert produced == self.TABLE2_GOLDEN_SIMULATED
