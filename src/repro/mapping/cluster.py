"""Functional multi-AP cluster executing batched softmax as fused passes.

The paper deploys one AP per attention head (Fig. 4).  Up to PR 3 the
functional form of that deployment interpreted the dataflow head by head:
``num_heads`` identical :class:`~repro.mapping.softmap.SoftmAPMapping`
instances, one Python-level ``execute_functional_batch`` call per head per
layer per pass.  The AP itself is word-parallel across rows, so that loop
was pure simulator overhead, not modeled hardware.

:class:`ApCluster` now executes through the compiled-plan layer
(:mod:`repro.mapping.plan`): **one** shared mapping/plan (the heads are
structurally identical, so memory no longer scales with head count) lowers
the dataflow once, and a ``(batch, heads, seq)`` score tensor runs as one
fused, head-major row space — heads become extra row segments of a single
wide engine invocation, bit-identical to the per-head loop.  When a
``pass_row_budget`` is set, the planner (:func:`repro.mapping.plan.plan_passes`)
tiles the workload into passes and :meth:`ApCluster.schedule` — the
two-stage load/compute pipeline — consumes the pass list, which also opens
sequences longer than the per-head provisioned length (the fused row space
spans the whole cluster's rows, not one head's).

Concurrency accounting
----------------------
The cluster-level cost follows the paper's Section V-B assumption that all
per-head APs work concurrently on their own share of the score tensor:

* **latency** — the maximum over heads.  The heads are structurally
  identical, so the critical path equals the per-head pass latency.
* **energy** — the sum over heads: every AP switches its own CAM.
* **batch** — stacking ``batch`` score vectors in one AP adds rows, which
  scales energy linearly but leaves the cycle count unchanged (the AP is
  word-parallel; only the segmented reduction tree depends on the segment
  length, not on the number of segments).

Multi-batch schedule
--------------------
:meth:`ApCluster.schedule` models a two-stage pipeline over consecutive
batches (or planner passes): the operand/constant *load* phase of batch
``k + 1`` (the dataflow's element-wise ``Write`` steps, issued by the
controller ahead of time) overlaps the *compute* phase of batch ``k``
(everything else — including the step-15 sum broadcast, a write that
depends on the same batch's reduction and therefore cannot be preloaded).
The steady-state initiation interval is therefore ``max(load, compute)``
and the makespan of ``n`` batches is
``load + compute + (n - 1) * max(load, compute)``.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.ap.engine import canonical_engine_name, is_plan_engine
from repro.ap.tech import TECH_16NM, TechnologyParameters
from repro.mapping.dataflow import StepKind
from repro.mapping.plan import PlanTelemetry, WorkloadPass, plan_passes
from repro.mapping.softmap import MappingCost, SoftmAPMapping
from repro.quant.precision import BEST_PRECISION, PrecisionConfig
from repro.utils.validation import check_positive_int

__all__ = ["ApCluster", "ClusterCost", "ClusterSchedule", "ClusterSoftmaxFn"]

#: Distinct (vectors, sequence_length) tilings memoised per cluster.  The
#: decode loop walks sequence lengths 1..T, so the cache is sized to hold a
#: full generation sweep of typical depth plus the prefill shapes.
_PASS_CACHE_SIZE = 4096


@dataclass(frozen=True)
class ClusterCost:
    """Aggregate cost of one batched softmax pass over the whole cluster.

    Attributes
    ----------
    per_head:
        Cost of one pass on one per-head AP (all heads are identical).
    num_heads / batch:
        Cluster width and number of score vectors stacked per head.
    latency_s / cycles:
        Critical path: the maximum over the concurrent heads (equal to the
        per-head pass because the heads are structurally identical).
    energy_j:
        Sum over heads, scaled by the ``batch`` rows each AP activates.
    area_mm2:
        Total silicon: heads x per-AP area.
    """

    per_head: MappingCost
    num_heads: int
    batch: int
    latency_s: float
    cycles: float
    energy_j: float
    area_mm2: float


@dataclass(frozen=True)
class ClusterSchedule:
    """Pipelined execution of several consecutive batches on the cluster.

    ``latency_s`` is the pipelined makespan
    ``load + compute + (n - 1) * max(load, compute)``; ``sequential_latency_s``
    is the unpipelined reference ``n * (load + compute)``.
    """

    num_batches: int
    load_latency_s: float
    compute_latency_s: float
    latency_s: float
    sequential_latency_s: float
    energy_j: float

    @property
    def pipeline_speedup(self) -> float:
        """Sequential / pipelined makespan (>= 1)."""
        return self.sequential_latency_s / self.latency_s

    @property
    def throughput_passes_per_s(self) -> float:
        """Steady-state cluster passes per second."""
        return self.num_batches / self.latency_s


class ClusterSoftmaxFn:
    """Batched attention-softmax adapter backed by an :class:`ApCluster`.

    The callable implements the extended ``softmax_fn`` contract of
    :class:`~repro.llm.model.TinyLlamaModel` (``supports_batch = True``): it
    maps a head-major ``(rows, seq)`` score matrix — ``rows`` must be a
    multiple of the cluster's head count, with row ``h * batch + b`` holding
    batch row ``b`` of head ``h`` — to probabilities of the same shape,
    zeroing every position at or beyond the row's ``valid_lengths`` entry.
    A plain 1-D score vector is also accepted and runs on head 0.

    Since the unified runtime API landed this class is a thin shim over
    :meth:`ApCluster.as_backend`: every call delegates to the cluster's
    :class:`~repro.runtime.backend.ApClusterBackend`, whose ``telemetry``
    accumulates the cost of each pass (reachable via
    :meth:`runtime_backend`).
    """

    #: Marks the extended (rows, seq) -> (rows, seq) softmax_fn contract.
    supports_batch = True

    def __init__(self, cluster: "ApCluster", backend: Optional[str] = None) -> None:
        self.cluster = cluster
        # Eager, with a "did you mean": an engine typo must fail here, not
        # on the first attention row deep inside a perplexity evaluation.
        self.backend = None if backend is None else canonical_engine_name(backend)
        self._runtime_backend = None

    def runtime_backend(self):
        """The :class:`~repro.runtime.backend.ApClusterBackend` executing
        the calls (built lazily; runtime imports this module)."""
        if self._runtime_backend is None:
            self._runtime_backend = self.cluster.as_backend(engine=self.backend)
        return self._runtime_backend

    def __call__(
        self,
        scores: np.ndarray,
        valid_lengths: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        scores = np.asarray(scores, dtype=np.float64)
        if scores.ndim > 2:
            # The model's softmax_fn contract is (rows, seq); the backend's
            # run() additionally accepts (batch, heads, seq) tensors, which
            # this adapter deliberately does not expose.
            raise ValueError("cluster softmax_fn expects a (rows, seq) matrix")
        return self.runtime_backend().run(
            scores, valid_lengths=valid_lengths
        ).probabilities


class ApCluster:
    """A cluster of per-head functional APs for multi-head attention softmax.

    Parameters
    ----------
    num_heads:
        Number of APs (one per attention head).  The heads are structurally
        identical, so they share **one** mapping/plan; only the cost
        aggregation multiplies by the head count.
    precision / words_per_row / columns / tech / division / clip_threshold:
        Forwarded to the shared :class:`~repro.mapping.softmap.SoftmAPMapping`.
    sequence_length:
        The sequence length the cluster is provisioned for; longer score
        tensors are rejected (shorter ones are fine — plans are compiled
        per runtime length and the cost view accepts a runtime length)
        unless an explicit ``pass_row_budget`` re-provisions capacity.
    backend:
        Default functional engine; ``"vectorized"`` because the cluster is
        the model-scale fast path (``"reference"`` validates bit-exactness).
        Validated eagerly with a "did you mean" suggestion.
    pass_row_budget:
        Optional maximum number of AP words one fused pass may occupy.
        ``None`` (default) executes any workload as a single fused pass
        with sequences capped at the provisioned length.  With a budget,
        the planner tiles the workload into passes consumed by the
        two-stage :meth:`schedule` pipeline, and sequences up to the budget
        are accepted even beyond the per-head provisioned length — the
        fused row space spans the whole cluster, not one head's AP.
    pass_workers:
        Optional worker-thread count for executing independent planner
        passes concurrently (each pass owns a disjoint slice of the output,
        so results stay bit-identical).  ``None``/``1`` keeps the serial
        loop.  Only engines with a thread-safe plan executor benefit — the
        compiled engine's arena pool hands each worker its own scratch.
        Simulator wall-clock only; the analytical cost model is unchanged.
    """

    def __init__(
        self,
        num_heads: int,
        precision: PrecisionConfig = BEST_PRECISION,
        sequence_length: int = 2048,
        words_per_row: int = 2,
        columns: int = 64,
        tech: TechnologyParameters = TECH_16NM,
        division: str = "restoring",
        clip_threshold: Optional[float] = None,
        backend: str = "vectorized",
        pass_row_budget: Optional[int] = None,
        pass_workers: Optional[int] = None,
    ) -> None:
        self.num_heads = check_positive_int(num_heads, "num_heads")
        self.sequence_length = check_positive_int(sequence_length, "sequence_length")
        self.backend = canonical_engine_name(backend)
        if pass_row_budget is not None:
            check_positive_int(pass_row_budget, "pass_row_budget")
        self.pass_row_budget = pass_row_budget
        if pass_workers is not None:
            check_positive_int(pass_workers, "pass_workers")
        self.pass_workers = pass_workers
        #: Passes executed on worker threads by the most recent
        #: :meth:`execute` call (0 when the serial loop ran).
        self.last_threaded_passes = 0
        # plan_passes output per (vectors, sequence_length): the tiling is
        # pure in its inputs, and the single-pass fast path dominates the
        # decode loop (one lookup per token instead of re-planning).
        self._pass_cache: Dict[Tuple[int, int], List[WorkloadPass]] = {}
        # One shared mapping/plan: heads are structurally identical, so the
        # lowered program and its cost are compiled once for the whole
        # cluster instead of once per head.
        self.mapping = SoftmAPMapping(
            precision=precision,
            sequence_length=sequence_length,
            words_per_row=words_per_row,
            columns=columns,
            tech=tech,
            division=division,
            clip_threshold=clip_threshold,
            backend=backend,
        )
        self.precision = precision
        self.words_per_row = words_per_row
        self.columns = columns
        self.tech = tech
        self.division = self.mapping.division
        self.clip_threshold = clip_threshold

    # ------------------------------------------------------------------ #
    # Fused functional execution                                           #
    # ------------------------------------------------------------------ #
    def head_mapping(self, head: int) -> SoftmAPMapping:
        """The dataflow mapping owning shard ``head``.

        All heads share one mapping (they are structurally identical); the
        index is still validated so head bookkeeping errors surface.
        """
        if not 0 <= head < self.num_heads:
            raise IndexError(f"head {head} out of range ({self.num_heads} heads)")
        return self.mapping

    def workload_passes(self, vectors: int, sequence_length: int) -> List[WorkloadPass]:
        """The planner's pass list for ``vectors`` softmax vectors (cached).

        Every ``execute`` call used to re-derive the tiling through
        :func:`~repro.mapping.plan.plan_passes` even when the workload fits
        a single pass; the pass list is pure in ``(vectors, sequence_length,
        row_budget)``, so it is memoised on the cluster instead.
        """
        key = (vectors, sequence_length)
        passes = self._pass_cache.get(key)
        if passes is None:
            passes = plan_passes(
                vectors, sequence_length, row_budget=self.pass_row_budget
            )
            if len(self._pass_cache) >= _PASS_CACHE_SIZE:
                self._pass_cache.pop(next(iter(self._pass_cache)))
            self._pass_cache[key] = passes
        return passes

    def plan_telemetry(
        self,
        vectors: int,
        sequence_length: int,
        engine: Optional[str] = None,
        wall_seconds: float = 0.0,
        threaded_passes: int = 0,
    ) -> PlanTelemetry:
        """Plan-level telemetry describing one execution.

        ``fused`` reports whether a registered plan executor actually runs
        for this shape/engine combination — ``False`` when the reference
        engine interprets the program on the AP or the layout is not
        packable.  ``wall_seconds``/``threaded_passes`` let the caller
        attach the measured execution they describe; the arena stats come
        from the plan's buffer-liveness pass and the engine's executor.
        """
        engine = canonical_engine_name(engine) if engine else self.backend
        passes = self.workload_passes(vectors, sequence_length)
        plan = self.mapping.plan(sequence_length=sequence_length)
        fused = is_plan_engine(engine) and plan.packable
        return PlanTelemetry(
            fused=fused,
            engine=engine,
            passes=len(passes),
            vectors=vectors,
            segment_length=sequence_length,
            words_per_pass=tuple(p.words for p in passes),
            arena_slots=plan.buffers.num_slots if fused else 0,
            arena_bytes=plan.arena_bytes(engine),
            threaded_passes=threaded_passes,
            wall_seconds=wall_seconds,
            row_budget=self.pass_row_budget or 0,
        )

    def execute(
        self,
        scores: np.ndarray,
        valid_lengths: Optional[np.ndarray] = None,
        backend: Optional[str] = None,
    ) -> np.ndarray:
        """Execute a ``(batch, heads, seq)`` score tensor on the cluster.

        The tensor is reshaped into one head-major row space (row
        ``h * batch + b`` holds batch row ``b`` of head ``h``) and every
        planner pass runs as **one** fused plan execution — heads are row
        segments, not Python iterations.  Results are bit-identical to the
        historical per-head loop (each vector's program is independent).
        ``valid_lengths`` may be ``(batch,)`` (shared by all heads) or
        ``(batch, heads)``; see
        :meth:`~repro.mapping.plan.ExecutionPlan.execute` for semantics.
        """
        scores = np.asarray(scores, dtype=np.float64)
        if scores.ndim != 3:
            raise ValueError(
                "ApCluster.execute expects a (batch, heads, seq) score tensor"
            )
        batch, heads, seq = scores.shape
        if heads != self.num_heads:
            raise ValueError(
                f"score tensor has {heads} heads, cluster has {self.num_heads}"
            )
        self._check_capacity(seq)
        flat_lengths: Optional[np.ndarray] = None
        if valid_lengths is not None:
            per_head_lengths = np.asarray(valid_lengths, dtype=np.int64)
            if per_head_lengths.ndim == 1:
                per_head_lengths = np.broadcast_to(
                    per_head_lengths[:, None], (batch, heads)
                )
            if per_head_lengths.shape != (batch, heads):
                raise ValueError(
                    f"valid_lengths must have shape ({batch},) or "
                    f"({batch}, {heads}), got {np.asarray(valid_lengths).shape}"
                )
            flat_lengths = per_head_lengths.T.reshape(-1)  # head-major rows
        stacked = scores.transpose(1, 0, 2).reshape(heads * batch, seq)
        fused = self._execute_rows(stacked, flat_lengths, backend=backend)
        return fused.reshape(heads, batch, seq).transpose(1, 0, 2)

    def execute_rows(
        self,
        rows: np.ndarray,
        valid_lengths: Optional[np.ndarray] = None,
        backend: Optional[str] = None,
    ) -> np.ndarray:
        """Execute an arbitrary head-major ``(vectors, seq)`` row space.

        This is the serving layer's admission seam: a coalesced batch of
        concurrent requests forms one fused row space whose row count is
        *not* tied to the cluster's head count — vectors are row segments
        of the shared plan, and the planner tiles them against the
        ``pass_row_budget`` exactly as :meth:`execute` does for
        ``(batch, heads, seq)`` tensors.  Each vector's program is
        independent, so the result is bit-identical to executing every
        vector (or any sub-batch) alone.
        """
        rows = np.asarray(rows, dtype=np.float64)
        if rows.ndim != 2:
            raise ValueError(
                "ApCluster.execute_rows expects a (vectors, seq) row space"
            )
        self._check_capacity(rows.shape[1])
        lengths: Optional[np.ndarray] = None
        if valid_lengths is not None:
            lengths = np.asarray(valid_lengths, dtype=np.int64).reshape(-1)
            if lengths.shape != (rows.shape[0],):
                raise ValueError(
                    f"valid_lengths must hold one entry per row "
                    f"({rows.shape[0]}), got shape "
                    f"{np.asarray(valid_lengths).shape}"
                )
        return self._execute_rows(rows, lengths, backend=backend)

    def _execute_rows(
        self,
        rows: np.ndarray,
        valid_lengths: Optional[np.ndarray],
        backend: Optional[str] = None,
    ) -> np.ndarray:
        """Run a head-major ``(vectors, seq)`` row space pass by pass.

        Planner passes own disjoint row ranges of the output, so with
        ``pass_workers`` set they execute on a thread pool — bit-identical
        to the serial loop by construction.
        """
        passes = self.workload_passes(rows.shape[0], rows.shape[1])
        self.last_threaded_passes = 0
        if len(passes) == 1:
            return self.mapping.execute_functional_batch(
                rows, backend=backend, valid_lengths=valid_lengths
            )
        probabilities = np.empty_like(rows)

        def run_tile(tile: WorkloadPass) -> None:
            chunk = slice(tile.start, tile.start + tile.vectors)
            probabilities[chunk] = self.mapping.execute_functional_batch(
                rows[chunk],
                backend=backend,
                valid_lengths=(
                    None if valid_lengths is None else valid_lengths[chunk]
                ),
            )

        workers = min(self.pass_workers or 1, len(passes))
        if workers > 1:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                # list() propagates the first worker exception, if any.
                list(pool.map(run_tile, passes))
            self.last_threaded_passes = len(passes)
        else:
            for tile in passes:
                run_tile(tile)
        return probabilities

    def _check_capacity(self, sequence_length: int) -> None:
        """Reject sequences beyond the provisioned capacity.

        With a ``pass_row_budget`` the planner is the capacity authority
        (it rejects segments that do not fit a pass); otherwise the
        per-head provisioned length applies, as it always has.
        """
        if self.pass_row_budget is None and sequence_length > self.sequence_length:
            raise ValueError(
                f"sequence length {sequence_length} exceeds the provisioned "
                f"maximum {self.sequence_length}"
            )

    def softmax_fn(self, backend: Optional[str] = None) -> ClusterSoftmaxFn:
        """A batched attention-softmax callable for the LLM substrate."""
        return ClusterSoftmaxFn(self, backend=backend)

    def as_backend(self, engine: Optional[str] = None):
        """This cluster as a :class:`~repro.runtime.backend.SoftmaxBackend`.

        The returned :class:`~repro.runtime.backend.ApClusterBackend` wraps
        *this* cluster (no mappings are rebuilt) and exposes the uniform
        ``run(scores) -> SoftmaxResult`` contract — probabilities plus the
        concurrency-aware cost and plan telemetry of every pass.  ``engine``
        optionally overrides the functional engine per backend
        (``"reference"``/``"vectorized"``).
        """
        # Imported lazily: repro.runtime.backend imports this module.
        from repro.runtime.backend import ApClusterBackend

        return ApClusterBackend.from_cluster(self, engine=engine)

    # ------------------------------------------------------------------ #
    # Concurrency-aware analytical cost                                    #
    # ------------------------------------------------------------------ #
    def cost(
        self, sequence_length: Optional[int] = None, batch: int = 1
    ) -> ClusterCost:
        """Cluster-level cost of one (possibly batched) softmax pass.

        Latency is the max over the concurrently working heads, energy the
        sum; stacking ``batch`` vectors per head multiplies the active rows
        (energy) but not the cycle count (see the module docstring).
        """
        check_positive_int(batch, "batch")
        per_head = self._per_head_cost(sequence_length)
        return ClusterCost(
            per_head=per_head,
            num_heads=self.num_heads,
            batch=batch,
            latency_s=per_head.latency_s,
            cycles=per_head.cycles,
            energy_j=per_head.energy_j * self.num_heads * batch,
            area_mm2=per_head.area_mm2 * self.num_heads,
        )

    def schedule(
        self,
        num_batches: int,
        sequence_length: Optional[int] = None,
        batch: int = 1,
    ) -> ClusterSchedule:
        """Pipelined schedule of ``num_batches`` consecutive cluster passes.

        The dataflow's *element-wise* ``Write`` steps (operand/constant
        loading, issued by the controller ahead of time) form the *load*
        stage; every other step — including step 15's sum broadcast, which
        is a ``Write`` but depends on the same batch's reduction — forms the
        *compute* stage that owns the match lines.  Batch ``k + 1``'s load
        overlaps batch ``k``'s compute, giving the classic two-stage
        pipeline makespan ``load + compute + (n - 1) * max(load, compute)``.
        The planner's pass list feeds this directly: a tiled fused workload
        of ``k`` passes schedules as ``schedule(k)``.
        """
        check_positive_int(num_batches, "num_batches")
        check_positive_int(batch, "batch")
        per_head = self._per_head_cost(sequence_length)
        load = sum(
            s.cost.latency_s
            for s in per_head.steps
            if s.step.kind is StepKind.WRITE and s.step.elementwise
        )
        compute = per_head.latency_s - load
        pipelined = load + compute + (num_batches - 1) * max(load, compute)
        sequential = num_batches * (load + compute)
        return ClusterSchedule(
            num_batches=num_batches,
            load_latency_s=load,
            compute_latency_s=compute,
            latency_s=pipelined,
            sequential_latency_s=sequential,
            energy_j=per_head.energy_j * self.num_heads * batch * num_batches,
        )

    def _per_head_cost(self, sequence_length: Optional[int]) -> MappingCost:
        """Per-head pass cost for an (optional) runtime sequence length.

        Served from the shared mapping's plan cache, so repeated costing
        (one call per layer in the perplexity path) compiles nothing.
        """
        if sequence_length is not None:
            check_positive_int(sequence_length, "sequence_length")
            if (
                sequence_length > self.sequence_length
                and self.pass_row_budget is None
            ):
                raise ValueError(
                    f"sequence length {sequence_length} exceeds the "
                    f"provisioned maximum {self.sequence_length}"
                )
        return self.mapping.plan(sequence_length=sequence_length).cost()
