"""SoftmAP reproduction library.

A from-scratch Python reproduction of *SoftmAP: Software-Hardware Co-Design
for Integer-Only Softmax on Associative Processors* (DATE 2025), including:

* the integer-only softmax approximation (:mod:`repro.softmax`,
  :mod:`repro.quant`);
* a functional and analytical Associative Processor simulator
  (:mod:`repro.ap`) with two interchangeable execution backends — the
  bit-serial ``"reference"`` ground truth and the bit-identical, much
  faster ``"vectorized"`` packed-word engine
  (:class:`~repro.ap.engine.BitPlaneEngine`); batched ``(batch, seq)``
  softmax tensors map onto the AP in one call via
  :meth:`~repro.mapping.softmap.SoftmAPMapping.execute_functional_batch`
  or :meth:`~repro.softmax.integer_softmax.IntegerSoftmax.forward_on_ap`;
* the SoftmAP dataflow mapping and hardware characterization
  (:mod:`repro.mapping`);
* analytical GPU baselines for A100 / RTX3090 (:mod:`repro.gpu`);
* a numpy LLM substrate used for the perplexity sensitivity study
  (:mod:`repro.nn`, :mod:`repro.llm`);
* an experiment harness regenerating every table and figure of the paper
  (:mod:`repro.experiments`).
"""

__version__ = "1.0.0"

from repro.quant import PrecisionConfig, BEST_PRECISION
from repro.softmax import IntegerSoftmax, integer_softmax, softmax

__all__ = [
    "__version__",
    "PrecisionConfig",
    "BEST_PRECISION",
    "IntegerSoftmax",
    "integer_softmax",
    "softmax",
]
