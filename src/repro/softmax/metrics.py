"""Error metrics between approximated and reference softmax outputs.

The paper evaluates the approximation end-to-end via perplexity; these
lower-level metrics are used by the test suite and by the direct
approximation-error experiment to quantify how far the integer softmax
output is from the floating-point softmax for a given precision
configuration.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "max_abs_error",
    "mean_abs_error",
    "mean_squared_error",
    "kl_divergence",
    "cosine_similarity",
]


def _as_pair(approx: np.ndarray, reference: np.ndarray):
    approx = np.asarray(approx, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    if approx.shape != reference.shape:
        raise ValueError(
            f"shape mismatch: approx {approx.shape} vs reference {reference.shape}"
        )
    return approx, reference


def max_abs_error(approx: np.ndarray, reference: np.ndarray) -> float:
    """Maximum absolute elementwise error."""
    approx, reference = _as_pair(approx, reference)
    if approx.size == 0:
        return 0.0
    return float(np.max(np.abs(approx - reference)))


def mean_abs_error(approx: np.ndarray, reference: np.ndarray) -> float:
    """Mean absolute elementwise error."""
    approx, reference = _as_pair(approx, reference)
    if approx.size == 0:
        return 0.0
    return float(np.mean(np.abs(approx - reference)))


def mean_squared_error(approx: np.ndarray, reference: np.ndarray) -> float:
    """Mean squared elementwise error."""
    approx, reference = _as_pair(approx, reference)
    if approx.size == 0:
        return 0.0
    return float(np.mean((approx - reference) ** 2))


def kl_divergence(
    reference: np.ndarray, approx: np.ndarray, axis: int = -1, eps: float = 1e-12
) -> float:
    """Mean KL divergence ``KL(reference || approx)`` over all distributions.

    Both inputs are renormalised along ``axis`` (the integer softmax output
    can sum to slightly less than one because of the floor division) and
    clamped away from zero before taking logarithms.
    """
    approx, reference = _as_pair(approx, reference)
    ref = np.clip(reference, eps, None)
    ref = ref / np.sum(ref, axis=axis, keepdims=True)
    app = np.clip(approx, eps, None)
    app = app / np.sum(app, axis=axis, keepdims=True)
    kl = np.sum(ref * (np.log(ref) - np.log(app)), axis=axis)
    return float(np.mean(kl))


def cosine_similarity(approx: np.ndarray, reference: np.ndarray) -> float:
    """Cosine similarity between the flattened tensors."""
    approx, reference = _as_pair(approx, reference)
    a = approx.ravel()
    b = reference.ravel()
    denom = np.linalg.norm(a) * np.linalg.norm(b)
    if denom == 0:
        return 1.0 if np.allclose(a, b) else 0.0
    return float(np.dot(a, b) / denom)
