"""Table V — highest normalized energy-delay-product ratios per model/GPU."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.experiments.normalized_comparison import (
    ComparisonPoint,
    run_normalized_comparison,
)
from repro.runtime.registry import Experiment, register
from repro.utils.tables import TextTable

__all__ = ["Table5Entry", "Table5Experiment", "run_table5", "render_table5"]


@dataclass(frozen=True)
class Table5Entry:
    """Highest EDP ratio for one (model, GPU) pair."""

    model: str
    gpu: str
    highest_edp_ratio: float
    at_sequence_length: int
    at_batch_size: int


def run_table5(points: Optional[List[ComparisonPoint]] = None) -> List[Table5Entry]:
    """Find the maximum normalized EDP per (model, GPU) pair."""
    if points is None:
        points = run_normalized_comparison()
    best: Dict[Tuple[str, str], ComparisonPoint] = {}
    for point in points:
        key = (point.model, point.gpu)
        if key not in best or point.normalized_edp > best[key].normalized_edp:
            best[key] = point
    entries = [
        Table5Entry(
            model=point.model,
            gpu=point.gpu,
            highest_edp_ratio=point.normalized_edp,
            at_sequence_length=point.sequence_length,
            at_batch_size=point.batch_size,
        )
        for point in best.values()
    ]
    return sorted(entries, key=lambda e: (e.gpu, e.model))


def render_table5(entries: List[Table5Entry]) -> str:
    """Render Table V."""
    table = TextTable(
        ["GPU", "model", "highest EDP_GPU / EDP_AP", "at sequence", "at batch"],
        title="Table V — highest normalized EDP ratios",
    )
    for entry in entries:
        table.add_row(
            [
                entry.gpu,
                entry.model,
                entry.highest_edp_ratio,
                entry.at_sequence_length,
                entry.at_batch_size,
            ]
        )
    return table.render()


@register("table5")
class Table5Experiment(Experiment):
    """Registry wrapper: Table V through the uniform runtime contract."""

    title = "Table V"
    description = "highest normalized EDP ratio per (model, GPU) pair"
    row_type = Table5Entry

    def run(self, config=None):
        return run_table5(**self._config_kwargs(config))

    def render(self, result):
        return render_table5(result)
