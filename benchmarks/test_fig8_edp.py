"""Benchmark regenerating Fig. 8 — normalized energy-delay product
(Llama2-13b shown in the paper; all models produced here)."""

from repro.experiments import render_comparison  # registry: "figs6_8"


def test_fig8_normalized_edp(benchmark, comparison_points):
    points_13b = [p for p in comparison_points if p.model == "Llama2-13b"]
    benchmark(lambda: [p.normalized_edp for p in points_13b])
    print()
    print(render_comparison(points_13b, "edp"))
    # Paper: the normalized EDP is always greater than 1 — the AP always has
    # the best energy-delay product.
    assert all(p.normalized_edp > 1 for p in comparison_points)
