"""Ablation benchmarks for the design choices called out in DESIGN.md §6.

* Barrett reduction vs exact division for the range-reduction quotient.
* Restoring division vs reciprocal-multiply for dataflow step 16.
* One vs two words packed per AP row.
"""

import numpy as np

from repro.quant.precision import BEST_PRECISION
from repro.mapping.softmap import SoftmAPMapping
from repro.softmax.barrett import BarrettReducer
from repro.softmax.integer_softmax import IntegerSoftmax


def test_ablation_barrett_vs_exact(benchmark):
    """Barrett reduction (multiply + shift) matches exact division on the
    operand range Algorithm 1 uses, with and without the correction step."""
    reducer = BarrettReducer(divisor=6, shift_bits=12, correct=False)
    z = np.arange(0, 64)

    def run():
        return np.asarray(reducer.quotient(z))

    estimate = benchmark(run)
    exact = z // 6
    # The raw estimate never overshoots and undershoots by at most one (at
    # exact multiples of the divisor); the correction step removes even that.
    assert np.all(estimate <= exact)
    assert np.all(exact - estimate <= 1)
    corrected = BarrettReducer(divisor=6, shift_bits=12, correct=True)
    assert np.array_equal(np.asarray(corrected.quotient(z)), exact)

    with_correction = IntegerSoftmax(BEST_PRECISION, barrett_correction=True)
    without_correction = IntegerSoftmax(BEST_PRECISION, barrett_correction=False)
    x = np.random.default_rng(0).normal(0, 2, (4, 256))
    difference = np.max(np.abs(with_correction(x) - without_correction(x)))
    assert difference < 0.05


def test_ablation_division_mode(benchmark):
    """Reciprocal-multiply trades the expensive bit-serial restoring division
    for one multiplication, cutting the pass latency substantially."""
    restoring = SoftmAPMapping(BEST_PRECISION, 4096, division="restoring")
    reciprocal = SoftmAPMapping(BEST_PRECISION, 4096, division="reciprocal")
    cost_restoring = benchmark(restoring.cost)
    cost_reciprocal = reciprocal.cost()
    assert cost_reciprocal.cycles < 0.7 * cost_restoring.cycles


def test_ablation_words_per_row(benchmark):
    """Packing two words per row halves the rows (and the area) at the price
    of running every element-wise step twice."""
    packed = SoftmAPMapping(BEST_PRECISION, 2048, words_per_row=2)
    unpacked = SoftmAPMapping(BEST_PRECISION, 2048, words_per_row=1)
    cost_packed = benchmark(packed.cost)
    cost_unpacked = unpacked.cost()
    assert cost_packed.rows == cost_unpacked.rows // 2
    assert cost_packed.cycles > cost_unpacked.cycles
    assert packed.cost_model.area_mm2() < unpacked.cost_model.area_mm2()
