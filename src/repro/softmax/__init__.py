"""Integer-only softmax (the paper's software contribution).

Modules
-------
:mod:`repro.softmax.reference`
    Numerically stable floating-point softmax / log-softmax used as the
    accuracy baseline ("FP Softmax" in the paper's tables).
:mod:`repro.softmax.barrett`
    Barrett reduction — computing a quotient/remainder by a fixed divisor
    using only multiplications and shifts (line 6/7 of Algorithm 1).
:mod:`repro.softmax.polynomial`
    The I-BERT second-order integer polynomial approximation of ``exp`` on
    ``(-ln 2, 0]`` (lines 8-11 of Algorithm 1).
:mod:`repro.softmax.integer_softmax`
    :class:`IntegerSoftmax` — the full Algorithm 1 pipeline with a
    mixed-precision :class:`~repro.quant.precision.PrecisionConfig`,
    saturating sum accumulator and integer normalisation.
:mod:`repro.softmax.metrics`
    Error metrics between the approximated and reference softmax.

Both the floating-point reference and the integer pipeline are reachable
through the unified runtime API (:mod:`repro.runtime`) as the ``"float"``
and ``"integer"`` softmax backends;
``resolve_backend("integer", precision=...)`` wraps
:class:`~repro.softmax.integer_softmax.IntegerSoftmax` behind the uniform
``run(scores) -> SoftmaxResult`` contract.
"""

from repro.softmax.reference import softmax, log_softmax, float_iexp_softmax
from repro.softmax.barrett import BarrettReducer
from repro.softmax.polynomial import IExpPolynomial, IExpConstants
from repro.softmax.integer_softmax import (
    IntegerSoftmax,
    IntegerSoftmaxResult,
    integer_softmax,
)
from repro.softmax.metrics import (
    max_abs_error,
    mean_abs_error,
    mean_squared_error,
    kl_divergence,
    cosine_similarity,
)

__all__ = [
    "softmax",
    "log_softmax",
    "float_iexp_softmax",
    "BarrettReducer",
    "IExpPolynomial",
    "IExpConstants",
    "IntegerSoftmax",
    "IntegerSoftmaxResult",
    "integer_softmax",
    "max_abs_error",
    "mean_abs_error",
    "mean_squared_error",
    "kl_divergence",
    "cosine_similarity",
]
