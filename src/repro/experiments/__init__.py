"""Experiment harness: one module per table/figure of the paper.

Every experiment exposes a ``run(...)`` function returning a plain data
structure plus a ``render(...)`` helper producing the table the paper
reports.  The benchmark suite (``benchmarks/``) wraps these functions with
pytest-benchmark so that regenerating an artefact is a single test
invocation, and EXPERIMENTS.md records paper-vs-measured values.
"""

from repro.experiments.fig1_softmax_proportion import (
    run_fig1_softmax_proportion,
    render_fig1,
)
from repro.experiments.table1_precisions import run_table1, render_table1
from repro.experiments.table2_runtime_formulas import run_table2, render_table2
from repro.experiments.table3_4_perplexity import (
    run_ap_cluster_equivalence,
    run_perplexity_sweep,
    run_softmax_fidelity_sweep,
    render_perplexity_table,
)
from repro.experiments.normalized_comparison import (
    ComparisonPoint,
    run_normalized_comparison,
    render_comparison,
    SEQUENCE_LENGTHS,
    BATCH_SIZES,
)
from repro.experiments.table5_edp import run_table5, render_table5
from repro.experiments.table6_related_works import run_table6, render_table6
from repro.experiments.area import run_area, render_area

__all__ = [
    "run_fig1_softmax_proportion",
    "render_fig1",
    "run_table1",
    "render_table1",
    "run_table2",
    "render_table2",
    "run_ap_cluster_equivalence",
    "run_perplexity_sweep",
    "run_softmax_fidelity_sweep",
    "render_perplexity_table",
    "ComparisonPoint",
    "run_normalized_comparison",
    "render_comparison",
    "SEQUENCE_LENGTHS",
    "BATCH_SIZES",
    "run_table5",
    "render_table5",
    "run_table6",
    "render_table6",
    "run_area",
    "render_area",
]
