"""Benchmark regenerating Table V — highest EDP ratios per model and GPU."""

from repro.runtime import get_experiment


def test_table5_highest_edp(benchmark, comparison_points):
    experiment = get_experiment("table5")
    entries = benchmark(experiment.run, {"points": comparison_points})
    print()
    print(experiment.render(entries))
    by_key = {(e.gpu, e.model): e.highest_edp_ratio for e in entries}
    # Paper: RTX3090 ratios exceed A100 ratios, 70b exceeds 7b, and the
    # maxima land at sequence length 4096 with large batches (order of
    # magnitude 10^3).
    assert by_key[("RTX3090", "Llama2-7b")] > by_key[("A100", "Llama2-7b")]
    assert by_key[("A100", "Llama2-70b")] > by_key[("A100", "Llama2-7b")]
    assert all(200 < v < 50000 for v in by_key.values())
    assert all(e.at_sequence_length == 4096 for e in entries)
