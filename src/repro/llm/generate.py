"""Autoregressive decoding with a per-layer KV cache.

Everything else in :mod:`repro.llm` is prefill-shaped — the perplexity
protocol evaluates full segments in one pass — but the deployment scenario
the paper's hardware targets is token-by-token generation.  This module
provides that path on top of the graph-free inference substrate
(:mod:`repro.llm.infer`):

**Prefill reuses the inference forward.**  The prompt runs through the
very same :func:`~repro.llm.infer._forward_batch` the perplexity path
uses, with a ``kv_sink`` collecting each layer's key/value projections, so
the cache is seeded with the exact arrays the prefill logits were computed
from.  Ragged prompt batches ride along via the existing ``valid_lengths``
grouping: rows are grouped by prompt length and each group prefills at its
natural width.  The groups stay fixed for the whole generation — every row
appends exactly one token per step — so the decode loop re-uses them.

**Incremental decode.**  Each step embeds one token per row and attends
against the cached keys/values: per layer one ``(g, h, 1, hd)`` query
against a ``(g, h, t, hd)`` cache, using the same cached
:class:`~repro.llm.model.StackedAttentionWeights` stacks (invalidated via
the ``Parameter`` version counters) as the prefill.  The
:class:`KVCache` grows geometrically, so a long generation performs
``O(log T)`` reallocations, not one per token.

**Replacement softmax across a length sweep.**  With a batched replacement
softmax each decode step dispatches one head-major ``(h * g, t)`` row
space — every row a full-width query over the ``t``-entry cache — through
:func:`~repro.llm.model.causal_batched_softmax` with explicit
``valid_lengths``.  The sequence length ``t`` advances by one per step,
which is exactly the 1..T shape sweep the bounded
:meth:`~repro.mapping.softmap.SoftmAPMapping.plan` LRU cache exists for.

**The baseline, and parity.**  ``use_cache=False`` re-prefills the whole
growing sequence every step through :func:`~repro.llm.infer.infer` and
reads the last valid position's logits — the naive quadratic baseline.
Both paths draw from the same seeded RNG stream (one draw vector per
step), and the generated tokens are pinned identical across the two paths
for every sweep backend by ``tests/llm/test_generate.py``; the decode
benchmark pins the cached path's tokens/sec against this baseline.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple, Union

import numpy as np

from repro.llm.infer import _check_valid_lengths, _feed_forward, _forward_batch, infer
from repro.llm.model import causal_batched_softmax
from repro.nn.functional import rms_norm_forward, softmax_forward
from repro.utils.validation import check_positive_int

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.llm.model import SoftmaxFn, TinyLlamaModel

__all__ = ["KVCache", "generate"]

#: Row selector of one prompt-length group: ``slice(None)`` when a single
#: group covers the whole batch (keeps cache reads as views), an index
#: array otherwise.
Rows = Union[slice, np.ndarray]


class KVCache:
    """Per-layer key/value cache for incremental decoding.

    One pair of ``(batch, num_heads, capacity, head_dim)`` float64 arrays
    per decoder layer, plus the per-row valid lengths.  The capacity grows
    geometrically (at least doubling per reallocation), so appending one
    position per step over a ``T``-token generation copies ``O(T)`` total
    amortised, not ``O(T^2)``.
    """

    def __init__(
        self,
        num_layers: int,
        batch: int,
        num_heads: int,
        head_dim: int,
        capacity: int,
    ) -> None:
        self.batch = batch
        self.num_heads = num_heads
        self.head_dim = head_dim
        self.capacity = check_positive_int(capacity, "capacity")
        #: Per-row number of valid cached positions (maintained by the
        #: decode loop).
        self.lengths = np.zeros(batch, dtype=np.int64)
        shape = (batch, num_heads, self.capacity, head_dim)
        self._keys: List[np.ndarray] = [np.zeros(shape) for _ in range(num_layers)]
        self._values: List[np.ndarray] = [np.zeros(shape) for _ in range(num_layers)]

    @property
    def num_layers(self) -> int:
        return len(self._keys)

    def ensure_capacity(self, capacity: int) -> None:
        """Grow every layer's arrays to hold ``capacity`` positions.

        Growth at least doubles the current capacity, preserving all cached
        contents; a no-op when the cache is already large enough.
        """
        if capacity <= self.capacity:
            return
        new_capacity = max(capacity, 2 * self.capacity)
        for arrays in (self._keys, self._values):
            for index, old in enumerate(arrays):
                grown = np.zeros(
                    (self.batch, self.num_heads, new_capacity, self.head_dim)
                )
                grown[:, :, : self.capacity] = old
                arrays[index] = grown
        self.capacity = new_capacity

    def write(
        self,
        layer: int,
        rows: Rows,
        start: int,
        keys: np.ndarray,
        values: np.ndarray,
    ) -> None:
        """Store ``(g, h, n, hd)`` key/value blocks at positions
        ``start..start+n`` of the selected rows (``n = 1`` per decode step,
        ``n = prompt length`` at prefill)."""
        n = keys.shape[2]
        if start + n > self.capacity:
            raise ValueError(
                f"write of {n} positions at {start} exceeds capacity "
                f"{self.capacity}; call ensure_capacity first"
            )
        self._keys[layer][rows, :, start : start + n] = keys
        self._values[layer][rows, :, start : start + n] = values

    def keys(self, layer: int, rows: Rows, length: int) -> np.ndarray:
        """The selected rows' first ``length`` cached key positions,
        shape ``(g, h, length, hd)``."""
        return self._keys[layer][rows, :, :length]

    def values(self, layer: int, rows: Rows, length: int) -> np.ndarray:
        """The selected rows' first ``length`` cached value positions,
        shape ``(g, h, length, hd)``."""
        return self._values[layer][rows, :, :length]


def generate(
    model: "TinyLlamaModel",
    prompts: np.ndarray,
    max_new_tokens: int,
    valid_lengths: Optional[np.ndarray] = None,
    softmax_fn: Optional["SoftmaxFn"] = None,
    backend: Optional[object] = None,
    temperature: float = 0.0,
    top_k: Optional[int] = None,
    seed: int = 0,
    use_cache: bool = True,
) -> np.ndarray:
    """Generate tokens autoregressively from a batch of prompts.

    Parameters
    ----------
    model:
        The model to decode with.
    prompts:
        Integer token ids of shape ``(B, P)`` — one row per prompt — or a
        single ``(P,)`` prompt.
    max_new_tokens:
        Number of tokens to generate per prompt (``>= 1``).
    valid_lengths:
        Optional per-prompt token counts (1-D, shape ``(B,)``, entries in
        ``1..P``) for ragged prompt batches: row ``b``'s tokens at
        positions ``>= valid_lengths[b]`` are ignored and generation
        continues from position ``valid_lengths[b]``.
    softmax_fn:
        Optional replacement attention softmax (same contract as
        :func:`~repro.llm.infer.infer`).
    backend:
        Optional replacement attention softmax selected through the
        unified runtime API (name / spec / resolved backend); mutually
        exclusive with ``softmax_fn``.
    temperature:
        ``0.0`` (default) decodes greedily (argmax).  A positive value
        samples from ``softmax(logits / temperature)``.
    top_k:
        With a positive ``temperature``, restrict sampling to the ``k``
        highest-scoring tokens (ties at the cutoff are kept).  Ignored
        when decoding greedily.
    seed:
        Seed of the sampling RNG.  The RNG draws one vector per step for
        the whole batch, so the cached and baseline paths consume an
        identical stream.
    use_cache:
        ``True`` (default) decodes incrementally through the
        :class:`KVCache`; ``False`` re-prefills the whole sequence every
        step (the naive baseline).  Both paths generate identical tokens.

    Returns
    -------
    numpy.ndarray
        Generated int64 token ids of shape ``(B, max_new_tokens)``
        (``(max_new_tokens,)`` for a 1-D prompt).
    """
    if backend is not None:
        if softmax_fn is not None:
            raise ValueError("pass either softmax_fn or backend, not both")
        # Imported lazily: the base substrate must stay importable without
        # pulling the whole runtime/mapping/gpu stack in.
        from repro.runtime.backend import resolve_model_backend

        softmax_fn = resolve_model_backend(
            backend, model.config.num_heads, model.config.max_context
        ).softmax_fn()
    prompts = np.asarray(prompts, dtype=np.int64)
    squeeze = prompts.ndim == 1
    if squeeze:
        prompts = prompts[None, :]
    if prompts.ndim != 2:
        raise ValueError("generate expects a (B, P) prompt batch or a 1-D prompt")
    batch, width = prompts.shape
    if batch < 1 or width < 1:
        raise ValueError("generate needs at least one token per prompt")
    max_new_tokens = check_positive_int(max_new_tokens, "max_new_tokens")
    if temperature < 0.0:
        raise ValueError(f"temperature must be non-negative, got {temperature}")
    if top_k is not None:
        top_k = check_positive_int(top_k, "top_k")
    lengths = _check_valid_lengths(valid_lengths, batch, width)
    if lengths is None:
        lengths = np.full(batch, width, dtype=np.int64)
    total = int(lengths.max()) + max_new_tokens
    if total > model.config.max_context:
        raise ValueError(
            f"longest prompt ({int(lengths.max())}) + max_new_tokens "
            f"({max_new_tokens}) exceeds max context {model.config.max_context}"
        )

    rng = np.random.default_rng(seed)
    if use_cache:
        generated = _generate_cached(
            model, prompts, lengths, max_new_tokens, softmax_fn, temperature,
            top_k, rng,
        )
    else:
        generated = _generate_reprefill(
            model, prompts, lengths, max_new_tokens, softmax_fn, temperature,
            top_k, rng,
        )
    return generated[0] if squeeze else generated


# --------------------------------------------------------------------------- #
# Cached incremental decoding                                                  #
# --------------------------------------------------------------------------- #
def _prompt_groups(lengths: np.ndarray) -> List[Tuple[int, Rows]]:
    """Rows grouped by prompt length (the ``valid_lengths`` idiom of
    :func:`~repro.llm.infer.infer`).  Every row appends one token per
    step, so the groups stay fixed for the whole generation; a uniform
    batch keeps ``slice(None)`` so cache reads stay views."""
    unique = np.unique(lengths)
    if unique.size == 1:
        return [(int(unique[0]), slice(None))]
    return [(int(length), np.flatnonzero(lengths == length)) for length in unique]


def _generate_cached(
    model: "TinyLlamaModel",
    prompts: np.ndarray,
    lengths: np.ndarray,
    max_new_tokens: int,
    softmax_fn: Optional["SoftmaxFn"],
    temperature: float,
    top_k: Optional[int],
    rng: np.random.Generator,
) -> np.ndarray:
    batch = prompts.shape[0]
    config = model.config
    groups = _prompt_groups(lengths)
    cache = KVCache(
        num_layers=config.num_layers,
        batch=batch,
        num_heads=config.num_heads,
        head_dim=config.head_dim,
        capacity=int(lengths.max()),
    )
    generated = np.empty((batch, max_new_tokens), dtype=np.int64)
    logits_last = np.empty((batch, config.vocab_size))

    # Prefill: the standard batched forward per natural-width group, with
    # the kv_sink seeding the cache from the very arrays the prefill logits
    # were computed from.
    for length, rows in groups:
        sink: List[Tuple[np.ndarray, np.ndarray]] = []
        block_logits = _forward_batch(
            model, prompts[rows, :length], softmax_fn, kv_sink=sink
        )
        logits_last[rows] = block_logits[:, -1]
        for layer_index, (k, v) in enumerate(sink):
            cache.write(layer_index, rows, 0, k, v)
    cache.lengths[:] = lengths
    generated[:, 0] = _sample_next_tokens(logits_last, temperature, top_k, rng)

    for step in range(1, max_new_tokens):
        cache.ensure_capacity(int(cache.lengths.max()) + 1)
        for length, rows in groups:
            position = length + step - 1  # 0-indexed position of the fed token
            logits_last[rows] = _decode_step(
                model, cache, rows, generated[rows, step - 1], position, softmax_fn
            )
        cache.lengths += 1
        generated[:, step] = _sample_next_tokens(logits_last, temperature, top_k, rng)
    return generated


def _decode_step(
    model: "TinyLlamaModel",
    cache: KVCache,
    rows: Rows,
    tokens: np.ndarray,
    position: int,
    softmax_fn: Optional["SoftmaxFn"],
) -> np.ndarray:
    """One incremental decoder pass: feed one token per selected row at
    ``position`` and return the next-token logits, shape ``(g, vocab)``."""
    scale_factor = 1.0 / np.sqrt(model.config.head_dim)
    x = (
        model.token_embedding.data[tokens]
        + model.position_embedding.data[position]
    )[:, None, :]  # (g, 1, d)
    for index, layer in enumerate(model.layers):
        x = x + _decode_attention(
            model, cache, index, rows, x, position, scale_factor, softmax_fn
        )
        x = x + _feed_forward(x, layer)
    x = rms_norm_forward(x, model.final_norm.data)
    return np.matmul(x, model.output_head.data)[:, 0]


def _decode_attention(
    model: "TinyLlamaModel",
    cache: KVCache,
    layer_index: int,
    rows: Rows,
    x: np.ndarray,
    position: int,
    scale_factor: float,
    softmax_fn: Optional["SoftmaxFn"],
) -> np.ndarray:
    """Single-query attention against the cache: ``(g, h, 1, hd)`` queries
    over ``(g, h, t, hd)`` cached keys/values, ``t = position + 1``."""
    layer = model.layers[layer_index]
    stacks = model.stacked_attention_weights(layer_index)
    normed = rms_norm_forward(x, layer["attn_norm"].data)
    hidden = normed[:, None]  # (g, 1, 1, d) broadcast against (h, d, hd)
    q = np.matmul(hidden, stacks.wq)  # (g, h, 1, hd)
    k = np.matmul(hidden, stacks.wk)
    v = np.matmul(hidden, stacks.wv)
    # The new position's keys/values enter the cache before scoring: the
    # query attends to itself, exactly like the prefill's causal diagonal.
    cache.write(layer_index, rows, position, k, v)
    t = position + 1
    keys = cache.keys(layer_index, rows, t)
    values = cache.values(layer_index, rows, t)
    scores = np.matmul(q, keys.transpose(0, 1, 3, 2)) * scale_factor  # (g, h, 1, t)

    if softmax_fn is None:
        probabilities = softmax_forward(scores)
    elif getattr(softmax_fn, "supports_batch", False):
        probabilities = _decode_batched_softmax(scores, softmax_fn)
    else:
        probabilities = _decode_rowwise_softmax(scores, softmax_fn)

    context = np.matmul(probabilities, values)  # (g, h, 1, hd)
    projected = np.matmul(context, stacks.wo)  # (g, h, 1, d)
    output = projected[:, 0]
    for head in range(1, model.config.num_heads):
        output = output + projected[:, head]
    return output


def _decode_batched_softmax(
    scores: np.ndarray, softmax_fn: "SoftmaxFn"
) -> np.ndarray:
    """One head-major softmax call per decode step.

    The ``(g, h, 1, t)`` step scores flatten to ``(h * g, t)`` — head-major
    per :func:`~repro.llm.model.causal_batched_softmax`, the layout
    authority — with every row a full-width query over the ``t``-entry
    cache, i.e. explicit ``valid_lengths`` of ``t`` instead of the tiled
    causal prefix lengths of a prefill block.
    """
    g, h, t = scores.shape[0], scores.shape[1], scores.shape[3]
    stacked = scores[:, :, 0].transpose(1, 0, 2).reshape(h * g, t)
    probabilities = causal_batched_softmax(
        stacked, softmax_fn, valid_lengths=np.full(h * g, t, dtype=np.int64)
    )
    return probabilities.reshape(h, g, t).transpose(1, 0, 2)[:, :, None]


def _decode_rowwise_softmax(
    scores: np.ndarray, softmax_fn: "SoftmaxFn"
) -> np.ndarray:
    """The legacy row-by-row contract: one call per row per head."""
    g, h = scores.shape[0], scores.shape[1]
    probabilities = np.zeros_like(scores)
    for segment in range(g):
        for head in range(h):
            probabilities[segment, head, 0] = softmax_fn(scores[segment, head, 0])
    return probabilities


# --------------------------------------------------------------------------- #
# Re-prefill baseline                                                          #
# --------------------------------------------------------------------------- #
def _generate_reprefill(
    model: "TinyLlamaModel",
    prompts: np.ndarray,
    lengths: np.ndarray,
    max_new_tokens: int,
    softmax_fn: Optional["SoftmaxFn"],
    temperature: float,
    top_k: Optional[int],
    rng: np.random.Generator,
) -> np.ndarray:
    """The naive baseline: re-run the full prefill on the growing sequence
    every step and read the last valid position's logits.  Quadratic in
    generated tokens; exists as the benchmark/parity reference."""
    batch = prompts.shape[0]
    ragged = lengths.min() != lengths.max()
    buffer = np.zeros((batch, int(lengths.max()) + max_new_tokens), dtype=np.int64)
    for row in range(batch):
        buffer[row, : lengths[row]] = prompts[row, : lengths[row]]
    current = lengths.copy()
    row_index = np.arange(batch)
    generated = np.empty((batch, max_new_tokens), dtype=np.int64)
    for step in range(max_new_tokens):
        width = int(current.max())
        logits = infer(
            model,
            buffer[:, :width],
            valid_lengths=current if ragged else None,
            softmax_fn=softmax_fn,
        )
        logits_last = logits[row_index, current - 1]
        tokens = _sample_next_tokens(logits_last, temperature, top_k, rng)
        generated[:, step] = tokens
        buffer[row_index, current] = tokens
        current += 1
    return generated


# --------------------------------------------------------------------------- #
# Sampling                                                                     #
# --------------------------------------------------------------------------- #
def _sample_next_tokens(
    logits: np.ndarray,
    temperature: float,
    top_k: Optional[int],
    rng: np.random.Generator,
) -> np.ndarray:
    """Next token per row of a ``(B, vocab)`` logit matrix.

    ``temperature == 0`` is greedy argmax and draws nothing from the RNG;
    otherwise one uniform draw per row inverts the CDF of
    ``softmax(logits / temperature)``, optionally restricted to the
    ``top_k`` highest-scoring tokens (ties at the cutoff are kept, so
    ``top_k`` may admit more than ``k`` candidates on exact ties).
    """
    if temperature == 0.0:
        return np.argmax(logits, axis=-1).astype(np.int64)
    vocab = logits.shape[-1]
    scaled = logits / temperature
    if top_k is not None and top_k < vocab:
        cutoff = np.partition(scaled, vocab - top_k, axis=-1)[:, vocab - top_k]
        scaled = np.where(scaled >= cutoff[:, None], scaled, -np.inf)
    probabilities = softmax_forward(scaled)
    draws = rng.random(logits.shape[0])
    tokens = np.empty(logits.shape[0], dtype=np.int64)
    for row in range(logits.shape[0]):
        cdf = np.cumsum(probabilities[row])
        tokens[row] = min(
            int(np.searchsorted(cdf, draws[row], side="right")), vocab - 1
        )
    return tokens
