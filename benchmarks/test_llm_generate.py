"""Decode benchmark: the KV-cache generation path's pinned speedup.

The acceptance workload is autoregressive generation on a compute-bound
model shape (8 prompts x 96 tokens, 64 new tokens each, hidden 128): the
incremental KV-cache decode versus the naive baseline that re-prefills the
whole growing sequence every step.  Same weights, same prompts, same
seeded RNG stream on both sides; the two paths must emit **identical
tokens** and the cached path must decode at least **3x** more tokens per
second.

This module joins the CI ``benchmark-smoke`` job next to
``test_llm_speed.py``: it runs without ``--runslow`` and, when
``REPRO_PERF_DIR`` is set, writes the measured timings to
``BENCH_llm_generate.json`` so the decode-speed trajectory can be tracked
across commits.
"""

import json
import os
import pathlib

from repro.runtime import get_experiment
from repro.runtime.bench import (
    GENERATE_SPEEDUP_FLOOR as SPEEDUP_FLOOR,
    llm_generate_payload as _report_payload,
)
from repro.utils.trajectory import record_benchmark


def _emit_perf_artifact(report) -> None:
    """Write the timing JSON artifact when REPRO_PERF_DIR is set."""
    perf_dir = os.environ.get("REPRO_PERF_DIR")
    if not perf_dir:
        return
    path = pathlib.Path(perf_dir)
    path.mkdir(parents=True, exist_ok=True)
    payload = {"benchmark": "llm-generate", **_report_payload(report)}
    with open(path / "BENCH_llm_generate.json", "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def test_kv_cache_decode_beats_reprefill(benchmark):
    """Pin: KV-cache decode >= 3x tokens/sec over re-prefill, same tokens."""
    experiment = get_experiment("llm-generate")
    report = benchmark.pedantic(
        experiment.run,
        args=({},),
        iterations=1,
        rounds=1,
    )
    print()
    print(experiment.render(report))
    _emit_perf_artifact(report)
    record_benchmark("llm_generate", _report_payload(report))
    assert report.tokens_match, (
        "KV-cache decode emitted different tokens than the re-prefill "
        "baseline"
    )
    assert report.speedup >= SPEEDUP_FLOOR, (
        f"KV-cache decode only {report.speedup:.1f}x faster than re-prefill "
        f"(floor {SPEEDUP_FLOOR:.0f}x)"
    )
