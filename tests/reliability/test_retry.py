"""RetryPolicy backoff schedule and DeadlineExceeded structure."""

import numpy as np
import pytest

from repro.reliability.faults import InjectedFault
from repro.reliability.retry import DeadlineExceeded, RetryPolicy


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="base_backoff_ms"):
            RetryPolicy(base_backoff_ms=-1.0)
        with pytest.raises(ValueError, match="max_backoff_ms"):
            RetryPolicy(base_backoff_ms=10.0, max_backoff_ms=5.0)
        with pytest.raises(ValueError, match="multiplier"):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError, match="jitter_ms"):
            RetryPolicy(jitter_ms=-0.1)

    def test_only_transient_errors_are_retryable(self):
        policy = RetryPolicy()
        assert policy.retryable(InjectedFault("seam", "spec"))
        assert not policy.retryable(
            InjectedFault("seam", "spec", transient=False)
        )
        assert not policy.retryable(ValueError("bad shape"))
        assert not policy.retryable(RuntimeError("engine died"))

    def test_backoff_grows_exponentially_then_caps(self):
        policy = RetryPolicy(
            base_backoff_ms=1.0,
            max_backoff_ms=8.0,
            multiplier=2.0,
            jitter_ms=0.0,
        )
        rng = np.random.default_rng(0)
        schedule = [policy.backoff_ms(k, rng) for k in range(6)]
        assert schedule == [1.0, 2.0, 4.0, 8.0, 8.0, 8.0]

    def test_jitter_is_bounded_and_seeded(self):
        policy = RetryPolicy(
            base_backoff_ms=1.0, multiplier=1.0, jitter_ms=0.5
        )
        first = [
            policy.backoff_ms(k, np.random.default_rng(5)) for k in range(4)
        ]
        second = [
            policy.backoff_ms(k, np.random.default_rng(5)) for k in range(4)
        ]
        assert first == second  # same generator seed, same schedule
        assert all(1.0 <= delay < 1.5 for delay in first)


class TestDeadlineExceeded:
    def test_carries_structured_fields(self):
        error = DeadlineExceeded(deadline_ms=25.0, waited_ms=31.4)
        assert error.deadline_ms == 25.0
        assert error.waited_ms == 31.4
        assert "25" in str(error) and "31.4" in str(error)

    def test_is_not_transient(self):
        # A blown deadline must never be retried into a later response.
        assert not RetryPolicy().retryable(DeadlineExceeded(1.0, 2.0))
