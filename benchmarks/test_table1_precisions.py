"""Benchmark regenerating Table I — mixed-precision bit widths."""

from repro.runtime import get_experiment


def test_table1_precisions(benchmark):
    experiment = get_experiment("table1")
    entries = benchmark(experiment.run)
    print()
    print(experiment.render(entries))
    assert len(entries) == 9
