"""Benchmark regenerating Fig. 6 — normalized energy (GPU / AP) for
Llama2-7b/13b/70b across sequence lengths and batch sizes."""

from repro.experiments import render_comparison
from repro.runtime import get_experiment


def test_fig6_normalized_energy(benchmark, comparison_points):
    benchmark(get_experiment("figs6_8").run)
    print()
    print(render_comparison(comparison_points, "energy"))
    # Paper: the AP is more energy efficient than both GPUs for all models,
    # sequence lengths and batch sizes, with the highest savings at
    # batch 1 / sequence 128 and the ratio flattening as the tensor grows.
    assert all(p.normalized_energy > 10 for p in comparison_points)
    a100_7b_batch1 = {
        p.sequence_length: p.normalized_energy
        for p in comparison_points
        if p.gpu == "A100" and p.model == "Llama2-7b" and p.batch_size == 1
    }
    assert a100_7b_batch1[128] == max(a100_7b_batch1.values())
