"""Quantizers used by the integer-only softmax.

Two quantizers are provided:

* :class:`SymmetricQuantizer` — standard symmetric (zero-point free)
  quantization, used for generic activations/weights and in tests as a
  reference behaviour.
* :class:`ClippedSoftmaxInputQuantizer` — the quantizer the SoftmAP paper
  applies to softmax inputs.  Softmax is shift invariant, so the input is
  first stabilised by subtracting its maximum; the resulting values are
  non-positive and are clipped to ``[TC, 0]`` before being quantized with a
  fixed scaling factor ``S = |TC| / (2**M - 1)``.  The clipping threshold is
  chosen per bit width exactly as in Section V-A of the paper: ``TC = -7``
  for ``M`` in {6, 8} and ``TC = -4`` for ``M = 4``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.utils.bitwidth import signed_max, signed_min, unsigned_max
from repro.utils.validation import check_positive_int

__all__ = [
    "QuantizedTensor",
    "SymmetricQuantizer",
    "ClippedSoftmaxInputQuantizer",
    "default_clipping_threshold",
]


def default_clipping_threshold(bits: int) -> float:
    """Clipping threshold ``TC`` used by the paper for a given bit width.

    The paper selects ``TC = -7`` for 6/8-bit inputs and ``TC = -4`` for
    4-bit inputs (coarser quantization needs a tighter range to keep the
    resolution usable).  Bit widths not studied in the paper fall back to
    ``-7`` which covers ``exp(x) > 1e-3``.
    """
    check_positive_int(bits, "bits")
    if bits <= 4:
        return -4.0
    return -7.0


@dataclass(frozen=True)
class QuantizedTensor:
    """An integer tensor together with its scaling factor.

    The represented real value is ``values * scale``.  ``bits`` records the
    storage width of the integer values (including sign when ``signed``).
    """

    values: np.ndarray
    scale: float
    bits: int
    signed: bool = True

    def dequantize(self) -> np.ndarray:
        """Return the real-valued tensor ``values * scale``."""
        return self.values.astype(np.float64) * self.scale

    @property
    def shape(self):
        """Shape of the underlying integer array."""
        return self.values.shape

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError(f"scale must be > 0, got {self.scale}")
        if self.bits < 1:
            raise ValueError(f"bits must be >= 1, got {self.bits}")
        values = np.asarray(self.values)
        if not np.issubdtype(values.dtype, np.integer):
            raise TypeError("QuantizedTensor values must have an integer dtype")
        object.__setattr__(self, "values", values)


class SymmetricQuantizer:
    """Symmetric (zero-point free) quantizer.

    The scale is derived from the maximum absolute value of the calibrated
    tensor: ``scale = max(|x|) / (2**(bits-1) - 1)``.  Quantized values are
    clamped to the signed ``bits``-wide range.
    """

    def __init__(self, bits: int) -> None:
        self.bits = check_positive_int(bits, "bits")
        if bits < 2:
            raise ValueError("symmetric quantization needs at least 2 bits")

    def calibrate(self, x: np.ndarray) -> float:
        """Compute the scaling factor for tensor ``x``."""
        x = np.asarray(x, dtype=np.float64)
        max_abs = float(np.max(np.abs(x))) if x.size else 0.0
        if max_abs == 0.0:
            return 1.0
        return max_abs / signed_max(self.bits)

    def quantize(self, x: np.ndarray, scale: Optional[float] = None) -> QuantizedTensor:
        """Quantize ``x`` with the provided (or freshly calibrated) scale."""
        x = np.asarray(x, dtype=np.float64)
        if scale is None:
            scale = self.calibrate(x)
        if scale <= 0:
            raise ValueError(f"scale must be > 0, got {scale}")
        q = np.round(x / scale)
        q = np.clip(q, signed_min(self.bits), signed_max(self.bits))
        return QuantizedTensor(values=q.astype(np.int64), scale=scale, bits=self.bits)

    def dequantize(self, q: QuantizedTensor) -> np.ndarray:
        """Recover the real values of ``q``."""
        return q.dequantize()


class ClippedSoftmaxInputQuantizer:
    """Quantizer for (stabilised) softmax inputs, as used by SoftmAP.

    Inputs are expected after max-subtraction, i.e. non-positive.  Values
    below the clipping threshold ``TC`` are clipped (they contribute
    ``exp(x) < exp(TC)``, which is negligible for the chosen thresholds) and
    the range ``[TC, 0]`` is quantized uniformly with

    ``S = |TC| / (2**bits - 1)``

    so quantized values lie in ``{-(2**bits - 1), ..., 0}``.  Because the
    values are known to be non-positive, the full ``bits`` bits are spent on
    magnitude (the sign is implicit), which matches the Table I entry that
    stores ``v`` in ``M`` bits and keeps the polynomial constants ``vb`` and
    ``vc`` finely quantized.  Note: with this scale ``vln2 = floor(ln2/S)``
    needs 5 bits for ``M = 8`` (Table I lists 4); EXPERIMENTS.md records the
    discrepancy.

    Parameters
    ----------
    bits:
        Number of bits ``M`` for the quantized input.
    clip_threshold:
        Negative clipping threshold ``TC``; defaults to the paper's choice
        for the given bit width (see :func:`default_clipping_threshold`).
    """

    def __init__(self, bits: int, clip_threshold: Optional[float] = None) -> None:
        self.bits = check_positive_int(bits, "bits")
        if clip_threshold is None:
            clip_threshold = default_clipping_threshold(bits)
        if clip_threshold >= 0:
            raise ValueError(
                f"clip_threshold must be negative, got {clip_threshold}"
            )
        self.clip_threshold = float(clip_threshold)
        if bits < 2:
            raise ValueError("softmax input quantization needs at least 2 bits")
        self.scale = abs(self.clip_threshold) / unsigned_max(self.bits)

    def quantize(self, x: np.ndarray, stabilise: bool = True) -> QuantizedTensor:
        """Quantize softmax inputs ``x``.

        Parameters
        ----------
        x:
            Real-valued logits.  If ``stabilise`` is true (default) the
            per-row maximum (last axis) is subtracted first, which mirrors
            line 4 of Algorithm 1 being performed in floating point before
            quantization; the quantized values are then guaranteed to be
            non-positive.
        stabilise:
            Whether to subtract the row-wise maximum before clipping.
        """
        x = np.asarray(x, dtype=np.float64)
        if stabilise and x.size:
            x = x - np.max(x, axis=-1, keepdims=True)
        if np.any(x > 1e-9):
            raise ValueError(
                "softmax input quantizer expects non-positive values; "
                "pass stabilise=True or pre-subtract the maximum"
            )
        clipped = np.clip(x, self.clip_threshold, 0.0)
        q = np.round(clipped / self.scale)
        q = np.clip(q, -unsigned_max(self.bits), 0)
        return QuantizedTensor(
            values=q.astype(np.int64), scale=self.scale, bits=self.bits
        )

    def dequantize(self, q: QuantizedTensor) -> np.ndarray:
        """Recover the real (clipped) values of ``q``."""
        return q.dequantize()
