"""Mixed-precision configurations (Table I of the paper).

The paper sweeps three knobs:

* ``M`` — bit width of the quantized softmax input ``v`` (4, 6 or 8);
* the width of ``vcorr`` — ``M``, ``M+1`` or ``M+2`` bits (we store the
  difference as ``vcorr_delta`` in {0, 1, 2});
* ``N`` — the number of *additional* bits allocated to accumulate the sum
  of the approximated exponentials (8, 12, 16 or 20).  When ``N`` is smaller
  than ``log2(SequenceLength / 2)`` the accumulator saturates and the
  normalisation degrades, which is exactly the effect Tables III/IV show.

:class:`PrecisionConfig` derives all intermediate bit widths of Table I from
those three values, and :func:`table_i` regenerates the full table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.utils.validation import check_in_choices, check_positive_int

__all__ = [
    "PrecisionConfig",
    "PrecisionTableEntry",
    "table_i",
    "TABLE_I_M_VALUES",
    "TABLE_I_N_VALUES",
    "TABLE_I_VCORR_DELTAS",
    "BEST_PRECISION",
]

#: Input bit widths swept by Table I.
TABLE_I_M_VALUES: Tuple[int, ...] = (4, 6, 8)
#: Extra sum bits swept by Table I.
TABLE_I_N_VALUES: Tuple[int, ...] = (8, 12, 16, 20)
#: ``vcorr`` width offsets (vcorr = M + delta) swept by Table I.
TABLE_I_VCORR_DELTAS: Tuple[int, ...] = (0, 1, 2)

#: Bit width of ``vln2 = floor(ln 2 / S)``; fixed at 4 bits in the paper.
VLN2_BITS: int = 4


@dataclass(frozen=True)
class PrecisionConfig:
    """A mixed-precision configuration of Algorithm 1.

    Parameters
    ----------
    input_bits:
        ``M`` — bits of the quantized input ``v``.
    vcorr_delta:
        ``vcorr`` is stored in ``M + vcorr_delta`` bits (0, 1 or 2).
    sum_extra_bits:
        ``N`` — extra bits allocated to the accumulator for
        ``sum(vapprox)`` on top of the width of a single ``vapprox`` term.
    """

    input_bits: int = 6
    vcorr_delta: int = 0
    sum_extra_bits: int = 16

    def __post_init__(self) -> None:
        check_positive_int(self.input_bits, "input_bits")
        if self.input_bits < 2:
            raise ValueError("input_bits must be >= 2")
        if self.vcorr_delta not in (0, 1, 2):
            raise ValueError(
                f"vcorr_delta must be 0, 1 or 2, got {self.vcorr_delta}"
            )
        check_positive_int(self.sum_extra_bits, "sum_extra_bits")

    # ------------------------------------------------------------------ #
    # Derived bit widths (Table I rows)                                   #
    # ------------------------------------------------------------------ #
    @property
    def v_bits(self) -> int:
        """Width of the quantized input ``v`` (= M)."""
        return self.input_bits

    @property
    def vstable_bits(self) -> int:
        """Width of ``vstable = v - max(v)`` (= M; values stay in range)."""
        return self.input_bits

    @property
    def vln2_bits(self) -> int:
        """Width of ``vln2 = floor(ln2 / S)`` (4 bits in the paper)."""
        return VLN2_BITS

    @property
    def vb_bits(self) -> int:
        """Width of ``vb = floor(b / S)`` (= M)."""
        return self.input_bits

    @property
    def vc_bits(self) -> int:
        """Width of ``vc = floor(c / (a S^2))`` (= 2M)."""
        return 2 * self.input_bits

    @property
    def vcorr_bits(self) -> int:
        """Width of the polynomial argument ``vcorr`` (= M + delta)."""
        return self.input_bits + self.vcorr_delta

    @property
    def polynomial_bits(self) -> int:
        """Width of ``(vcorr + vb)^2 + vc``.

        ``vcorr + vb`` needs ``vcorr_bits + 1`` bits, its square twice that,
        and adding ``vc`` (2M bits) one more: ``2 * (vcorr_bits + 1) + 1``.
        This reproduces the 11/15/19 (+2 per extra vcorr bit) row of
        Table I.
        """
        return 2 * (self.vcorr_bits + 1) + 1

    @property
    def vapprox_bits(self) -> int:
        """Width of the shifted polynomial output ``vapprox``.

        Table I reports ``M + 6 + 2 * delta`` (10/12/14 for ``vcorr = M``),
        i.e. the polynomial width minus the guaranteed minimum shift of
        ``M - 3`` positions for in-range inputs.
        """
        return self.input_bits + 6 + 2 * self.vcorr_delta

    @property
    def sum_bits(self) -> int:
        """Width of the accumulator for ``sum(vapprox)`` (= vapprox + N)."""
        return self.vapprox_bits + self.sum_extra_bits

    @property
    def result_column_bits(self) -> int:
        """Width of the AP result column ``R`` (Fig. 4): ``2M + 12``."""
        return 2 * self.input_bits + 12

    # ------------------------------------------------------------------ #
    # Convenience                                                         #
    # ------------------------------------------------------------------ #
    def required_sum_bits_for_sequence(self, sequence_length: int) -> int:
        """Extra sum bits needed to accumulate ``sequence_length / 2`` terms
        per AP without saturation (``N = log2(SequenceLength / 2)``)."""
        check_positive_int(sequence_length, "sequence_length")
        terms = max(1, sequence_length // 2)
        return max(1, (terms - 1).bit_length())

    def as_dict(self) -> Dict[str, int]:
        """All Table I widths for this configuration."""
        return {
            "M": self.input_bits,
            "v": self.v_bits,
            "vstable": self.vstable_bits,
            "vln2": self.vln2_bits,
            "vb": self.vb_bits,
            "vc": self.vc_bits,
            "vcorr": self.vcorr_bits,
            "(vcorr+vb)^2+vc": self.polynomial_bits,
            "vapprox": self.vapprox_bits,
            "N": self.sum_extra_bits,
            "sum": self.sum_bits,
        }

    def label(self) -> str:
        """Short human-readable label, e.g. ``M=6, vcorr=M, N=16``."""
        delta = {0: "M", 1: "M+1", 2: "M+2"}[self.vcorr_delta]
        return f"M={self.input_bits}, vcorr={delta}, N={self.sum_extra_bits}"


#: The "best precision combination" selected in Section V-A of the paper:
#: lowest perplexity with the lowest bit widths across all three Llama
#: models (``vcorr = M``, ``M = 6``, ``N = 16``).
BEST_PRECISION = PrecisionConfig(input_bits=6, vcorr_delta=0, sum_extra_bits=16)


@dataclass(frozen=True)
class PrecisionTableEntry:
    """One column of Table I: a configuration plus all derived widths."""

    config: PrecisionConfig
    widths: Dict[str, int]


def table_i() -> List[PrecisionTableEntry]:
    """Regenerate every column of Table I.

    The table enumerates ``vcorr_delta`` (outer), ``M`` (inner) and, for the
    ``sum`` row, every ``N``; one entry is produced per (delta, M) pair and
    its ``widths`` dict contains a ``sum(N=...)`` key per value of ``N``.
    """
    entries: List[PrecisionTableEntry] = []
    for delta in TABLE_I_VCORR_DELTAS:
        for m in TABLE_I_M_VALUES:
            base = PrecisionConfig(input_bits=m, vcorr_delta=delta,
                                   sum_extra_bits=TABLE_I_N_VALUES[0])
            widths = base.as_dict()
            widths.pop("N")
            widths.pop("sum")
            for n in TABLE_I_N_VALUES:
                cfg = PrecisionConfig(input_bits=m, vcorr_delta=delta,
                                      sum_extra_bits=n)
                widths[f"sum(N={n})"] = cfg.sum_bits
            entries.append(PrecisionTableEntry(config=base, widths=widths))
    return entries
