"""Tests for field allocation."""

import pytest

from repro.ap.fields import Field, FieldAllocator


class TestField:
    def test_bits_and_columns(self):
        field = Field(name="a", columns=(3, 4, 5))
        assert field.bits == 3
        assert field.bit_column(0) == 3

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError):
            Field(name="bad", columns=(1, 1))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Field(name="bad", columns=())

    def test_slice(self):
        field = Field(name="a", columns=(0, 1, 2, 3))
        sub = field.slice(1, 3)
        assert sub.columns == (1, 2)
        assert sub.name == "a[1:3]"
        with pytest.raises(ValueError):
            field.slice(3, 3)


class TestFieldAllocator:
    def test_disjoint_allocation(self):
        allocator = FieldAllocator(10)
        a = allocator.allocate("a", 4)
        b = allocator.allocate("b", 6)
        assert set(a.columns).isdisjoint(b.columns)
        assert allocator.used_columns == 10
        assert allocator.free_columns == 0

    def test_overflow_rejected(self):
        allocator = FieldAllocator(4)
        allocator.allocate("a", 3)
        with pytest.raises(ValueError):
            allocator.allocate("b", 2)

    def test_duplicate_name_rejected(self):
        allocator = FieldAllocator(8)
        allocator.allocate("a", 2)
        with pytest.raises(ValueError):
            allocator.allocate("a", 2)

    def test_get_and_layout(self):
        allocator = FieldAllocator(8)
        allocator.allocate("a", 2)
        assert allocator.get("a").bits == 2
        assert allocator.layout() == [("a", 0, 2)]
        with pytest.raises(KeyError):
            allocator.get("missing")
