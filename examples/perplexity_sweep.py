"""Precision-sensitivity study on the substitute language model.

Trains the tiny Llama-style numpy model on the synthetic corpus, then
evaluates perplexity with the floating-point softmax and with the
integer-only softmax across the (M, N) grid of Tables III/IV.  Also prints
the softmax-fidelity sweep at the paper's 2048-token row length, which
exposes the sum-headroom (N) effect directly.

Usage::

    python examples/perplexity_sweep.py [training_steps]
"""

import sys

from repro.experiments import (
    run_perplexity_sweep,
    run_softmax_fidelity_sweep,
    render_perplexity_table,
)
from repro.experiments.table3_4_perplexity import (
    render_fidelity_table,
    train_reference_model,
)


def main() -> None:
    steps = int(sys.argv[1]) if len(sys.argv) > 1 else 400

    print(f"Training the substitute model for {steps} steps ...")
    model, corpus = train_reference_model(training_steps=steps)
    print(f"parameters: {model.parameter_count()}  "
          f"vocabulary: {corpus.tokenizer.vocab_size}")
    print()

    points = run_perplexity_sweep(
        model=model,
        corpus=corpus,
        m_values=(6, 8),
        n_values=(8, 12, 16, 20),
        vcorr_deltas=(0,),
        include_m4=True,
    )
    print(render_perplexity_table(points))
    print()

    print("Softmax fidelity at the paper's 2048-token attention rows:")
    fidelity = run_softmax_fidelity_sweep(sequence_length=2048, rows=32)
    print(render_fidelity_table(fidelity))


if __name__ == "__main__":
    main()
