"""Precision-sensitivity study on the substitute language model.

Trains the tiny Llama-style numpy model on the synthetic corpus, then runs
the ``table3_4`` registry experiment: perplexity with the floating-point
softmax and with the integer-only softmax across the (M, N) grid of Tables
III/IV (equivalent to ``python -m repro run table3_4``).  Also prints the
``fidelity`` companion sweep at the paper's 2048-token row length, which
exposes the sum-headroom (N) effect directly.

Usage::

    python examples/perplexity_sweep.py [training_steps]
"""

import sys

from repro.experiments.table3_4_perplexity import train_reference_model
from repro.runtime import get_experiment


def main() -> None:
    steps = int(sys.argv[1]) if len(sys.argv) > 1 else 400

    print(f"Training the substitute model for {steps} steps ...")
    model, corpus = train_reference_model(training_steps=steps)
    print(f"parameters: {model.parameter_count()}  "
          f"vocabulary: {corpus.tokenizer.vocab_size}")
    print()

    sweep = get_experiment("table3_4")
    points = sweep.run({
        "model": model,
        "corpus": corpus,
        "m_values": (6, 8),
        "n_values": (8, 12, 16, 20),
        "vcorr_deltas": (0,),
        "include_m4": True,
    })
    print(sweep.render(points))
    print()

    print("Softmax fidelity at the paper's 2048-token attention rows:")
    fidelity = get_experiment("fidelity")
    print(fidelity.render(fidelity.run({"sequence_length": 2048, "rows": 32})))


if __name__ == "__main__":
    main()
