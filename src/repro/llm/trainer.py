"""Training loop for the tiny language model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.llm.model import TinyLlamaModel
from repro.nn.optim import Adam
from repro.utils.validation import check_positive_int

__all__ = ["Trainer", "TrainingResult"]


@dataclass
class TrainingResult:
    """Loss trace of one training run."""

    losses: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        """Loss of the last step (``inf`` if no steps ran)."""
        return self.losses[-1] if self.losses else float("inf")

    @property
    def initial_loss(self) -> float:
        """Loss of the first step (``inf`` if no steps ran)."""
        return self.losses[0] if self.losses else float("inf")


class Trainer:
    """Adam training of :class:`~repro.llm.model.TinyLlamaModel` on a token
    stream.

    Parameters
    ----------
    model:
        The model to train.
    tokens:
        Training token ids (1-D).
    segment_length:
        Length of the randomly sampled training segments.
    learning_rate:
        Adam learning rate.
    seed:
        Seed of the segment sampler.
    """

    def __init__(
        self,
        model: TinyLlamaModel,
        tokens: np.ndarray,
        segment_length: int = 64,
        learning_rate: float = 3e-3,
        seed: int = 0,
    ) -> None:
        self.model = model
        self.tokens = np.asarray(tokens, dtype=np.int64)
        check_positive_int(segment_length, "segment_length")
        if segment_length + 1 > self.tokens.shape[0]:
            raise ValueError("training stream shorter than one segment")
        if segment_length > model.config.max_context + 1:
            raise ValueError("segment_length exceeds the model context")
        self.segment_length = segment_length
        self.optimizer = Adam(model.parameters(), learning_rate=learning_rate)
        self._rng = np.random.default_rng(seed)

    def sample_segment(self) -> np.ndarray:
        """Sample one training segment (length ``segment_length + 1``)."""
        start = int(self._rng.integers(0, self.tokens.shape[0] - self.segment_length - 1))
        return self.tokens[start : start + self.segment_length + 1]

    def train(self, steps: int, log_every: Optional[int] = None) -> TrainingResult:
        """Run ``steps`` optimisation steps and return the loss trace."""
        check_positive_int(steps, "steps")
        result = TrainingResult()
        for step in range(steps):
            segment = self.sample_segment()
            self.optimizer.zero_grad()
            loss = self.model.loss(segment)
            loss.backward()
            self.optimizer.step()
            result.losses.append(loss.item())
            if log_every and (step + 1) % log_every == 0:
                print(f"step {step + 1:5d}  loss {loss.item():.4f}")
        return result
