"""Fig. 1 — softmax runtime proportion of Llama2-7b on an A100.

The paper characterises how much of the model runtime is spent in softmax as
the sequence length grows (about 3 % at and below 1024, rising to 38 % at
16384).  The reproduction uses the analytical prefill runtime model of
:class:`~repro.gpu.transformer_model.GpuTransformerModel`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.gpu.spec import A100, GPUS, GpuSpec
from repro.gpu.transformer_model import GpuTransformerModel
from repro.llm.config import LLAMA2_7B, LLAMA2_MODELS, LlamaConfig
from repro.runtime.registry import Experiment, register
from repro.utils.tables import TextTable
from repro.utils.validation import check_in_choices

__all__ = [
    "Fig1Experiment",
    "run_fig1_softmax_proportion",
    "render_fig1",
    "FIG1_SEQUENCE_LENGTHS",
]

#: Sequence lengths reported on the Fig. 1 x-axis.
FIG1_SEQUENCE_LENGTHS: Tuple[int, ...] = (128, 256, 512, 1024, 2048, 4096, 8192, 16384)


def run_fig1_softmax_proportion(
    gpu: GpuSpec = A100,
    model: LlamaConfig = LLAMA2_7B,
    sequence_lengths: Iterable[int] = FIG1_SEQUENCE_LENGTHS,
    batch_size: int = 1,
) -> List[Dict[str, float]]:
    """Softmax runtime share per sequence length (one dict per point)."""
    runtime_model = GpuTransformerModel(gpu, model)
    results = []
    for sequence_length in sequence_lengths:
        breakdown = runtime_model.prefill(batch_size, sequence_length)
        results.append(
            {
                "sequence_length": float(sequence_length),
                "softmax_fraction": breakdown.softmax_fraction,
                "softmax_time_s": breakdown.softmax_time_s,
                "total_time_s": breakdown.total_s,
            }
        )
    return results


def render_fig1(results: List[Dict[str, float]]) -> str:
    """Render the Fig. 1 series as a table."""
    table = TextTable(
        ["sequence length", "softmax share (%)", "softmax time (ms)", "total time (ms)"],
        title="Fig. 1 — softmax runtime proportion (Llama2-7b, A100, prefill)",
    )
    for point in results:
        table.add_row(
            [
                int(point["sequence_length"]),
                100.0 * point["softmax_fraction"],
                1e3 * point["softmax_time_s"],
                1e3 * point["total_time_s"],
            ]
        )
    return table.render()


@register("fig1")
class Fig1Experiment(Experiment):
    """Registry wrapper: Fig. 1 through the uniform runtime contract.

    Config accepts ``gpu`` / ``model`` by *name* (so the CLI can set them
    with ``--set gpu=RTX3090``) in addition to the programmatic spec
    objects, plus ``sequence_lengths`` and ``batch_size``.
    """

    title = "Fig. 1"
    description = "softmax share of Llama2 runtime vs sequence length"
    row_type = None  # rows are plain dicts
    fast_config = {"sequence_lengths": (128, 1024, 16384)}

    def run(self, config=None):
        kwargs = self._config_kwargs(config)
        if isinstance(kwargs.get("gpu"), str):
            kwargs["gpu"] = GPUS[check_in_choices(kwargs["gpu"], tuple(GPUS), "gpu")]
        if isinstance(kwargs.get("model"), str):
            kwargs["model"] = LLAMA2_MODELS[
                check_in_choices(kwargs["model"], tuple(LLAMA2_MODELS), "model")
            ]
        if "sequence_lengths" in kwargs:
            kwargs["sequence_lengths"] = tuple(kwargs["sequence_lengths"])
        return run_fig1_softmax_proportion(**kwargs)

    def render(self, result):
        return render_fig1(result)
