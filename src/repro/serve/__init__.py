"""Softmax-as-a-service: the async serving layer over the fused AP paths.

Three modules:

* :mod:`repro.serve.batching` — pure request-coalescing logic (stacking,
  ragged padding with masked prefixes, FIFO admission sizing);
* :mod:`repro.serve.server` — :class:`SoftmaxServer`, the asyncio request
  server whose admission loop coalesces concurrent requests into one
  fused head-major row space per scheduling tick (continuous batching
  within a ``max_wait_ms`` / ``max_batch_rows`` budget), with an optional
  newline-delimited-JSON TCP front end;
* :mod:`repro.serve.loadgen` — seeded Poisson load generation, the
  closed-loop driver, and the serial one-request-per-pass baseline.

The serving contract: every coalesced response is **bit-identical** to
running its request alone through the same backend.  The ``serve-load``
experiment (:mod:`repro.experiments.serve_load`) sweeps arrival rates and
reports throughput plus p50/p99 latency against the serial baseline.
"""

from repro.serve.batching import (
    CoalescedBatch,
    RequestSlice,
    as_request_matrix,
    coalesce,
    split,
    take_admissible,
)
from repro.serve.loadgen import (
    LoadProfile,
    LoadReport,
    LoadRequest,
    RequestOutcome,
    drive_load,
    run_load,
    run_serial_baseline,
)
from repro.serve.server import (
    ServeResponse,
    ServerClosed,
    ServerHealth,
    ServerStats,
    SoftmaxServer,
)

__all__ = [
    "CoalescedBatch",
    "RequestSlice",
    "as_request_matrix",
    "coalesce",
    "split",
    "take_admissible",
    "LoadProfile",
    "LoadReport",
    "LoadRequest",
    "RequestOutcome",
    "drive_load",
    "run_load",
    "run_serial_baseline",
    "ServeResponse",
    "ServerClosed",
    "ServerHealth",
    "ServerStats",
    "SoftmaxServer",
]
