"""Tests for the floating-point reference softmax implementations."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra.numpy import arrays

from repro.softmax.reference import float_iexp_softmax, log_softmax, softmax


class TestSoftmax:
    def test_sums_to_one(self):
        x = np.random.default_rng(0).normal(0, 3, (5, 17))
        assert np.allclose(softmax(x).sum(axis=-1), 1.0)

    def test_matches_direct_formula_small_inputs(self):
        x = np.array([0.1, 0.2, 0.3])
        expected = np.exp(x) / np.exp(x).sum()
        assert np.allclose(softmax(x), expected)

    def test_stable_for_large_logits(self):
        x = np.array([1e4, 1e4 + 1.0])
        out = softmax(x)
        assert np.all(np.isfinite(out))
        assert out[1] > out[0]

    def test_shift_invariance(self):
        x = np.random.default_rng(1).normal(0, 1, 10)
        assert np.allclose(softmax(x), softmax(x + 123.0))

    def test_axis_argument(self):
        x = np.random.default_rng(2).normal(0, 1, (3, 4))
        assert np.allclose(softmax(x, axis=0).sum(axis=0), 1.0)

    @given(arrays(np.float64, (4, 9),
                  elements=st.floats(min_value=-50, max_value=50)))
    def test_probabilities_property(self, x):
        p = softmax(x)
        assert np.all(p >= 0)
        assert np.allclose(p.sum(axis=-1), 1.0)


class TestLogSoftmax:
    def test_log_of_softmax(self):
        x = np.random.default_rng(3).normal(0, 2, (2, 8))
        assert np.allclose(log_softmax(x), np.log(softmax(x)))

    def test_logsumexp_is_zero(self):
        x = np.random.default_rng(4).normal(0, 2, 16)
        assert np.isclose(np.exp(log_softmax(x)).sum(), 1.0)


class TestFloatIexpSoftmax:
    def test_close_to_exact_softmax(self):
        x = np.random.default_rng(5).normal(0, 2, (4, 64))
        approx = float_iexp_softmax(x)
        exact = softmax(x)
        assert np.max(np.abs(approx - exact)) < 5e-3

    def test_sums_to_one(self):
        x = np.random.default_rng(6).normal(0, 1, 32)
        assert np.isclose(float_iexp_softmax(x).sum(), 1.0)
