"""Benchmark regenerating the AP area figures (0.64 / 0.81 / 1.28 mm^2)."""

from repro.runtime import get_experiment


def test_ap_area(benchmark):
    experiment = get_experiment("area")
    entries = benchmark(experiment.run)
    print()
    print(experiment.render(entries))
    for entry in entries:
        assert abs(entry.measured_area_mm2 - entry.paper_area_mm2) / entry.paper_area_mm2 < 0.10
