"""Tests for the softmax error metrics."""

import numpy as np
import pytest

from repro.softmax.metrics import (
    cosine_similarity,
    kl_divergence,
    max_abs_error,
    mean_abs_error,
    mean_squared_error,
)


class TestElementwiseMetrics:
    def test_zero_for_identical(self):
        x = np.random.default_rng(0).random((3, 4))
        assert max_abs_error(x, x) == 0.0
        assert mean_abs_error(x, x) == 0.0
        assert mean_squared_error(x, x) == 0.0

    def test_known_values(self):
        a = np.array([1.0, 2.0])
        b = np.array([0.0, 4.0])
        assert max_abs_error(a, b) == 2.0
        assert mean_abs_error(a, b) == 1.5
        assert mean_squared_error(a, b) == 2.5

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            max_abs_error(np.zeros(2), np.zeros(3))


class TestKlDivergence:
    def test_zero_for_identical_distributions(self):
        p = np.array([[0.2, 0.3, 0.5]])
        assert kl_divergence(p, p) == pytest.approx(0.0, abs=1e-9)

    def test_positive_for_different_distributions(self):
        p = np.array([[0.9, 0.1]])
        q = np.array([[0.5, 0.5]])
        assert kl_divergence(p, q) > 0

    def test_renormalises_inputs(self):
        p = np.array([[2.0, 2.0]])
        q = np.array([[1.0, 1.0]])
        assert kl_divergence(p, q) == pytest.approx(0.0, abs=1e-9)


class TestCosineSimilarity:
    def test_identical(self):
        x = np.random.default_rng(1).random(10)
        assert cosine_similarity(x, x) == pytest.approx(1.0)

    def test_orthogonal(self):
        assert cosine_similarity(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == pytest.approx(0.0)

    def test_zero_vectors(self):
        assert cosine_similarity(np.zeros(3), np.zeros(3)) == 1.0
        assert cosine_similarity(np.zeros(3), np.ones(3)) == 0.0
