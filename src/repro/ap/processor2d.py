"""Two-dimensional Associative Processor.

The 2D AP (Yantir et al., TVLSI 2018) adds a second set of key/mask/tag
registers operating along the row dimension, so that operations *between
rows* — most importantly the reduction that sums all words of a column —
can be performed without moving data out of the CAM (Section II-B of the
paper).  The SoftmAP dataflow uses this for step 14 (``sum(vapprox)``) and
step 15 (broadcasting the sum back to every row).

:class:`AssociativeProcessor2D` extends the 1D functional simulator with:

* :meth:`reduce_sum` — a logarithmic tree reduction across rows;
* :meth:`broadcast_row` — copying one row's word to all rows.

The functional implementation performs genuine pairwise row additions (so
results are exact and verified against numpy); its cycle accounting uses the
bit-parallel row-operation cost of the 2D AP (one compare/write pair per
column per tree level for the participating row pairs).  The Table II
formulas used for the paper's latency/energy numbers live separately in
:mod:`repro.ap.cost`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ap.fields import Field
from repro.ap.processor import AssociativeProcessor
from repro.utils.validation import check_non_negative_int, check_positive_int

__all__ = ["AssociativeProcessor2D"]


class AssociativeProcessor2D(AssociativeProcessor):
    """Functional 2D AP: the 1D AP plus row-wise reduction/broadcast."""

    def reduce_sum(self, field: Field, dest: Field) -> int:
        """Sum ``field`` over all rows into row 0 of ``dest``.

        ``dest`` must be wide enough for the full sum
        (``field.bits + ceil(log2(rows))``).  The reduction is a binary tree:
        at level ``s`` rows ``j`` and ``j + 2**s`` are added pairwise for all
        ``j`` that are multiples of ``2**(s+1)``.  Returns the number of tree
        levels (useful for cross-checking against the ``log2(L/2)`` term of
        Table II).
        """
        return self.reduce_sum_segmented(field, dest, self.rows)

    def broadcast_row(self, field: Field, source_row: int = 0) -> None:
        """Copy ``field`` of ``source_row`` into every row (step 15)."""
        check_non_negative_int(source_row, "source_row")
        if source_row >= self.rows:
            raise IndexError(f"row {source_row} out of range ({self.rows} rows)")
        bits = self.cam.read_bits(field.columns)[source_row]
        # In the 2D AP a broadcast is a column-parallel write per bit value:
        # rows are all tagged and each column is written with the source bit.
        all_rows = np.ones(self.rows, dtype=bool)
        for column, bit in zip(field.columns, bits):
            self.cam.write({column: int(bit)}, tag=all_rows)

    def reduce_and_broadcast(self, field: Field, dest: Field) -> int:
        """Reduce ``field`` into ``dest`` (row 0) and broadcast the total to
        every row of ``dest`` — steps 14 and 15 of the dataflow fused."""
        levels = self.reduce_sum(field, dest)
        self.broadcast_row(dest, source_row=0)
        return levels

    # ------------------------------------------------------------------ #
    # Segmented (batched) reduction and broadcast                          #
    # ------------------------------------------------------------------ #
    def reduce_sum_segmented(
        self, field: Field, dest: Field, segment_length: int
    ) -> int:
        """Sum ``field`` within each contiguous block of ``segment_length``
        rows into the block's first row of ``dest``.

        This is the batched form of :meth:`reduce_sum`: the CAM holds
        several independent softmax vectors stacked block by block (e.g. a
        ``(batch, seq)`` score tensor flattened to ``batch * seq`` rows) and
        one binary reduction tree runs inside every block simultaneously —
        all blocks' row pairs of one tree level are added in the same 2D AP
        row operation.  Returns the number of tree levels.
        """
        self._check_segments(field, dest, segment_length)
        self.copy(field, dest)
        block_starts = np.arange(0, self.rows, segment_length)
        stride = 1
        level = 0
        while stride < segment_length:
            local = np.arange(stride, segment_length, 2 * stride)
            if local.size:
                sources = (block_starts[:, None] + local[None, :]).ravel()
                targets = sources - stride
                self._row_pair_add(dest, targets, sources)
            stride *= 2
            level += 1
        return level

    def broadcast_segments(self, field: Field, segment_length: int) -> None:
        """Copy each block's first-row ``field`` word to the whole block.

        The 2D AP realises this with two column-parallel writes per bit
        column (one pass tags the rows whose block value is 1, the second
        the rows whose block value is 0), which is what the cycle accounting
        charges.
        """
        self._check_segment_rows(segment_length)
        bits = self.cam.read_bits(field.columns)
        heads = np.repeat(np.arange(0, self.rows, segment_length), segment_length)
        self.cam.load_bits(field.columns, bits[heads])
        # Two compare/write pairs per column (tag-by-value is a compare,
        # like every other tagged pass in the model).
        self.cam.stats.compare_cycles += 2 * field.bits
        self.cam.stats.compared_bits += 2 * field.bits * self.rows
        self.cam.stats.write_cycles += 2 * field.bits
        self.cam.stats.written_bits += field.bits * self.rows
        self.cam.stats.row_writes += field.bits * self.rows

    def reduce_and_broadcast_segments(
        self, field: Field, dest: Field, segment_length: int
    ) -> int:
        """Segmented reduction of ``field`` into ``dest`` followed by a
        per-block broadcast of each block's total — the batched fusion of
        steps 14 and 15 of the dataflow.

        On the vectorized backend the two halves execute as one packed-word
        pass (:meth:`~repro.ap.engine.BitPlaneEngine.reduce_and_broadcast_segments`):
        the broadcast overwrites every row of ``dest`` with its block head,
        so computing each block's total directly is state- and cycle-exact
        while skipping the per-level bit-matrix traffic of the tree — the
        fast path wide fused executions rely on.
        """
        self._check_segments(field, dest, segment_length)
        if self._engine is not None and self._engine.supports_segmented_reduce(
            field, dest
        ):
            self.copy(field, dest)
            return self._engine.reduce_and_broadcast_segments(dest, segment_length)
        levels = self.reduce_sum_segmented(field, dest, segment_length)
        self.broadcast_segments(dest, segment_length)
        return levels

    def _check_segment_rows(self, segment_length: int) -> None:
        """Validate that segments tile the CAM rows exactly."""
        check_positive_int(segment_length, "segment_length")
        if self.rows % segment_length != 0:
            raise ValueError(
                f"rows ({self.rows}) must be a multiple of the segment "
                f"length ({segment_length})"
            )

    def _check_segments(self, field: Field, dest: Field, segment_length: int) -> None:
        """Shared validation of the segmented reduce/broadcast geometry."""
        self._check_segment_rows(segment_length)
        levels = (
            max(1, int(np.ceil(np.log2(segment_length))))
            if segment_length > 1
            else 0
        )
        if dest.bits < field.bits + levels:
            raise ValueError(
                f"destination field {dest.name!r} needs at least "
                f"{field.bits + levels} bits for a {segment_length}-row "
                f"segmented reduction"
            )

    # ------------------------------------------------------------------ #
    # Internals                                                            #
    # ------------------------------------------------------------------ #
    def _row_pair_add(
        self, field: Field, targets: np.ndarray, sources: np.ndarray
    ) -> None:
        """Add the ``field`` word of each source row into its target row.

        The 2D AP selects the two rows with the row-dimension registers and
        applies the addition across all bits; every pair of one tree level
        proceeds in parallel.  The accounting charges one compare and one
        write cycle per bit column per level (bit-parallel row operation).
        """
        if len(targets) == 0:
            return
        bits = self.cam.read_bits(field.columns)
        weights = np.int64(1) << np.arange(field.bits, dtype=np.int64)
        values = (bits.astype(np.int64) * weights[None, :]).sum(axis=1)
        values[targets] = values[targets] + values[sources]
        mask = (np.int64(1) << np.int64(field.bits)) - np.int64(1)
        values &= mask
        new_bits = ((values[:, None] >> np.arange(field.bits)[None, :]) & 1).astype(bool)
        self.cam.load_bits(field.columns, new_bits)
        # Cycle accounting for one tree level of the 2D AP.
        self.cam.stats.compare_cycles += field.bits
        self.cam.stats.write_cycles += field.bits
        self.cam.stats.compared_bits += field.bits * 2 * len(targets)
        self.cam.stats.written_bits += field.bits * len(targets)
        self.cam.stats.row_writes += int(len(targets))
