"""Tests for the Table II cost model and the technology parameters."""

import dataclasses
import math

import numpy as np
import pytest

from repro.ap.cost import ApCostModel, OperationCost
from repro.ap.processor2d import AssociativeProcessor2D
from repro.ap.tech import TECH_16NM, TechnologyParameters


class TestTableIIFormulas:
    @pytest.mark.parametrize("m,expected", [(4, 45), (6, 67), (8, 89)])
    def test_addition(self, m, expected):
        assert ApCostModel(rows=64).addition_cycles(m) == expected  # 2M+8M+M+1

    @pytest.mark.parametrize("m,expected", [(4, 144), (6, 312), (8, 544)])
    def test_multiplication(self, m, expected):
        assert ApCostModel(rows=64).multiplication_cycles(m) == expected  # 2M+8M^2+2M

    def test_reduction_formula(self):
        model = ApCostModel(rows=1024)
        m, words = 6, 2048
        expected = 2 * m + 8 * m + 8 * math.ceil(math.log2(words // 2)) + 1
        assert model.reduction_cycles(m, words) == expected

    @pytest.mark.parametrize("words", [1, 2, 3, 6, 7, 64, 100])
    @pytest.mark.parametrize("words_per_row", [1, 2])
    def test_reduction_levels_match_functional_tree(self, words, words_per_row):
        """The cost model's tree-level count must equal the level count the
        functional 2D AP actually executes for the same row occupancy —
        including non-power-of-two word counts, where the last partly
        filled row still takes part in the tree (ceil, not floor)."""
        model = ApCostModel(rows=words)
        rows = -(-words // words_per_row)
        ap = AssociativeProcessor2D(rows=rows, columns=24)
        src = ap.allocate_field("src", 4)
        dst = ap.allocate_field("dst", 14)
        values = np.arange(rows, dtype=np.int64) % 16
        ap.write_field(src, values)
        levels = ap.reduce_sum_segmented(src, dst, rows)
        assert model.reduction_levels(words, words_per_row) == levels
        assert int(ap.read_field(dst)[0]) == int(values.sum())

    def test_reduction_cycles_use_the_functional_level_count(self):
        model = ApCostModel(rows=64)
        m = 6
        for words in (1, 2, 3, 6, 7, 64, 100):
            levels = model.reduction_levels(words)
            assert model.reduction_cycles(m, words) == 2 * m + 8 * m + 8 * levels + 1

    def test_reduction_cycles_odd_word_counts_not_undercounted(self):
        """5 words occupy 3 rows just like 6 words do; the seed's floor
        division charged one tree level too few."""
        model = ApCostModel(rows=64)
        assert model.reduction_cycles(6, 5) == model.reduction_cycles(6, 6)
        assert model.reduction_levels(5) == 2

    def test_matmul_formula(self):
        model = ApCostModel(rows=64)
        m, j = 8, 64
        expected = 2 * m + 8 * m * m + 8 * math.ceil(math.log2(j)) + 2 * m + math.ceil(math.log2(j))
        assert model.matmul_cycles(m, j) == expected

    def test_subtraction_equals_addition(self):
        model = ApCostModel(rows=64)
        assert model.subtraction_cycles(6) == model.addition_cycles(6)

    def test_division_scales_with_output_bits(self):
        model = ApCostModel(rows=64)
        base = model.division_cycles(12, 28, 0)
        extended = model.division_cycles(12, 28, 12)
        assert extended == 2 * base  # per-output-bit cost, 24 vs 12 output bits
        assert base > 0

    def test_variable_shift_cycles(self):
        model = ApCostModel(rows=64)
        assert model.variable_shift_cycles(10, 4) == 3 * 10 + 4 * 10 * 4

    def test_write_and_copy(self):
        model = ApCostModel(rows=64)
        assert model.write_cycles(6) == 6
        assert model.copy_cycles(6) == 18


class TestCostConversion:
    def test_latency_matches_frequency(self):
        model = ApCostModel(rows=64)
        cost = model.cost_from_cycles("x", 1000)
        assert cost.latency_s == pytest.approx(1000 / TECH_16NM.frequency_hz)

    def test_energy_scales_with_rows(self):
        small = ApCostModel(rows=64).addition(6)
        large = ApCostModel(rows=2048).addition(6)
        assert large.energy_j > small.energy_j
        assert large.latency_s == small.latency_s  # word-parallel

    def test_active_rows_limits_energy(self):
        model = ApCostModel(rows=1024)
        full = model.addition(6)
        partial = model.addition(6, active_rows=1)
        assert partial.energy_j < full.energy_j

    def test_operation_cost_add_and_scale(self):
        a = OperationCost("a", 10, 1e-8, 1e-12)
        b = OperationCost("b", 5, 0.5e-8, 0.5e-12)
        total = a + b
        assert total.cycles == 15
        doubled = a.scaled(2)
        assert doubled.cycles == 20
        with pytest.raises(ValueError):
            a.scaled(-1)
        assert OperationCost.zero().cycles == 0

    def test_negative_cycles_rejected(self):
        with pytest.raises(ValueError):
            ApCostModel(rows=8).cost_from_cycles("x", -1)


class TestAreaAndEnergyPerOp:
    def test_per_head_ap_area_near_paper(self):
        # 2048 rows x 64 columns at 16 nm ~ 0.02 mm^2 per head.
        area = ApCostModel(rows=2048, columns=64).area_mm2()
        assert 0.015 < area < 0.025

    def test_energy_per_op_close_to_table_vi(self):
        value = ApCostModel(rows=2048).energy_per_elementary_op_pj(6)
        assert 0.004 < value < 0.008  # paper: 5.88e-3 pJ

    def test_energy_per_op_with_row_access_is_larger(self):
        model = ApCostModel(rows=2048)
        assert model.energy_per_elementary_op_pj(6, include_row_access=True) > \
            model.energy_per_elementary_op_pj(6)


class TestTechnologyParameters:
    def test_cycle_time(self):
        assert TECH_16NM.cycle_time_s == pytest.approx(1e-9)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            dataclasses.replace(TECH_16NM, frequency_hz=0)
        with pytest.raises(ValueError):
            dataclasses.replace(TECH_16NM, idle_row_leakage_w=-1)
