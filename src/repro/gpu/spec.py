"""GPU hardware specifications.

Datasheet-level parameters of the two GPUs the paper compares against, plus
the model parameters (kernel-launch overhead, bandwidth-efficiency curve,
idle power) that the analytical kernel model needs.  The datasheet numbers
are public; the model parameters are documented assumptions chosen so that
the resulting softmax kernel times and energies reproduce the qualitative
regimes reported by the paper (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["GpuSpec", "A100", "RTX3090", "GPUS"]


@dataclass(frozen=True)
class GpuSpec:
    """Parameters of one GPU.

    Attributes
    ----------
    name:
        Marketing name used in reports.
    memory_bandwidth_bytes_per_s:
        Peak DRAM bandwidth.
    peak_fp16_flops:
        Peak half-precision throughput (tensor cores).
    tdp_w:
        Board power limit.
    idle_power_w:
        Power drawn while a kernel occupies the GPU without saturating it
        (static + clocking overhead).
    kernel_launch_overhead_s:
        Fixed host-side + scheduling latency per kernel launch.
    max_bandwidth_efficiency:
        Fraction of peak bandwidth achievable by the (strided,
        attention-shaped) softmax kernel on a large tensor.
    bandwidth_half_point_bytes:
        Transfer size at which half of the maximum efficiency is reached
        (models the poor utilisation of small tensors).
    streaming_efficiency:
        Fraction of peak bandwidth achieved by large sequential streams
        (weight loading, fused prefill kernels).
    dram_energy_per_byte_j:
        Marginal energy of moving one byte through the memory hierarchy
        (DRAM access + on-chip transport + the compute attributable to it).
    kernel_launch_energy_j:
        Marginal energy of one kernel launch (host work, scheduling and the
        idle-power window it keeps open).
    """

    name: str
    memory_bandwidth_bytes_per_s: float
    peak_fp16_flops: float
    tdp_w: float
    idle_power_w: float
    kernel_launch_overhead_s: float
    max_bandwidth_efficiency: float
    bandwidth_half_point_bytes: float
    streaming_efficiency: float
    dram_energy_per_byte_j: float
    kernel_launch_energy_j: float

    def __post_init__(self) -> None:
        positive = (
            "memory_bandwidth_bytes_per_s",
            "peak_fp16_flops",
            "tdp_w",
            "idle_power_w",
            "kernel_launch_overhead_s",
            "max_bandwidth_efficiency",
            "bandwidth_half_point_bytes",
            "streaming_efficiency",
            "dram_energy_per_byte_j",
            "kernel_launch_energy_j",
        )
        for attribute in positive:
            if getattr(self, attribute) <= 0:
                raise ValueError(f"{attribute} must be > 0")
        if not 0 < self.max_bandwidth_efficiency <= 1:
            raise ValueError("max_bandwidth_efficiency must be in (0, 1]")
        if not 0 < self.streaming_efficiency <= 1:
            raise ValueError("streaming_efficiency must be in (0, 1]")

    def effective_bandwidth(self, bytes_moved: float) -> float:
        """Achievable bandwidth for a transfer of ``bytes_moved`` bytes.

        A saturating curve ``eff = max_eff * b / (b + half_point)`` captures
        the fact that small kernels cannot hide memory latency or fill all
        memory channels.
        """
        if bytes_moved <= 0:
            raise ValueError("bytes_moved must be > 0")
        efficiency = (
            self.max_bandwidth_efficiency
            * bytes_moved
            / (bytes_moved + self.bandwidth_half_point_bytes)
        )
        return self.memory_bandwidth_bytes_per_s * efficiency

    def streaming_bandwidth(self) -> float:
        """Bandwidth achieved by large sequential streams (weight loads)."""
        return self.memory_bandwidth_bytes_per_s * self.streaming_efficiency


#: NVIDIA A100 80GB (SXM): 2039 GB/s HBM2e, 312 TFLOPS FP16, 400 W.
A100 = GpuSpec(
    name="A100",
    memory_bandwidth_bytes_per_s=2.039e12,
    peak_fp16_flops=312e12,
    tdp_w=400.0,
    idle_power_w=80.0,
    kernel_launch_overhead_s=8e-6,
    max_bandwidth_efficiency=0.30,
    bandwidth_half_point_bytes=8e6,
    streaming_efficiency=0.70,
    dram_energy_per_byte_j=0.05e-9,
    kernel_launch_energy_j=2.0e-6,
)

#: NVIDIA GeForce RTX 3090: 936 GB/s GDDR6X, 71 TFLOPS FP16 (tensor), 350 W.
RTX3090 = GpuSpec(
    name="RTX3090",
    memory_bandwidth_bytes_per_s=0.936e12,
    peak_fp16_flops=71e12,
    tdp_w=350.0,
    idle_power_w=60.0,
    kernel_launch_overhead_s=10e-6,
    max_bandwidth_efficiency=0.30,
    bandwidth_half_point_bytes=8e6,
    streaming_efficiency=0.70,
    dram_energy_per_byte_j=0.12e-9,
    kernel_launch_energy_j=2.0e-6,
)

#: The GPUs compared against in the paper, keyed by name.
GPUS: Dict[str, GpuSpec] = {"A100": A100, "RTX3090": RTX3090}
