"""Tests for the compiled engine tier: registry, buffer liveness, executor.

Three layers under test, matching the refactor's split:

* the engine **registry** (``repro.ap.engine``) — registration rules,
  did-you-mean validation, processor-scoped name sets;
* the **buffer-liveness pass** (``repro.mapping.plan.plan_buffers``) —
  scalar folding, dead-write elimination, slot assignment invariants;
* the **scratch-arena executor** (``repro.ap.compiled.CompiledEngine``) —
  bit-identity against the packed interpreter and the bit-serial reference
  across odd shapes and ragged lengths, arena reuse, and thread safety.
"""

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ap import engine as engine_registry
from repro.ap.compiled import CompiledEngine
from repro.ap.engine import (
    ENGINE_NAMES,
    UnknownEngineError,
    canonical_engine_name,
    engine_info,
    engine_names,
    is_plan_engine,
    processor_engine_names,
    register_engine,
    resolve_plan_executor,
)
from repro.mapping.plan import ExecutionPlan, plan_buffers
from repro.mapping.softmap import SoftmAPMapping
from repro.quant.precision import BEST_PRECISION, PrecisionConfig


class TestEngineRegistry:
    def test_builtin_engines_are_registered_in_order(self):
        assert engine_names() == ("reference", "vectorized", "compiled")
        assert ENGINE_NAMES == ("reference", "vectorized", "compiled")

    def test_processor_engines_exclude_plan_only_entries(self):
        assert processor_engine_names() == ("reference", "vectorized")
        assert not engine_info("compiled").supports_processor

    def test_plan_executor_flags(self):
        assert not is_plan_engine("reference")
        assert is_plan_engine("vectorized")
        assert is_plan_engine("compiled")

    def test_resolve_plan_executor_builds_the_compiled_engine(self):
        factory = resolve_plan_executor("compiled")
        executor = factory(ExecutionPlan(sequence_length=8))
        assert isinstance(executor, CompiledEngine)
        with pytest.raises(ValueError, match="no plan executor"):
            resolve_plan_executor("reference")

    def test_duplicate_registration_is_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_engine("compiled", "again")

    def test_registration_validates_its_inputs(self):
        with pytest.raises(TypeError):
            register_engine(123, "not a name")
        with pytest.raises(TypeError):
            register_engine("", "empty name")
        with pytest.raises(ValueError, match="module:attribute"):
            register_engine("broken", "bad ref", plan_executor="noseparator")

    def test_engine_names_is_a_live_view(self):
        """A registered engine must flow through every seam without any
        per-call-site string list being updated — ENGINE_NAMES included."""
        name = "test-live-view-engine"
        register_engine(name, "registry liveness probe")
        try:
            assert name in engine_registry.ENGINE_NAMES
            assert canonical_engine_name(name) == name
        finally:
            # Tests must not leak registry state into the suite.
            engine_registry._ENGINES.pop(name)
        assert name not in engine_registry.ENGINE_NAMES

    def test_canonical_name_scopes_to_processor_engines(self):
        assert canonical_engine_name("compiled") == "compiled"
        with pytest.raises(UnknownEngineError) as excinfo:
            canonical_engine_name("compiled", processor=True)
        assert "reference" in str(excinfo.value)


class TestBufferLiveness:
    @pytest.fixture(scope="class")
    def plan(self):
        return ExecutionPlan(sequence_length=16)

    def test_twelve_vector_fields_fit_four_slots(self, plan):
        buffers = plan.buffers
        assert buffers.num_slots == 4
        vector_fields = (
            {f.name for f in plan.fields}
            - set(buffers.scalar_fields)
            - set(buffers.dead_fields)
        )
        assert set(buffers.slots) == vector_fields

    def test_scalar_constants_are_folded_out(self, plan):
        assert set(plan.buffers.scalar_fields) == {"mu", "vln2", "vc"}

    def test_division_remainder_is_dead(self, plan):
        assert plan.buffers.dead_fields == ("rem",)

    def test_result_field_lives_to_the_end(self, plan):
        assert plan.buffers.last_use["out"] == len(plan.program)

    def test_no_destination_aliases_a_same_op_operand(self, plan):
        """A slot freed at op i must only be reused from op i+1, or an
        in-place destination would clobber an operand it still reads."""
        slots = plan.buffers.slots
        scalars = set(plan.buffers.scalar_fields)
        for op in plan.program:
            operands = {
                name
                for name in (op.a, op.b)
                if name is not None and name not in scalars
            }
            if op.op in ("subtract", "add", "divide"):
                # These mutate an operand in place by design; the executor
                # replicates exactly that, so aliasing is the semantics.
                continue
            if op.dest in slots:
                for operand in operands - {op.dest}:
                    assert slots[op.dest] != slots[operand], op

    def test_liveness_is_consistent_across_precisions(self):
        for m in (4, 6, 8):
            plan = ExecutionPlan(
                precision=PrecisionConfig(m, 0, 16), sequence_length=8
            )
            buffers = plan_buffers(plan.program, plan.fields)
            assert buffers == plan.buffers
            assert buffers.num_slots <= len(buffers.slots)


class TestCompiledParity:
    @settings(max_examples=25, deadline=None)
    @given(
        seq=st.integers(1, 33),          # includes 1 and odd lengths
        batch=st.integers(1, 5),
        ragged=st.booleans(),
        scale=st.sampled_from([0.5, 2.0, 8.0]),
        seed=st.integers(0, 2**16),
    )
    def test_compiled_equals_vectorized_and_reference(
        self, seq, batch, ragged, scale, seed
    ):
        rng = np.random.default_rng(seed)
        plan = ExecutionPlan(sequence_length=seq)
        scores = rng.normal(0.0, scale, size=(batch, seq))
        lengths = rng.integers(1, seq + 1, size=batch) if ragged else None
        compiled = plan.execute(scores, valid_lengths=lengths, engine="compiled")
        vectorized = plan.execute(
            scores, valid_lengths=lengths, engine="vectorized"
        )
        assert np.array_equal(compiled, vectorized)
        if seq <= 9 and batch <= 2:  # the bit-serial sweep is slow
            reference = plan.execute(
                scores, valid_lengths=lengths, engine="reference"
            )
            assert np.array_equal(compiled, reference)

    def test_decode_shape_sweep_is_bit_identical(self, rng):
        """Every 1..T plan shape of an autoregressive decode, on one shared
        mapping (the LRU the decode loop exercises)."""
        mapping = SoftmAPMapping(BEST_PRECISION, sequence_length=16)
        for seq in range(1, 17):
            scores = rng.normal(0.0, 2.0, size=(3, seq))
            assert np.array_equal(
                mapping.execute_functional_batch(scores, backend="compiled"),
                mapping.execute_functional_batch(scores, backend="vectorized"),
            ), seq

    def test_extreme_scores_saturate_identically(self):
        plan = ExecutionPlan(
            precision=PrecisionConfig(8, 0, 8), sequence_length=8
        )
        scores = np.array(
            [[-40.0, 40.0, 0.0, 1e-9, -1e-9, 13.7, -13.7, 0.25]]
        )
        assert np.array_equal(
            plan.execute(scores, engine="compiled"),
            plan.execute(scores, engine="vectorized"),
        )


class TestCompiledEngineRuntime:
    def test_arena_is_reused_across_calls(self, rng):
        plan = ExecutionPlan(sequence_length=32)
        executor = plan.plan_executor("compiled")
        scores = rng.normal(0.0, 2.0, size=(4, 32))
        plan.execute(scores, engine="compiled")
        allocated = executor.arena_bytes
        assert allocated > 0
        for _ in range(5):
            plan.execute(scores, engine="compiled")
        assert executor.arena_bytes == allocated  # no reallocation, no growth
        assert plan.arena_bytes("compiled") == allocated

    def test_arena_grows_geometrically_with_the_workload(self, rng):
        plan = ExecutionPlan(sequence_length=64)
        executor = plan.plan_executor("compiled")
        plan.execute(rng.normal(size=(1, 64)), engine="compiled")
        small = executor.arena_bytes
        plan.execute(rng.normal(size=(64, 64)), engine="compiled")
        grown = executor.arena_bytes
        assert grown > small
        plan.execute(rng.normal(size=(64, 64)), engine="compiled")
        assert executor.arena_bytes == grown

    def test_executor_is_cached_per_engine(self):
        plan = ExecutionPlan(sequence_length=8)
        assert plan.plan_executor("compiled") is plan.plan_executor("compiled")
        assert plan.plan_executor("compiled") is not plan.plan_executor(
            "vectorized"
        )

    def test_concurrent_runs_are_bit_identical(self, rng):
        """Worker threads borrow distinct arenas from the pool: concurrent
        executions must match the serial results exactly."""
        plan = ExecutionPlan(sequence_length=24)
        workloads = [rng.normal(0.0, 2.0, size=(6, 24)) for _ in range(16)]
        expected = [plan.execute(w, engine="vectorized") for w in workloads]

        def run(scores):
            return plan.execute(scores, engine="compiled")

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(run, workloads))
        for got, want in zip(results, expected):
            assert np.array_equal(got, want)

    def test_threaded_cluster_passes_match_serial(self, rng):
        from repro.mapping.cluster import ApCluster

        scores = rng.normal(0.0, 2.0, size=(6, 2, 9))
        lengths = rng.integers(1, 10, size=6)
        serial = ApCluster(
            num_heads=2, sequence_length=9, pass_row_budget=3 * 9
        )
        threaded = ApCluster(
            num_heads=2,
            sequence_length=9,
            pass_row_budget=3 * 9,
            pass_workers=4,
            backend="compiled",
        )
        expected = serial.execute(scores, valid_lengths=lengths)
        got = threaded.execute(scores, valid_lengths=lengths)
        assert np.array_equal(got, expected)
        assert threaded.last_threaded_passes == len(
            threaded.workload_passes(12, 9)
        )
        assert serial.last_threaded_passes == 0

    def test_pass_list_is_cached(self):
        from repro.mapping.cluster import ApCluster

        cluster = ApCluster(num_heads=2, sequence_length=16)
        first = cluster.workload_passes(8, 16)
        assert cluster.workload_passes(8, 16) is first
        assert cluster.workload_passes(8, 8) is not first

    def test_non_packable_plan_falls_back_bit_identically(self, rng):
        """A layout the packed path cannot serve must still accept the
        plan-only engine by falling back to the packed-word AP sweep."""
        plan = ExecutionPlan(sequence_length=8)
        if plan.packable:
            plan.packable = False  # force the fallback path
        scores = rng.normal(0.0, 2.0, size=(2, 8))
        assert np.array_equal(
            plan.execute(scores, engine="compiled"),
            plan.execute(scores, engine="vectorized"),
        )
