"""Parity suite for KV-cache autoregressive decoding.

The contract under test: ``model.generate`` with ``use_cache=True``
(incremental per-layer KV-cache decode) emits **identical token ids** to
``use_cache=False`` (naive re-prefill of the growing sequence every step)
— for greedy and seeded temperature/top-k sampling, ragged prompt
batches, every sweep-legal backend, both functional AP engines and the
legacy row-by-row softmax contract.  Plus unit coverage of the
:class:`~repro.llm.generate.KVCache` growth and the argument validation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.llm.config import LlamaConfig
from repro.llm.dataset import make_corpus
from repro.llm.generate import KVCache, _sample_next_tokens
from repro.llm.model import TinyLlamaModel
from repro.llm.trainer import Trainer
from repro.quant.precision import PrecisionConfig
from repro.runtime.backend import resolve_backend
from repro.experiments.table3_4_perplexity import PRECISION_SWEEP_BACKENDS

PRECISION = PrecisionConfig(6, 0, 16)


@pytest.fixture(scope="module")
def trained():
    corpus = make_corpus(paragraphs=40, seed=2, max_vocab=64)
    config = LlamaConfig("tiny-gen", 2, 2, 2, 32, 64,
                         corpus.tokenizer.vocab_size, 48)
    model = TinyLlamaModel(config, seed=0)
    Trainer(model, corpus.train_tokens, segment_length=32,
            learning_rate=3e-3, seed=0).train(30)
    return model, corpus


def _backend_fn(model, name, engine=None):
    return resolve_backend(
        name,
        precision=PRECISION,
        num_heads=model.config.num_heads,
        sequence_length=model.config.max_context,
        engine=engine,
    ).softmax_fn()


def _prompts(model, corpus, batch, width):
    rows = [
        corpus.validation_tokens[row * width : (row + 1) * width]
        for row in range(batch)
    ]
    return np.stack(rows)


class TestGreedyParity:
    def test_uniform_batch_matches_reprefill(self, trained):
        model, corpus = trained
        prompts = _prompts(model, corpus, 4, 10)
        cached = model.generate(prompts, 12, use_cache=True)
        baseline = model.generate(prompts, 12, use_cache=False)
        assert cached.shape == (4, 12)
        assert cached.dtype == np.int64
        assert np.array_equal(cached, baseline)

    def test_ragged_batch_matches_reprefill(self, trained):
        model, corpus = trained
        prompts = _prompts(model, corpus, 4, 12)
        lengths = np.array([3, 12, 7, 12])
        cached = model.generate(prompts, 10, valid_lengths=lengths,
                                use_cache=True)
        baseline = model.generate(prompts, 10, valid_lengths=lengths,
                                  use_cache=False)
        assert np.array_equal(cached, baseline)

    def test_single_prompt_squeezes(self, trained):
        model, corpus = trained
        prompt = corpus.validation_tokens[:8]
        generated = model.generate(prompt, 6)
        assert generated.shape == (6,)
        batched = model.generate(prompt[None, :], 6)
        assert np.array_equal(generated, batched[0])

    def test_greedy_continues_the_prefill_argmax(self, trained):
        """The first generated token is the argmax of the prompt's
        last-position logits — generate agrees with infer on step one."""
        model, corpus = trained
        prompts = _prompts(model, corpus, 3, 9)
        logits = model.infer(prompts)
        first = np.argmax(logits[:, -1], axis=-1)
        generated = model.generate(prompts, 1)
        assert np.array_equal(generated[:, 0], first)

    def test_prompt_length_one(self, trained):
        model, corpus = trained
        prompts = _prompts(model, corpus, 3, 1)
        assert np.array_equal(
            model.generate(prompts, 5, use_cache=True),
            model.generate(prompts, 5, use_cache=False),
        )


class TestBackendParity:
    @pytest.mark.parametrize("backend", PRECISION_SWEEP_BACKENDS)
    def test_sweep_backends_match_reprefill(self, trained, backend):
        model, corpus = trained
        prompts = _prompts(model, corpus, 2, 8)
        fn = _backend_fn(model, backend)
        cached = model.generate(prompts, 6, softmax_fn=fn, use_cache=True)
        baseline = model.generate(prompts, 6, softmax_fn=fn, use_cache=False)
        assert np.array_equal(cached, baseline)

    @pytest.mark.parametrize("backend", PRECISION_SWEEP_BACKENDS)
    def test_sweep_backends_ragged_match_reprefill(self, trained, backend):
        model, corpus = trained
        prompts = _prompts(model, corpus, 3, 9)
        lengths = np.array([4, 9, 6])
        fn = _backend_fn(model, backend)
        cached = model.generate(prompts, 4, valid_lengths=lengths,
                                softmax_fn=fn, use_cache=True)
        baseline = model.generate(prompts, 4, valid_lengths=lengths,
                                  softmax_fn=fn, use_cache=False)
        assert np.array_equal(cached, baseline)

    @pytest.mark.parametrize("engine", ["vectorized", "reference", "compiled"])
    def test_cluster_engines_match_reprefill(self, trained, engine):
        model, corpus = trained
        prompts = _prompts(model, corpus, 2, 6)
        fn = _backend_fn(model, "ap-cluster", engine=engine)
        cached = model.generate(prompts, 3, softmax_fn=fn, use_cache=True)
        baseline = model.generate(prompts, 3, softmax_fn=fn, use_cache=False)
        assert np.array_equal(cached, baseline)

    def test_rowwise_legacy_callable_matches_reprefill(self, trained):
        from repro.softmax.integer_softmax import IntegerSoftmax

        model, corpus = trained
        fn = IntegerSoftmax(PRECISION)  # plain 1-D callable contract
        assert not getattr(fn, "supports_batch", False)
        prompts = _prompts(model, corpus, 2, 7)
        cached = model.generate(prompts, 4, softmax_fn=fn, use_cache=True)
        baseline = model.generate(prompts, 4, softmax_fn=fn, use_cache=False)
        assert np.array_equal(cached, baseline)

    def test_backend_selector_matches_resolved_fn(self, trained):
        model, corpus = trained
        prompts = _prompts(model, corpus, 2, 8)
        via_backend = model.generate(
            prompts,
            5,
            backend=resolve_backend(
                "integer",
                precision=PRECISION,
                num_heads=model.config.num_heads,
                sequence_length=model.config.max_context,
            ),
        )
        via_fn = model.generate(
            prompts, 5, softmax_fn=_backend_fn(model, "integer")
        )
        assert np.array_equal(via_backend, via_fn)


class TestSampling:
    def test_seeded_sampling_matches_reprefill(self, trained):
        model, corpus = trained
        prompts = _prompts(model, corpus, 4, 8)
        cached = model.generate(prompts, 8, temperature=0.8, top_k=5,
                                seed=7, use_cache=True)
        baseline = model.generate(prompts, 8, temperature=0.8, top_k=5,
                                  seed=7, use_cache=False)
        assert np.array_equal(cached, baseline)

    def test_same_seed_reproduces(self, trained):
        model, corpus = trained
        prompts = _prompts(model, corpus, 2, 8)
        first = model.generate(prompts, 8, temperature=1.0, seed=3)
        second = model.generate(prompts, 8, temperature=1.0, seed=3)
        assert np.array_equal(first, second)

    def test_different_seeds_differ(self, trained):
        model, corpus = trained
        prompts = _prompts(model, corpus, 4, 8)
        first = model.generate(prompts, 10, temperature=1.5, seed=3)
        second = model.generate(prompts, 10, temperature=1.5, seed=4)
        assert not np.array_equal(first, second)

    def test_top_k_one_is_greedy(self, trained):
        model, corpus = trained
        prompts = _prompts(model, corpus, 3, 8)
        greedy = model.generate(prompts, 6, temperature=0.0)
        top1 = model.generate(prompts, 6, temperature=0.7, top_k=1, seed=11)
        assert np.array_equal(greedy, top1)

    def test_top_k_restricts_candidates(self, rng):
        logits = np.array([[0.0, 5.0, 1.0, 4.0, -2.0]])
        for seed in range(20):
            sampler = np.random.default_rng(seed)
            token = _sample_next_tokens(logits, 1.0, 2, sampler)
            assert token[0] in (1, 3)  # only the two top-k candidates

    def test_greedy_draws_nothing_from_the_rng(self, trained):
        """temperature=0 must not consume RNG draws, so greedy results are
        seed-independent."""
        model, corpus = trained
        prompts = _prompts(model, corpus, 2, 8)
        assert np.array_equal(
            model.generate(prompts, 5, seed=0),
            model.generate(prompts, 5, seed=123),
        )


class TestKVCache:
    def test_growth_preserves_contents(self, rng):
        cache = KVCache(num_layers=2, batch=3, num_heads=2, head_dim=4,
                        capacity=4)
        keys = rng.normal(size=(3, 2, 4, 4))
        values = rng.normal(size=(3, 2, 4, 4))
        cache.write(0, slice(None), 0, keys, values)
        cache.ensure_capacity(5)
        assert cache.capacity == 8  # at least doubles
        assert np.array_equal(cache.keys(0, slice(None), 4), keys)
        assert np.array_equal(cache.values(0, slice(None), 4), values)
        # The other layer grew too and stays zero.
        assert np.all(cache.keys(1, slice(None), 8) == 0.0)

    def test_ensure_capacity_noop_when_large_enough(self):
        cache = KVCache(num_layers=1, batch=1, num_heads=1, head_dim=2,
                        capacity=8)
        before = cache.keys(0, slice(None), 8)
        cache.ensure_capacity(8)
        assert cache.capacity == 8
        assert cache.keys(0, slice(None), 8) is not None
        assert before.base is not None  # still a view of the same storage

    def test_write_beyond_capacity_rejected(self, rng):
        cache = KVCache(num_layers=1, batch=1, num_heads=1, head_dim=2,
                        capacity=4)
        block = rng.normal(size=(1, 1, 2, 2))
        with pytest.raises(ValueError, match="ensure_capacity"):
            cache.write(0, slice(None), 3, block, block)

    def test_row_subset_writes(self, rng):
        cache = KVCache(num_layers=1, batch=4, num_heads=1, head_dim=2,
                        capacity=4)
        rows = np.array([1, 3])
        block = rng.normal(size=(2, 1, 3, 2))
        cache.write(0, rows, 0, block, block)
        assert np.array_equal(cache.keys(0, rows, 3), block)
        assert np.all(cache.keys(0, np.array([0, 2]), 3) == 0.0)


class TestValidation:
    def test_mutually_exclusive_softmax_selectors(self, trained):
        model, _ = trained
        with pytest.raises(ValueError, match="either softmax_fn or backend"):
            model.generate(np.arange(4), 2, softmax_fn=lambda s: s,
                           backend="float")

    def test_prompt_shape(self, trained):
        model, _ = trained
        with pytest.raises(ValueError, match="prompt batch"):
            model.generate(np.zeros((2, 2, 2), dtype=np.int64), 2)
        with pytest.raises(ValueError, match="at least one token"):
            model.generate(np.zeros((2, 0), dtype=np.int64), 2)

    def test_max_new_tokens_positive(self, trained):
        model, _ = trained
        with pytest.raises(ValueError, match="max_new_tokens"):
            model.generate(np.arange(4), 0)

    def test_temperature_non_negative(self, trained):
        model, _ = trained
        with pytest.raises(ValueError, match="temperature"):
            model.generate(np.arange(4), 2, temperature=-0.5)

    def test_top_k_positive(self, trained):
        model, _ = trained
        with pytest.raises(ValueError, match="top_k"):
            model.generate(np.arange(4), 2, temperature=1.0, top_k=0)

    def test_context_budget_enforced(self, trained):
        model, _ = trained
        width = model.config.max_context - 2
        with pytest.raises(ValueError, match="max context"):
            model.generate(np.zeros(width, dtype=np.int64), 3)

    def test_valid_lengths_strict(self, trained):
        model, _ = trained
        prompts = np.zeros((2, 4), dtype=np.int64)
        with pytest.raises(ValueError, match="one entry per segment"):
            model.generate(prompts, 2, valid_lengths=np.array([[4], [4]]))
        with pytest.raises(ValueError, match="1..T"):
            model.generate(prompts, 2, valid_lengths=np.array([0, 4]))


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    batch=st.integers(1, 3),
    width=st.integers(1, 12),
    new_tokens=st.integers(1, 6),
    data=st.data(),
)
def test_hypothesis_ragged_greedy_parity(
    generate_hypothesis_model, seed, batch, width, new_tokens, data
):
    """Property: for any ragged prompt batch, KV-cache decode and the
    re-prefill baseline generate identical tokens (greedy, float path)."""
    model = generate_hypothesis_model
    lengths = np.array(
        [data.draw(st.integers(1, width)) for _ in range(batch)], dtype=np.int64
    )
    lengths[0] = width  # at least one full row pins the batch width
    rng = np.random.default_rng(seed)
    prompts = rng.integers(0, model.config.vocab_size, size=(batch, width))
    cached = model.generate(prompts, new_tokens, valid_lengths=lengths,
                            use_cache=True)
    baseline = model.generate(prompts, new_tokens, valid_lengths=lengths,
                              use_cache=False)
    assert np.array_equal(cached, baseline)


@pytest.fixture(scope="module")
def generate_hypothesis_model():
    corpus = make_corpus(paragraphs=20, seed=5, max_vocab=48)
    config = LlamaConfig("tiny-gen-hyp", 1, 2, 2, 16, 32,
                         corpus.tokenizer.vocab_size, 24)
    model = TinyLlamaModel(config, seed=1)
    Trainer(model, corpus.train_tokens, segment_length=16,
            learning_rate=3e-3, seed=1).train(10)
    return model
