"""Smoke tests for the ``python -m repro`` command-line interface."""

import json
import os
import pathlib
import subprocess
import sys

import pytest

from repro.runtime.cli import main

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def _run_module(*args):
    """Run ``python -m repro ...`` exactly as a user would."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
        timeout=300,
    )


class TestModuleInvocation:
    def test_list_names_every_artefact(self):
        completed = _run_module("list")
        assert completed.returncode == 0, completed.stderr
        for name in ("table1", "table3_4", "figs6_8", "cluster-parity"):
            assert name in completed.stdout

    def test_run_table1_writes_parseable_json(self, tmp_path):
        artifact = tmp_path / "table1.json"
        completed = _run_module("run", "table1", "--json", str(artifact))
        assert completed.returncode == 0, completed.stderr
        assert "Table I" in completed.stdout
        payload = json.loads(artifact.read_text())
        assert payload["experiment"] == "table1"
        assert payload["schema"] == 1
        assert len(payload["result"]["rows"]) == 9


class TestPackageImport:
    def test_import_repro_stays_light(self):
        """`import repro` must not drag the runtime/mapping/gpu stack in;
        the runtime exports resolve lazily (PEP 562 module __getattr__)."""
        completed = subprocess.run(
            [
                sys.executable,
                "-c",
                "import sys, repro;"
                "assert 'repro.runtime' not in sys.modules;"
                "assert 'repro.mapping' not in sys.modules;"
                "assert 'repro.gpu' not in sys.modules;"
                "repro.resolve_backend;"  # lazy export still reachable
                "assert 'repro.runtime' in sys.modules",
            ],
            capture_output=True,
            text=True,
            env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
            timeout=120,
        )
        assert completed.returncode == 0, completed.stderr


class TestInProcess:
    def test_backends_lists_every_backend(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        for name in ("float", "integer", "ap", "ap-batch", "ap-cluster",
                     "gpu-analytical"):
            assert name in out

    def test_run_with_backend_and_set_overrides(self, capsys, tmp_path):
        artifact = tmp_path / "table2.json"
        code = main([
            "run", "table2", "--backend", "vectorized",
            "--set", "precisions=(6,)", "--json", str(artifact),
        ])
        assert code == 0
        assert "Table II" in capsys.readouterr().out
        payload = json.loads(artifact.read_text())
        assert payload["config"]["backend"] == "vectorized"
        assert payload["config"]["precisions"] == [6]
        assert all(row["precision"] == 6 for row in payload["result"]["rows"])

    def test_fast_config_and_quiet(self, capsys):
        assert main(["run", "fidelity", "--fast", "--quiet"]) == 0
        assert capsys.readouterr().out == ""

    def test_workers_flag_reaches_experiment_config(self, capsys, tmp_path):
        """--workers lands in the config (and the sweep still runs)."""
        artifact = tmp_path / "table3_4.json"
        code = main([
            "run", "table3_4", "--fast", "--workers", "2",
            "--quiet", "--json", str(artifact),
        ])
        assert code == 0
        payload = json.loads(artifact.read_text())
        assert payload["config"]["workers"] == 2
        rows = payload["result"]["rows"]
        assert rows and all("seconds" in row for row in rows)

    def test_workers_on_unsupported_experiment_exits_2(self, capsys):
        assert main(["run", "fig1", "--workers", "2"]) == 2
        assert "takes no workers" in capsys.readouterr().err
        # --set workers=N must hit the same gate, not a raw TypeError.
        assert main(["run", "fidelity", "--set", "workers=2"]) == 2
        assert "takes no workers" in capsys.readouterr().err

    def test_out_writes_bare_to_dict_payload(self, capsys, tmp_path):
        """--out writes exactly Experiment.to_dict(result) (no artifact
        envelope) and round-trips through from_dict."""
        from repro.runtime import get_experiment

        out_file = tmp_path / "table1-result.json"
        assert main(["run", "table1", "--quiet", "--out", str(out_file)]) == 0
        payload = json.loads(out_file.read_text())
        assert set(payload) == {"experiment", "rows"}  # bare to_dict shape
        assert payload["experiment"] == "table1"
        experiment = get_experiment("table1")
        rendered = experiment.render(experiment.from_dict(payload))
        assert "Table I" in rendered

    def test_out_and_json_coexist(self, capsys, tmp_path):
        out_file = tmp_path / "result.json"
        artifact = tmp_path / "artifact.json"
        code = main([
            "run", "fidelity", "--fast",
            "--out", str(out_file), "--json", str(artifact),
        ])
        assert code == 0
        stdout = capsys.readouterr().out
        assert f"wrote {out_file}" in stdout
        assert f"wrote {artifact}" in stdout
        bare = json.loads(out_file.read_text())
        wrapped = json.loads(artifact.read_text())
        assert wrapped["result"] == bare  # envelope wraps the same payload

    def test_unknown_experiment_exits_2_with_suggestion(self, capsys):
        assert main(["run", "tabel1"]) == 2
        assert "did you mean 'table1'" in capsys.readouterr().err

    def test_unknown_backend_exits_2_with_suggestion(self, capsys):
        assert main(["run", "table3_4", "--backend", "ap-clstr"]) == 2
        assert "did you mean 'ap-cluster'" in capsys.readouterr().err

    def test_backend_on_backendless_experiment_exits_2(self, capsys):
        assert main(["run", "table1", "--backend", "integer"]) == 2
        assert "takes no --backend" in capsys.readouterr().err

    def test_malformed_set_exits_2(self, capsys):
        assert main(["run", "table1", "--set", "oops"]) == 2
        assert "KEY=VALUE" in capsys.readouterr().err


class TestServeCommand:
    def test_load_demo_prints_sweep_table(self, capsys):
        code = main([
            "serve", "--rate", "4000", "--requests", "24",
            "--backend", "ap-batch", "--num-heads", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Serving sweep: backend ap-batch" in out
        assert "identical" in out
        assert "yes" in out

    def test_unknown_backend_exits_2(self, capsys):
        assert main(["serve", "--backend", "ap-clstr"]) == 2
        assert "did you mean 'ap-cluster'" in capsys.readouterr().err


class TestBenchCommand:
    def test_list_names_every_benchmark(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("llm_speed", "llm_generate", "plan_fusion", "serve"):
            assert name in out

    def test_fast_serve_run_updates_trajectory_and_trend(self, capsys, tmp_path):
        code = main([
            "bench", "serve", "--fast",
            "--dir", str(tmp_path), "--pr", "test-pr",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert f"updated {tmp_path / 'BENCH_serve.json'}" in out
        assert "Trajectory: serve" in out
        payload = json.loads((tmp_path / "BENCH_serve.json").read_text())
        (entry,) = payload["entries"]
        assert entry["pr"] == "test-pr"
        assert entry["fast"] is True  # toy numbers are labelled as such
        assert entry["responses_identical"] is True

    def test_trend_only_reads_without_running(self, capsys, tmp_path):
        # No trajectory file yet: trend-only reports that, runs nothing.
        assert main(["bench", "serve", "--trend-only", "--dir", str(tmp_path)]) == 0
        assert "no trajectory file" in capsys.readouterr().out

    def test_trend_renders_committed_trajectories(self, capsys):
        # The committed repo-root files must all render as trend tables.
        assert main(["bench", "--trend-only", "--dir", str(REPO_ROOT)]) == 0
        out = capsys.readouterr().out
        for name in ("llm_speed", "llm_generate", "plan_fusion", "serve"):
            assert f"Trajectory: {name}" in out
        assert "PR8" in out

    def test_unknown_benchmark_exits_2_before_running(self, capsys):
        assert main(["bench", "serve", "nosuch"]) == 2
        assert "unknown benchmark 'nosuch'" in capsys.readouterr().err
