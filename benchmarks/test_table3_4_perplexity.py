"""Benchmarks regenerating Tables III & IV — precision sensitivity of the
integer-only softmax, driven through the experiment registry.

Three views are produced (see DESIGN.md §4):

* the end-to-end perplexity sweep on the trained substitute model
  (registry ``table3_4``);
* the softmax-fidelity sweep at the paper's 2048-token row length, which
  exposes the ``N`` (sum headroom) effect directly (registry ``fidelity``);
* the AP-cluster path (registry ``cluster-parity`` plus a ``table3_4`` run
  with ``softmax_backend="ap-cluster"``): the same perplexity evaluation
  with the attention softmax executed entirely on the functional multi-AP
  cluster, pinned bit-identical to the software pipeline and >= 5x faster
  than the pre-cluster row-by-row replacement path.
"""

from repro.experiments.table3_4_perplexity import train_reference_model
from repro.runtime import get_experiment


def test_table3_4_perplexity_sweep(benchmark):
    experiment = get_experiment("table3_4")
    points = benchmark.pedantic(
        experiment.run,
        args=(
            {"m_values": (6, 8), "n_values": (8, 16), "vcorr_deltas": (0,),
             "include_m4": True, "training_steps": 200},
        ),
        iterations=1,
        rounds=1,
    )
    print()
    print(experiment.render(points))
    values = {p.label: p.perplexity for p in points}
    fp = values["FP softmax"]
    # Integer softmax never improves on the FP baseline beyond noise.  At
    # this reduced scale the absolute gaps are small (EXPERIMENTS.md
    # discusses the muted sensitivity of the tiny substitute model); the
    # companion fidelity sweep below reproduces the paper's ordering.
    assert all(v >= fp - 0.05 for label, v in values.items() if label != "FP softmax")
    assert values["M=4, vcorr=M, N=16"] >= values["M=8, vcorr=M, N=16"] - 0.05


def test_table3_4_ap_cluster_bit_identical_and_faster(benchmark):
    """Acceptance pin for the fused cluster: on a (4 heads x 64 seq) score
    tensor the fused compiled-plan path must be bit-identical to the
    pure-software IntegerSoftmax pipeline (and to both AP loop baselines),
    >= 3x faster than the PR 2 per-head loop, and >= 5x faster than the
    row-by-row replacement path (one per-vector AP execution per row)."""
    experiment = get_experiment("cluster-parity")
    report = benchmark.pedantic(experiment.run, iterations=1, rounds=1)
    print()
    print(experiment.render(report))
    assert report.bit_identical, "cluster diverged from the software pipeline"
    assert report.fused_speedup >= 3.0, (
        f"fused pass only {report.fused_speedup:.1f}x faster than the "
        f"per-head loop"
    )
    assert report.speedup >= 5.0, f"cluster only {report.speedup:.1f}x faster"


def test_table3_4_perplexity_runs_ap_backed_end_to_end(benchmark):
    """The perplexity study itself (not just the softmax kernel) runs with
    every attention probability produced by the simulated AP cluster."""
    model, corpus = train_reference_model(seed=0, training_steps=120)
    experiment = get_experiment("table3_4")
    points = benchmark.pedantic(
        experiment.run,
        args=(
            {"model": model, "corpus": corpus, "m_values": (6,),
             "n_values": (16,), "include_m4": False,
             "softmax_backend": "ap-cluster"},
        ),
        iterations=1,
        rounds=1,
    )
    print()
    print(experiment.render(points))
    values = {p.label: p.perplexity for p in points}
    fp = values.pop("FP softmax")
    assert values, "sweep produced no AP-backed configurations"
    # The AP-backed integer softmax degrades (never beats) the FP baseline,
    # like every other replacement path.
    assert all(v >= fp - 0.05 for v in values.values())


def test_table3_4_softmax_fidelity(benchmark):
    experiment = get_experiment("fidelity")
    points = benchmark.pedantic(
        experiment.run,
        args=({"sequence_length": 2048, "rows": 32},),
        iterations=1,
        rounds=1,
    )
    print()
    print(experiment.render(points))
    by_key = {(p.precision.input_bits, p.precision.vcorr_delta,
               p.precision.sum_extra_bits): p for p in points}
    # N = 8 truncates the sum at 2048 tokens; N >= 16 does not (Table III).
    assert by_key[(6, 0, 8)].mass_error > by_key[(6, 0, 16)].mass_error
    assert by_key[(6, 0, 16)].mass_error == by_key[(6, 0, 20)].mass_error
    # vcorr width never matters (Table III columns are identical).
    assert by_key[(6, 1, 16)].kl_to_fp == by_key[(6, 0, 16)].kl_to_fp
    # M = 8 tracks the FP softmax better than M = 6, which beats M = 4.
    assert by_key[(8, 0, 16)].kl_to_fp < by_key[(6, 0, 16)].kl_to_fp < by_key[(4, 0, 16)].kl_to_fp
