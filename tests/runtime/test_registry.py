"""Tests for the experiment registry and the JSON round trip of every
registered experiment result."""

import json

import pytest

import repro.experiments  # noqa: F401  (registers every experiment)
from repro.runtime.registry import (
    Experiment,
    UnknownExperimentError,
    experiment_names,
    get_experiment,
    iter_experiments,
    register,
)

#: Registry names every paper artefact must be reachable under.
EXPECTED_NAMES = {
    "fig1",
    "table1",
    "table2",
    "table3_4",
    "fidelity",
    "cluster-parity",
    "llm-speed",
    "llm-generate",
    "figs6_8",
    "table5",
    "table6",
    "area",
}


class TestRegistry:
    def test_every_paper_artefact_is_registered(self):
        assert EXPECTED_NAMES <= set(experiment_names())

    def test_get_experiment_returns_singletons(self):
        assert get_experiment("table1") is get_experiment("table1")

    def test_unknown_name_suggests_closest(self):
        with pytest.raises(UnknownExperimentError, match="did you mean 'table2'"):
            get_experiment("tabel2")

    def test_every_experiment_has_metadata(self):
        for experiment in iter_experiments():
            assert experiment.name
            assert experiment.title
            assert experiment.description

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):

            @register("table1")
            class Clash(Experiment):  # pragma: no cover - never runs
                def run(self, config=None):
                    return []

                def render(self, result):
                    return ""


@pytest.mark.parametrize("name", sorted(EXPECTED_NAMES))
def test_json_round_trip_renders_identically(name):
    """Result -> to_dict -> json -> from_dict -> render must be identical
    to rendering the original result, for every registered experiment."""
    experiment = get_experiment(name)
    result = experiment.run(experiment.fast_config)
    rendered = experiment.render(result)
    assert rendered  # every experiment renders something

    payload = json.loads(json.dumps(experiment.to_dict(result)))
    assert payload["experiment"] == name
    restored = experiment.from_dict(payload)
    assert experiment.render(restored) == rendered


def test_round_trip_preserves_precision_configs():
    experiment = get_experiment("fidelity")
    result = experiment.run(experiment.fast_config)
    restored = experiment.from_dict(
        json.loads(json.dumps(experiment.to_dict(result)))
    )
    for original, rebuilt in zip(result, restored):
        assert rebuilt.precision == original.precision
        assert rebuilt.kl_to_fp == original.kl_to_fp  # exact float round trip


def test_scalar_result_round_trip():
    experiment = get_experiment("cluster-parity")
    result = experiment.run(experiment.fast_config)
    restored = experiment.from_dict(
        json.loads(json.dumps(experiment.to_dict(result)))
    )
    assert restored == result  # frozen dataclass: field-wise equality
    assert restored.bit_identical
