"""Tests for the analytical GPU models."""

import dataclasses

import pytest

from repro.gpu.softmax_model import GpuSoftmaxModel
from repro.gpu.spec import A100, GPUS, RTX3090
from repro.gpu.transformer_model import GpuTransformerModel
from repro.llm.config import LLAMA2_70B, LLAMA2_7B


class TestGpuSpec:
    def test_registry(self):
        assert set(GPUS) == {"A100", "RTX3090"}

    def test_a100_has_more_bandwidth(self):
        assert A100.memory_bandwidth_bytes_per_s > RTX3090.memory_bandwidth_bytes_per_s

    def test_effective_bandwidth_monotone_in_size(self):
        assert A100.effective_bandwidth(1e9) > A100.effective_bandwidth(1e5)

    def test_effective_bandwidth_below_peak(self):
        assert A100.effective_bandwidth(1e12) < A100.memory_bandwidth_bytes_per_s

    def test_streaming_bandwidth(self):
        assert A100.streaming_bandwidth() == pytest.approx(
            A100.memory_bandwidth_bytes_per_s * A100.streaming_efficiency
        )

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            dataclasses.replace(A100, tdp_w=0)
        with pytest.raises(ValueError):
            dataclasses.replace(A100, max_bandwidth_efficiency=1.5)
        with pytest.raises(ValueError):
            A100.effective_bandwidth(0)


class TestSoftmaxKernelModel:
    def test_latency_has_launch_floor(self):
        model = GpuSoftmaxModel(A100)
        tiny = model.decode_cost(1, 32, 128)
        assert tiny.latency_s >= A100.kernel_launch_overhead_s

    def test_latency_grows_with_tensor(self):
        model = GpuSoftmaxModel(A100)
        assert model.decode_cost(32, 32, 4096).latency_s > model.decode_cost(1, 32, 128).latency_s

    def test_energy_grows_with_tensor(self):
        model = GpuSoftmaxModel(A100)
        assert model.decode_cost(32, 32, 4096).energy_j > model.decode_cost(1, 32, 128).energy_j

    def test_rtx3090_slower_than_a100_on_large_tensors(self):
        a = GpuSoftmaxModel(A100).decode_cost(32, 32, 4096)
        r = GpuSoftmaxModel(RTX3090).decode_cost(32, 32, 4096)
        assert r.latency_s > a.latency_s

    def test_prefill_much_larger_than_decode(self):
        model = GpuSoftmaxModel(A100)
        assert model.prefill_cost(1, 32, 1024).bytes_moved == \
            1024 * model.decode_cost(1, 32, 1024).bytes_moved

    def test_edp_property(self):
        cost = GpuSoftmaxModel(A100).decode_cost(1, 32, 1024)
        assert cost.edp == pytest.approx(cost.latency_s * cost.energy_j)

    def test_invalid_arguments(self):
        model = GpuSoftmaxModel(A100)
        with pytest.raises(ValueError):
            model.decode_cost(0, 32, 128)


class TestTransformerModel:
    def test_fig1_fraction_rises_with_sequence_length(self):
        model = GpuTransformerModel(A100, LLAMA2_7B)
        fractions = [model.softmax_fraction(1, seq) for seq in (1024, 4096, 16384)]
        assert fractions[0] < fractions[1] < fractions[2]

    def test_fig1_endpoints_in_paper_ballpark(self):
        model = GpuTransformerModel(A100, LLAMA2_7B)
        assert model.softmax_fraction(1, 1024) < 0.10          # paper: 3.34%
        assert 0.20 < model.softmax_fraction(1, 16384) < 0.55  # paper: 38%

    def test_amdahl_end_to_end_reduction(self):
        model = GpuTransformerModel(A100, LLAMA2_70B)
        breakdown = model.prefill(1, 4096)
        reduction = breakdown.end_to_end_reduction(6.7)
        # Paper: a 6.7x softmax speedup cuts Llama2-70b runtime by 10.71%.
        assert 0.02 < reduction < 0.20
        assert breakdown.with_softmax_speedup(6.7).total_s < breakdown.total_s

    def test_decode_breakdown_positive(self):
        breakdown = GpuTransformerModel(A100, LLAMA2_7B).decode_step(1, 2048)
        assert breakdown.total_s > 0
        assert 0 < breakdown.softmax_fraction < 1

    def test_invalid_speedup(self):
        breakdown = GpuTransformerModel(A100, LLAMA2_7B).prefill(1, 1024)
        with pytest.raises(ValueError):
            breakdown.with_softmax_speedup(0)
