"""Tests for the functional multi-AP cluster (ApCluster)."""

import numpy as np
import pytest

from repro.mapping.cluster import ApCluster, ClusterSoftmaxFn
from repro.mapping.softmap import SoftmAPMapping
from repro.quant.precision import BEST_PRECISION, PrecisionConfig
from repro.softmax.integer_softmax import IntegerSoftmax


def software_pipeline(precision=BEST_PRECISION):
    """The software pipeline the AP dataflow matches bit for bit (raw
    Barrett quotient, exact block sum)."""
    return IntegerSoftmax(precision, barrett_correction=False)


class TestExecute:
    def test_bit_identical_to_software_pipeline(self):
        rng = np.random.default_rng(1)
        scores = rng.normal(0, 2, (6, 4, 16))
        cluster = ApCluster(num_heads=4, sequence_length=16)
        assert np.array_equal(cluster.execute(scores), software_pipeline()(scores))

    def test_reference_backend_agrees_with_vectorized(self):
        rng = np.random.default_rng(2)
        scores = rng.normal(0, 2, (2, 2, 8))
        cluster = ApCluster(num_heads=2, sequence_length=8)
        fast = cluster.execute(scores, backend="vectorized")
        slow = cluster.execute(scores, backend="reference")
        assert np.array_equal(fast, slow)

    def test_sharding_matches_per_head_mappings(self):
        """Head h's block must be exactly what head h's own mapping
        produces — the cluster only shards, it never mixes heads."""
        rng = np.random.default_rng(3)
        scores = rng.normal(0, 2, (3, 2, 12))
        cluster = ApCluster(num_heads=2, sequence_length=12)
        out = cluster.execute(scores)
        for head in range(2):
            direct = cluster.head_mapping(head).execute_functional_batch(
                scores[:, head, :]
            )
            assert np.array_equal(out[:, head, :], direct)

    def test_valid_lengths_shared_and_per_head(self):
        rng = np.random.default_rng(4)
        scores = rng.normal(0, 2, (4, 3, 10))
        lengths = np.array([1, 5, 10, 7])
        cluster = ApCluster(num_heads=3, sequence_length=10)
        shared = cluster.execute(scores, valid_lengths=lengths)
        per_head = cluster.execute(
            scores, valid_lengths=np.repeat(lengths[:, None], 3, axis=1)
        )
        assert np.array_equal(shared, per_head)
        for b, length in enumerate(lengths):
            assert np.all(shared[b, :, length:] == 0.0)
            expected = software_pipeline()(scores[b, :, :length])
            assert np.array_equal(shared[b, :, :length], expected)

    def test_shape_and_capacity_validation(self):
        cluster = ApCluster(num_heads=2, sequence_length=8)
        with pytest.raises(ValueError):
            cluster.execute(np.zeros((4, 8)))  # not 3-D
        with pytest.raises(ValueError):
            cluster.execute(np.zeros((1, 3, 8)))  # wrong head count
        with pytest.raises(ValueError):
            cluster.execute(np.zeros((1, 2, 9)))  # beyond provisioned length
        with pytest.raises(ValueError):
            cluster.execute(np.zeros((2, 2, 8)), valid_lengths=np.zeros((3,)))

    def test_shorter_sequences_accepted(self):
        rng = np.random.default_rng(5)
        scores = rng.normal(0, 2, (2, 2, 5))
        cluster = ApCluster(num_heads=2, sequence_length=64)
        assert np.array_equal(cluster.execute(scores), software_pipeline()(scores))

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ApCluster(num_heads=0)
        with pytest.raises(ValueError):
            ApCluster(num_heads=2, backend="cuda")
        with pytest.raises(ValueError):
            ApCluster(num_heads=2, division="newton")
        with pytest.raises(IndexError):
            ApCluster(num_heads=2, sequence_length=8).head_mapping(2)


class TestSoftmaxFnAdapter:
    def test_head_major_stacking_round_trip(self):
        rng = np.random.default_rng(6)
        heads, batch, seq = 3, 4, 9
        scores = rng.normal(0, 2, (batch, heads, seq))
        cluster = ApCluster(num_heads=heads, sequence_length=seq)
        fn = cluster.softmax_fn()
        assert isinstance(fn, ClusterSoftmaxFn) and fn.supports_batch
        stacked = scores.transpose(1, 0, 2).reshape(heads * batch, seq)
        out = fn(stacked)
        assert np.array_equal(
            out.reshape(heads, batch, seq).transpose(1, 0, 2),
            cluster.execute(scores),
        )

    def test_valid_lengths_forwarded(self):
        rng = np.random.default_rng(7)
        heads, t = 2, 6
        scores = rng.normal(0, 2, (heads * t, t))
        lengths = np.tile(np.arange(1, t + 1), heads)
        fn = ApCluster(num_heads=heads, sequence_length=t).softmax_fn()
        out = fn(scores, valid_lengths=lengths)
        software = software_pipeline()
        for row in range(heads * t):
            length = lengths[row]
            assert np.array_equal(out[row, :length], software(scores[row, :length]))
            assert np.all(out[row, length:] == 0.0)

    def test_one_dimensional_convenience(self):
        rng = np.random.default_rng(8)
        scores = rng.normal(0, 2, 11)
        fn = ApCluster(num_heads=4, sequence_length=11).softmax_fn()
        assert np.array_equal(fn(scores), software_pipeline()(scores))

    def test_one_dimensional_path_honours_capacity_and_lengths(self):
        rng = np.random.default_rng(9)
        fn = ApCluster(num_heads=4, sequence_length=8).softmax_fn()
        with pytest.raises(ValueError):
            fn(np.zeros(9))  # beyond the provisioned length
        scores = rng.normal(0, 2, 8)
        out = fn(scores, valid_lengths=np.array([3]))
        assert np.all(out[3:] == 0.0)
        assert np.array_equal(out[:3], software_pipeline()(scores[:3]))
        with pytest.raises(ValueError):
            fn(scores, valid_lengths=np.array([3, 4]))

    def test_rejects_row_counts_not_divisible_by_heads(self):
        fn = ApCluster(num_heads=3, sequence_length=8).softmax_fn()
        with pytest.raises(ValueError):
            fn(np.zeros((4, 8)))
        with pytest.raises(ValueError):
            fn(np.zeros((2, 3, 8)))


class TestCostAndSchedule:
    def test_concurrency_accounting(self):
        cluster = ApCluster(num_heads=8, sequence_length=256)
        per_head = SoftmAPMapping(BEST_PRECISION, 256, backend="vectorized").cost()
        cost = cluster.cost()
        assert cost.latency_s == pytest.approx(per_head.latency_s)  # max over heads
        assert cost.cycles == pytest.approx(per_head.cycles)
        assert cost.energy_j == pytest.approx(8 * per_head.energy_j)  # sum
        assert cost.area_mm2 == pytest.approx(8 * per_head.area_mm2)

    def test_batch_scales_energy_not_latency(self):
        cluster = ApCluster(num_heads=4, sequence_length=128)
        one = cluster.cost(batch=1)
        many = cluster.cost(batch=16)
        assert many.energy_j == pytest.approx(16 * one.energy_j)
        assert many.latency_s == one.latency_s
        assert many.cycles == one.cycles

    def test_runtime_sequence_length(self):
        cluster = ApCluster(num_heads=4, sequence_length=1024)
        short = cluster.cost(sequence_length=128)
        full = cluster.cost()
        assert short.energy_j < full.energy_j
        with pytest.raises(ValueError):
            cluster.cost(sequence_length=2048)

    def test_schedule_pipelines_load_under_compute(self):
        cluster = ApCluster(num_heads=4, sequence_length=256)
        single = cluster.schedule(1)
        assert single.latency_s == pytest.approx(
            single.load_latency_s + single.compute_latency_s
        )
        assert single.latency_s == pytest.approx(cluster.cost().latency_s)
        many = cluster.schedule(8)
        assert many.latency_s < many.sequential_latency_s
        assert many.pipeline_speedup > 1.0
        assert many.energy_j == pytest.approx(8 * single.energy_j)
        # Makespan formula: load + compute + (n-1) * max(load, compute).
        expected = (
            many.load_latency_s
            + many.compute_latency_s
            + 7 * max(many.load_latency_s, many.compute_latency_s)
        )
        assert many.latency_s == pytest.approx(expected)

    def test_schedule_load_excludes_the_sum_broadcast(self):
        """Step 15 (broadcast of the sum) is a Write but depends on the same
        batch's reduction, so it must be charged as compute, not as
        preloadable operand loading."""
        from repro.mapping.dataflow import StepKind

        cluster = ApCluster(num_heads=2, sequence_length=256)
        per_head = cluster.cost().per_head
        preloadable = sum(
            s.cost.latency_s
            for s in per_head.steps
            if s.step.kind is StepKind.WRITE and s.step.elementwise
        )
        all_writes = sum(
            s.cost.latency_s
            for s in per_head.steps
            if s.step.kind is StepKind.WRITE
        )
        schedule = cluster.schedule(1)
        assert schedule.load_latency_s == pytest.approx(preloadable)
        assert schedule.load_latency_s < all_writes

    def test_schedule_validation(self):
        cluster = ApCluster(num_heads=2, sequence_length=64)
        with pytest.raises(ValueError):
            cluster.schedule(0)
        with pytest.raises(ValueError):
            cluster.cost(batch=0)
