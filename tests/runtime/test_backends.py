"""Tests for the unified softmax-backend API (repro.runtime.backend)."""

import numpy as np
import pytest

from repro.gpu.softmax_model import GpuSoftmaxModel
from repro.gpu.spec import A100, RTX3090
from repro.llm.perplexity import (
    ap_cluster_softmax_fn,
    evaluate_perplexity,
    integer_softmax_fn,
)
from repro.mapping.cluster import ApCluster
from repro.mapping.softmap import SoftmAPMapping
from repro.quant.precision import BEST_PRECISION, PrecisionConfig
from repro.runtime.backend import (
    BACKEND_NAMES,
    BackendSpec,
    SoftmaxBackend,
    UnknownBackendError,
    canonical_backend_name,
    resolve_backend,
)
from repro.softmax.integer_softmax import IntegerSoftmax
from repro.softmax.reference import softmax

# This suite deliberately exercises the deprecated integer_softmax_fn /
# ap_cluster_softmax_fn shims (legacy-vs-new parity pins); the warning
# itself is pinned in tests/llm/test_infer.py.
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


@pytest.fixture
def scores(rng):
    return rng.normal(0.0, 2.0, size=(6, 16))


@pytest.fixture
def lengths():
    return np.array([1, 5, 16, 3, 2, 8])


class TestResolution:
    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_every_name_resolves(self, name):
        backend = resolve_backend(name, num_heads=2, sequence_length=16)
        assert isinstance(backend, SoftmaxBackend)
        assert backend.spec.name == name

    def test_aliases_resolve_to_canonical_names(self):
        assert canonical_backend_name("software") == "integer"
        assert canonical_backend_name("software-batched") == "integer"
        assert canonical_backend_name("fp") == "float"
        assert canonical_backend_name("gpu") == "gpu-analytical"

    def test_unknown_name_suggests_closest(self):
        with pytest.raises(UnknownBackendError, match="did you mean 'ap-cluster'"):
            resolve_backend("ap-clstr")
        with pytest.raises(UnknownBackendError, match="did you mean 'integer'"):
            canonical_backend_name("intger")

    def test_spec_round_trip_and_overrides(self):
        spec = BackendSpec(name="software", precision=PrecisionConfig(8, 0, 16))
        assert spec.name == "integer"  # aliases canonicalise eagerly
        backend = resolve_backend(spec)
        assert backend.spec is spec
        overridden = resolve_backend(spec, precision=PrecisionConfig(4, 0, 16))
        assert overridden.spec.precision.input_bits == 4

    def test_instances_pass_through(self):
        backend = resolve_backend("float")
        assert resolve_backend(backend) is backend
        with pytest.raises(ValueError):
            resolve_backend(backend, sequence_length=32)

    def test_third_party_protocol_backends_pass_through(self, scores):
        """Anything satisfying the SoftmaxBackend protocol must resolve —
        the protocol is the stated extension point for new backends."""
        from repro.runtime.backend import BackendTelemetry, SoftmaxResult

        class ConstantBackend:
            def __init__(self):
                self.spec = BackendSpec(name="float")
                self.telemetry = BackendTelemetry()

            def run(self, scores, valid_lengths=None):
                return SoftmaxResult(probabilities=np.asarray(scores) * 0.0)

            def softmax_fn(self):
                return lambda s: np.asarray(s) * 0.0

        backend = ConstantBackend()
        assert resolve_backend(backend) is backend

    def test_bad_engine_and_cluster_without_heads(self):
        with pytest.raises(ValueError):
            resolve_backend("ap-batch", engine="cuda")
        with pytest.raises(ValueError, match="num_heads"):
            resolve_backend("ap-cluster", sequence_length=16)


class TestProbabilityParity:
    """Every backend family must agree bit for bit with its legacy path."""

    def test_float_matches_reference_softmax(self, scores):
        result = resolve_backend("float").run(scores)
        assert np.array_equal(result.probabilities, softmax(scores))
        assert result.cost is None and result.cycles is None

    def test_integer_matches_software_pipeline(self, scores):
        backend = resolve_backend("integer", precision=BEST_PRECISION)
        expected = IntegerSoftmax(BEST_PRECISION)(scores)
        assert np.array_equal(backend.run(scores).probabilities, expected)

    def test_integer_masked_matches_per_row_prefixes(self, scores, lengths):
        backend = resolve_backend("integer")
        out = backend.run(scores, valid_lengths=lengths).probabilities
        software = IntegerSoftmax(BEST_PRECISION)
        for i, length in enumerate(lengths):
            assert np.array_equal(out[i, :length], software(scores[i, :length]))
            assert np.all(out[i, length:] == 0.0)

    def test_ap_batch_matches_mapping_and_raw_barrett(self, scores):
        backend = resolve_backend("ap-batch", sequence_length=16)
        out = backend.run(scores).probabilities
        mapping = SoftmAPMapping(
            BEST_PRECISION, sequence_length=16, backend="vectorized"
        )
        assert np.array_equal(out, mapping.execute_functional_batch(scores))
        raw = IntegerSoftmax(BEST_PRECISION, barrett_correction=False)(scores)
        assert np.array_equal(out, raw)

    def test_ap_row_matches_ap_batch(self, scores, lengths):
        row = resolve_backend("ap", sequence_length=16)
        batch = resolve_backend("ap-batch", sequence_length=16)
        assert np.array_equal(
            row.run(scores).probabilities, batch.run(scores).probabilities
        )
        assert np.array_equal(
            row.run(scores, valid_lengths=lengths).probabilities,
            batch.run(scores, valid_lengths=lengths).probabilities,
        )

    def test_ap_cluster_matches_legacy_adapter(self, rng):
        heads, batch, seq = 3, 4, 12
        tensor = rng.normal(0.0, 2.0, size=(batch, heads, seq))
        head_major = tensor.transpose(1, 0, 2).reshape(heads * batch, seq)
        cluster = ApCluster(num_heads=heads, sequence_length=seq)
        legacy = cluster.softmax_fn()(head_major)
        backend = resolve_backend("ap-cluster", num_heads=heads, sequence_length=seq)
        assert np.array_equal(backend.run(head_major).probabilities, legacy)
        # The 3-D entry point agrees with the cluster's native execute().
        assert np.array_equal(
            backend.run(tensor).probabilities, cluster.execute(tensor)
        )

    def test_gpu_analytical_probabilities_are_float(self, scores):
        backend = resolve_backend("gpu-analytical", num_heads=2)
        result = backend.run(scores)
        assert np.array_equal(result.probabilities, softmax(scores))

    def test_one_dimensional_vectors(self, rng):
        vector = rng.normal(0.0, 2.0, size=11)
        raw = IntegerSoftmax(BEST_PRECISION, barrett_correction=False)(vector)
        for name in ("ap", "ap-batch"):
            out = resolve_backend(name, sequence_length=11).run(vector)
            assert out.probabilities.shape == vector.shape
            assert np.array_equal(out.probabilities, raw)
        cluster = resolve_backend("ap-cluster", num_heads=2, sequence_length=11)
        assert np.array_equal(cluster.run(vector).probabilities, raw)


class TestCostTelemetry:
    def test_ap_costs_attached(self, scores):
        backend = resolve_backend("ap-batch", sequence_length=16)
        result = backend.run(scores)
        assert result.cost is not None and result.cycles > 0
        assert result.cost.latency_s > 0 and result.cost.energy_j > 0
        assert result.cost.edp == pytest.approx(
            result.cost.latency_s * result.cost.energy_j
        )

    def test_ap_batch_energy_scales_with_rows_not_cycles(self, scores):
        backend = resolve_backend("ap-batch", sequence_length=16)
        one = backend.run(scores[:1])
        six = backend.run(scores)
        assert six.cycles == one.cycles
        assert six.cost.energy_j == pytest.approx(6 * one.cost.energy_j)

    def test_cluster_cost_uses_concurrency_accounting(self, rng):
        heads, batch, seq = 4, 2, 16
        tensor = rng.normal(0.0, 2.0, size=(batch, heads, seq))
        backend = resolve_backend("ap-cluster", num_heads=heads, sequence_length=seq)
        result = backend.run(tensor)
        expected = backend.cluster.cost(sequence_length=seq, batch=batch)
        assert result.cost.latency_s == pytest.approx(expected.latency_s)
        assert result.cost.energy_j == pytest.approx(expected.energy_j)

    def test_cluster_one_dimensional_charges_one_head_only(self, rng):
        """A 1-D vector executes on head 0 alone; its cost must be one
        per-head pass, independent of the cluster width."""
        vector = rng.normal(0.0, 2.0, size=16)
        wide = resolve_backend("ap-cluster", num_heads=4, sequence_length=16)
        narrow = resolve_backend("ap-cluster", num_heads=1, sequence_length=16)
        wide_result = wide.run(vector)
        narrow_result = narrow.run(vector)
        assert wide_result.cost.energy_j == pytest.approx(
            narrow_result.cost.energy_j
        )
        assert wide_result.cost.area_mm2 == pytest.approx(
            narrow_result.cost.area_mm2
        )
        assert wide_result.cycles == narrow_result.cycles

    def test_gpu_cost_matches_kernel_model(self, scores):
        backend = resolve_backend(
            "gpu-analytical", num_heads=2, options={"gpu": "RTX3090"}
        )
        result = backend.run(scores)
        kernel = GpuSoftmaxModel(RTX3090).decode_cost(3, 2, 16)
        assert result.cost.latency_s == pytest.approx(kernel.latency_s)
        assert result.cost.energy_j == pytest.approx(kernel.energy_j)

    def test_gpu_cost_exact_for_indivisible_row_counts(self, rng):
        """Rows not divisible by num_heads must still be costed exactly
        (no flooring): a (6, seq) tensor moves 6 rows, not 4."""
        backend = resolve_backend("gpu-analytical", num_heads=4)
        six = backend.run(rng.normal(0.0, 2.0, size=(6, 16)))
        kernel = GpuSoftmaxModel(A100).decode_cost(6, 1, 16)
        assert six.cost.energy_j == pytest.approx(kernel.energy_j)
        four = backend.run(rng.normal(0.0, 2.0, size=(4, 16)))
        assert six.cost.energy_j > four.cost.energy_j

    def test_telemetry_accumulates_and_resets(self, scores):
        backend = resolve_backend("ap-batch", sequence_length=16)
        backend.run(scores)
        backend.run(scores)
        assert backend.telemetry.calls == 2
        assert backend.telemetry.rows == 12
        assert backend.telemetry.energy_j > 0
        backend.telemetry.reset()
        assert backend.telemetry.calls == 0 and backend.telemetry.energy_j == 0.0

    def test_cluster_shim_exposes_runtime_telemetry(self, rng):
        cluster = ApCluster(num_heads=2, sequence_length=8)
        fn = cluster.softmax_fn()
        fn(rng.normal(0.0, 2.0, size=(4, 8)))
        telemetry = fn.runtime_backend().telemetry
        assert telemetry.calls == 1 and telemetry.energy_j > 0


class TestLegacyShims:
    def test_integer_softmax_fn_unbatched_has_no_batch_flag(self, rng):
        fn = integer_softmax_fn(PrecisionConfig(8, 0, 16))
        assert not getattr(fn, "supports_batch", False)
        vector = rng.normal(0.0, 2.0, size=9)
        assert np.array_equal(fn(vector), IntegerSoftmax(PrecisionConfig(8, 0, 16))(vector))

    def test_integer_softmax_fn_batched_matches_unbatched(self, scores):
        config = PrecisionConfig(6, 0, 16)
        batched = integer_softmax_fn(config, batched=True)
        assert batched.supports_batch
        unbatched = integer_softmax_fn(config)
        rows = np.stack([unbatched(row) for row in scores])
        assert np.array_equal(batched(scores), rows)

    def test_ap_cluster_softmax_fn_matches_backend(self, rng):
        heads, t = 2, 6
        scores = rng.normal(0.0, 2.0, size=(heads * t, t))
        config = PrecisionConfig(6, 0, 16)
        legacy = ap_cluster_softmax_fn(heads, config, sequence_length=t)
        backend = resolve_backend(
            "ap-cluster", num_heads=heads, precision=config, sequence_length=t
        )
        assert np.array_equal(legacy(scores), backend.run(scores).probabilities)


class TestModelIntegration:
    @pytest.fixture(scope="class")
    def trained(self):
        from repro.experiments.table3_4_perplexity import train_reference_model

        return train_reference_model(training_steps=40)

    def test_forward_backend_matches_softmax_fn(self, trained):
        model, corpus = trained
        tokens = corpus.validation_tokens[:24]
        config = PrecisionConfig(8, 0, 16)
        via_fn = model.forward(
            tokens, softmax_fn=integer_softmax_fn(config, batched=True)
        ).numpy()
        via_backend = model.forward(
            tokens, backend=BackendSpec(name="integer", precision=config)
        ).numpy()
        assert np.array_equal(via_fn, via_backend)
        with pytest.raises(ValueError):
            model.forward(tokens, softmax_fn=integer_softmax_fn(config), backend="integer")

    def test_perplexity_ap_cluster_backend_parity_pinned(self, trained):
        """Acceptance pin: the 'ap-cluster' backend reached through the new
        runtime API must be bit-identical (identical perplexity float) to
        the legacy ap_cluster_softmax_fn path for one perplexity point."""
        model, corpus = trained
        tokens = corpus.validation_tokens[:97]
        config = PrecisionConfig(8, 0, 16)
        legacy = evaluate_perplexity(
            model,
            tokens,
            segment_length=48,
            softmax_fn=ap_cluster_softmax_fn(
                num_heads=model.config.num_heads,
                precision=config,
                sequence_length=model.config.max_context,
            ),
        )
        unified = evaluate_perplexity(
            model,
            tokens,
            segment_length=48,
            backend=BackendSpec(name="ap-cluster", precision=config),
        )
        assert unified == legacy  # exact float equality, not approx

    def test_perplexity_sweep_rejects_precision_ignoring_backends(self):
        """The Tables III/IV sweep varies PrecisionConfig per row; backends
        that ignore it (float, gpu-analytical) would silently report the FP
        baseline everywhere and must be rejected before training starts."""
        from repro.experiments.table3_4_perplexity import run_perplexity_sweep

        for name in ("float", "fp", "gpu-analytical"):
            with pytest.raises(ValueError, match="ignores the per-point"):
                run_perplexity_sweep(softmax_backend=name)

    def test_perplexity_rejects_both_selectors(self, trained):
        model, corpus = trained
        with pytest.raises(ValueError):
            evaluate_perplexity(
                model,
                corpus.validation_tokens[:10],
                segment_length=8,
                softmax_fn=integer_softmax_fn(BEST_PRECISION),
                backend="integer",
            )
