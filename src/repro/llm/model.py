"""Tiny Llama-architecture decoder-only transformer in numpy.

The model mirrors the structure of a Llama2 decoder block (Fig. 2 of the
paper): RMSNorm -> multi-head causal self-attention -> residual -> RMSNorm
-> SwiGLU feed-forward -> residual, with a final RMSNorm and a linear
output head.  Two deliberate simplifications versus the full Llama2
architecture are documented in DESIGN.md: learned absolute position
embeddings replace rotary embeddings, and the model is small enough to
train on the synthetic corpus in seconds.

The attention softmax is pluggable: during training the differentiable
floating-point softmax is used; during evaluation an arbitrary callable
(e.g. :class:`~repro.softmax.integer_softmax.IntegerSoftmax`) can be
substituted for it, which is exactly how the SoftmAP hardware would see the
scores (the AP is handed only the valid keys of each query).  Two
replacement contracts are supported:

* a plain callable mapping one 1-D score vector to probabilities — applied
  row by row over each query's causally-valid prefix (the original, slow
  contract);
* a *batched* callable (attribute ``supports_batch = True``) mapping a
  head-major ``(rows, seq)`` score matrix to probabilities of the same
  shape, receiving the per-row causal prefix lengths via a
  ``valid_lengths`` keyword and returning zeros at the masked positions.
  The model then issues **one** call per layer covering every head and
  query row — the shape :class:`~repro.mapping.cluster.ApCluster` shards
  across its per-head APs.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.llm.config import LlamaConfig, TINY_LLAMA
from repro.nn.autograd import Parameter, Tensor, no_grad
from repro.nn.functional import (
    add,
    cross_entropy,
    embedding,
    matmul,
    mul,
    rms_norm,
    scale,
    silu,
    softmax_op,
)

__all__ = ["TinyLlamaModel", "SoftmaxFn"]

#: A softmax replacement: maps a score vector (1-D numpy array) to
#: probabilities of the same length.  Callables carrying the attribute
#: ``supports_batch = True`` instead receive a head-major ``(rows, seq)``
#: score matrix plus a ``valid_lengths`` keyword (one causal prefix length
#: per row) and return a ``(rows, seq)`` probability matrix with zeros at
#: the masked positions.
SoftmaxFn = Callable[[np.ndarray], np.ndarray]


class TinyLlamaModel:
    """A small decoder-only transformer with Llama-style blocks.

    Parameters
    ----------
    config:
        Model shape; defaults to :data:`~repro.llm.config.TINY_LLAMA`.
    seed:
        Seed of the weight initialisation.
    """

    def __init__(self, config: LlamaConfig = TINY_LLAMA, seed: int = 0) -> None:
        self.config = config
        rng = np.random.default_rng(seed)
        d = config.hidden_size
        h = config.num_heads
        hd = config.head_dim
        f = config.intermediate_size
        v = config.vocab_size

        def init(*shape):
            return Parameter(rng.normal(0.0, 0.02, size=shape))

        self.token_embedding = init(v, d)
        self.position_embedding = init(config.max_context, d)
        self.layers: List[dict] = []
        for _ in range(config.num_layers):
            layer = {
                "attn_norm": Parameter(np.ones(d)),
                "wq": [init(d, hd) for _ in range(h)],
                "wk": [init(d, hd) for _ in range(h)],
                "wv": [init(d, hd) for _ in range(h)],
                "wo": [init(hd, d) for _ in range(h)],
                "ffn_norm": Parameter(np.ones(d)),
                "w_gate": init(d, f),
                "w_up": init(d, f),
                "w_down": init(f, d),
            }
            self.layers.append(layer)
        self.final_norm = Parameter(np.ones(d))
        self.output_head = init(d, v)

    # ------------------------------------------------------------------ #
    # Parameters                                                           #
    # ------------------------------------------------------------------ #
    def parameters(self) -> List[Parameter]:
        """All trainable parameters (for the optimiser)."""
        params: List[Parameter] = [
            self.token_embedding,
            self.position_embedding,
            self.final_norm,
            self.output_head,
        ]
        for layer in self.layers:
            params.extend([layer["attn_norm"], layer["ffn_norm"],
                           layer["w_gate"], layer["w_up"], layer["w_down"]])
            for key in ("wq", "wk", "wv", "wo"):
                params.extend(layer[key])
        return params

    def parameter_count(self) -> int:
        """Total number of scalar parameters."""
        return int(sum(p.data.size for p in self.parameters()))

    # ------------------------------------------------------------------ #
    # Forward                                                              #
    # ------------------------------------------------------------------ #
    def forward(
        self,
        tokens: np.ndarray,
        softmax_fn: Optional[SoftmaxFn] = None,
        backend: Optional[object] = None,
    ) -> Tensor:
        """Compute next-token logits for a 1-D token id sequence.

        Parameters
        ----------
        tokens:
            Integer token ids of shape ``(T,)`` with ``T <= max_context``.
        softmax_fn:
            Optional replacement for the attention softmax, applied row by
            row over each query's causally-valid prefix.  Must only be used
            for evaluation (no gradients flow through it).
        backend:
            Optional replacement attention softmax selected through the
            unified runtime API — a backend name, a
            :class:`~repro.runtime.backend.BackendSpec` or a resolved
            :class:`~repro.runtime.backend.SoftmaxBackend`; the model's
            head count and context width fill in unspecified spec fields.
            Mutually exclusive with ``softmax_fn``.
        """
        if backend is not None:
            if softmax_fn is not None:
                raise ValueError("pass either softmax_fn or backend, not both")
            # Imported lazily: the base substrate must stay importable
            # without pulling the whole runtime/mapping/gpu stack in.
            from repro.runtime.backend import resolve_model_backend

            softmax_fn = resolve_model_backend(
                backend, self.config.num_heads, self.config.max_context
            ).softmax_fn()
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.ndim != 1:
            raise ValueError("forward expects a 1-D token sequence")
        t = tokens.shape[0]
        if t > self.config.max_context:
            raise ValueError(
                f"sequence of length {t} exceeds max context {self.config.max_context}"
            )
        causal_mask = np.triu(np.full((t, t), -1e30), k=1)
        scale_factor = 1.0 / np.sqrt(self.config.head_dim)

        positions = np.arange(t)
        x = add(
            embedding(self.token_embedding, tokens),
            embedding(self.position_embedding, positions),
        )
        for layer in self.layers:
            x = add(x, self._attention(x, layer, causal_mask, scale_factor, softmax_fn))
            x = add(x, self._feed_forward(x, layer))
        x = rms_norm(x, self.final_norm)
        return matmul(x, self.output_head)

    def loss(
        self,
        tokens: np.ndarray,
        softmax_fn: Optional[SoftmaxFn] = None,
        backend: Optional[object] = None,
    ) -> Tensor:
        """Mean next-token cross entropy on a token sequence."""
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.shape[0] < 2:
            raise ValueError("need at least two tokens to form a prediction target")
        logits = self.forward(tokens[:-1], softmax_fn=softmax_fn, backend=backend)
        return cross_entropy(logits, tokens[1:])

    # ------------------------------------------------------------------ #
    # Blocks                                                               #
    # ------------------------------------------------------------------ #
    def _attention(
        self,
        x: Tensor,
        layer: dict,
        causal_mask: np.ndarray,
        scale_factor: float,
        softmax_fn: Optional[SoftmaxFn],
    ) -> Tensor:
        normed = rms_norm(x, layer["attn_norm"])
        # Phase 1: per-head scores and values (the score tensors of every
        # head must exist before a batched replacement softmax can shard
        # them across the cluster in a single call).
        head_scores: List[Tensor] = []
        head_values: List[Tensor] = []
        for head in range(self.config.num_heads):
            q = matmul(normed, layer["wq"][head])
            k = matmul(normed, layer["wk"][head])
            head_values.append(matmul(normed, layer["wv"][head]))
            head_scores.append(scale(matmul(q, k, transpose_b=True), scale_factor))

        # Phase 2: attention probabilities for every head.
        if softmax_fn is None:
            head_probabilities = [
                softmax_op(scores, mask=causal_mask) for scores in head_scores
            ]
        elif getattr(softmax_fn, "supports_batch", False):
            head_probabilities = self._apply_batched_replacement_softmax(
                [scores.data for scores in head_scores], softmax_fn
            )
        else:
            head_probabilities = [
                Tensor(self._apply_replacement_softmax(scores.data, softmax_fn))
                for scores in head_scores
            ]

        # Phase 3: per-head context and output projection.
        head_outputs: Optional[Tensor] = None
        for head in range(self.config.num_heads):
            context = matmul(head_probabilities[head], head_values[head])
            projected = matmul(context, layer["wo"][head])
            head_outputs = projected if head_outputs is None else add(head_outputs, projected)
        return head_outputs

    def _feed_forward(self, x: Tensor, layer: dict) -> Tensor:
        normed = rms_norm(x, layer["ffn_norm"])
        gate = silu(matmul(normed, layer["w_gate"]))
        up = matmul(normed, layer["w_up"])
        return matmul(mul(gate, up), layer["w_down"])

    @staticmethod
    def _apply_replacement_softmax(
        scores: np.ndarray, softmax_fn: SoftmaxFn
    ) -> np.ndarray:
        """Apply a replacement softmax row by row over the causal prefix.

        Row ``i`` of the score matrix may only attend to keys ``0..i``; the
        replacement softmax (e.g. the integer-only approximation) is handed
        exactly that prefix, and future positions receive probability zero.
        """
        t = scores.shape[0]
        probabilities = np.zeros_like(scores)
        for i in range(t):
            probabilities[i, : i + 1] = softmax_fn(scores[i, : i + 1])
        return probabilities

    @staticmethod
    def _apply_batched_replacement_softmax(
        score_matrices: List[np.ndarray], softmax_fn: SoftmaxFn
    ) -> List[Tensor]:
        """Apply a batched replacement softmax to every head in one call.

        The heads' ``(T, T)`` score matrices are stacked head-major into one
        ``(heads * T, T)`` matrix and handed to the callable together with
        the per-row causal prefix lengths (row ``i`` of every head attends
        to keys ``0..i``).  The returned probabilities are re-masked with
        the causal validity pattern — a no-op for a conforming callable,
        but it guarantees causality regardless of the replacement.
        """
        t = score_matrices[0].shape[0]
        heads = len(score_matrices)
        stacked = np.concatenate(score_matrices, axis=0)
        lengths = np.tile(np.arange(1, t + 1, dtype=np.int64), heads)
        probabilities = np.asarray(
            softmax_fn(stacked, valid_lengths=lengths), dtype=np.float64
        )
        if probabilities.shape != stacked.shape:
            raise ValueError(
                f"batched softmax_fn returned shape {probabilities.shape}, "
                f"expected {stacked.shape}"
            )
        probabilities = np.where(
            np.arange(t)[None, :] < lengths[:, None], probabilities, 0.0
        )
        return [
            Tensor(probabilities[head * t : (head + 1) * t]) for head in range(heads)
        ]
