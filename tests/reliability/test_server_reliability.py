"""SoftmaxServer reliability: deadlines, retries, breakers, hardened TCP.

Everything here runs with a :class:`FaultInjector` installed for a
bounded window and asserts the serving contract survives: every request
gets exactly one outcome, and every *successful* response stays
bit-identical to standalone execution on the fault-free backend.
"""

import asyncio
import json
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reliability.faults import FaultInjector, FaultSpec, InjectedFault
from repro.reliability.retry import DeadlineExceeded, RetryPolicy
from repro.runtime.backend import (
    BackendSpec,
    BackendTelemetry,
    SoftmaxResult,
    resolve_backend,
)
from repro.serve.server import ServerClosed, SoftmaxServer

SPEC = BackendSpec(name="ap-cluster", num_heads=2, sequence_length=16)


def _standalone(scores, lengths=None, spec=SPEC):
    return resolve_backend(spec).run_rows(
        scores, valid_lengths=lengths
    ).probabilities


class TestDeadlines:
    def test_backlogged_request_expires_with_structured_error(self):
        async def scenario():
            # The admission window (200 ms) dwarfs the deadline (10 ms):
            # the lone request dies in the backlog, not on the worker.
            async with SoftmaxServer(SPEC, max_wait_ms=200.0) as server:
                with pytest.raises(DeadlineExceeded) as info:
                    await server.submit(np.zeros((1, 8)), deadline_ms=10.0)
                return info.value, server.health()

        error, health = asyncio.run(scenario())
        assert error.deadline_ms == 10.0
        assert error.waited_ms >= 10.0
        assert health.deadline_expired == 1
        assert health.requests_failed == 1

    def test_default_deadline_applies_to_every_request(self):
        async def scenario():
            async with SoftmaxServer(
                SPEC, max_wait_ms=200.0, default_deadline_ms=10.0
            ) as server:
                with pytest.raises(DeadlineExceeded):
                    await server.submit(np.zeros((1, 8)))

        asyncio.run(scenario())

    def test_invalid_deadline_rejected_at_submit(self):
        async def scenario():
            async with SoftmaxServer(SPEC, max_wait_ms=1.0) as server:
                with pytest.raises(ValueError, match="deadline_ms"):
                    await server.submit(np.zeros((1, 8)), deadline_ms=0.0)

        asyncio.run(scenario())

    def test_generous_deadline_serves_normally(self):
        async def scenario():
            async with SoftmaxServer(SPEC, max_wait_ms=1.0) as server:
                return await server.submit(
                    np.arange(8.0), deadline_ms=60_000.0
                )

        response = asyncio.run(scenario())
        assert not response.deadline_missed
        np.testing.assert_array_equal(
            response.probabilities, _standalone(np.arange(8.0).reshape(1, 8))[0]
        )


class TestRetries:
    def test_transient_engine_fault_is_retried_to_success(self):
        # The tick fails once (fire 1), the per-request fallback fails
        # once more (fire 2), the retry succeeds: retries == 1.
        injector = FaultInjector(
            [FaultSpec(site="engine:compiled", count=2, name="blip")]
        )
        scores = np.random.default_rng(0).standard_normal((2, 16))

        async def scenario():
            async with SoftmaxServer(
                SPEC,
                max_wait_ms=1.0,
                retry_policy=RetryPolicy(max_retries=3, jitter_ms=0.0),
                engine_chain=("compiled",),
                breaker_failure_threshold=10,
            ) as server:
                response = await server.submit(scores)
                return response, server.health()

        with injector.install():
            response, health = asyncio.run(scenario())
        assert injector.fired("blip") == 2
        assert response.retries == 1
        assert response.backoff_ms > 0.0
        assert response.engine == "compiled"
        assert response.result.plan.retries == 1
        assert response.result.plan.backoff_ms == response.backoff_ms
        assert health.retries == 1
        assert health.backoff_ms == response.backoff_ms
        np.testing.assert_array_equal(
            response.probabilities, _standalone(scores)
        )

    def test_exhausted_retry_budget_surfaces_the_fault(self):
        injector = FaultInjector([FaultSpec(site="engine:compiled")])

        async def scenario():
            async with SoftmaxServer(
                SPEC,
                max_wait_ms=1.0,
                retry_policy=RetryPolicy(
                    max_retries=1, base_backoff_ms=0.1, jitter_ms=0.0
                ),
                engine_chain=("compiled",),
                breaker_failure_threshold=100,
            ) as server:
                with pytest.raises(InjectedFault):
                    await server.submit(np.zeros((1, 8)))
                return server.health()

        with injector.install():
            health = asyncio.run(scenario())
        assert health.requests_failed == 1
        assert health.retries == 1  # the budget was spent before giving up

    def test_without_policy_transient_faults_fail_fast(self):
        injector = FaultInjector([FaultSpec(site="engine:compiled", count=2)])

        async def scenario():
            async with SoftmaxServer(
                SPEC,
                max_wait_ms=1.0,
                engine_chain=("compiled",),
                breaker_failure_threshold=100,
            ) as server:
                with pytest.raises(InjectedFault):
                    await server.submit(np.zeros((1, 8)))
                return server.health()

        with injector.install():
            health = asyncio.run(scenario())
        assert health.retries == 0


class TestEngineFallback:
    def test_outage_degrades_then_recovers_bit_identically(self):
        # Trip threshold 1 + probe interval 1: the first compiled fault
        # degrades the chain; the second (a failed probe) re-opens it;
        # the third probe outlives the fault budget and recovers.
        injector = FaultInjector(
            [FaultSpec(site="engine:compiled", count=2, name="outage")]
        )
        rng = np.random.default_rng(4)
        requests = [rng.standard_normal((1, 16)) * 3 for _ in range(5)]

        async def scenario():
            async with SoftmaxServer(
                SPEC,
                max_wait_ms=1.0,
                retry_policy=RetryPolicy(max_retries=3, jitter_ms=0.0),
                engine_chain=("compiled", "vectorized"),
                breaker_failure_threshold=1,
                breaker_probe_interval=1,
            ) as server:
                responses = []
                for scores in requests:  # sequential: one tick each
                    responses.append(await server.submit(scores))
                return responses, server.health()

        with injector.install():
            responses, health = asyncio.run(scenario())
        engines = {r.engine for r in responses}
        assert "vectorized" in engines  # somebody was served degraded
        assert health.degrades >= 1
        assert health.recoveries >= 1
        assert health.engine == "compiled"  # recovered by the end
        assert health.breaker_state == "closed"
        assert any("->" in t for t in health.transitions)
        assert any("=>" in t for t in health.transitions)
        assert health.availability == 1.0
        # Degradation is invisible in the bits.
        for scores, response in zip(requests, responses):
            np.testing.assert_array_equal(
                response.probabilities, _standalone(scores)
            )

    def test_engine_chain_requires_spec_backend(self):
        backend = resolve_backend(SPEC)
        with pytest.raises(ValueError, match="engine_chain"):
            SoftmaxServer(backend, engine_chain=("compiled", "vectorized"))

    def test_client_errors_do_not_trip_the_breaker(self):
        async def scenario():
            async with SoftmaxServer(
                SPEC,
                max_wait_ms=1.0,
                engine_chain=("compiled", "vectorized"),
                breaker_failure_threshold=1,
            ) as server:
                for _ in range(3):
                    with pytest.raises(ValueError, match="1..seq"):
                        await server.submit(
                            np.zeros((1, 8)), valid_lengths=[99]
                        )
                good = await server.submit(np.arange(8.0))
                return good, server.health()

        good, health = asyncio.run(scenario())
        assert health.degrades == 0
        assert health.engine == "compiled"
        assert good.engine == "compiled"


class TestHealthSnapshot:
    def test_disabled_reliability_reports_cleanly(self):
        async def scenario():
            async with SoftmaxServer(SPEC, max_wait_ms=1.0) as server:
                await server.submit(np.arange(8.0))
                return server.health()

        health = asyncio.run(scenario())
        assert health.requests_completed == 1
        assert health.availability == 1.0
        assert health.error_rate == 0.0
        assert health.engine is None
        assert health.breaker_state == "disabled"
        round_trip = json.loads(json.dumps(health.to_dict()))
        assert round_trip["availability"] == 1.0
        assert round_trip["transitions"] == []


class _SlowBackend:
    """Run-only backend that stalls: pins close() against in-flight ticks."""

    def __init__(self, delay_s=0.2):
        self.spec = BackendSpec(name="float")
        self.telemetry = BackendTelemetry()
        self.delay_s = delay_s

    def run(self, scores, valid_lengths=None):
        time.sleep(self.delay_s)
        return SoftmaxResult(probabilities=np.asarray(scores, dtype=float))

    def softmax_fn(self):
        return lambda s: np.asarray(s)


class TestCloseDrain:
    def test_in_flight_tick_requests_get_server_closed(self):
        async def scenario():
            server = SoftmaxServer(_SlowBackend(), max_wait_ms=1.0)
            await server.start()
            pending = asyncio.ensure_future(server.submit(np.arange(4.0)))
            await asyncio.sleep(0.05)  # the tick is now on the worker
            start = time.monotonic()
            await server.close()
            elapsed = time.monotonic() - start
            with pytest.raises(ServerClosed):
                await pending
            return elapsed, server.health()

        elapsed, health = asyncio.run(scenario())
        assert elapsed < 5.0  # close() joined the worker, no hang
        assert health.requests_failed == 1

    def test_close_is_idempotent_and_final(self):
        async def scenario():
            server = SoftmaxServer("float", max_wait_ms=1.0)
            await server.start()
            await server.close()
            await server.close()
            with pytest.raises(ServerClosed):
                await server.submit(np.arange(4.0))

        asyncio.run(scenario())


class TestFaultedCoalescingProperty:
    @given(
        rows=st.lists(st.integers(min_value=1, max_value=3), min_size=1, max_size=8),
        max_batch_rows=st.sampled_from([None, 2, 4]),
        tick_fault_ratio=st.sampled_from([0.0, 0.3, 0.7]),
        fault_seed=st.integers(min_value=0, max_value=3),
        data_seed=st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=25, deadline=None)
    def test_every_request_resolves_once_bit_identically(
        self, rows, max_batch_rows, tick_fault_ratio, fault_seed, data_seed
    ):
        """Injected tick faults x coalesce/take_admissible/carry-over:
        no request is dropped or duplicated, and every response matches
        standalone execution bit for bit (failed ticks fall back to
        per-request execution, so all requests still succeed)."""
        rng = np.random.default_rng(data_seed)
        requests = [rng.standard_normal((r, 16)) * 3 for r in rows]
        injector = FaultInjector(
            [
                FaultSpec(
                    site="serve:tick",
                    probability=tick_fault_ratio,
                    name="tick-chaos",
                )
            ]
            if tick_fault_ratio
            else [],
            seed=fault_seed,
        )

        async def scenario():
            async with SoftmaxServer(
                SPEC, max_wait_ms=5.0, max_batch_rows=max_batch_rows
            ) as server:
                responses = await asyncio.gather(
                    *(server.submit(scores) for scores in requests)
                )
                return responses, server.stats()

        with injector.install():
            responses, stats = asyncio.run(scenario())
        assert len(responses) == len(requests)
        assert stats.requests == len(requests)  # admitted exactly once each
        if max_batch_rows is not None:
            # An oversized request becomes a tick of its own; any
            # coalesced tick respects the admission cap.
            assert all(
                r.batch_rows <= max_batch_rows or r.batch_requests == 1
                for r in responses
            )
        for scores, response in zip(requests, responses):
            assert response.probabilities.shape == scores.shape
            np.testing.assert_array_equal(
                response.probabilities, _standalone(scores)
            )


class TestHardenedTcp:
    @staticmethod
    async def _round_trip(writer, reader, payload):
        if isinstance(payload, bytes):
            writer.write(payload + b"\n")
        else:
            writer.write(json.dumps(payload).encode() + b"\n")
        await writer.drain()
        return json.loads(await reader.readline())

    def _serve(self, scenario_fn, **server_kwargs):
        async def runner():
            server_kwargs.setdefault("max_wait_ms", 1.0)
            tcp_kwargs = server_kwargs.pop("tcp_kwargs", {})
            async with SoftmaxServer(SPEC, **server_kwargs) as server:
                tcp = await server.serve_tcp(port=0, **tcp_kwargs)
                host, port = tcp.sockets[0].getsockname()[:2]
                reader, writer = await asyncio.open_connection(host, port)
                try:
                    return await scenario_fn(reader, writer)
                finally:
                    writer.close()
                    await writer.wait_closed()
                    tcp.close()
                    await tcp.wait_closed()

        return asyncio.run(runner())

    def test_malformed_json_keeps_the_connection_serving(self):
        async def scenario(reader, writer):
            bad = await self._round_trip(writer, reader, b"{not json")
            good = await self._round_trip(
                writer, reader, {"id": 7, "scores": [[0.0] * 8]}
            )
            return bad, good

        bad, good = self._serve(scenario)
        assert bad["code"] == "bad-json"
        assert bad["id"] is None
        assert good["id"] == 7
        assert "probabilities" in good

    def test_unknown_fields_report_with_request_id(self):
        async def scenario(reader, writer):
            return await self._round_trip(
                writer,
                reader,
                {"id": 3, "scores": [[0.0] * 8], "priority": "high"},
            )

        reply = self._serve(scenario)
        assert reply["code"] == "bad-request"
        assert reply["id"] == 3
        assert "priority" in reply["error"]

    def test_non_object_and_missing_scores_are_structured(self):
        async def scenario(reader, writer):
            array = await self._round_trip(writer, reader, [1, 2, 3])
            naked = await self._round_trip(writer, reader, {"id": 9})
            return array, naked

        array, naked = self._serve(scenario)
        assert array["code"] == "bad-request" and array["id"] is None
        assert naked["code"] == "bad-request" and naked["id"] == 9
        assert "scores" in naked["error"]

    def test_oversized_line_is_discarded_not_fatal(self):
        async def scenario(reader, writer):
            huge = {"id": 1, "scores": [[0.0] * 4096]}
            oversized = await self._round_trip(writer, reader, huge)
            survivor = await self._round_trip(
                writer, reader, {"id": 2, "scores": [[0.0] * 8]}
            )
            return oversized, survivor

        oversized, survivor = self._serve(
            scenario, tcp_kwargs={"max_line_bytes": 1024}
        )
        assert oversized["code"] == "oversized"
        assert "1024" in oversized["error"]
        assert survivor["id"] == 2
        assert "probabilities" in survivor

    def test_max_line_bytes_validated(self):
        async def runner():
            async with SoftmaxServer(SPEC, max_wait_ms=1.0) as server:
                with pytest.raises(ValueError, match="max_line_bytes"):
                    await server.serve_tcp(port=0, max_line_bytes=0)

        asyncio.run(runner())

    def test_health_op_returns_snapshot(self):
        async def scenario(reader, writer):
            await self._round_trip(
                writer, reader, {"id": 1, "scores": [[0.0] * 8]}
            )
            health = await self._round_trip(
                writer, reader, {"id": 2, "op": "health"}
            )
            unknown = await self._round_trip(
                writer, reader, {"id": 3, "op": "dance"}
            )
            return health, unknown

        health, unknown = self._serve(
            scenario, engine_chain=("compiled", "vectorized")
        )
        assert health["id"] == 2
        assert health["health"]["requests_completed"] == 1
        assert health["health"]["availability"] == 1.0
        assert health["health"]["engine"] == "compiled"
        assert health["health"]["breaker_state"] == "closed"
        assert unknown["code"] == "bad-request"

    def test_deadline_ms_rides_the_wire(self):
        async def scenario(reader, writer):
            return await self._round_trip(
                writer,
                reader,
                {"id": 4, "scores": [[0.0] * 8], "deadline_ms": 5.0},
            )

        reply = self._serve(scenario, max_wait_ms=200.0)
        assert reply["code"] == "deadline"
        assert reply["id"] == 4

    def test_successful_reply_carries_reliability_fields(self):
        async def scenario(reader, writer):
            return await self._round_trip(
                writer, reader, {"id": 5, "scores": [[0.5] * 8]}
            )

        reply = self._serve(scenario)
        assert reply["retries"] == 0
        assert reply["deadline_missed"] is False
