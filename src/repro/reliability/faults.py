"""Deterministic, seeded fault injection for the serving stack.

The production code exposes **seams**: named call sites that invoke
:func:`fire` with a site string (``"engine:compiled"``, ``"serve:tick"``,
``"arena:acquire"``, ``"tcp:line"``, ``"sweep:task:<label>"``).  With no
injector installed — the default — a seam is a single module-attribute
read and a ``None`` check, so the serving fast path pays nothing.

A chaos run builds a :class:`FaultInjector` from declarative
:class:`FaultSpec` records and installs it process-wide::

    injector = FaultInjector(
        [FaultSpec(site="engine:compiled", kind="raise", start=10, count=8)],
        seed=0,
    )
    with injector.install():
        ...  # every matching seam may now raise / stall / crash

Determinism is the whole point: each spec owns its own RNG stream
(derived from ``(seed, spec index)``) and its own arming/budget counters,
so the decision sequence of one spec never depends on how other specs or
sites interleave.  Replaying the same seeded workload against the same
specs reproduces the same fault schedule, event for event — the
``chaos-load`` experiment leans on this to pin availability and
bit-identity of every successful response.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "active_injector",
    "fire",
]

#: Supported fault kinds: ``raise`` throws :class:`InjectedFault`,
#: ``latency`` stalls the seam's thread, ``crash`` kills the process
#: (``os._exit``) — the worker-pool death scenario.
FAULT_KINDS: Tuple[str, ...] = ("raise", "latency", "crash")


class InjectedFault(RuntimeError):
    """The error a ``raise``-kind fault spec throws at its seam.

    ``transient`` marks the fault as retryable — the serving layer's
    :class:`~repro.reliability.retry.RetryPolicy` consults exactly this
    attribute when deciding whether to back off and try again.
    """

    def __init__(self, site: str, spec: str, transient: bool = True) -> None:
        super().__init__(f"injected fault at {site!r} (spec {spec!r})")
        self.site = site
        self.spec = spec
        self.transient = transient


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault: where, what, and when.

    ``site`` matches a fired seam exactly or as a ``:``-separated prefix
    (``"engine"`` matches ``"engine:compiled"``).  The first ``start``
    matching events arm the spec without firing; after that it fires with
    ``probability`` per event, at most ``count`` times (``None`` =
    unlimited).
    """

    site: str
    kind: str = "raise"
    probability: float = 1.0
    start: int = 0
    count: Optional[int] = None
    latency_ms: float = 0.0
    transient: bool = True
    name: str = ""

    def __post_init__(self) -> None:
        if not self.site:
            raise ValueError("site must be a non-empty seam name")
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must lie in [0, 1], got {self.probability}"
            )
        if self.start < 0:
            raise ValueError(f"start must be >= 0, got {self.start}")
        if self.count is not None and self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")
        if self.latency_ms < 0:
            raise ValueError(f"latency_ms must be >= 0, got {self.latency_ms}")
        if self.kind == "latency" and self.latency_ms == 0:
            raise ValueError("latency faults need latency_ms > 0")
        if not self.name:
            object.__setattr__(self, "name", f"{self.site}/{self.kind}")

    def matches(self, site: str) -> bool:
        return site == self.site or site.startswith(self.site + ":")


@dataclass(frozen=True)
class FaultEvent:
    """One fired fault, as recorded in the injector's replay log."""

    site: str
    spec: str
    kind: str
    index: int  # 1-based fire index within the spec's budget


@dataclass
class _SpecState:
    """Mutable per-spec counters + the spec's private RNG stream."""

    rng: np.random.Generator
    seen: int = 0
    fired: int = 0


class FaultInjector:
    """Evaluates fault specs at fired seams, deterministically.

    Thread-safe (the serving worker thread and the event loop may both hit
    seams) and picklable (the perplexity sweep ships one to its pool
    workers via the initializer payload); the lock is rebuilt on
    unpickling and the counters reset, so each worker process replays the
    spec schedule from the start.
    """

    def __init__(
        self, specs: Sequence[FaultSpec], seed: int = 0
    ) -> None:
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        self.seed = int(seed)
        self._lock = threading.Lock()
        self.events: List[FaultEvent] = []
        self._states: List[_SpecState] = []
        self.reset()

    def reset(self) -> None:
        """Clear counters and the event log; re-derive every RNG stream."""
        with self._lock:
            self.events = []
            self._states = [
                _SpecState(rng=np.random.default_rng([self.seed, index]))
                for index, _ in enumerate(self.specs)
            ]

    # -- pickling: drop the lock, reset state in the child ------------- #
    def __getstate__(self):
        return {"specs": self.specs, "seed": self.seed}

    def __setstate__(self, state) -> None:
        self.__init__(state["specs"], seed=state["seed"])

    def fired(self, spec_name: Optional[str] = None) -> int:
        """Number of logged fault events (optionally for one spec)."""
        with self._lock:
            if spec_name is None:
                return len(self.events)
            return sum(1 for e in self.events if e.spec == spec_name)

    def fire(self, site: str) -> None:
        """Evaluate every matching spec at ``site``; act on the first hit.

        ``raise`` faults throw :class:`InjectedFault`; ``latency`` faults
        sleep the calling thread; ``crash`` faults terminate the process
        (only meaningful inside expendable pool workers).
        """
        action: Optional[FaultSpec] = None
        with self._lock:
            for spec, state in zip(self.specs, self._states):
                if not spec.matches(site):
                    continue
                state.seen += 1
                if state.seen <= spec.start:
                    continue
                if spec.count is not None and state.fired >= spec.count:
                    continue
                if (
                    spec.probability < 1.0
                    and state.rng.random() >= spec.probability
                ):
                    continue
                state.fired += 1
                self.events.append(
                    FaultEvent(
                        site=site,
                        spec=spec.name,
                        kind=spec.kind,
                        index=state.fired,
                    )
                )
                action = spec
                break
        if action is None:
            return
        if action.kind == "latency":
            time.sleep(action.latency_ms / 1000.0)
        elif action.kind == "crash":
            os._exit(13)
        else:
            raise InjectedFault(site, action.name, transient=action.transient)

    def activate(self) -> None:
        """Install process-wide with no scope to restore.

        For dedicated processes that die with their injector — the
        perplexity sweep's pool workers call this from the pool
        initializer.  Interactive code should prefer :meth:`install`.
        """
        global _ACTIVE
        _ACTIVE = self

    @contextmanager
    def install(self) -> Iterator["FaultInjector"]:
        """Install process-wide for the duration of the ``with`` block."""
        global _ACTIVE
        previous = _ACTIVE
        _ACTIVE = self
        try:
            yield self
        finally:
            _ACTIVE = previous


#: The installed injector (``None`` = fault injection disabled).
_ACTIVE: Optional[FaultInjector] = None


def active_injector() -> Optional[FaultInjector]:
    return _ACTIVE


def fire(site: str) -> None:
    """Seam entry point: no-op unless an injector is installed."""
    injector = _ACTIVE
    if injector is not None:
        injector.fire(site)
