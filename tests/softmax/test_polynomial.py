"""Tests for the integer i-exp polynomial."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.softmax.polynomial import IExpPolynomial


class TestConstants:
    def test_offline_constants_for_m6(self):
        poly = IExpPolynomial(input_bits=6)
        constants = poly.constants(7.0 / 63.0)
        assert constants.vln2 == int(np.floor(np.log(2.0) / (7.0 / 63.0)))
        assert constants.mu == (1 << 12) // constants.vln2
        assert constants.vb == int(np.floor(1.353 / (7.0 / 63.0)))
        assert constants.output_scale == pytest.approx(0.3585 * (7.0 / 63.0) ** 2)

    def test_scale_too_coarse_rejected(self):
        with pytest.raises(ValueError):
            IExpPolynomial(input_bits=4).constants(5.0)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            IExpPolynomial(input_bits=1)


class TestIExpAccuracy:
    @pytest.mark.parametrize("m,max_rel_error", [(6, 0.25), (8, 0.08)])
    def test_integer_iexp_tracks_exponential(self, m, max_rel_error):
        scale = 7.0 / (2 ** m - 1)
        poly = IExpPolynomial(input_bits=m)
        constants = poly.constants(scale)
        vstable = -np.arange(0, 2 ** m, dtype=np.int64)
        vapprox, vcorr, quotient = poly.iexp_int(vstable, constants)
        approx = vapprox * constants.output_scale
        exact = np.exp(vstable * scale)
        # Relative error bounded for the dominant (large) values; the bound
        # is looser at M=6 because the right shift truncates more bits.
        mask = exact > 0.05
        assert np.max(np.abs(approx[mask] - exact[mask]) / exact[mask]) < max_rel_error
        assert np.all(vcorr <= 0)
        assert np.all(vcorr > -constants.vln2)
        assert np.all(quotient >= 0)

    def test_scalar_inputs_return_python_ints(self):
        poly = IExpPolynomial(input_bits=6)
        constants = poly.constants(0.1)
        vapprox, vcorr, quotient = poly.iexp_int(-5, constants)
        assert isinstance(vapprox, int)
        assert isinstance(vcorr, int)
        assert isinstance(quotient, int)

    def test_positive_input_rejected(self):
        poly = IExpPolynomial(input_bits=6)
        constants = poly.constants(0.1)
        with pytest.raises(ValueError):
            poly.iexp_int(np.array([1]), constants)

    def test_float_reference_rejects_positive(self):
        with pytest.raises(ValueError):
            IExpPolynomial(6).iexp_float(np.array([0.5]))

    @given(st.integers(min_value=0, max_value=63))
    @settings(max_examples=30)
    def test_monotonicity_property(self, magnitude):
        # exp is monotone: a more negative input never yields a larger
        # integer approximation.
        poly = IExpPolynomial(input_bits=6)
        constants = poly.constants(7.0 / 63.0)
        values = -np.array([magnitude, min(63, magnitude + 1)], dtype=np.int64)
        vapprox, _, _ = poly.iexp_int(values, constants)
        assert vapprox[1] <= vapprox[0]

    def test_polynomial_int_matches_formula(self):
        poly = IExpPolynomial(input_bits=6)
        constants = poly.constants(7.0 / 63.0)
        vcorr = np.array([-3, -1, 0])
        out = poly.polynomial_int(vcorr, constants)
        expected = (vcorr + constants.vb) ** 2 + constants.vc
        assert np.array_equal(out, expected)
