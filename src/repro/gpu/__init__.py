"""Analytical GPU baselines (A100, RTX3090).

The paper measures the softmax operator on real A100 and RTX3090 GPUs; this
reproduction replaces those measurements with an analytical model built from
the public datasheet numbers (memory bandwidth, peak throughput, TDP) plus a
kernel-launch overhead and a transfer-size-dependent bandwidth efficiency —
the two effects that shape the paper's observations (GPUs are least
efficient at batch 1 / sequence 128, and the AP-vs-GPU gap narrows then
flattens as the tensor grows).

Modules
-------
:mod:`repro.gpu.spec`
    :class:`GpuSpec` plus the A100 and RTX3090 parameter sets.
:mod:`repro.gpu.softmax_model`
    Latency/energy of the softmax operator on a GPU.
:mod:`repro.gpu.transformer_model`
    Whole-model runtime breakdown used for Fig. 1 (softmax runtime
    proportion) and the Amdahl analysis.

The kernel model is also reachable through the unified runtime API as the
``"gpu-analytical"`` softmax backend
(``repro.runtime.resolve_backend("gpu-analytical", options={"gpu":
"RTX3090"})``), which attaches the analytical kernel cost to every
softmax pass via the shared ``SoftmaxResult`` seam.
"""

from repro.gpu.spec import GpuSpec, A100, RTX3090, GPUS
from repro.gpu.softmax_model import GpuSoftmaxModel, KernelCost
from repro.gpu.transformer_model import GpuTransformerModel, RuntimeBreakdown

__all__ = [
    "GpuSpec",
    "A100",
    "RTX3090",
    "GPUS",
    "GpuSoftmaxModel",
    "KernelCost",
    "GpuTransformerModel",
    "RuntimeBreakdown",
]
