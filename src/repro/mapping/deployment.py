"""Per-head AP deployment for the Llama2 models.

The paper deploys one AP per attention head (Fig. 4: "this AP is deployed in
each head").  For a model configuration this module derives:

* the total AP silicon area (heads x per-AP area), which reproduces the
  0.64 / 0.81 / 1.28 mm^2 figures for Llama2-7b / 13b / 70b;
* the per-invocation energy and latency of the softmax pass used by the
  normalized comparisons of Figs. 6-8 and Table V.

Comparison unit
---------------
Following the paper's accounting (Section V-B), the AP-side cost is the cost
of *one pass of the 16-step dataflow over one per-head AP* (which holds the
``SequenceLength``-element softmax input across ``SequenceLength/2`` rows),
while the GPU-side cost (:mod:`repro.gpu`) is the softmax operator launched
on the decode-step attention-score tensor of the whole model
(``batch x heads x SequenceLength``).  The normalized energy/latency the
paper plots is ``GPU / AP`` under this accounting; EXPERIMENTS.md discusses
the implications (the AP numbers assume each head's AP works on its own
share of the score tensor concurrently).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.ap.tech import TECH_16NM, TechnologyParameters
from repro.llm.config import LlamaConfig
from repro.mapping.softmap import MappingCost, SoftmAPMapping
from repro.quant.precision import BEST_PRECISION, PrecisionConfig
from repro.utils.validation import check_in_choices, check_positive_int

__all__ = ["ApDeployment", "DeploymentSummary"]


@dataclass(frozen=True)
class DeploymentSummary:
    """Headline numbers of an AP deployment for one model / sequence length."""

    model: str
    sequence_length: int
    num_aps: int
    rows_per_ap: int
    columns_per_ap: int
    area_mm2: float
    pass_latency_s: float
    pass_energy_j: float
    pass_cycles: float


class ApDeployment:
    """One AP per attention head, sized for a maximum sequence length.

    Parameters
    ----------
    model:
        Model shape configuration (heads determine the AP count).
    precision:
        Mixed-precision configuration of the integer softmax (the paper's
        best combination by default).
    max_sequence_length:
        The sequence length the APs are provisioned for (rows =
        ``max_sequence_length / words_per_row``).
    words_per_row / columns / tech / division:
        Forwarded to :class:`~repro.mapping.softmap.SoftmAPMapping`.  The
        hardware characterization uses the bit-serial restoring division for
        the final step by default (see EXPERIMENTS.md for the ablation
        against the cheaper reciprocal-multiply realisation).
    """

    def __init__(
        self,
        model: LlamaConfig,
        precision: PrecisionConfig = BEST_PRECISION,
        max_sequence_length: int = 4096,
        words_per_row: int = 2,
        columns: int = 64,
        tech: TechnologyParameters = TECH_16NM,
        division: str = "restoring",
    ) -> None:
        self.model = model
        self.precision = precision
        self.max_sequence_length = check_positive_int(
            max_sequence_length, "max_sequence_length"
        )
        self.words_per_row = check_in_choices(
            check_positive_int(words_per_row, "words_per_row"),
            SoftmAPMapping.WORDS_PER_ROW_CHOICES,
            "words_per_row",
        )
        self.columns = check_positive_int(columns, "columns")
        self.tech = tech
        # Validate eagerly: a bad mode must fail at construction, not deep
        # inside the first mapping() call.
        self.division = check_in_choices(
            division, SoftmAPMapping.DIVISION_MODES, "division"
        )

    @property
    def num_aps(self) -> int:
        """Number of APs: one per attention (query) head."""
        return self.model.num_heads

    @property
    def rows_per_ap(self) -> int:
        """CAM rows per AP (provisioned for the maximum sequence length).

        Ceil division: an odd maximum sequence length still needs its final,
        partly filled row provisioned.
        """
        return -(-self.max_sequence_length // self.words_per_row)

    def mapping(self, sequence_length: Optional[int] = None) -> SoftmAPMapping:
        """The dataflow mapping for a given runtime sequence length."""
        sequence_length = sequence_length or self.max_sequence_length
        if sequence_length > self.max_sequence_length:
            raise ValueError(
                f"sequence length {sequence_length} exceeds the provisioned "
                f"maximum {self.max_sequence_length}"
            )
        return SoftmAPMapping(
            precision=self.precision,
            sequence_length=sequence_length,
            words_per_row=self.words_per_row,
            columns=self.columns,
            tech=self.tech,
            division=self.division,
        )

    def pass_cost(self, sequence_length: Optional[int] = None) -> MappingCost:
        """Cost of one softmax pass on one per-head AP."""
        return self.mapping(sequence_length).cost()

    def cluster(self, backend: str = "vectorized") -> "ApCluster":
        """The functional multi-AP cluster realising this deployment.

        Returns an :class:`~repro.mapping.cluster.ApCluster` with one
        functional per-head AP per attention head, configured exactly like
        the analytical deployment; use its
        :meth:`~repro.mapping.cluster.ApCluster.execute` /
        :meth:`~repro.mapping.cluster.ApCluster.softmax_fn` to actually run
        attention softmax tensors through the simulated hardware.
        """
        from repro.mapping.cluster import ApCluster

        return ApCluster(
            num_heads=self.num_aps,
            precision=self.precision,
            sequence_length=self.max_sequence_length,
            words_per_row=self.words_per_row,
            columns=self.columns,
            tech=self.tech,
            division=self.division,
            backend=backend,
        )

    def total_area_mm2(self) -> float:
        """Total AP area of the deployment (heads x per-AP area, sized for
        the provisioned maximum sequence length)."""
        per_ap = self.mapping(self.max_sequence_length).cost_model.area_mm2()
        return self.num_aps * per_ap

    def summary(self, sequence_length: Optional[int] = None) -> DeploymentSummary:
        """Headline numbers for one sequence length."""
        sequence_length = sequence_length or self.max_sequence_length
        cost = self.pass_cost(sequence_length)
        return DeploymentSummary(
            model=self.model.name,
            sequence_length=sequence_length,
            num_aps=self.num_aps,
            rows_per_ap=self.rows_per_ap,
            columns_per_ap=self.columns,
            area_mm2=self.total_area_mm2(),
            pass_latency_s=cost.latency_s,
            pass_energy_j=cost.energy_j,
            pass_cycles=cost.cycles,
        )
