"""Setup shim for environments without the `wheel` package.

The project metadata lives in pyproject.toml; this file only exists so that
`pip install -e .` can fall back to the legacy setuptools develop path on
offline machines where PEP 660 editable builds (which require `wheel`) are
unavailable.
"""

from setuptools import setup

setup()
