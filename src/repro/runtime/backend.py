"""The unified softmax-execution API: one protocol, many backends.

Before this module existed the codebase had four ways to pick a softmax
execution path — ``softmax_fn`` callables threaded through
:mod:`repro.llm.perplexity`, ``softmax_backend`` strings in the Tables
III/IV harness, ``backend=("reference"|"vectorized")`` engine kwargs on the
AP stack, and the ad-hoc :class:`~repro.mapping.cluster.ClusterSoftmaxFn`
adapter.  :func:`resolve_backend` replaces all of them with a single factory
over named, uniformly shaped backends:

=================  =========================================================
name               execution path
=================  =========================================================
``float``          numerically stable floating-point softmax (the accuracy
                   baseline; no hardware cost attached)
``integer``        the pure-software integer-only pipeline of Algorithm 1
                   (:class:`~repro.softmax.integer_softmax.IntegerSoftmax`)
``ap``             row-by-row functional AP execution — one
                   :meth:`~repro.mapping.softmap.SoftmAPMapping.execute_functional`
                   call per score vector (the pre-cluster replacement path)
``ap-batch``       one batched
                   :meth:`~repro.mapping.softmap.SoftmAPMapping.execute_functional_batch`
                   call for a whole ``(rows, seq)`` tensor on one AP
``ap-cluster``     the functional multi-AP cluster — one per-head AP, every
                   probability produced by CAM compare/write semantics
``gpu-analytical`` floating-point probabilities costed with the analytical
                   GPU kernel model (:mod:`repro.gpu`)
=================  =========================================================

Every backend implements the :class:`SoftmaxBackend` protocol:
``run(scores, valid_lengths) -> SoftmaxResult`` returns probabilities
*together with* the analytical cost and cycle count of the pass (cost
telemetry is no longer a side channel), and ``softmax_fn()`` adapts the
backend to the LLM substrate's batched attention-softmax contract
(see :mod:`repro.llm.model`).  Backend names are validated eagerly in
:func:`resolve_backend`, which raises :class:`UnknownBackendError` with a
"did you mean" suggestion for near-misses — the single place replacing the
per-module string checks that used to be scattered across ``experiments/``,
``llm/`` and ``mapping/``.
"""

from __future__ import annotations

import difflib
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Mapping, Optional, Tuple, Union

import numpy as np

from repro.ap.engine import canonical_engine_name, is_plan_engine
from repro.gpu.softmax_model import GpuSoftmaxModel, KernelCost
from repro.gpu.spec import GPUS, GpuSpec
from repro.mapping.cluster import ApCluster
from repro.mapping.plan import PlanTelemetry
from repro.mapping.softmap import MappingCost, SoftmAPMapping
from repro.quant.precision import BEST_PRECISION, PrecisionConfig
from repro.softmax.integer_softmax import IntegerSoftmax
from repro.softmax.reference import softmax as float_softmax
from repro.utils.validation import check_in_choices

from typing import Protocol, runtime_checkable

__all__ = [
    "BACKEND_ALIASES",
    "BACKEND_NAMES",
    "BackendCost",
    "BackendSpec",
    "BackendTelemetry",
    "PlanTelemetry",
    "SoftmaxBackend",
    "SoftmaxResult",
    "UnknownBackendError",
    "backend_descriptions",
    "canonical_backend_name",
    "resolve_backend",
    "resolve_model_backend",
    "rows_runner",
]

#: Canonical backend names, in presentation order.
BACKEND_NAMES: Tuple[str, ...] = (
    "float",
    "integer",
    "ap",
    "ap-batch",
    "ap-cluster",
    "gpu-analytical",
)

#: Legacy spelling -> canonical name.  ``software``/``software-batched`` are
#: the historical Tables III/IV sweep names; ``fp``/``fp32``/``gpu`` are
#: common colloquialisms worth accepting.  (``reference``/``vectorized`` are
#: deliberately *not* aliases — they name the functional AP engine, i.e. the
#: ``engine`` field of a :class:`BackendSpec`.)
BACKEND_ALIASES: Dict[str, str] = {
    "fp": "float",
    "fp32": "float",
    "software": "integer",
    "software-batched": "integer",
    "gpu": "gpu-analytical",
}

_DESCRIPTIONS: Dict[str, str] = {
    "float": "floating-point reference softmax (accuracy baseline, no cost model)",
    "integer": "pure-software integer-only pipeline (Algorithm 1 in numpy)",
    "ap": "row-by-row functional AP execution (one pass per score vector)",
    "ap-batch": "batched functional AP execution (whole tensor on one AP)",
    "ap-cluster": "functional multi-AP cluster (one per-head AP, CAM semantics)",
    "gpu-analytical": "float softmax costed with the analytical GPU kernel model",
}


class UnknownBackendError(ValueError):
    """An unknown backend name, with a "did you mean" suggestion attached."""

    def __init__(self, name: str) -> None:
        valid = sorted(set(BACKEND_NAMES) | set(BACKEND_ALIASES))
        close = difflib.get_close_matches(name, valid, n=1, cutoff=0.5)
        hint = f" — did you mean {close[0]!r}?" if close else ""
        super().__init__(
            f"unknown softmax backend {name!r}{hint} "
            f"(valid backends: {', '.join(BACKEND_NAMES)}; "
            f"legacy aliases: {', '.join(sorted(BACKEND_ALIASES))})"
        )
        self.name = name
        self.suggestion = close[0] if close else None


def canonical_backend_name(name: str) -> str:
    """Validate a backend name eagerly, resolving legacy aliases.

    This is the single place backend-name strings are checked; every other
    module resolves through here so a typo fails fast with a helpful
    suggestion instead of deep inside a sweep.
    """
    if not isinstance(name, str):
        raise TypeError(f"backend name must be a str, got {type(name).__name__}")
    resolved = BACKEND_ALIASES.get(name, name)
    if resolved not in BACKEND_NAMES:
        raise UnknownBackendError(name)
    return resolved


def backend_descriptions() -> Dict[str, str]:
    """Canonical name -> one-line description (for ``repro backends``)."""
    return dict(_DESCRIPTIONS)


# --------------------------------------------------------------------------- #
# Uniform result / spec / telemetry shapes                                     #
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class BackendCost:
    """Normalised cost attached to one backend pass.

    AP-family backends report the analytical Table II / technology-model
    cost of the pass; ``gpu-analytical`` reports the kernel model's cost;
    the pure-software backends report no cost (``SoftmaxResult.cost`` is
    ``None`` for them).
    """

    latency_s: float
    energy_j: float
    area_mm2: Optional[float] = None

    @property
    def edp(self) -> float:
        """Energy-delay product in joule-seconds."""
        return self.latency_s * self.energy_j


@dataclass(frozen=True)
class SoftmaxResult:
    """Probabilities plus cost telemetry of one backend pass.

    Attributes
    ----------
    probabilities:
        Softmax probabilities, same shape as the input scores.
    cost:
        Analytical latency/energy of the pass (``None`` for the pure
        software backends, which model no hardware).
    cycles:
        Compare/write (or kernel) cycle count of the pass, when the backend
        has a cycle notion (``None`` otherwise).
    backend:
        Canonical name of the backend that produced the result.
    plan:
        Plan-level execution telemetry
        (:class:`~repro.mapping.plan.PlanTelemetry`) for backends that run
        compiled plans: whether the pass executed fused, on which engine,
        and how the planner tiled the workload.  ``None`` for backends
        without a plan layer.
    """

    probabilities: np.ndarray
    cost: Optional[BackendCost] = None
    cycles: Optional[float] = None
    backend: str = ""
    plan: Optional[PlanTelemetry] = None


@dataclass(frozen=True)
class BackendSpec:
    """Declarative description of a backend instance.

    ``resolve_backend`` accepts a spec (or builds one from a name plus
    keyword overrides) and returns the matching :class:`SoftmaxBackend`.

    Attributes
    ----------
    name:
        Canonical backend name (see :data:`BACKEND_NAMES`).
    precision:
        Mixed-precision configuration for the integer/AP paths
        (``None`` -> the paper's best combination).
    sequence_length:
        Maximum sequence length the AP paths are provisioned for
        (``None`` -> 2048, the paper's context).
    num_heads:
        Attention-head count (required by ``ap-cluster``, which shards
        head-major score matrices across one AP per head).
    engine:
        Functional AP engine — any name in the engine registry:
        ``"reference"`` (bit-serial ground truth), ``"vectorized"``
        (packed-word, bit-identical) or ``"compiled"`` (buffer-planned
        scratch-arena executor, bit-identical); ``None`` -> the fast path
        for cluster/batch and reference semantics elsewhere.
    options:
        Extra keyword arguments forwarded to the underlying implementation
        (e.g. ``barrett_correction`` / ``sum_overflow`` for ``integer``,
        ``gpu`` / ``heads`` for ``gpu-analytical``).
    """

    name: str
    precision: Optional[PrecisionConfig] = None
    sequence_length: Optional[int] = None
    num_heads: Optional[int] = None
    engine: Optional[str] = None
    options: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", canonical_backend_name(self.name))
        if self.engine is not None:
            # Eager, with a "did you mean" suggestion — an engine typo fails
            # at spec construction, not deep inside an execution pass.
            canonical_engine_name(self.engine)


@dataclass
class BackendTelemetry:
    """Accumulated cost telemetry across every ``run()`` of one backend.

    The LLM substrate consumes backends through the probability-only
    ``softmax_fn`` adapter; the telemetry keeps the cost side of each pass
    addressable afterwards instead of losing it (e.g. the total AP energy
    of a whole perplexity evaluation).
    """

    calls: int = 0
    rows: int = 0
    cycles: float = 0.0
    latency_s: float = 0.0
    energy_j: float = 0.0

    def record(self, result: SoftmaxResult) -> None:
        self.calls += 1
        self.rows += int(np.prod(result.probabilities.shape[:-1], dtype=np.int64))
        if result.cycles is not None:
            self.cycles += float(result.cycles)
        if result.cost is not None:
            self.latency_s += result.cost.latency_s
            self.energy_j += result.cost.energy_j

    def reset(self) -> None:
        self.calls = 0
        self.rows = 0
        self.cycles = 0.0
        self.latency_s = 0.0
        self.energy_j = 0.0


@runtime_checkable
class SoftmaxBackend(Protocol):
    """Structural protocol every softmax execution backend satisfies.

    Backends *may* additionally provide ``run_rows(rows, valid_lengths)``
    — execution of an arbitrary ``(rows, seq)`` row space with no
    head-major layout constraint, the seam the serving layer's coalesced
    admission batches go through (``ap-cluster`` overrides it to feed the
    row space straight through the cluster's planner).  It is not part of
    the required protocol: third-party backends that only implement
    ``run`` still resolve, and the serving layer falls back to ``run``.
    """

    spec: BackendSpec
    telemetry: BackendTelemetry

    def run(
        self, scores: np.ndarray, valid_lengths: Optional[np.ndarray] = None
    ) -> SoftmaxResult:
        """Execute softmax over the last axis, returning probs + cost."""
        ...

    def softmax_fn(self) -> Callable[..., np.ndarray]:
        """Adapter implementing the LLM substrate's ``softmax_fn`` contract."""
        ...


def rows_runner(
    backend: "SoftmaxBackend",
) -> Callable[..., SoftmaxResult]:
    """The backend's ``(rows, seq)`` entry point: ``run_rows`` when the
    backend provides the seam, else plain ``run`` (sufficient for any
    backend without layout constraints, e.g. third-party protocol
    implementations)."""
    return getattr(backend, "run_rows", backend.run)


class _BackendSoftmaxFn:
    """Probability-only adapter: the model's batched ``softmax_fn`` contract
    (``supports_batch = True``) on top of a backend's ``run()``; the cost
    side of every pass accumulates in ``backend.telemetry``."""

    supports_batch = True

    def __init__(self, backend: "_BackendBase") -> None:
        self.backend = backend

    def __call__(
        self,
        scores: np.ndarray,
        valid_lengths: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        return self.backend.run(scores, valid_lengths=valid_lengths).probabilities


class _BackendBase:
    """Shared scaffolding: input normalisation, telemetry, the adapter."""

    def __init__(self, spec: BackendSpec) -> None:
        self.spec = spec
        self.telemetry = BackendTelemetry()

    # -- protocol ------------------------------------------------------- #
    def run(
        self, scores: np.ndarray, valid_lengths: Optional[np.ndarray] = None
    ) -> SoftmaxResult:
        scores = np.asarray(scores, dtype=np.float64)
        if scores.ndim == 0:
            raise ValueError("scores must have at least one dimension")
        lengths = self._check_lengths(scores, valid_lengths)
        result = self._run(scores, lengths)
        self.telemetry.record(result)
        return result

    def run_rows(
        self, rows: np.ndarray, valid_lengths: Optional[np.ndarray] = None
    ) -> SoftmaxResult:
        rows = np.asarray(rows, dtype=np.float64)
        if rows.ndim == 1:
            rows = rows[None, :]
        if rows.ndim != 2:
            raise ValueError("run_rows expects a (rows, seq) score matrix")
        return self.run(rows, valid_lengths=valid_lengths)

    def softmax_fn(self) -> _BackendSoftmaxFn:
        return _BackendSoftmaxFn(self)

    # -- helpers -------------------------------------------------------- #
    @staticmethod
    def _check_lengths(
        scores: np.ndarray, valid_lengths: Optional[np.ndarray]
    ) -> Optional[np.ndarray]:
        if valid_lengths is None:
            return None
        lengths = np.asarray(valid_lengths, dtype=np.int64).reshape(-1)
        rows = int(np.prod(scores.shape[:-1], dtype=np.int64)) if scores.ndim > 1 else 1
        if lengths.shape != (rows,):
            raise ValueError(
                f"valid_lengths must hold one entry per score row "
                f"({rows}), got shape {lengths.shape}"
            )
        if np.any(lengths < 1) or np.any(lengths > scores.shape[-1]):
            raise ValueError("valid_lengths must lie in 1..seq for every row")
        return lengths

    @staticmethod
    def _rows_view(scores: np.ndarray) -> np.ndarray:
        """Flatten leading axes so every backend core sees (rows, seq)."""
        if scores.ndim == 1:
            return scores[None, :]
        return scores.reshape(-1, scores.shape[-1])

    def _run(
        self, scores: np.ndarray, lengths: Optional[np.ndarray]
    ) -> SoftmaxResult:  # pragma: no cover - abstract
        raise NotImplementedError


def _masked_float_softmax(
    rows: np.ndarray, lengths: Optional[np.ndarray]
) -> np.ndarray:
    """Reference softmax over each row's valid prefix, zeros beyond it."""
    if lengths is None:
        return float_softmax(rows)
    mask = np.arange(rows.shape[1])[None, :] < lengths[:, None]
    probabilities = float_softmax(np.where(mask, rows, -np.inf))
    return np.where(mask, probabilities, 0.0)


# --------------------------------------------------------------------------- #
# Concrete backends                                                            #
# --------------------------------------------------------------------------- #
class FloatBackend(_BackendBase):
    """``float`` — the numerically stable FP softmax (accuracy baseline)."""

    def _run(self, scores, lengths):
        rows = self._rows_view(scores)
        probabilities = _masked_float_softmax(rows, lengths).reshape(scores.shape)
        return SoftmaxResult(probabilities=probabilities, backend=self.spec.name)


class IntegerBackend(_BackendBase):
    """``integer`` — the pure-software Algorithm 1 pipeline.

    Ragged rows are evaluated in **one** masked
    :class:`~repro.softmax.integer_softmax.IntegerSoftmax` call
    (``valid_lengths`` support in the integer core), which is bit-identical
    to applying the pipeline per causal prefix — for a causal ``(rows,
    seq)`` score matrix this replaces ``seq`` per-distinct-length pipeline
    invocations with a single vectorized pass.
    """

    def __init__(self, spec: BackendSpec) -> None:
        super().__init__(spec)
        self.integer_softmax = IntegerSoftmax(
            precision=spec.precision or BEST_PRECISION, **dict(spec.options)
        )

    def _run(self, scores, lengths):
        rows = self._rows_view(scores)
        probabilities = self.integer_softmax.forward(
            rows, valid_lengths=lengths
        ).probabilities
        return SoftmaxResult(
            probabilities=probabilities.reshape(scores.shape),
            backend=self.spec.name,
        )


class _ApBackendBase(_BackendBase):
    """Shared mapping construction + per-length analytical cost cache."""

    def __init__(self, spec: BackendSpec) -> None:
        super().__init__(spec)
        self.precision = spec.precision or BEST_PRECISION
        self.engine = spec.engine or "vectorized"
        self.provisioned_length = spec.sequence_length or 2048
        self._mapping_options = dict(spec.options)
        self._mapping = self._make_mapping(self.provisioned_length)
        self._cost_cache: Dict[int, MappingCost] = {}

    def _make_mapping(self, sequence_length: int) -> SoftmAPMapping:
        return SoftmAPMapping(
            precision=self.precision,
            sequence_length=sequence_length,
            backend=self.engine,
            **self._mapping_options,
        )

    def _pass_cost(self, sequence_length: int) -> MappingCost:
        if sequence_length not in self._cost_cache:
            mapping = (
                self._mapping
                if sequence_length == self.provisioned_length
                else self._make_mapping(sequence_length)
            )
            self._cost_cache[sequence_length] = mapping.cost()
        return self._cost_cache[sequence_length]

    def _check_provisioned(self, sequence_length: int) -> None:
        if sequence_length > self.provisioned_length:
            raise ValueError(
                f"sequence length {sequence_length} exceeds the provisioned "
                f"maximum {self.provisioned_length}"
            )


class ApRowBackend(_ApBackendBase):
    """``ap`` — one functional AP pass per score vector.

    This is the pre-cluster replacement path: each row's causally-valid
    prefix is executed in its own
    :meth:`~repro.mapping.softmap.SoftmAPMapping.execute_functional` call.
    Latency/energy/cycles are the *sum* of the per-row passes (the rows run
    sequentially on one AP).
    """

    def _run(self, scores, lengths):
        rows = self._rows_view(scores)
        self._check_provisioned(rows.shape[1])
        probabilities = np.zeros_like(rows)
        latency = energy = cycles = 0.0
        for i in range(rows.shape[0]):
            length = int(lengths[i]) if lengths is not None else rows.shape[1]
            probabilities[i, :length] = self._mapping.execute_functional(
                rows[i, :length]
            )
            cost = self._pass_cost(length)
            latency += cost.latency_s
            energy += cost.energy_j
            cycles += cost.cycles
        return SoftmaxResult(
            probabilities=probabilities.reshape(scores.shape),
            cost=BackendCost(
                latency_s=latency,
                energy_j=energy,
                area_mm2=self._pass_cost(rows.shape[1]).area_mm2,
            ),
            cycles=cycles,
            backend=self.spec.name,
        )


class ApBatchBackend(_ApBackendBase):
    """``ap-batch`` — the whole ``(rows, seq)`` tensor stacked in one AP.

    One compiled-plan execution
    (:meth:`~repro.mapping.plan.ExecutionPlan.execute`, reached through
    :meth:`~repro.mapping.softmap.SoftmAPMapping.execute_functional_batch`)
    runs every vector word-parallel in a single fused pass: the cycle
    count is that of a single pass while energy scales with the number of
    stacked vectors (more active rows) — the same accounting the cluster
    uses.  The result carries the plan telemetry of the pass.
    """

    def _run(self, scores, lengths):
        rows = self._rows_view(scores)
        self._check_provisioned(rows.shape[1])
        start = time.perf_counter()
        probabilities = self._mapping.execute_functional_batch(
            rows, valid_lengths=lengths
        )
        wall = time.perf_counter() - start
        cost = self._pass_cost(rows.shape[1])
        plan = self._mapping.plan(sequence_length=rows.shape[1])
        fused = is_plan_engine(self.engine) and plan.packable
        return SoftmaxResult(
            probabilities=probabilities.reshape(scores.shape),
            cost=BackendCost(
                latency_s=cost.latency_s,
                energy_j=cost.energy_j * rows.shape[0],
                area_mm2=cost.area_mm2,
            ),
            cycles=cost.cycles,
            backend=self.spec.name,
            plan=PlanTelemetry(
                fused=fused,
                engine=self.engine,
                passes=1,
                vectors=rows.shape[0],
                segment_length=rows.shape[1],
                words_per_pass=(rows.shape[0] * rows.shape[1],),
                arena_slots=plan.buffers.num_slots if fused else 0,
                arena_bytes=plan.arena_bytes(self.engine),
                wall_seconds=wall,
            ),
        )


class ApClusterBackend(_BackendBase):
    """``ap-cluster`` — the functional multi-AP cluster (one AP per head).

    ``run`` accepts a ``(batch, heads, seq)`` tensor, a head-major
    ``(heads * batch, seq)`` matrix (the LLM substrate's layout: row
    ``h * batch + b`` holds batch row ``b`` of head ``h``) or a 1-D vector
    (executed on head 0).  Cost follows the cluster's concurrency
    accounting: latency = max over the concurrent heads, energy = sum.
    """

    def __init__(self, spec: BackendSpec) -> None:
        if spec.num_heads is None:
            raise ValueError(
                "the 'ap-cluster' backend needs num_heads "
                "(one per-head AP is built per attention head); pass "
                "resolve_backend('ap-cluster', num_heads=...)"
            )
        super().__init__(spec)
        self.engine = spec.engine or "vectorized"
        self.cluster = ApCluster(
            num_heads=spec.num_heads,
            precision=spec.precision or BEST_PRECISION,
            sequence_length=spec.sequence_length or 2048,
            backend=self.engine,
            **dict(spec.options),
        )
        self._cost_cache: Dict[int, Any] = {}

    @classmethod
    def from_cluster(
        cls, cluster: ApCluster, engine: Optional[str] = None
    ) -> "ApClusterBackend":
        """Wrap an already-built :class:`~repro.mapping.cluster.ApCluster`
        (used by the cluster's own ``as_backend()``/``softmax_fn()``)."""
        backend = cls.__new__(cls)
        _BackendBase.__init__(
            backend,
            BackendSpec(
                name="ap-cluster",
                precision=cluster.precision,
                sequence_length=cluster.sequence_length,
                num_heads=cluster.num_heads,
                engine=engine or cluster.backend,
            ),
        )
        backend.engine = backend.spec.engine
        backend.cluster = cluster
        backend._cost_cache = {}
        return backend

    def _cluster_cost(self, sequence_length: int):
        """Per-length :class:`~repro.mapping.cluster.ClusterCost` at batch 1,
        cached — the model calls run() once per layer with the same length,
        and recosting rebuilds a SoftmAPMapping each time."""
        if sequence_length not in self._cost_cache:
            self._cost_cache[sequence_length] = self.cluster.cost(
                sequence_length=sequence_length, batch=1
            )
        return self._cost_cache[sequence_length]

    def run_rows(
        self, rows: np.ndarray, valid_lengths: Optional[np.ndarray] = None
    ) -> SoftmaxResult:
        """Execute an arbitrary ``(rows, seq)`` row space on the cluster.

        Unlike :meth:`run`, the row count is **not** required to be a
        multiple of the head count: a coalesced serving batch stacks rows
        from many requests, and every row is simply a segment of the
        cluster's fused row space
        (:meth:`~repro.mapping.cluster.ApCluster.execute_rows`), tiled by
        the planner against the ``pass_row_budget``.  Cost accounting:
        each row activates one AP's share of CAM switching (energy scales
        with the row count), latency is the two-stage pipeline makespan of
        the planner's pass list, and cycles accumulate per pass.
        """
        rows = np.asarray(rows, dtype=np.float64)
        if rows.ndim == 1:
            rows = rows[None, :]
        if rows.ndim != 2:
            raise ValueError("run_rows expects a (rows, seq) score matrix")
        lengths = self._check_lengths(rows, valid_lengths)
        start = time.perf_counter()
        probabilities = self.cluster.execute_rows(
            rows, valid_lengths=lengths, backend=self.engine
        )
        wall = time.perf_counter() - start
        sequence_length = rows.shape[1]
        telemetry = self.cluster.plan_telemetry(
            rows.shape[0],
            sequence_length,
            self.engine,
            wall_seconds=wall,
            threaded_passes=self.cluster.last_threaded_passes,
        )
        per_head = self._cluster_cost(sequence_length).per_head
        if telemetry.passes > 1:
            latency = self.cluster.schedule(
                telemetry.passes, sequence_length=sequence_length
            ).latency_s
        else:
            latency = per_head.latency_s
        result = SoftmaxResult(
            probabilities=probabilities,
            cost=BackendCost(
                latency_s=latency,
                energy_j=per_head.energy_j * rows.shape[0],
                area_mm2=per_head.area_mm2 * self.cluster.num_heads,
            ),
            cycles=per_head.cycles * telemetry.passes,
            backend=self.spec.name,
            plan=telemetry,
        )
        self.telemetry.record(result)
        return result

    def _run(self, scores, lengths):
        heads = self.cluster.num_heads
        if scores.ndim == 1:
            if (
                scores.size > self.cluster.sequence_length
                and self.cluster.pass_row_budget is None
            ):
                raise ValueError(
                    f"sequence length {scores.size} exceeds the provisioned "
                    f"maximum {self.cluster.sequence_length}"
                )
            # Planner first: an over-budget vector must be rejected before
            # any execution, exactly like the fused 2-D/3-D paths.
            self.cluster.plan_telemetry(1, scores.size, self.engine)
            start = time.perf_counter()
            probabilities = self.cluster.head_mapping(0).execute_functional_batch(
                scores[None, :], backend=self.engine, valid_lengths=lengths
            )[0]
            # Re-read after execution so the arena stats reflect the
            # executor this pass actually ran on.
            telemetry = self.cluster.plan_telemetry(
                1, scores.size, self.engine,
                wall_seconds=time.perf_counter() - start,
            )
            # Only head 0's AP executes a 1-D vector: charge one per-head
            # pass, not the whole cluster's energy/area.
            per_head = self._cluster_cost(scores.size).per_head
            return SoftmaxResult(
                probabilities=probabilities,
                cost=BackendCost(
                    latency_s=per_head.latency_s,
                    energy_j=per_head.energy_j,
                    area_mm2=per_head.area_mm2,
                ),
                cycles=per_head.cycles,
                backend=self.spec.name,
                plan=telemetry,
            )
        elif scores.ndim == 2:
            if scores.shape[0] % heads != 0:
                raise ValueError(
                    f"rows ({scores.shape[0]}) must be a multiple of the "
                    f"cluster head count ({heads}); stack the score "
                    f"matrices head-major"
                )
            batch = scores.shape[0] // heads
            stacked = scores.reshape(heads, batch, -1).transpose(1, 0, 2)
            per_head_lengths = (
                None if lengths is None else lengths.reshape(heads, batch).T
            )
            start = time.perf_counter()
            probabilities = self.cluster.execute(
                stacked, valid_lengths=per_head_lengths, backend=self.engine
            )
            wall = time.perf_counter() - start
            probabilities = probabilities.transpose(1, 0, 2).reshape(scores.shape)
        elif scores.ndim == 3:
            batch = scores.shape[0]
            per_head_lengths = (
                None
                if lengths is None
                else lengths.reshape(batch, scores.shape[1])
            )
            start = time.perf_counter()
            probabilities = self.cluster.execute(
                scores, valid_lengths=per_head_lengths, backend=self.engine
            )
            wall = time.perf_counter() - start
        else:
            raise ValueError(
                "ap-cluster accepts a 1-D vector, a head-major (rows, seq) "
                "matrix or a (batch, heads, seq) tensor"
            )
        sequence_length = scores.shape[-1]
        cluster_cost = self._cluster_cost(sequence_length)
        telemetry = self.cluster.plan_telemetry(
            heads * batch,
            sequence_length,
            self.engine,
            wall_seconds=wall,
            threaded_passes=self.cluster.last_threaded_passes,
        )
        if telemetry.passes > 1:
            # A tiled workload flows through the two-stage load/compute
            # pipeline: the makespan of the pass list is the latency.
            latency = self.cluster.schedule(
                telemetry.passes, sequence_length=sequence_length
            ).latency_s
            cycles = cluster_cost.cycles * telemetry.passes
        else:
            latency = cluster_cost.latency_s
            cycles = cluster_cost.cycles
        return SoftmaxResult(
            probabilities=probabilities,
            cost=BackendCost(
                latency_s=latency,
                # Stacking `batch` vectors per head scales the active rows
                # (energy) but not the cycle count — see ApCluster.cost.
                energy_j=cluster_cost.energy_j * batch,
                area_mm2=cluster_cost.area_mm2,
            ),
            cycles=cycles,
            backend=self.spec.name,
            plan=telemetry,
        )


class GpuAnalyticalBackend(_BackendBase):
    """``gpu-analytical`` — FP probabilities costed by the GPU kernel model.

    The probabilities are the exact floating-point softmax (a GPU computes
    FP softmax); the attached cost is the analytical memory-bound kernel
    model's latency/energy for the decode-shaped score tensor, so the GPU
    baseline flows through the same ``SoftmaxResult`` seam as the AP paths.
    Options: ``gpu`` (name in :data:`repro.gpu.spec.GPUS` or a
    :class:`~repro.gpu.spec.GpuSpec`, default A100) plus any
    :class:`~repro.gpu.softmax_model.GpuSoftmaxModel` kwargs.
    """

    def __init__(self, spec: BackendSpec) -> None:
        super().__init__(spec)
        options = dict(spec.options)
        gpu = options.pop("gpu", "A100")
        if isinstance(gpu, str):
            check_in_choices(gpu, tuple(GPUS), "gpu")
            gpu = GPUS[gpu]
        if not isinstance(gpu, GpuSpec):
            raise TypeError("gpu option must be a GPU name or a GpuSpec")
        self.model = GpuSoftmaxModel(gpu, **options)

    def _run(self, scores, lengths):
        rows = self._rows_view(scores)
        probabilities = _masked_float_softmax(rows, lengths).reshape(scores.shape)
        # The kernel cost depends on batch * heads (total score rows); keep
        # that product exact even when the row count is not a multiple of
        # the head count (fall back to heads = 1 rather than rounding).
        heads = self.spec.num_heads or 1
        if heads < 1 or rows.shape[0] % heads != 0:
            heads = 1
        kernel: KernelCost = self.model.decode_cost(
            rows.shape[0] // heads, heads, rows.shape[1]
        )
        return SoftmaxResult(
            probabilities=probabilities,
            cost=BackendCost(latency_s=kernel.latency_s, energy_j=kernel.energy_j),
            cycles=None,
            backend=self.spec.name,
        )


_FACTORIES: Dict[str, Callable[[BackendSpec], _BackendBase]] = {
    "float": FloatBackend,
    "integer": IntegerBackend,
    "ap": ApRowBackend,
    "ap-batch": ApBatchBackend,
    "ap-cluster": ApClusterBackend,
    "gpu-analytical": GpuAnalyticalBackend,
}


def resolve_backend(
    spec_or_name: Union[str, BackendSpec, SoftmaxBackend],
    **overrides: Any,
) -> SoftmaxBackend:
    """The single front door from a backend name/spec to a backend instance.

    Parameters
    ----------
    spec_or_name:
        A canonical backend name (or legacy alias — see
        :data:`BACKEND_ALIASES`), a :class:`BackendSpec`, or an already
        constructed backend (returned as-is, overrides rejected).
    overrides:
        :class:`BackendSpec` fields (``precision``, ``sequence_length``,
        ``num_heads``, ``engine``, ``options``) overriding the spec.

    Raises
    ------
    UnknownBackendError
        For an unknown name, with a "did you mean" suggestion.
    """
    if isinstance(spec_or_name, str):
        spec = BackendSpec(name=spec_or_name, **overrides)
    elif isinstance(spec_or_name, BackendSpec):
        spec = replace(spec_or_name, **overrides) if overrides else spec_or_name
    elif isinstance(spec_or_name, SoftmaxBackend):
        # Anything satisfying the protocol passes through — including
        # third-party backends, the module's stated extension point.
        if overrides:
            raise ValueError(
                "cannot apply spec overrides to an already-built backend; "
                "pass a name or BackendSpec instead"
            )
        return spec_or_name
    else:
        raise TypeError(
            "resolve_backend takes a backend name, a BackendSpec or a "
            f"backend instance, got {type(spec_or_name).__name__}"
        )
    return _FACTORIES[spec.name](spec)


def resolve_model_backend(
    spec_or_name: Union[str, BackendSpec, SoftmaxBackend],
    num_heads: int,
    sequence_length: int,
) -> SoftmaxBackend:
    """Resolve a backend with a model's shape filled in as defaults.

    The LLM substrate knows its head count and context width; a bare name
    (``"ap-cluster"``) or a spec that leaves those fields ``None`` gets
    them from the model, while explicit spec values and already-built
    backends pass through untouched.
    """
    if isinstance(spec_or_name, str):
        return resolve_backend(
            spec_or_name, num_heads=num_heads, sequence_length=sequence_length
        )
    if isinstance(spec_or_name, BackendSpec):
        overrides: Dict[str, Any] = {}
        if spec_or_name.num_heads is None:
            overrides["num_heads"] = num_heads
        if spec_or_name.sequence_length is None:
            overrides["sequence_length"] = sequence_length
        return resolve_backend(spec_or_name, **overrides)
    return resolve_backend(spec_or_name)
