"""Circuit breaker and the engine-fallback chain for graceful degradation.

:class:`CircuitBreaker` is the classic three-state machine, kept pure and
synchronous so it unit-tests without a server around it:

* **closed** — calls flow; ``failure_threshold`` *consecutive* failures
  trip it open.
* **open** — calls bypass the protected resource; after
  ``probe_interval`` bypassed calls the breaker offers one **half-open**
  probe.
* **half-open** — exactly one trial call: success closes the breaker,
  failure re-opens it (and counts toward ``max_probes``; exhausting that
  budget makes the open state permanent).

:class:`EngineFallbackChain` stacks one breaker per engine of an ordered
chain (``compiled -> vectorized -> reference`` by default).  Tripping the
current engine's breaker degrades the chain one level; an open breaker
above the current level is probed on schedule, and a successful probe
recovers back up.  Because every plan engine is bit-identical by
construction, degradation is invisible in the response bits — only in
latency and the chain's transition log, which the ``chaos-load``
experiment asserts on (at least one degrade *and* one recovery under the
default fault schedule).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

__all__ = [
    "BREAKER_STATES",
    "BreakerOpen",
    "BreakerTransition",
    "CircuitBreaker",
    "EngineFallbackChain",
]

BREAKER_STATES: Tuple[str, ...] = ("closed", "open", "half-open")


class BreakerOpen(RuntimeError):
    """Raised when a call is attempted against an open breaker."""


@dataclass(frozen=True)
class BreakerTransition:
    """One chain transition: degrade or recovery, and at which call."""

    kind: str  # "degrade" | "recover"
    engine_from: str
    engine_to: str
    call: int

    def __str__(self) -> str:
        arrow = "->" if self.kind == "degrade" else "=>"
        return f"{self.engine_from}{arrow}{self.engine_to}@{self.call}"


class CircuitBreaker:
    """Consecutive-failure breaker with half-open probing."""

    def __init__(
        self,
        failure_threshold: int = 3,
        probe_interval: int = 8,
        max_probes: Optional[int] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if probe_interval < 1:
            raise ValueError(
                f"probe_interval must be >= 1, got {probe_interval}"
            )
        if max_probes is not None and max_probes < 1:
            raise ValueError(f"max_probes must be >= 1, got {max_probes}")
        self.failure_threshold = failure_threshold
        self.probe_interval = probe_interval
        self.max_probes = max_probes
        self._state = "closed"
        self._consecutive_failures = 0
        self._bypassed = 0
        self._probes = 0

    @property
    def state(self) -> str:
        return self._state

    @property
    def probes(self) -> int:
        """Half-open probes attempted since the breaker first tripped."""
        return self._probes

    @property
    def exhausted(self) -> bool:
        """True once the probe budget is spent: permanently degraded."""
        return self.max_probes is not None and self._probes >= self.max_probes

    def record_success(self) -> None:
        """A call against the protected resource succeeded."""
        if self._state == "half-open":
            self._state = "closed"
            self._probes = 0
        self._consecutive_failures = 0
        self._bypassed = 0

    def record_failure(self) -> None:
        """A call against the protected resource failed."""
        if self._state == "half-open":
            self._state = "open"
            self._bypassed = 0
            return
        self._consecutive_failures += 1
        if (
            self._state == "closed"
            and self._consecutive_failures >= self.failure_threshold
        ):
            self._state = "open"
            self._bypassed = 0

    def note_bypass(self) -> None:
        """A call was served elsewhere while this breaker is open."""
        if self._state == "open":
            self._bypassed += 1

    def abort_probe(self) -> None:
        """Void an in-progress probe (the trial call never ran to a
        verdict — e.g. a client-side validation error): back to open with
        the probe slot refunded and the countdown left ripe, so the next
        opportunity probes again immediately."""
        if self._state == "half-open":
            self._state = "open"
            self._probes -= 1
            self._bypassed = self.probe_interval

    def should_probe(self) -> bool:
        """Offer (and claim) the half-open probe slot when it is due."""
        if (
            self._state == "open"
            and not self.exhausted
            and self._bypassed >= self.probe_interval
        ):
            self._state = "half-open"
            self._probes += 1
            return True
        return False


class EngineFallbackChain:
    """Ordered engine chain, one breaker per level above the floor.

    ``next_call()`` names the engine the next execution should use — the
    current level, or a due half-open probe of a tripped level above it.
    The caller reports the outcome through ``on_success`` / ``on_failure``
    with the same ``(engine, probe)`` pair, which drives degradation,
    probing, and recovery.  All methods run on one thread at a time (the
    server's single worker), so the chain keeps no lock.
    """

    def __init__(
        self,
        engines: Sequence[str],
        failure_threshold: int = 3,
        probe_interval: int = 8,
        max_probes: Optional[int] = None,
    ) -> None:
        if not engines:
            raise ValueError("engine chain must not be empty")
        if len(set(engines)) != len(engines):
            raise ValueError(f"engine chain has duplicates: {engines}")
        self.engines: Tuple[str, ...] = tuple(engines)
        self._breakers = [
            CircuitBreaker(
                failure_threshold=failure_threshold,
                probe_interval=probe_interval,
                max_probes=max_probes,
            )
            for _ in self.engines
        ]
        self._level = 0
        self._calls = 0
        self.transitions: List[BreakerTransition] = []

    @property
    def current_engine(self) -> str:
        return self.engines[self._level]

    @property
    def level(self) -> int:
        return self._level

    @property
    def degrades(self) -> int:
        return sum(1 for t in self.transitions if t.kind == "degrade")

    @property
    def recoveries(self) -> int:
        return sum(1 for t in self.transitions if t.kind == "recover")

    def breaker(self, engine: str) -> CircuitBreaker:
        return self._breakers[self.engines.index(engine)]

    def state_of(self, engine: str) -> str:
        return self.breaker(engine).state

    def next_call(self) -> Tuple[str, bool]:
        """Pick ``(engine, is_probe)`` for the next execution."""
        self._calls += 1
        for index in range(self._level):
            if self._breakers[index].should_probe():
                return self.engines[index], True
        return self.current_engine, False

    def on_success(self, engine: str, probe: bool = False) -> None:
        index = self.engines.index(engine)
        self._breakers[index].record_success()
        if probe and index < self._level:
            self.transitions.append(
                BreakerTransition(
                    kind="recover",
                    engine_from=self.current_engine,
                    engine_to=engine,
                    call=self._calls,
                )
            )
            self._level = index
        elif index == self._level:
            # A degraded-level success brings every tripped breaker above
            # one call closer to its half-open probe.
            for above in range(self._level):
                self._breakers[above].note_bypass()

    def abort_probe(self, engine: str) -> None:
        """Void a probe whose trial call never reached a verdict."""
        self.breaker(engine).abort_probe()

    def on_failure(self, engine: str, probe: bool = False) -> None:
        index = self.engines.index(engine)
        breaker = self._breakers[index]
        breaker.record_failure()
        if probe:
            return  # stay degraded; the open breaker re-arms its countdown
        if (
            index == self._level
            and breaker.state == "open"
            and self._level + 1 < len(self.engines)
        ):
            self.transitions.append(
                BreakerTransition(
                    kind="degrade",
                    engine_from=engine,
                    engine_to=self.engines[self._level + 1],
                    call=self._calls,
                )
            )
            self._level += 1
