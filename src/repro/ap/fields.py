"""Column fields of an Associative Processor.

The SoftmAP mapping (Fig. 4) stores several named quantities side by side in
each CAM row (columns ``A``, ``B`` and the ``2M+12``-bit result column
``R``).  A :class:`Field` names a group of bit columns (LSB first) holding
one word per row; the :class:`FieldAllocator` hands out disjoint column
ranges inside a CAM of fixed width.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.utils.validation import check_positive_int

__all__ = ["Field", "FieldAllocator"]


@dataclass(frozen=True)
class Field:
    """A named group of bit columns storing one word per CAM row.

    Attributes
    ----------
    name:
        Field name (``"A"``, ``"B"``, ``"R"``, ``"carry"`` ...).
    columns:
        Physical column indices, least-significant bit first.
    signed:
        Whether words are interpreted as two's complement.
    """

    name: str
    columns: Tuple[int, ...]
    signed: bool = True

    def __post_init__(self) -> None:
        if not self.columns:
            raise ValueError(f"field {self.name!r} needs at least one column")
        if len(set(self.columns)) != len(self.columns):
            raise ValueError(f"field {self.name!r} has duplicate columns")

    @property
    def bits(self) -> int:
        """Word width in bits."""
        return len(self.columns)

    def bit_column(self, position: int) -> int:
        """Physical column of bit ``position`` (0 = LSB)."""
        return self.columns[position]

    def slice(self, start: int, stop: int, name: str = "") -> "Field":
        """A sub-field covering bit positions ``[start, stop)``."""
        if not 0 <= start < stop <= self.bits:
            raise ValueError(
                f"invalid slice [{start}, {stop}) for {self.bits}-bit field"
            )
        return Field(
            name=name or f"{self.name}[{start}:{stop}]",
            columns=self.columns[start:stop],
            signed=self.signed,
        )


class FieldAllocator:
    """Allocates disjoint column ranges of a fixed-width CAM to fields."""

    def __init__(self, total_columns: int) -> None:
        self.total_columns = check_positive_int(total_columns, "total_columns")
        self._next_column = 0
        self._fields: Dict[str, Field] = {}

    @property
    def fields(self) -> Dict[str, Field]:
        """All allocated fields by name."""
        return dict(self._fields)

    @property
    def used_columns(self) -> int:
        """Number of columns already allocated."""
        return self._next_column

    @property
    def free_columns(self) -> int:
        """Number of columns still available."""
        return self.total_columns - self._next_column

    def allocate(self, name: str, bits: int, signed: bool = True) -> Field:
        """Allocate a new ``bits``-wide field named ``name``."""
        check_positive_int(bits, "bits")
        if name in self._fields:
            raise ValueError(f"field {name!r} already allocated")
        if self._next_column + bits > self.total_columns:
            raise ValueError(
                f"cannot allocate {bits} columns for field {name!r}: only "
                f"{self.free_columns} of {self.total_columns} columns free"
            )
        columns = tuple(range(self._next_column, self._next_column + bits))
        self._next_column += bits
        field = Field(name=name, columns=columns, signed=signed)
        self._fields[name] = field
        return field

    def get(self, name: str) -> Field:
        """Look up an allocated field by name."""
        if name not in self._fields:
            raise KeyError(f"no field named {name!r}")
        return self._fields[name]

    def layout(self) -> List[Tuple[str, int, int]]:
        """Human-readable layout: (name, first column, width)."""
        return [
            (field.name, field.columns[0], field.bits)
            for field in self._fields.values()
        ]
