"""Table VI — comparison with related softmax accelerators.

ConSmax and Softermax report their process node, maximum frequency and
optimum energy per operation; those published numbers are constants here.
The SoftmAP row is measured from this reproduction's AP cost model (per-word
energy of one elementary operation at the best precision).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.ap.cost import ApCostModel
from repro.ap.tech import TECH_16NM
from repro.quant.precision import BEST_PRECISION
from repro.runtime.registry import Experiment, register
from repro.utils.tables import TextTable

__all__ = [
    "RelatedWork",
    "Table6Experiment",
    "run_table6",
    "render_table6",
    "RELATED_WORKS",
]


@dataclass(frozen=True)
class RelatedWork:
    """One row of Table VI."""

    method: str
    approximation: str
    process: str
    max_frequency_mhz: float
    energy_per_op_pj: float


#: Published numbers of the two related accelerators (Table VI of the paper).
RELATED_WORKS: List[RelatedWork] = [
    RelatedWork(
        method="ConSmax",
        approximation="Learnable LUTs",
        process="16nm",
        max_frequency_mhz=1250.0,
        energy_per_op_pj=0.2,
    ),
    RelatedWork(
        method="Softermax",
        approximation="Base replacement + online normalization",
        process="16nm",
        max_frequency_mhz=1111.0,
        energy_per_op_pj=0.7,
    ),
]


def run_table6(rows: int = 2048, include_row_access: bool = False) -> List[RelatedWork]:
    """Build Table VI with the measured SoftmAP row appended."""
    model = ApCostModel(rows=rows, tech=TECH_16NM)
    energy_per_op = model.energy_per_elementary_op_pj(
        BEST_PRECISION.input_bits, include_row_access=include_row_access
    )
    softmap = RelatedWork(
        method="SoftmAP (this reproduction)",
        approximation="Integer polynomial",
        process=TECH_16NM.name,
        max_frequency_mhz=TECH_16NM.frequency_hz / 1e6,
        energy_per_op_pj=energy_per_op,
    )
    return RELATED_WORKS + [softmap]


def render_table6(entries: List[RelatedWork]) -> str:
    """Render Table VI."""
    table = TextTable(
        ["method", "softmax approximation", "process", "max freq (MHz)", "energy/op (pJ)"],
        title="Table VI — comparison with related works",
        float_digits=4,
    )
    for entry in entries:
        table.add_row(
            [
                entry.method,
                entry.approximation,
                entry.process,
                entry.max_frequency_mhz,
                entry.energy_per_op_pj,
            ]
        )
    return table.render()


@register("table6")
class Table6Experiment(Experiment):
    """Registry wrapper: Table VI through the uniform runtime contract."""

    title = "Table VI"
    description = "energy/op comparison with ConSmax and Softermax"
    row_type = RelatedWork

    def run(self, config=None):
        return run_table6(**self._config_kwargs(config))

    def render(self, result):
        return render_table6(result)
