"""Benchmark regenerating Fig. 1 — softmax runtime proportion (Llama2-7b on
A100) versus sequence length."""

from repro.runtime import get_experiment


def test_fig1_softmax_proportion(benchmark):
    experiment = get_experiment("fig1")
    results = benchmark(experiment.run)
    print()
    print(experiment.render(results))
    fractions = {int(r["sequence_length"]): r["softmax_fraction"] for r in results}
    # Paper: ~3% at 1024 and below, up to 38% at 16384.
    assert fractions[1024] < 0.10
    assert fractions[16384] > 0.20
    assert fractions[16384] > fractions[1024]
