"""Benchmark regenerating Table II — 2D AP runtime of elementary operations,
cross-checked against the functional bit-serial simulator."""

from repro.experiments import render_table2, run_table2


def test_table2_runtime_formulas(benchmark):
    rows = benchmark(run_table2)
    print()
    print(render_table2(rows))
    assert any(r.simulated_cycles is not None for r in rows)
