"""Barrett reduction.

Algorithm 1 needs the quotient and remainder of ``-vstable`` by the fixed
divisor ``vln2 = floor(ln2 / S)``.  A hardware division would be slow on the
bit-serial AP, so the paper uses Barrett reduction [Barrett 1986]: with a
precomputed constant ``mu = floor(2**k / d)`` the quotient of ``z`` by ``d``
is obtained as ``(z * mu) >> k`` using only a multiplication and a shift
(line 6/7 of Algorithm 1, with ``k = 2M``).

The estimate can undershoot the true quotient by a bounded amount when ``z``
approaches ``2**k``; :class:`BarrettReducer` optionally applies the standard
correction loop so that the remainder always lands in ``[0, d)``.  Both the
corrected and the raw ("paper-faithful", single multiply + shift) behaviour
are exposed so the ablation benchmark can compare them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

import numpy as np

from repro.utils.validation import check_positive_int

__all__ = ["BarrettReducer"]

IntArray = Union[int, np.ndarray]


@dataclass(frozen=True)
class BarrettReducer:
    """Quotient/remainder by a fixed positive divisor via Barrett reduction.

    Parameters
    ----------
    divisor:
        The fixed divisor ``d`` (``vln2`` in Algorithm 1); must be positive.
    shift_bits:
        The Barrett shift ``k``; the paper uses ``k = 2M``.  The reduction
        is exact (no correction needed) for all ``z`` with
        ``0 <= z < 2**k / 2`` when ``d <= 2**(k/2)``; the correction loop
        covers the remaining corner cases.
    correct:
        Whether to apply the correction loop (default).  With
        ``correct=False`` the raw single multiply-and-shift estimate is
        returned, exactly as written in the paper's pseudocode.
    """

    divisor: int
    shift_bits: int
    correct: bool = True

    def __post_init__(self) -> None:
        check_positive_int(self.divisor, "divisor")
        check_positive_int(self.shift_bits, "shift_bits")

    @property
    def mu(self) -> int:
        """The precomputed Barrett constant ``mu = floor(2**k / d)``."""
        return (1 << self.shift_bits) // self.divisor

    def quotient(self, z: IntArray) -> IntArray:
        """Estimate ``floor(z / d)`` for non-negative ``z``."""
        z_arr = np.asarray(z, dtype=np.int64)
        if np.any(z_arr < 0):
            raise ValueError("Barrett reduction expects non-negative operands")
        q = (z_arr * np.int64(self.mu)) >> np.int64(self.shift_bits)
        if self.correct:
            r = z_arr - q * self.divisor
            # Standard Barrett correction: the estimate can undershoot by a
            # small bounded amount; add one until the remainder is in range.
            while np.any(r >= self.divisor):
                adjust = (r >= self.divisor).astype(np.int64)
                q = q + adjust
                r = r - adjust * self.divisor
        if np.isscalar(z) or (isinstance(z, np.ndarray) and z.ndim == 0):
            return int(q)
        return q

    def remainder(self, z: IntArray) -> IntArray:
        """Estimate ``z mod d`` for non-negative ``z``."""
        q = self.quotient(z)
        r = np.asarray(z, dtype=np.int64) - np.asarray(q, dtype=np.int64) * self.divisor
        if np.isscalar(z) or (isinstance(z, np.ndarray) and z.ndim == 0):
            return int(r)
        return r

    def divmod(self, z: IntArray) -> Tuple[IntArray, IntArray]:
        """Return ``(quotient, remainder)`` of ``z`` by the divisor."""
        q = self.quotient(z)
        r = np.asarray(z, dtype=np.int64) - np.asarray(q, dtype=np.int64) * self.divisor
        if np.isscalar(z) or (isinstance(z, np.ndarray) and z.ndim == 0):
            return int(q), int(r)
        return q, r

    def max_quotient_error(self, max_operand: int) -> int:
        """Worst-case undershoot of the *uncorrected* quotient estimate for
        operands up to ``max_operand`` (exhaustive check; used in tests and
        the Barrett ablation)."""
        check_positive_int(max_operand, "max_operand")
        z = np.arange(max_operand + 1, dtype=np.int64)
        estimate = (z * np.int64(self.mu)) >> np.int64(self.shift_bits)
        exact = z // self.divisor
        return int(np.max(exact - estimate))
