"""Associative Processor (AP) substrate.

The AP is the paper's custom hardware: a Content Addressable Memory (CAM)
of SRAM cells plus key/mask/tag registers and a controller that realises
arithmetic by sweeping Look-Up-Table (LUT) passes of *compare* and *write*
cycles over the stored words — bit-serial across bit positions, word-parallel
across rows (Fig. 3).  A two-dimensional AP additionally operates across
rows, which makes reductions cheap (Section II-B).

This package provides two complementary models:

* a **functional simulator** (:mod:`repro.ap.cam`, :mod:`repro.ap.lut`,
  :mod:`repro.ap.processor`, :mod:`repro.ap.processor2d`) that executes real
  compare/write passes on a bit-level CAM and therefore *computes* correct
  results while counting cycles — used to validate the SoftmAP mapping;
* an **analytical cost model** (:mod:`repro.ap.cost`, :mod:`repro.ap.tech`)
  implementing the Table II runtime formulas and the 16 nm energy/area
  parameters used for the hardware characterization (Figs. 6-8,
  Tables V-VI).

The functional simulator runs under two interchangeable backends selected
by ``AssociativeProcessor(..., backend=...)``:

* ``"reference"`` (default) — bit-serial LUT sweeps in a Python loop over
  bit positions; the paper-faithful ground truth, and the only backend that
  records exact data-dependent write activity (``written_bits`` /
  ``row_writes``);
* ``"vectorized"`` — the packed-word :class:`~repro.ap.engine.BitPlaneEngine`
  executing whole row-batches per numpy operation, bit-identical to the
  reference (the differential suite in ``tests/ap/test_engine_parity.py``
  enforces this) with exact compare/write cycle counts, at orders of
  magnitude less wall-clock cost.  Use it for anything that runs softmax
  vectors at realistic sizes; unsupported column layouts fall back to the
  reference sweep automatically.
"""

from repro.ap.cam import CamArray, CamStats
from repro.ap.lut import (
    LutPass,
    Lut,
    XOR_LUT,
    AND_LUT,
    OR_LUT,
    NOT_LUT,
    ADD_LUT,
    SUB_LUT,
    COPY_LUT,
)
from repro.ap.engine import BitPlaneEngine
from repro.ap.fields import Field, FieldAllocator
from repro.ap.processor import AssociativeProcessor
from repro.ap.processor2d import AssociativeProcessor2D
from repro.ap.tech import TechnologyParameters, TECH_16NM
from repro.ap.cost import ApCostModel, OperationCost

__all__ = [
    "CamArray",
    "CamStats",
    "LutPass",
    "Lut",
    "XOR_LUT",
    "AND_LUT",
    "OR_LUT",
    "NOT_LUT",
    "ADD_LUT",
    "SUB_LUT",
    "COPY_LUT",
    "BitPlaneEngine",
    "Field",
    "FieldAllocator",
    "AssociativeProcessor",
    "AssociativeProcessor2D",
    "TechnologyParameters",
    "TECH_16NM",
    "ApCostModel",
    "OperationCost",
]
