"""Engine speed: fused vectorized execution vs bit-serial reference.

The acceptance workload is a 64-row batch of 256-element integer softmax
vectors executed end to end through the compiled plan (quantize, Barrett
range reduction, polynomial, variable shift, segmented reduction, restoring
division).  Both engines run the *same* lowered program over the same
16384-word row space: ``"reference"`` interprets it as bit-serial
compare/write sweeps on the functional CAM, ``"vectorized"`` executes the
fused packed-word pass.  Results must be bit-identical and the vectorized
engine must be at least 5x faster (in practice it is orders of magnitude
faster, and far more against the seed's only option, a per-vector Python
loop).
"""

import time

import numpy as np

from repro.mapping.softmap import SoftmAPMapping

BATCH = 64
SEQ = 256


def _best_of(callable_, repeats):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_vectorized_backend_speedup_on_64x256_softmax():
    rng = np.random.default_rng(7)
    scores = rng.normal(0.0, 2.0, size=(BATCH, SEQ))
    mapping = SoftmAPMapping(sequence_length=SEQ)

    fast_s, fast = _best_of(
        lambda: mapping.execute_functional_batch(scores, backend="vectorized"), 2
    )
    ref_s, reference = _best_of(
        lambda: mapping.execute_functional_batch(scores, backend="reference"), 1
    )

    assert np.array_equal(fast, reference), "backends disagree on the workload"
    speedup = ref_s / fast_s
    print(
        f"\n{BATCH}x{SEQ} integer softmax on the functional AP: "
        f"reference {ref_s:.3f}s, vectorized {fast_s:.3f}s "
        f"-> {speedup:.1f}x speedup"
    )
    assert speedup >= 5.0, f"vectorized backend only {speedup:.1f}x faster"


def test_vectorized_backend_scales_past_reference_single_vector_rate():
    """Batched vectorized throughput dwarfs the per-vector reference rate.

    The seed code base could only evaluate a (batch, seq) tensor one vector
    at a time; this pins that one vectorized call over the whole 64-vector
    batch delivers at least 8x the per-vector throughput of the bit-serial
    reference (in practice the whole batch costs about as much as a single
    reference vector, i.e. ~64x, but the assertion keeps headroom against
    machine noise).
    """
    rng = np.random.default_rng(11)
    scores = rng.normal(0.0, 2.0, size=(BATCH, SEQ))
    mapping = SoftmAPMapping(sequence_length=SEQ)

    batch_s, batched = _best_of(
        lambda: mapping.execute_functional_batch(scores, backend="vectorized"), 2
    )
    single_s, single = _best_of(
        lambda: mapping.execute_functional(scores[0], backend="reference"), 1
    )

    assert np.array_equal(batched[0], single)
    throughput_gain = (single_s * BATCH) / batch_s
    print(
        f"\nvectorized batch of {BATCH}: {batch_s:.3f}s vs one reference "
        f"vector: {single_s:.3f}s ({throughput_gain:.0f}x per-vector rate)"
    )
    assert throughput_gain >= 8.0
