"""Setup shim for environments without the `wheel` package.

This file carries the (minimal) project metadata on purpose: a
pyproject.toml would switch editable installs onto PEP 517 build isolation,
breaking offline machines.  It also exists so that
`pip install -e .` can fall back to the legacy setuptools develop path on
offline machines where PEP 660 editable builds (which require `wheel`) are
unavailable.
"""

from setuptools import setup

setup()
