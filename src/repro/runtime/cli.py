"""``python -m repro`` / ``repro`` — the command-line front door.

Commands
--------
``repro list``
    Registered experiments (one per table/figure of the paper).
``repro backends``
    Softmax execution backends understood by ``resolve_backend``.
``repro run <name> [--backend B] [--fast] [--workers N] [--set k=v ...] [--json PATH] [--out PATH]``
    Regenerate one artefact: prints the rendered table and optionally
    writes JSON — ``--json`` the full artifact (``Experiment.to_dict``
    wrapped with schema + config), ``--out`` the bare ``to_dict()``
    result payload.

Examples
--------
::

    repro list
    repro run table2 --backend vectorized --json table2.json
    repro run table3_4 --backend ap-cluster --fast
    repro backends
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from typing import Any, Dict, List, Optional

from repro.runtime.backend import (
    UnknownBackendError,
    backend_descriptions,
    canonical_backend_name,
)
from repro.runtime.registry import (
    UnknownExperimentError,
    get_experiment,
    iter_experiments,
)
from repro.utils.validation import check_in_choices

__all__ = ["main", "build_parser"]

#: Schema version of the ``--json`` artifact.
ARTIFACT_SCHEMA = 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the SoftmAP paper's tables and figures through the "
            "unified runtime API."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the registered experiments")
    sub.add_parser("backends", help="list the softmax execution backends")

    run = sub.add_parser("run", help="run one experiment and render its table")
    run.add_argument("experiment", help="registry name (see 'repro list')")
    run.add_argument(
        "--backend",
        help="softmax execution backend for experiments that take one "
        "(see 'repro backends')",
    )
    run.add_argument(
        "--fast",
        action="store_true",
        help="use the experiment's reduced-size smoke config",
    )
    run.add_argument(
        "--workers",
        type=int,
        metavar="N",
        help="fan the experiment's independent configurations across N "
        "worker processes (experiments that support it, e.g. table3_4)",
    )
    run.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="config override (VALUE is parsed as a Python literal when "
        "possible, else kept as a string); repeatable",
    )
    run.add_argument(
        "--json",
        dest="json_path",
        metavar="PATH",
        help="write the JSON artifact (schema, experiment, config, result)",
    )
    run.add_argument(
        "--out",
        dest="out_path",
        metavar="PATH",
        help="write the bare experiment result (Experiment.to_dict JSON, "
        "no artifact envelope) to a file",
    )
    run.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the rendered table (useful with --json)",
    )
    return parser


def _parse_overrides(pairs: List[str]) -> Dict[str, Any]:
    config: Dict[str, Any] = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise ValueError(f"--set expects KEY=VALUE, got {pair!r}")
        try:
            config[key] = ast.literal_eval(raw)
        except (ValueError, SyntaxError):
            config[key] = raw
    return config


def _cmd_list(out) -> int:
    print(f"{'name':<16} {'artefact':<12} description", file=out)
    for experiment in iter_experiments():
        print(
            f"{experiment.name:<16} {experiment.title:<12} "
            f"{experiment.description}",
            file=out,
        )
    return 0


def _cmd_backends(out) -> int:
    print(f"{'name':<16} description", file=out)
    for name, description in backend_descriptions().items():
        print(f"{name:<16} {description}", file=out)
    return 0


def _cmd_run(args: argparse.Namespace, out) -> int:
    experiment = get_experiment(args.experiment)
    config: Dict[str, Any] = dict(experiment.fast_config) if args.fast else {}
    config.update(_parse_overrides(args.overrides))
    if args.workers is not None:
        config["workers"] = args.workers
    if "workers" in config and not experiment.supports_workers:
        # Covers both --workers and `--set workers=N`: fail with a clean
        # message instead of a TypeError deep inside the experiment's run().
        raise ValueError(
            f"experiment {experiment.name!r} takes no workers "
            "(it has no parallel configuration sweep)"
        )
    if args.backend is not None:
        key = experiment.backend_config_key
        if key is None:
            raise ValueError(
                f"experiment {experiment.name!r} takes no --backend "
                "(it has no softmax execution switch)"
            )
        if experiment.backend_choices is not None:
            config[key] = check_in_choices(
                args.backend, experiment.backend_choices, "--backend"
            )
        else:
            config[key] = canonical_backend_name(args.backend)
    result = experiment.run(config)
    if not args.quiet:
        print(experiment.render(result), file=out)
    if args.out_path:
        with open(args.out_path, "w", encoding="utf-8") as handle:
            json.dump(experiment.to_dict(result), handle, indent=2, sort_keys=True)
            handle.write("\n")
        if not args.quiet:
            print(f"wrote {args.out_path}", file=out)
    if args.json_path:
        artifact = {
            "schema": ARTIFACT_SCHEMA,
            "experiment": experiment.name,
            "title": experiment.title,
            "config": {k: _jsonable(v) for k, v in config.items()},
            "result": experiment.to_dict(result),
        }
        with open(args.json_path, "w", encoding="utf-8") as handle:
            json.dump(artifact, handle, indent=2, sort_keys=True)
            handle.write("\n")
        if not args.quiet:
            print(f"wrote {args.json_path}", file=out)
    return 0


def _jsonable(value: Any) -> Any:
    """Config values come from the CLI or fast_config; keep them JSON-safe."""
    if isinstance(value, tuple):
        return list(value)
    return value


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    out = sys.stdout
    try:
        if args.command == "list":
            return _cmd_list(out)
        if args.command == "backends":
            return _cmd_backends(out)
        return _cmd_run(args, out)
    except (UnknownExperimentError, UnknownBackendError, ValueError) as error:
        print(f"repro: error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
