"""record_benchmark merge semantics: append, overwrite, and recovery."""

import json

import pytest

from repro.utils import trajectory
from repro.utils.trajectory import (
    SCHEMA,
    machine_fingerprint,
    record_benchmark,
    trajectory_path,
)


def _load(path):
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


class TestRecordBenchmark:
    def test_noop_without_directory(self, monkeypatch):
        monkeypatch.delenv(trajectory.TRAJECTORY_DIR_ENV, raising=False)
        assert record_benchmark("demo", {"metric": 1.0}) is None

    def test_environment_supplies_directory_and_label(self, tmp_path, monkeypatch):
        monkeypatch.setenv(trajectory.TRAJECTORY_DIR_ENV, str(tmp_path))
        monkeypatch.setenv(trajectory.PR_ENV, "PR9")
        path = record_benchmark("demo", {"metric": 2.0})
        assert path == trajectory_path("demo", str(tmp_path))
        payload = _load(path)
        assert payload["schema"] == SCHEMA
        assert payload["benchmark"] == "demo"
        assert payload["entries"][0]["pr"] == "PR9"
        assert payload["entries"][0]["metric"] == 2.0

    def test_missing_directory_is_created(self, tmp_path):
        # `repro bench --dir perf/trajectory` must work without a mkdir.
        directory = tmp_path / "perf" / "trajectory"
        path = record_benchmark("demo", {"metric": 1.0}, str(directory))
        assert _load(path)["entries"][0]["metric"] == 1.0

    def test_distinct_labels_append(self, tmp_path):
        record_benchmark("demo", {"metric": 1.0}, str(tmp_path), pr="PR1")
        path = record_benchmark("demo", {"metric": 2.0}, str(tmp_path), pr="PR2")
        entries = _load(path)["entries"]
        assert [e["pr"] for e in entries] == ["PR1", "PR2"]
        assert [e["metric"] for e in entries] == [1.0, 2.0]

    def test_same_label_overwrites_instead_of_appending(self, tmp_path):
        record_benchmark("demo", {"metric": 1.0}, str(tmp_path), pr="PR1")
        path = record_benchmark("demo", {"metric": 5.0}, str(tmp_path), pr="PR1")
        entries = _load(path)["entries"]
        assert len(entries) == 1
        assert entries[0]["metric"] == 5.0

    def test_same_label_merges_sibling_metrics(self, tmp_path):
        # Two benchmark tests writing different keys to one file (the
        # plan_fusion pattern) merge into a single per-PR entry.
        record_benchmark("demo", {"fused": 1.0}, str(tmp_path), pr="PR1")
        path = record_benchmark("demo", {"compiled": 2.0}, str(tmp_path), pr="PR1")
        entries = _load(path)["entries"]
        assert len(entries) == 1
        assert entries[0]["fused"] == 1.0
        assert entries[0]["compiled"] == 2.0

    def test_update_refreshes_machine_fingerprint(self, tmp_path):
        path = record_benchmark("demo", {"metric": 1.0}, str(tmp_path), pr="PR1")
        # Simulate an entry recorded on a different machine: the stored
        # fingerprint no longer matches this host.
        payload = _load(path)
        payload["entries"][0]["machine"] = {
            "platform": "OtherOS-0.0",
            "python": "0.0.0",
            "numpy": "0.0",
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        record_benchmark("demo", {"metric": 2.0}, str(tmp_path), pr="PR1")
        entry = _load(path)["entries"][0]
        assert entry["machine"] == machine_fingerprint()
        assert entry["metric"] == 2.0

    @pytest.mark.parametrize(
        "garbage",
        [
            "not json at all {{{",
            '"a bare string"',
            json.dumps({"schema": "some-other-schema/v9", "entries": []}),
            json.dumps({"schema": SCHEMA, "entries": "not-a-list"}),
            "",
        ],
        ids=["unparseable", "wrong-type", "wrong-schema", "bad-entries", "empty"],
    )
    def test_malformed_existing_file_starts_fresh(self, tmp_path, garbage):
        path = trajectory_path("demo", str(tmp_path))
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(garbage)
        recorded = record_benchmark("demo", {"metric": 3.0}, str(tmp_path), pr="PR1")
        assert recorded == path
        payload = _load(path)
        assert payload["schema"] == SCHEMA
        assert len(payload["entries"]) == 1
        assert payload["entries"][0]["metric"] == 3.0
