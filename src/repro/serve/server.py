"""Softmax-as-a-service: the asyncio request server with continuous batching.

:class:`SoftmaxServer` accepts concurrent softmax requests (``submit``
coroutines, or newline-delimited JSON over TCP via :meth:`serve_tcp`) and
serves them through **one** backend pass per scheduling tick: an admission
loop coalesces everything queued — within a ``max_wait_ms`` latency budget
and a ``max_batch_rows`` admission cap — into a single fused head-major
row space (:mod:`repro.serve.batching`), executes it through the backend's
``run_rows`` seam (for ``ap-cluster`` that is the planner's
``pass_row_budget`` tiling and two-stage pipeline schedule), and resolves
each request's future from its slice of the batch result.

Continuous batching falls out of the loop structure: while tick ``k``
executes on the worker thread, the event loop keeps accepting submissions,
so tick ``k + 1`` forms from everything that arrived in the meantime — the
batch composition adapts to the instantaneous load with no fixed batch
boundary.

Bit-identity is the serving contract: every response is **bit-identical**
to running its request alone through the same backend (pinned by
``tests/serve`` and ``benchmarks/test_serve_load.py``), because each
vector's lowered program is independent of its row-space neighbours and
masked ragged execution matches un-padded execution exactly.

Reliability (:mod:`repro.reliability`) composes on top without touching
the fast path:

* **deadlines** — ``submit(..., deadline_ms=...)`` (or the server-wide
  ``default_deadline_ms``) bounds a request's life; a request that
  expires in the backlog fails with a structured
  :class:`~repro.reliability.retry.DeadlineExceeded` instead of queueing
  forever, and a response that lands late carries ``deadline_missed``.
* **retries** — a :class:`~repro.reliability.retry.RetryPolicy` retries
  *transient* per-request failures (e.g. injected engine faults) with
  capped exponential backoff + seeded jitter on the worker thread;
  ``retries`` / ``backoff_ms`` surface on the response and its
  :class:`~repro.mapping.plan.PlanTelemetry`.
* **engine fallback** — an ``engine_chain`` (compiled -> vectorized ->
  reference) puts a circuit breaker per engine: repeated failures trip
  the breaker and degrade the chain one level, half-open probes recover
  it, and — because every plan engine is bit-identical by construction —
  the response bits never change, only the latency.  :meth:`health`
  reports availability, error counts, and the breaker state.

Per-request telemetry rides on the uniform
:class:`~repro.runtime.backend.SoftmaxResult` shape: each response carries
its slice of the probabilities, its energy share of the batch pass, the
pass latency, and the batch's :class:`~repro.mapping.plan.PlanTelemetry`
annotated with the tick's ``queue_depth``.
"""

from __future__ import annotations

import asyncio
import json
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Any, Deque, Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.ap.engine import canonical_engine_name
from repro.reliability import faults
from repro.reliability.breaker import EngineFallbackChain
from repro.reliability.retry import DeadlineExceeded, RetryPolicy
from repro.runtime.backend import (
    ApClusterBackend,
    BackendCost,
    BackendSpec,
    SoftmaxBackend,
    SoftmaxResult,
    resolve_backend,
    rows_runner,
)
from repro.serve.batching import as_request_matrix, coalesce, split, take_admissible
from repro.utils.validation import check_positive_int

__all__ = [
    "ServeResponse",
    "ServerClosed",
    "ServerHealth",
    "ServerStats",
    "SoftmaxServer",
]


class ServerClosed(RuntimeError):
    """Raised by ``submit`` when the server is (or gets) shut down."""


@dataclass(frozen=True)
class ServeResponse:
    """One served request: probabilities plus serving-side telemetry.

    ``result`` is the per-request :class:`SoftmaxResult` view of the batch
    pass (sliced probabilities, pass latency, energy share, the batch's
    plan telemetry with ``queue_depth`` set); ``queue_wait_s`` the time the
    request sat queued before its tick executed; ``batch_requests`` /
    ``batch_rows`` the composition of the coalesced tick that served it.

    The reliability fields: ``engine`` names the fallback-chain engine
    that produced the response (``None`` without a chain), ``retries`` /
    ``backoff_ms`` the per-request retry attempts and total backoff spent
    before success, and ``deadline_missed`` flags a response that
    completed after its deadline had already passed (delivered anyway —
    only *queued* requests are expired).
    """

    probabilities: np.ndarray
    result: SoftmaxResult
    queue_wait_s: float
    batch_requests: int
    batch_rows: int
    tick: int
    engine: Optional[str] = None
    retries: int = 0
    backoff_ms: float = 0.0
    deadline_missed: bool = False


@dataclass(frozen=True)
class ServerStats:
    """Aggregate admission-loop counters since the server started."""

    ticks: int
    requests: int
    rows: int
    max_queue_depth: int

    @property
    def mean_batch_requests(self) -> float:
        """Mean coalesced requests per scheduling tick."""
        return self.requests / self.ticks if self.ticks else 0.0

    @property
    def mean_batch_rows(self) -> float:
        """Mean fused row-space height per scheduling tick."""
        return self.rows / self.ticks if self.ticks else 0.0


@dataclass(frozen=True)
class ServerHealth:
    """The server's reliability surface: availability + breaker state."""

    requests_completed: int
    requests_failed: int
    deadline_expired: int
    retries: int
    backoff_ms: float
    engine: Optional[str]
    breaker_state: str
    degrades: int
    recoveries: int
    transitions: Tuple[str, ...]

    @property
    def availability(self) -> float:
        """Fraction of finished requests that got a response."""
        finished = self.requests_completed + self.requests_failed
        return self.requests_completed / finished if finished else 1.0

    @property
    def error_rate(self) -> float:
        return 1.0 - self.availability

    def to_dict(self) -> Dict[str, Any]:
        return {
            "requests_completed": self.requests_completed,
            "requests_failed": self.requests_failed,
            "deadline_expired": self.deadline_expired,
            "retries": self.retries,
            "backoff_ms": self.backoff_ms,
            "availability": self.availability,
            "error_rate": self.error_rate,
            "engine": self.engine,
            "breaker_state": self.breaker_state,
            "degrades": self.degrades,
            "recoveries": self.recoveries,
            "transitions": list(self.transitions),
        }


class _Pending:
    """One queued request: normalised payload + the future to resolve."""

    __slots__ = (
        "scores",
        "lengths",
        "squeeze",
        "future",
        "enqueued",
        "deadline",
        "deadline_ms",
    )

    def __init__(
        self,
        scores,
        lengths,
        squeeze,
        future,
        enqueued,
        deadline=None,
        deadline_ms=None,
    ) -> None:
        self.scores = scores
        self.lengths = lengths
        self.squeeze = squeeze  # 1-D request: give the response back 1-D
        self.future = future
        self.enqueued = enqueued
        self.deadline = deadline  # absolute time.monotonic() cutoff
        self.deadline_ms = deadline_ms

    @property
    def rows(self) -> int:
        return self.scores.shape[0]

    def expired(self, now: Optional[float] = None) -> bool:
        if self.deadline is None:
            return False
        return (time.monotonic() if now is None else now) >= self.deadline


def _is_client_error(error: BaseException) -> bool:
    """Request-shape/validation errors say nothing about engine health."""
    return isinstance(error, (ValueError, TypeError))


class SoftmaxServer:
    """Asyncio softmax server with continuous-batching admission.

    Parameters
    ----------
    backend:
        Anything :func:`~repro.runtime.backend.resolve_backend` accepts —
        a backend name, a :class:`BackendSpec`, or a built backend
        instance.  The coalesced ticks execute through the backend's
        ``run_rows`` seam, so every runtime backend (including
        ``ap-cluster``, whose row spaces the planner tiles against the
        cluster's ``pass_row_budget``) can serve.
    max_wait_ms:
        Admission latency budget: once a tick has its first request it
        waits at most this long for companions before executing.  Under
        saturation the wait never triggers — the queue is already
        non-empty when a tick forms.
    max_batch_rows:
        Admission cap on the fused row space's height (whole requests
        only; an oversized request becomes a tick of its own and the
        planner tiles it).  ``None`` admits everything queued.
    default_deadline_ms:
        Deadline applied to every request that does not carry its own
        ``deadline_ms``.  ``None`` (the default) never expires requests.
    retry_policy:
        :class:`~repro.reliability.retry.RetryPolicy` for transient
        per-request failures; ``None`` (the default) never retries.
        ``retry_seed`` seeds the backoff jitter stream.
    engine_chain:
        Ordered plan-engine fallback chain (e.g. ``("compiled",
        "vectorized", "reference")``).  Requires ``backend`` to be a name
        or :class:`BackendSpec` — the server builds one runner per
        engine (sharing the underlying cluster for ``ap-cluster``) and a
        circuit breaker per level (``breaker_*`` knobs).  Engines are
        bit-identical by construction, so degradation never changes
        response bits.

    Lifecycle
    ---------
    ``start()`` (idempotent; ``submit`` auto-starts) spins up the
    admission loop and the single worker thread.  A submitted request
    lives in the asyncio queue, then the admission backlog (possibly
    carried over across ticks under ``max_batch_rows``), then an
    executing tick.  ``close()`` cancels admission, waits for the
    in-flight tick to finish on the worker, and fails **every** request
    that never got a response — queued, backlogged, or in-flight — with
    :class:`ServerClosed`; no future is ever left pending.  Submitting
    to a closed server raises :class:`ServerClosed` immediately.  A
    server is bound to the event loop that started it and cannot be
    restarted after ``close()``.
    """

    def __init__(
        self,
        backend: Union[str, BackendSpec, SoftmaxBackend],
        *,
        max_wait_ms: float = 2.0,
        max_batch_rows: Optional[int] = None,
        default_deadline_ms: Optional[float] = None,
        retry_policy: Optional[RetryPolicy] = None,
        retry_seed: int = 0,
        engine_chain: Optional[Sequence[str]] = None,
        breaker_failure_threshold: int = 3,
        breaker_probe_interval: int = 8,
        breaker_max_probes: Optional[int] = None,
    ) -> None:
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        self.max_wait_ms = max_wait_ms
        if max_batch_rows is not None:
            check_positive_int(max_batch_rows, "max_batch_rows")
        self.max_batch_rows = max_batch_rows
        if default_deadline_ms is not None and default_deadline_ms <= 0:
            raise ValueError(
                f"default_deadline_ms must be > 0, got {default_deadline_ms}"
            )
        self.default_deadline_ms = default_deadline_ms
        self.retry_policy = retry_policy
        self._retry_rng = np.random.default_rng(retry_seed)
        self._fallback: Optional[EngineFallbackChain] = None
        self._runners: Dict[str, Any] = {}
        if engine_chain is not None:
            self._init_engine_chain(
                backend,
                engine_chain,
                breaker_failure_threshold,
                breaker_probe_interval,
                breaker_max_probes,
            )
        else:
            self.backend = resolve_backend(backend)
            self._run_rows = rows_runner(self.backend)
        self._max_line_bytes = 1 << 20
        self._queue: Optional[asyncio.Queue] = None
        self._backlog: Deque[_Pending] = deque()
        self._in_flight: List[_Pending] = []
        self._admission_task: Optional[asyncio.Task] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._closed = False
        self._ticks = 0
        self._requests = 0
        self._rows = 0
        self._max_queue_depth = 0
        self._completed = 0
        self._failed = 0
        self._deadline_expired = 0
        self._retries_total = 0
        self._backoff_ms_total = 0.0

    def _init_engine_chain(
        self,
        backend,
        engine_chain,
        failure_threshold,
        probe_interval,
        max_probes,
    ) -> None:
        if not isinstance(backend, (str, BackendSpec)):
            raise ValueError(
                "engine_chain needs a backend name or BackendSpec — the "
                "server builds one runner per chain engine"
            )
        spec = backend if isinstance(backend, BackendSpec) else BackendSpec(name=backend)
        chain = tuple(canonical_engine_name(e) for e in engine_chain)
        self.backend = resolve_backend(replace(spec, engine=chain[0]))
        self._run_rows = rows_runner(self.backend)
        self._runners = {chain[0]: self._run_rows}
        for engine in chain[1:]:
            if isinstance(self.backend, ApClusterBackend):
                # Share the primary's cluster: plans and executors are
                # cached per (plan, engine) pair, so siblings are cheap.
                sibling = ApClusterBackend.from_cluster(
                    self.backend.cluster, engine=engine
                )
            else:
                sibling = resolve_backend(replace(spec, engine=engine))
            self._runners[engine] = rows_runner(sibling)
        self._fallback = EngineFallbackChain(
            chain,
            failure_threshold=failure_threshold,
            probe_interval=probe_interval,
            max_probes=max_probes,
        )

    # ------------------------------------------------------------------ #
    # Lifecycle                                                            #
    # ------------------------------------------------------------------ #
    async def start(self) -> "SoftmaxServer":
        """Start the admission loop (idempotent; ``submit`` auto-starts)."""
        if self._closed:
            raise ServerClosed("server is closed")
        if self._admission_task is None:
            self._queue = asyncio.Queue()
            self._executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-serve"
            )
            self._admission_task = asyncio.get_running_loop().create_task(
                self._admission_loop()
            )
        return self

    async def close(self) -> None:
        """Stop admitting, drain the worker, and fail unresolved requests.

        See the class docstring's Lifecycle section: the in-flight tick
        (if any) finishes on the worker thread, then every request whose
        future is still pending — queued, in the carry-over backlog, or
        in that final tick — fails with :class:`ServerClosed`.
        """
        if self._closed:
            return
        self._closed = True
        if self._admission_task is not None:
            self._admission_task.cancel()
            try:
                await self._admission_task
            except asyncio.CancelledError:
                pass
            self._admission_task = None
        if self._executor is not None:
            # Joins the in-flight tick; its results were abandoned when
            # the admission task was cancelled mid-await.
            self._executor.shutdown(wait=True)
            self._executor = None
        abandoned = list(self._backlog) + list(self._in_flight)
        self._backlog.clear()
        self._in_flight = []
        if self._queue is not None:
            while not self._queue.empty():
                abandoned.append(self._queue.get_nowait())
            self._queue = None
        for pending in abandoned:
            if not pending.future.done():
                self._failed += 1
                pending.future.set_exception(
                    ServerClosed("server closed before the request ran")
                )

    async def __aenter__(self) -> "SoftmaxServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    def stats(self) -> ServerStats:
        return ServerStats(
            ticks=self._ticks,
            requests=self._requests,
            rows=self._rows,
            max_queue_depth=self._max_queue_depth,
        )

    def health(self) -> ServerHealth:
        """Reliability snapshot: availability, retries, breaker state."""
        fallback = self._fallback
        return ServerHealth(
            requests_completed=self._completed,
            requests_failed=self._failed,
            deadline_expired=self._deadline_expired,
            retries=self._retries_total,
            backoff_ms=self._backoff_ms_total,
            engine=None if fallback is None else fallback.current_engine,
            breaker_state=(
                "disabled"
                if fallback is None
                else fallback.state_of(fallback.engines[0])
            ),
            degrades=0 if fallback is None else fallback.degrades,
            recoveries=0 if fallback is None else fallback.recoveries,
            transitions=(
                ()
                if fallback is None
                else tuple(str(t) for t in fallback.transitions)
            ),
        )

    # ------------------------------------------------------------------ #
    # Submission                                                           #
    # ------------------------------------------------------------------ #
    async def submit(
        self,
        scores: np.ndarray,
        valid_lengths: Optional[np.ndarray] = None,
        deadline_ms: Optional[float] = None,
    ) -> ServeResponse:
        """Submit one request and await its served response.

        Shape validation happens here, eagerly — a malformed request
        raises at the call site instead of poisoning a coalesced batch.
        ``deadline_ms`` (falling back to the server's
        ``default_deadline_ms``) bounds the request's life: expiring in
        the queue raises :class:`DeadlineExceeded`.
        """
        if self._closed:
            raise ServerClosed("server is closed")
        if deadline_ms is None:
            deadline_ms = self.default_deadline_ms
        if deadline_ms is not None and deadline_ms <= 0:
            raise ValueError(f"deadline_ms must be > 0, got {deadline_ms}")
        squeeze = np.asarray(scores).ndim == 1
        matrix, lengths = as_request_matrix(scores, valid_lengths)
        await self.start()
        loop = asyncio.get_running_loop()
        pending = _Pending(
            matrix,
            lengths,
            squeeze,
            loop.create_future(),
            loop.time(),
            deadline=(
                None
                if deadline_ms is None
                else time.monotonic() + deadline_ms / 1000.0
            ),
            deadline_ms=deadline_ms,
        )
        assert self._queue is not None
        self._queue.put_nowait(pending)
        return await pending.future

    # ------------------------------------------------------------------ #
    # Admission loop                                                       #
    # ------------------------------------------------------------------ #
    async def _admission_loop(self) -> None:
        loop = asyncio.get_running_loop()
        queue = self._queue
        assert queue is not None
        while True:
            if not self._backlog:
                self._backlog.append(await queue.get())
            await self._gather_companions(loop, queue)
            self._expire_backlog(loop)
            if not self._backlog:
                continue
            admitted = take_admissible(
                [p.rows for p in self._backlog], self.max_batch_rows
            )
            batch = [self._backlog.popleft() for _ in range(admitted)]
            tick_start = loop.time()
            self._ticks += 1
            self._requests += len(batch)
            self._rows += sum(p.rows for p in batch)
            self._max_queue_depth = max(self._max_queue_depth, len(batch))
            self._in_flight = batch
            try:
                outcomes = await loop.run_in_executor(
                    self._executor, self._execute_batch, batch, tick_start
                )
            except Exception as error:  # noqa: BLE001 — fail the whole tick
                outcomes = [error] * len(batch)
            # Not a finally: cancellation (close() mid-tick) must leave
            # the batch in _in_flight so close() can fail its futures.
            self._in_flight = []
            for pending, outcome in zip(batch, outcomes):
                if pending.future.done():
                    continue
                if isinstance(outcome, Exception):
                    self._failed += 1
                    if isinstance(outcome, DeadlineExceeded):
                        self._deadline_expired += 1
                    pending.future.set_exception(outcome)
                else:
                    self._completed += 1
                    pending.future.set_result(outcome)

    def _expire_backlog(self, loop) -> None:
        """Fail every backlogged request whose deadline already passed."""
        if all(p.deadline is None for p in self._backlog):
            return
        now = time.monotonic()
        keep: Deque[_Pending] = deque()
        for pending in self._backlog:
            if pending.expired(now) and not pending.future.done():
                self._failed += 1
                self._deadline_expired += 1
                waited_ms = (loop.time() - pending.enqueued) * 1000.0
                pending.future.set_exception(
                    DeadlineExceeded(pending.deadline_ms, waited_ms)
                )
            else:
                keep.append(pending)
        self._backlog = keep

    async def _gather_companions(self, loop, queue) -> None:
        """Fill the backlog until the admission cap or latency budget hits.

        Everything already queued is drained without waiting (the
        continuous-batching fast path under load); only a tick that is
        still below the cap keeps waiting, up to ``max_wait_ms`` past its
        first request.
        """
        deadline = loop.time() + self.max_wait_ms / 1000.0
        while True:
            rows = sum(p.rows for p in self._backlog)
            if self.max_batch_rows is not None and rows >= self.max_batch_rows:
                return
            try:
                self._backlog.append(queue.get_nowait())
                continue
            except asyncio.QueueEmpty:
                pass
            remaining = deadline - loop.time()
            if remaining <= 0:
                return
            try:
                self._backlog.append(
                    await asyncio.wait_for(queue.get(), remaining)
                )
            except asyncio.TimeoutError:
                return

    # ------------------------------------------------------------------ #
    # Batch execution (worker thread)                                      #
    # ------------------------------------------------------------------ #
    def _next_engine(self) -> Tuple[Optional[str], bool]:
        if self._fallback is None:
            return None, False
        return self._fallback.next_call()

    def _runner(self, engine: Optional[str]):
        return self._run_rows if engine is None else self._runners[engine]

    def _record_outcome(
        self, engine: Optional[str], probe: bool, error: Optional[BaseException]
    ) -> None:
        """Feed one execution outcome to the fallback chain's breakers.

        Client errors (shape/validation) say nothing about engine health:
        they carry no breaker signal, and a probe they interrupted is
        aborted (back to open, slot refunded) rather than failed.
        """
        if self._fallback is None or engine is None:
            return
        if error is None:
            self._fallback.on_success(engine, probe)
        elif _is_client_error(error):
            if probe:
                self._fallback.abort_probe(engine)
        else:
            self._fallback.on_failure(engine, probe)

    def _execute_batch(
        self, batch: List[_Pending], tick_start: float
    ) -> List[Union[ServeResponse, Exception]]:
        """Run one coalesced tick; on failure, isolate the offender.

        A batch that raises falls back to per-request execution (with the
        retry policy, when configured) so one bad request — or one
        transient engine fault — cannot fail its tick companions: the
        healthy requests still get (standalone, hence bit-identical)
        responses.
        """
        tick = self._ticks
        engine, probe = self._next_engine()
        try:
            faults.fire("serve:tick")
            fused = coalesce([(p.scores, p.lengths) for p in batch])
            result = self._runner(engine)(
                fused.scores, valid_lengths=fused.valid_lengths
            )
        except Exception as error:  # noqa: BLE001
            self._record_outcome(engine, probe, error)
            return [
                self._execute_single(pending, tick, tick_start)
                for pending in batch
            ]
        self._record_outcome(engine, probe, None)
        parts = split(fused, result.probabilities)
        plan = (
            None
            if result.plan is None
            else replace(result.plan, queue_depth=len(batch))
        )
        now = time.monotonic()
        responses: List[Union[ServeResponse, Exception]] = []
        for pending, part in zip(batch, parts):
            share = pending.rows / fused.rows
            cost = (
                None
                if result.cost is None
                else BackendCost(
                    latency_s=result.cost.latency_s,
                    energy_j=result.cost.energy_j * share,
                    area_mm2=result.cost.area_mm2,
                )
            )
            responses.append(
                ServeResponse(
                    probabilities=part[0] if pending.squeeze else part,
                    result=SoftmaxResult(
                        probabilities=part[0] if pending.squeeze else part,
                        cost=cost,
                        cycles=result.cycles,
                        backend=result.backend,
                        plan=plan,
                    ),
                    queue_wait_s=max(0.0, tick_start - pending.enqueued),
                    batch_requests=len(batch),
                    batch_rows=fused.rows,
                    tick=tick,
                    engine=engine,
                    deadline_missed=pending.expired(now),
                )
            )
        return responses

    def _execute_single(
        self, pending: _Pending, tick: int, tick_start: float
    ) -> Union[ServeResponse, Exception]:
        """Standalone execution of one request of a failed tick.

        With a :class:`RetryPolicy`, transient failures back off and try
        again (re-reading the fallback chain each attempt, so a breaker
        trip mid-loop reroutes the next attempt to a healthy engine)
        until the retry budget or the request's deadline runs out.
        """
        policy = self.retry_policy
        retries = 0
        backoff_total = 0.0
        while True:
            engine, probe = self._next_engine()
            try:
                result = self._runner(engine)(
                    pending.scores, valid_lengths=pending.lengths
                )
            except Exception as error:  # noqa: BLE001
                self._record_outcome(engine, probe, error)
                if (
                    policy is None
                    or not policy.retryable(error)
                    or retries >= policy.max_retries
                ):
                    return error
                if pending.expired():
                    return DeadlineExceeded(
                        pending.deadline_ms,
                        (time.monotonic() - pending.deadline) * 1000.0
                        + pending.deadline_ms,
                    )
                delay_ms = policy.backoff_ms(retries, self._retry_rng)
                time.sleep(delay_ms / 1000.0)
                retries += 1
                backoff_total += delay_ms
                self._retries_total += 1
                self._backoff_ms_total += delay_ms
                continue
            self._record_outcome(engine, probe, None)
            break
        plan = (
            None
            if result.plan is None
            else replace(
                result.plan,
                queue_depth=1,
                retries=retries,
                backoff_ms=backoff_total,
            )
        )
        probabilities = (
            result.probabilities[0] if pending.squeeze else result.probabilities
        )
        return ServeResponse(
            probabilities=probabilities,
            result=replace(result, probabilities=probabilities, plan=plan),
            queue_wait_s=max(0.0, tick_start - pending.enqueued),
            batch_requests=1,
            batch_rows=pending.rows,
            tick=tick,
            engine=engine,
            retries=retries,
            backoff_ms=backoff_total,
            deadline_missed=pending.expired(),
        )

    # ------------------------------------------------------------------ #
    # TCP front end (newline-delimited JSON)                               #
    # ------------------------------------------------------------------ #
    async def serve_tcp(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        max_line_bytes: int = 1 << 20,
    ) -> asyncio.AbstractServer:
        """Expose the server over TCP as newline-delimited JSON.

        Request lines are ``{"id": ..., "scores": [[...]], "valid_lengths":
        [...]?, "deadline_ms": ...?}``; each gets one response line
        ``{"id": ..., "probabilities": ..., "batch_requests": n,
        "batch_rows": r, "tick": t, "queue_wait_ms": w, ...}`` or a
        structured error ``{"id": ..., "error": msg, "code": code}`` with
        ``code`` one of ``bad-json`` / ``bad-request`` / ``oversized`` /
        ``deadline`` / ``closed`` / ``error``.  ``{"op": "health"}``
        returns the :meth:`health` snapshot.  A malformed, unknown-field,
        or oversized line never kills the connection: the client gets the
        error reply (with its request id whenever the line parsed) and
        the stream keeps serving.  Lines longer than ``max_line_bytes``
        are discarded wholesale.  Requests on one connection are handled
        concurrently, so a pipelining client coalesces with itself.  The
        caller owns the returned ``asyncio.Server``
        (``server.sockets[0].getsockname()`` for the bound port).
        """
        check_positive_int(max_line_bytes, "max_line_bytes")
        self._max_line_bytes = max_line_bytes
        await self.start()
        return await asyncio.start_server(
            self._handle_connection, host, port, limit=max_line_bytes
        )

    async def _handle_connection(self, reader, writer) -> None:
        lock = asyncio.Lock()
        tasks: Set[asyncio.Task] = set()
        try:
            while True:
                line, oversized = await _read_request_line(reader)
                if oversized:
                    await self._send_reply(
                        writer,
                        lock,
                        {
                            "id": None,
                            "error": (
                                "request line exceeds "
                                f"{self._max_line_bytes} bytes"
                            ),
                            "code": "oversized",
                        },
                    )
                    continue
                if line is None:
                    break
                if not line.strip():
                    continue
                task = asyncio.get_running_loop().create_task(
                    self._handle_line(line, writer, lock)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown
                pass

    async def _send_reply(self, writer, lock, reply: Dict[str, Any]) -> None:
        async with lock:
            writer.write(json.dumps(reply).encode() + b"\n")
            await writer.drain()

    async def _handle_line(self, line: bytes, writer, lock) -> None:
        await self._send_reply(writer, lock, await self._reply_for_line(line))

    async def _reply_for_line(self, line: bytes) -> Dict[str, Any]:
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as error:
            return {
                "id": None,
                "error": f"malformed JSON: {error}",
                "code": "bad-json",
            }
        if not isinstance(payload, dict):
            return {
                "id": None,
                "error": "request must be a JSON object",
                "code": "bad-request",
            }
        request_id = payload.get("id")
        unknown = sorted(set(payload) - _ALLOWED_KEYS)
        if unknown:
            return {
                "id": request_id,
                "error": f"unknown fields: {', '.join(unknown)}",
                "code": "bad-request",
            }
        if payload.get("op") == "health":
            return {"id": request_id, "health": self.health().to_dict()}
        if payload.get("op") is not None:
            return {
                "id": request_id,
                "error": f"unknown op {payload['op']!r}",
                "code": "bad-request",
            }
        if "scores" not in payload:
            return {
                "id": request_id,
                "error": "missing required field 'scores'",
                "code": "bad-request",
            }
        try:
            faults.fire("tcp:line")
            response = await self.submit(
                np.asarray(payload["scores"], dtype=np.float64),
                valid_lengths=payload.get("valid_lengths"),
                deadline_ms=payload.get("deadline_ms"),
            )
        except DeadlineExceeded as error:
            return {"id": request_id, "error": str(error), "code": "deadline"}
        except ServerClosed as error:
            return {"id": request_id, "error": str(error), "code": "closed"}
        except (ValueError, TypeError) as error:
            return {"id": request_id, "error": str(error), "code": "bad-request"}
        except Exception as error:  # noqa: BLE001 — report, keep serving
            return {"id": request_id, "error": str(error), "code": "error"}
        return {
            "id": request_id,
            "probabilities": response.probabilities.tolist(),
            "batch_requests": response.batch_requests,
            "batch_rows": response.batch_rows,
            "tick": response.tick,
            "queue_wait_ms": response.queue_wait_s * 1000.0,
            "retries": response.retries,
            "deadline_missed": response.deadline_missed,
        }


#: Keys a TCP request line may carry; anything else is a structured error.
_ALLOWED_KEYS = {"id", "scores", "valid_lengths", "deadline_ms", "op"}


async def _read_request_line(reader) -> Tuple[Optional[bytes], bool]:
    """Read one newline-terminated line; ``(None, False)`` on EOF.

    A line longer than the stream limit is discarded wholesale — every
    byte up to and including its newline — and reported as ``(None,
    True)`` without desynchronising the following lines.
    """
    try:
        return await reader.readuntil(b"\n"), False
    except asyncio.IncompleteReadError as error:
        return (error.partial if error.partial else None), False
    except asyncio.LimitOverrunError as error:
        await reader.readexactly(error.consumed)
        while True:
            try:
                await reader.readuntil(b"\n")
                return None, True
            except asyncio.LimitOverrunError as more:
                await reader.readexactly(more.consumed)
            except asyncio.IncompleteReadError:
                return None, True
