"""Load generator determinism + the serve-load experiment contract."""

import json

import numpy as np
import pytest

from repro.runtime.backend import BackendSpec, resolve_backend
from repro.runtime.registry import get_experiment
from repro.serve.loadgen import (
    LoadProfile,
    run_load,
    run_serial_baseline,
)
from repro.serve.server import SoftmaxServer


class TestLoadProfile:
    def test_same_seed_same_stream(self):
        profile = LoadProfile(rate_rps=100.0, num_requests=12, seed=3)
        first = profile.requests()
        second = profile.requests()
        for a, b in zip(first, second):
            assert a.arrival_s == b.arrival_s
            np.testing.assert_array_equal(a.scores, b.scores)
            if a.valid_lengths is None:
                assert b.valid_lengths is None
            else:
                np.testing.assert_array_equal(a.valid_lengths, b.valid_lengths)

    def test_different_seed_differs(self):
        base = LoadProfile(rate_rps=100.0, num_requests=6, seed=0).requests()
        other = LoadProfile(rate_rps=100.0, num_requests=6, seed=1).requests()
        assert any(
            a.scores.shape != b.scores.shape
            or not np.array_equal(a.scores, b.scores)
            for a, b in zip(base, other)
        )

    def test_stream_respects_profile_bounds(self):
        profile = LoadProfile(
            rate_rps=500.0,
            num_requests=40,
            rows=(1, 3),
            sequence_lengths=(8, 16),
            ragged_fraction=1.0,
            seed=9,
        )
        requests = profile.requests()
        arrivals = [r.arrival_s for r in requests]
        assert arrivals == sorted(arrivals)
        for request in requests:
            rows, seq = request.scores.shape
            assert 1 <= rows <= 3
            assert seq in (8, 16)
            assert request.valid_lengths is not None
            assert np.all(request.valid_lengths >= 1)
            assert np.all(request.valid_lengths <= seq)
        assert profile.max_sequence_length == 16

    def test_validation(self):
        with pytest.raises(ValueError, match="rate_rps"):
            LoadProfile(rate_rps=0.0)
        with pytest.raises(ValueError, match="rows"):
            LoadProfile(rate_rps=1.0, rows=(3, 1))
        with pytest.raises(ValueError, match="sequence_lengths"):
            LoadProfile(rate_rps=1.0, sequence_lengths=())
        with pytest.raises(ValueError, match="ragged_fraction"):
            LoadProfile(rate_rps=1.0, ragged_fraction=1.5)


class TestRunLoad:
    def test_served_responses_match_serial_baseline(self):
        spec = BackendSpec(name="float", sequence_length=16)
        profile = LoadProfile(
            rate_rps=2000.0,
            num_requests=16,
            sequence_lengths=(8, 16),
            seed=5,
        )
        requests = profile.requests()
        server = SoftmaxServer(spec, max_wait_ms=2.0, max_batch_rows=32)
        report = run_load(server, requests)
        serial, serial_seconds = run_serial_baseline(
            resolve_backend(spec), requests
        )
        assert report.num_requests == 16
        assert serial_seconds > 0.0
        assert report.makespan_s > 0.0
        assert np.all(report.latencies_ms >= 0.0)
        assert report.p50_ms <= report.p99_ms
        assert report.mean_batch_rows >= 1.0
        # float backend carries no plan telemetry -> occupancy defaults to 1
        assert report.mean_occupancy == 1.0
        for alone, outcome in zip(serial, report.outcomes):
            reference = (
                alone[0] if outcome.request.scores.ndim == 1 else alone
            )
            np.testing.assert_array_equal(
                outcome.response.probabilities, reference
            )

    def test_run_load_accepts_profile_directly(self):
        server = SoftmaxServer("float", max_wait_ms=1.0)
        report = run_load(
            server, LoadProfile(rate_rps=5000.0, num_requests=4, seed=1)
        )
        assert report.num_requests == 4


class TestServeLoadExperiment:
    def test_fast_run_and_json_round_trip(self):
        experiment = get_experiment("serve-load")
        result = experiment.run(experiment.fast_config)
        assert len(result) == 1
        point = result[0]
        assert point.responses_identical
        assert point.backend == "ap-cluster"
        assert point.throughput_rps > 0.0
        assert point.serial_throughput_rps > 0.0
        payload = json.loads(json.dumps(experiment.to_dict(result)))
        rebuilt = experiment.from_dict(payload)
        assert experiment.render(rebuilt) == experiment.render(result)

    def test_rejects_budget_on_non_cluster_backend(self):
        with pytest.raises(ValueError, match="ap-cluster knob"):
            experiment = get_experiment("serve-load")
            experiment.run(
                {
                    **experiment.fast_config,
                    "backend": "ap-batch",
                    "pass_row_budget": 128,
                }
            )

    def test_cli_backend_switch(self, capsys):
        from repro.runtime.cli import main

        code = main(
            [
                "run",
                "serve-load",
                "--fast",
                "--backend",
                "ap-batch",
                "--set",
                "num_requests=8",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "backend ap-batch" in out
