"""Benchmark regenerating Table VI — comparison with ConSmax / Softermax."""

from repro.runtime import get_experiment


def test_table6_related_works(benchmark):
    experiment = get_experiment("table6")
    entries = benchmark(experiment.run)
    print()
    print(experiment.render(entries))
    softmap = entries[-1]
    assert softmap.energy_per_op_pj < min(e.energy_per_op_pj for e in entries[:-1])
