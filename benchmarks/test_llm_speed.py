"""Batched-inference benchmark: the LLM fast path's pinned sweep speedup.

The acceptance workload is the Tables III/IV perplexity sweep on the
trained substitute model with the ``integer`` attention-softmax backend:
every precision configuration evaluated through the graph-free batched
``model.infer`` path (stacked-head attention, ``max_batch`` segments per
forward call, one head-major softmax call per layer) versus the **seed**
implementation — the per-segment autograd-forward loop with the
per-distinct-causal-length integer grouping.  Single worker on both sides,
same machine, same trained weights; training time is excluded.  The two
paths must produce **bit-identical** perplexities and the batched path
must be at least **5x** faster end to end.

This module joins ``test_plan_fusion.py`` in the CI ``benchmark-smoke``
job: it runs without ``--runslow`` and, when ``REPRO_PERF_DIR`` is set,
writes the measured timings to ``BENCH_llm_speed.json`` so the inference
speedup trajectory can be tracked across commits next to the plan-fusion
timings.
"""

import json
import os
import pathlib

from repro.runtime import get_experiment
from repro.runtime.bench import (
    LLM_SPEED_WORKLOAD,
    SWEEP_SPEEDUP_FLOOR,
    llm_speed_payload as _report_payload,
)
from repro.utils.trajectory import record_benchmark


def _emit_perf_artifact(report) -> None:
    """Write the timing JSON artifact when REPRO_PERF_DIR is set."""
    perf_dir = os.environ.get("REPRO_PERF_DIR")
    if not perf_dir:
        return
    path = pathlib.Path(perf_dir)
    path.mkdir(parents=True, exist_ok=True)
    payload = {"benchmark": "llm-speed", **_report_payload(report)}
    with open(path / "BENCH_llm_speed.json", "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def test_batched_inference_sweep_beats_seed_loop(benchmark):
    """Pin: batched sweep >= 5x over the seed loop, bit-identical."""
    experiment = get_experiment("llm-speed")
    report = benchmark.pedantic(
        experiment.run,
        args=(dict(LLM_SPEED_WORKLOAD),),
        iterations=1,
        rounds=1,
    )
    print()
    print(experiment.render(report))
    _emit_perf_artifact(report)
    record_benchmark("llm_speed", _report_payload(report))
    assert report.bit_identical, (
        "batched inference path diverged from the seed per-segment loop"
    )
    assert report.speedup >= SWEEP_SPEEDUP_FLOOR, (
        f"batched sweep only {report.speedup:.1f}x faster than the seed "
        f"loop (floor {SWEEP_SPEEDUP_FLOOR:.0f}x)"
    )
