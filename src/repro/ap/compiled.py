"""The ``"compiled"`` engine: buffer-planned, in-place plan execution.

:class:`~repro.mapping.plan.ExecutionPlan` lowers the Fig. 5 dataflow once
per shape, but the ``"vectorized"`` executor (the plan's packed-path
interpreter) still walks the lowered program op by op, allocating fresh
numpy temporaries for every field of every instruction on every pass.  The
dataflow is *fixed* per (precision, sequence, width) shape, so all of that
can be resolved at compile time.  :class:`CompiledEngine` is that last
lowering level:

* **buffer-planned scratch arena** — the plan's buffer-liveness pass
  (:func:`repro.mapping.plan.plan_buffers`) assigns every vector field a
  slot in a preallocated ``uint64`` arena; fields with disjoint live ranges
  share storage (the 12 vector fields of the softmax program fit 4 slots),
  scalar constants (``mu``/``vln2``/``vc``) are folded into the consuming
  instructions, and dead scratch (the division remainder) is never
  materialised.
* **in-place packed ops** — every instruction compiles to a closure of
  ``out=``-style numpy calls against the arena slots; steady-state
  execution allocates nothing but the per-segment reduction totals and the
  final float result.
* **fused shift/mask/select sequences** — adjacent ``write_const`` +
  in-place arithmetic pairs collapse into one reverse-op against the baked
  constant, ``copy``'s shift+truncate is a single masked shift, and the
  barrel shifter's predicated select runs as branch-free xor-masking
  (``t ^= cur; t &= pred_mask; cur ^= t``) instead of the interpreter's
  ``np.where`` (which materialises a boolean row plus two temporaries per
  stage).
* **reusable arena pool** — arenas grow geometrically with the workload and
  are checked out under a lock, so independent
  :class:`~repro.mapping.plan.WorkloadPass` tiles can execute on worker
  threads concurrently (each borrows its own arena) while a single-threaded
  caller reuses one arena allocation across every pass of a sweep.

Bit-exactness
-------------
Every closure reproduces the corresponding packed-interpreter op with the
same ``uint64`` primitives — truncating multiplies, wrapping subtracts, the
barrel shifter's stage predicates, and restoring division's divisor-zero
saturation — so the result is bit-identical to ``"vectorized"`` (and hence
to the bit-serial ``"reference"`` sweep) by construction; the parity suites
in ``tests/ap/test_compiled.py`` and ``tests/mapping/test_plan.py`` pin it.
Analytical cycle accounting is untouched: the plan's Table II step costs
describe the modeled hardware, not the simulator's execution strategy.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Union

import numpy as np

from repro.reliability import faults

__all__ = ["CompiledEngine"]

#: Number of uint64 temp rows the compiled closures need beyond the
#: buffer plan's field slots (barrel-shift select + wide-op scratch).
TEMP_SLOTS = 2

#: Arenas are provisioned in powers of two from this floor so a decode
#: sweep's 1..T shapes reuse one allocation instead of reallocating per
#: length.
_MIN_CAPACITY = 1024


def _mask64(bits: int) -> np.uint64:
    """All-ones mask covering the low ``bits`` bits (``bits <= 64``)."""
    return np.uint64((1 << bits) - 1)


class _Arena:
    """One preallocated scratch buffer: uint64 slot rows + a bool row."""

    __slots__ = ("buf", "bools", "capacity")

    def __init__(self, slot_rows: int, capacity: int) -> None:
        self.buf = np.empty((slot_rows, capacity), dtype=np.uint64)
        self.bools = np.empty(capacity, dtype=bool)
        self.capacity = capacity

    @property
    def nbytes(self) -> int:
        return self.buf.nbytes + self.bools.nbytes


class CompiledEngine:
    """Executes one plan's buffer-planned program against a scratch arena.

    Instances are built through the engine registry's plan-executor seam
    (``ExecutionPlan.plan_executor("compiled")``) — one per plan, holding
    the compiled closures and the arena pool.  ``run`` is thread-safe:
    concurrent calls borrow distinct arenas.
    """

    def __init__(self, plan) -> None:
        self._n = plan.sequence_length
        self._slot_rows = plan.buffers.num_slots + TEMP_SLOTS
        self._out_slot = plan.buffers.slots["out"]
        self._steps = self._compile(plan)
        self._pool: List[_Arena] = []
        self._pool_lock = threading.Lock()
        self._allocated_bytes = 0

    # ------------------------------------------------------------------ #
    # Arena pool                                                           #
    # ------------------------------------------------------------------ #
    @property
    def arena_bytes(self) -> int:
        """Bytes currently allocated across every arena of the pool."""
        return self._allocated_bytes

    @property
    def arena_slots(self) -> int:
        """Rows per arena: buffer-plan slots plus the fixed temp rows."""
        return self._slot_rows

    def _acquire(self, words: int) -> _Arena:
        # Reliability seam: a chaos run can fail the arena checkout the
        # way a real allocator would under memory pressure.
        faults.fire("arena:acquire")
        with self._pool_lock:
            for index, arena in enumerate(self._pool):
                if arena.capacity >= words:
                    return self._pool.pop(index)
            # No arena fits: retire one undersized allocation (if any) so
            # the pool cardinality stays bounded by peak concurrency, and
            # provision geometrically for the new high-water mark.
            if self._pool:
                self._allocated_bytes -= self._pool.pop().nbytes
            capacity = _MIN_CAPACITY
            while capacity < words:
                capacity *= 2
            arena = _Arena(self._slot_rows, capacity)
            self._allocated_bytes += arena.nbytes
            return arena

    def _release(self, arena: _Arena) -> None:
        with self._pool_lock:
            self._pool.append(arena)

    # ------------------------------------------------------------------ #
    # Execution                                                            #
    # ------------------------------------------------------------------ #
    def run(
        self, z: np.ndarray, pad_mask: Optional[np.ndarray], batch: int
    ) -> np.ndarray:
        """Run the compiled program; mirrors ``ExecutionPlan._run_packed``."""
        words = int(z.size)
        arena = self._acquire(words)
        try:
            views = [arena.buf[row, :words] for row in range(self._slot_rows)]
            bools = arena.bools[:words]
            padflat = None if pad_mask is None else pad_mask.ravel()
            for step in self._steps:
                step(views, bools, z, padflat, batch)
            out = views[self._out_slot].astype(np.float64)
        finally:
            self._release(arena)
        return out.reshape(batch, self._n)

    # ------------------------------------------------------------------ #
    # Compilation: one closure per (possibly fused) instruction            #
    # ------------------------------------------------------------------ #
    def _compile(self, plan) -> List[Callable]:
        bits: Dict[str, int] = dict(plan._bits)
        buffers = plan.buffers
        slots = buffers.slots
        scalar_set = set(buffers.scalar_fields)
        n = self._n
        t0 = buffers.num_slots
        t1 = buffers.num_slots + 1

        # Scalar constants are known at compile time: collect them so the
        # consuming closures bake the value in and the write_const op
        # disappears from the instruction stream.
        scalars: Dict[str, int] = {
            op.dest: op.value
            for op in plan.program
            if op.op == "write_const" and op.dest in scalar_set
        }

        def operand(name: str) -> Union[int, np.uint64]:
            """Slot index for vector fields, baked value for scalars."""
            if name in scalars:
                return np.uint64(scalars[name])
            return slots[name]

        steps: List[Callable] = []
        program = list(plan.program)
        index = 0
        while index < len(program):
            op = program[index]
            nxt = program[index + 1] if index + 1 < len(program) else None
            if op.op == "write_const" and op.dest in scalar_set:
                pass  # folded into the consumers
            elif (
                op.op == "write_const"
                and nxt is not None
                and nxt.op == "subtract"
                and nxt.a == op.dest
                and nxt.b not in scalar_set
            ):
                # Peephole: materialise-const + in-place subtract fuse into
                # one reverse-subtract against the baked constant.
                steps.append(
                    self._rsub_const(
                        op.value, slots[nxt.b], slots[op.dest], _mask64(bits[op.dest])
                    )
                )
                index += 1  # the subtract is consumed by the fusion
            elif op.op == "write_const":
                steps.append(self._fill(slots[op.dest], np.uint64(op.value)))
            elif op.op == "write_input":
                steps.append(self._write_input(slots[op.dest]))
            elif op.op == "multiply":
                steps.append(
                    self._multiply(
                        operand(op.a), operand(op.b), slots[op.dest],
                        _mask64(bits[op.dest]),
                    )
                )
            elif op.op == "copy":
                # Shift and truncate fuse into one masked shift; the mask is
                # dropped when the source cannot carry bits past the
                # destination width.
                needs_mask = bits[op.a] - op.shift > bits[op.dest]
                steps.append(
                    self._copy(
                        slots[op.a], slots[op.dest], op.shift,
                        _mask64(bits[op.dest]) if needs_mask else None,
                    )
                )
            elif op.op == "subtract":
                steps.append(
                    self._subtract(
                        slots[op.a], operand(op.b), _mask64(bits[op.a]), t0
                    )
                )
            elif op.op == "add":
                steps.append(
                    self._add(slots[op.b], operand(op.a), _mask64(bits[op.b]), t0)
                )
            elif op.op == "shift_right":
                steps.append(
                    self._shift_right(
                        slots[op.a], slots[op.b], slots[op.dest],
                        _mask64(bits[op.dest]), op.stages, t0, t1,
                    )
                )
            elif op.op == "mask_padding":
                steps.append(self._mask_padding(slots[op.dest]))
            elif op.op == "reduce_broadcast":
                steps.append(
                    self._reduce_broadcast(
                        slots[op.a], slots[op.dest], _mask64(bits[op.dest]), n
                    )
                )
            elif op.op == "divide":
                steps.append(
                    self._divide(
                        slots[op.a], slots[op.b], slots[op.dest],
                        op.fraction_bits,
                        _mask64(bits[op.a] + op.fraction_bits),
                        _mask64(bits[op.dest]),
                        t0,
                    )
                )
            else:  # pragma: no cover - lowering and executor move together
                raise ValueError(f"unknown plan opcode {op.op!r}")
            index += 1
        return steps

    # Each factory below returns a closure with the uniform signature
    # step(views, bools, z, padflat, batch); everything shape-independent
    # is captured at compile time.

    @staticmethod
    def _write_input(dest: int) -> Callable:
        def step(views, bools, z, padflat, batch):
            np.copyto(views[dest], z, casting="unsafe")

        return step

    @staticmethod
    def _fill(dest: int, value: np.uint64) -> Callable:
        def step(views, bools, z, padflat, batch):
            views[dest].fill(value)

        return step

    @staticmethod
    def _rsub_const(
        value: int, source: int, dest: int, mask: np.uint64
    ) -> Callable:
        constant = np.uint64(value)

        def step(views, bools, z, padflat, batch):
            d = views[dest]
            np.bitwise_and(views[source], mask, out=d)
            np.subtract(constant, d, out=d)
            np.bitwise_and(d, mask, out=d)

        return step

    @staticmethod
    def _multiply(a, b, dest: int, mask: np.uint64) -> Callable:
        def step(views, bools, z, padflat, batch):
            d = views[dest]
            ra = views[a] if isinstance(a, int) else a
            rb = views[b] if isinstance(b, int) else b
            np.multiply(ra, rb, out=d)
            np.bitwise_and(d, mask, out=d)

        return step

    @staticmethod
    def _copy(
        source: int, dest: int, shift: int, mask: Optional[np.uint64]
    ) -> Callable:
        shift_u = np.uint64(shift)

        def step(views, bools, z, padflat, batch):
            d = views[dest]
            if shift:
                np.right_shift(views[source], shift_u, out=d)
            else:
                np.copyto(d, views[source])
            if mask is not None:
                np.bitwise_and(d, mask, out=d)

        return step

    @staticmethod
    def _subtract(a: int, b, mask: np.uint64, t0: int) -> Callable:
        if isinstance(b, int):

            def step(views, bools, z, padflat, batch):
                d = views[a]
                t = views[t0]
                np.bitwise_and(views[b], mask, out=t)
                np.subtract(d, t, out=d)
                np.bitwise_and(d, mask, out=d)

        else:
            constant = b & mask

            def step(views, bools, z, padflat, batch):
                d = views[a]
                np.subtract(d, constant, out=d)
                np.bitwise_and(d, mask, out=d)

        return step

    @staticmethod
    def _add(b: int, a, mask: np.uint64, t0: int) -> Callable:
        if isinstance(a, int):

            def step(views, bools, z, padflat, batch):
                d = views[b]
                t = views[t0]
                np.bitwise_and(views[a], mask, out=t)
                np.add(d, t, out=d)
                np.bitwise_and(d, mask, out=d)

        else:
            constant = a & mask

            def step(views, bools, z, padflat, batch):
                d = views[b]
                np.add(d, constant, out=d)
                np.bitwise_and(d, mask, out=d)

        return step

    @staticmethod
    def _shift_right(
        a: int, b: int, dest: int, mask: np.uint64, stages: int, t0: int, t1: int
    ) -> Callable:
        zero = np.uint64(0)
        one = np.uint64(1)
        stage_shifts = [
            (np.uint64(k), 1 << k, np.uint64(min(1 << k, 63)))
            for k in range(stages)
        ]

        def step(views, bools, z, padflat, batch):
            cur = views[dest]
            pred = views[t0]
            shifted = views[t1]
            np.bitwise_and(views[a], mask, out=cur)
            for stage, offset, offset_u in stage_shifts:
                # pred <- all-ones where shift bit `stage` is set, else 0
                np.right_shift(views[b], stage, out=pred)
                np.bitwise_and(pred, one, out=pred)
                np.subtract(zero, pred, out=pred)
                if offset >= 64:
                    shifted.fill(zero)
                else:
                    np.right_shift(cur, offset_u, out=shifted)
                # Branch-free select: cur <- pred ? shifted : cur
                np.bitwise_xor(shifted, cur, out=shifted)
                np.bitwise_and(shifted, pred, out=shifted)
                np.bitwise_xor(cur, shifted, out=cur)

        return step

    @staticmethod
    def _mask_padding(dest: int) -> Callable:
        zero = np.uint64(0)

        def step(views, bools, z, padflat, batch):
            if padflat is not None:
                np.copyto(views[dest], zero, where=padflat)

        return step

    @staticmethod
    def _reduce_broadcast(a: int, dest: int, mask: np.uint64, n: int) -> Callable:
        def step(views, bools, z, padflat, batch):
            totals = views[a].reshape(batch, n).sum(axis=1, dtype=np.uint64)
            np.bitwise_and(totals, mask, out=totals)
            views[dest].reshape(batch, n)[:] = totals[:, None]

        return step

    @staticmethod
    def _divide(
        a: int,
        b: int,
        dest: int,
        fraction_bits: int,
        saturated: np.uint64,
        mask: np.uint64,
        t0: int,
    ) -> Callable:
        fraction = np.uint64(fraction_bits)
        one = np.uint64(1)
        zero = np.uint64(0)

        def step(views, bools, z, padflat, batch):
            d = views[dest]
            t = views[t0]
            divisor = views[b]
            np.left_shift(views[a], fraction, out=d)
            np.maximum(divisor, one, out=t)
            np.floor_divide(d, t, out=d)
            # Divisor-zero saturation, exactly like restoring division.
            np.equal(divisor, zero, out=bools)
            np.copyto(d, saturated, where=bools)
            np.bitwise_and(d, mask, out=d)

        return step
