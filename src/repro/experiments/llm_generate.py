"""Decode-path speed experiment: KV-cache generation vs re-prefill.

The perplexity artefacts measure the prefill-shaped protocol; this
experiment measures the deployment scenario the paper's hardware targets —
token-by-token autoregressive generation — by timing
:meth:`~repro.llm.model.TinyLlamaModel.generate` twice on the same model,
prompts and seeded RNG stream:

* ``use_cache=True`` — incremental decode through the per-layer
  :class:`~repro.llm.generate.KVCache` (one single-query attention per
  layer per step);
* ``use_cache=False`` — the naive baseline that re-prefills the whole
  growing sequence every step (quadratic in generated tokens).

Both paths must produce **identical tokens** (``tokens_match``); the
``speedup`` property is the tokens/sec ratio
``benchmarks/test_llm_generate.py`` pins at >= 3x.  The model is
deliberately *untrained*: token parity needs no training (both paths run
the same weights), and a compute-bound shape — wider hidden state, longer
prompt — measures the algorithmic win rather than Python dispatch
overhead.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.ap.engine import canonical_engine_name
from repro.llm.config import LlamaConfig
from repro.llm.model import TinyLlamaModel
from repro.runtime.backend import (
    BackendSpec,
    canonical_backend_name,
    resolve_model_backend,
)
from repro.runtime.registry import Experiment, register

__all__ = [
    "GenerateSpeedReport",
    "run_generate_speed",
    "render_generate_speed",
    "GenerateSpeedExperiment",
]


@dataclass(frozen=True)
class GenerateSpeedReport:
    """Speed and token parity of KV-cache decoding vs re-prefill.

    ``cached_seconds`` / ``prefill_seconds`` time the identical generation
    (same prompts, same RNG stream) through the incremental KV-cache path
    and the naive re-prefill baseline; ``tokens_match`` holds only if both
    paths emitted the same token ids for every prompt at every step.
    """

    backend: str
    batch: int
    prompt_length: int
    max_new_tokens: int
    temperature: float
    cached_seconds: float
    prefill_seconds: float
    tokens_match: bool

    @property
    def generated_tokens(self) -> int:
        return self.batch * self.max_new_tokens

    @property
    def cached_tokens_per_second(self) -> float:
        return self.generated_tokens / self.cached_seconds

    @property
    def prefill_tokens_per_second(self) -> float:
        return self.generated_tokens / self.prefill_seconds

    @property
    def speedup(self) -> float:
        return self.prefill_seconds / self.cached_seconds


def run_generate_speed(
    batch: int = 8,
    prompt_length: int = 96,
    max_new_tokens: int = 64,
    hidden_size: int = 128,
    num_heads: int = 4,
    num_layers: int = 2,
    vocab_size: int = 128,
    max_context: int = 256,
    softmax_backend: Optional[str] = None,
    temperature: float = 0.0,
    top_k: Optional[int] = None,
    seed: int = 0,
    engine: Optional[str] = None,
) -> GenerateSpeedReport:
    """Time KV-cache generation against the re-prefill baseline.

    Backend construction (and, for the AP paths, plan compilation of the
    provisioned shape) happens outside both timed windows — the report is
    pure generation time.  ``softmax_backend=None`` (or ``"float"``) runs
    the floating-point attention softmax; ``engine`` selects the
    functional AP engine for the AP-family backends (any engine-registry
    name, e.g. ``"compiled"``).
    """
    canonical = (
        "float"
        if softmax_backend is None
        else canonical_backend_name(softmax_backend)
    )
    if engine is not None:
        engine = canonical_engine_name(engine)
    config = LlamaConfig(
        name="generate-bench",
        num_layers=num_layers,
        num_heads=num_heads,
        num_kv_heads=num_heads,
        hidden_size=hidden_size,
        intermediate_size=2 * hidden_size,
        vocab_size=vocab_size,
        max_context=max_context,
    )
    model = TinyLlamaModel(config, seed=seed)
    rng = np.random.default_rng(seed)
    prompts = rng.integers(0, vocab_size, size=(batch, prompt_length))
    softmax_fn = (
        None
        if canonical == "float"
        else resolve_model_backend(
            BackendSpec(name=canonical, engine=engine),
            config.num_heads,
            config.max_context,
        ).softmax_fn()
    )
    # Warm the shape-dependent caches (stacked weights, masks, positions)
    # so neither timed window pays first-touch construction.
    model.infer(prompts[:1], softmax_fn=softmax_fn)

    start = time.perf_counter()
    cached = model.generate(
        prompts, max_new_tokens, softmax_fn=softmax_fn,
        temperature=temperature, top_k=top_k, seed=seed, use_cache=True,
    )
    cached_seconds = time.perf_counter() - start
    start = time.perf_counter()
    baseline = model.generate(
        prompts, max_new_tokens, softmax_fn=softmax_fn,
        temperature=temperature, top_k=top_k, seed=seed, use_cache=False,
    )
    prefill_seconds = time.perf_counter() - start
    return GenerateSpeedReport(
        backend=canonical,
        batch=batch,
        prompt_length=prompt_length,
        max_new_tokens=max_new_tokens,
        temperature=temperature,
        cached_seconds=cached_seconds,
        prefill_seconds=prefill_seconds,
        tokens_match=bool(np.array_equal(cached, baseline)),
    )


def render_generate_speed(report: GenerateSpeedReport) -> str:
    """Render the decode-speed report."""
    verdict = "identical tokens" if report.tokens_match else "TOKENS DIVERGED"
    return (
        f"KV-cache decoding ({report.batch} prompts x {report.prompt_length} "
        f"tokens + {report.max_new_tokens} new, backend {report.backend}, "
        f"temperature {report.temperature:g}): cached "
        f"{report.cached_seconds:.3f}s "
        f"({report.cached_tokens_per_second:.0f} tok/s) vs re-prefill "
        f"{report.prefill_seconds:.3f}s "
        f"({report.prefill_tokens_per_second:.0f} tok/s) -> "
        f"{report.speedup:.1f}x, {verdict}"
    )


@register("llm-generate")
class GenerateSpeedExperiment(Experiment):
    """Registry wrapper: KV-cache decode speedup + token parity report.

    ``--backend`` selects the replacement attention softmax both timed
    paths execute (any runtime backend name; ``float`` is the default
    floating-point softmax).
    """

    title = "Decoding"
    description = "KV-cache generation speedup vs naive re-prefill"
    row_type = GenerateSpeedReport
    scalar_result = True
    backend_config_key = "softmax_backend"
    fast_config = {
        "batch": 2,
        "prompt_length": 24,
        "max_new_tokens": 8,
        "hidden_size": 32,
        "num_heads": 2,
        "vocab_size": 64,
        "max_context": 64,
    }

    def run(self, config=None):
        return run_generate_speed(**self._config_kwargs(config))

    def render(self, result):
        return render_generate_speed(result)
