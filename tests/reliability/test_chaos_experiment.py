"""The chaos-load experiment: registry contract + seeded replayability."""

import json

import pytest

from repro.experiments.chaos_load import (
    ChaosLoadReport,
    default_fault_specs,
    render_chaos_load,
    run_chaos_load,
)
from repro.runtime.registry import get_experiment

FAST = {
    "rate_rps": 800.0,
    "num_requests": 32,
    "sequence_lengths": (8, 16),
    "max_wait_ms": 1.0,
}


@pytest.fixture(scope="module")
def fast_run():
    experiment = get_experiment("chaos-load")
    return experiment, experiment.run(dict(experiment.fast_config))


class TestChaosLoadExperiment:
    def test_default_schedule_stages_outage_and_recovery(self, fast_run):
        _, rows = fast_run
        assert len(rows) == 1
        report = rows[0]
        assert isinstance(report, ChaosLoadReport)
        assert report.engine_chain == "compiled->vectorized"
        assert report.fault_events > 0
        assert report.availability >= 0.99
        assert report.successes_identical
        assert report.degrades >= 1
        assert report.recoveries >= 1
        assert report.final_engine == "compiled"  # probed back to primary
        assert report.p99_ms >= report.p50_ms > 0.0
        assert report.retries > 0  # the outage exercised the retry path

    def test_render_tells_the_reliability_story(self, fast_run):
        experiment, rows = fast_run
        rendered = experiment.render(rows)
        assert "availability" in rendered
        assert "breaker" in rendered
        assert "bit-identical" in rendered
        assert "compiled->vectorized" in rendered
        assert render_chaos_load([]) == "chaos-load: no report"

    def test_json_round_trip_renders_identically(self, fast_run):
        experiment, rows = fast_run
        payload = json.loads(json.dumps(experiment.to_dict(rows)))
        restored = experiment.from_dict(payload)
        assert experiment.render(restored) == experiment.render(rows)
        assert restored[0].availability == rows[0].availability
        # JSON turns tuples into lists; the contents must survive exactly.
        assert list(restored[0].transitions) == list(rows[0].transitions)

    def test_same_seeds_replay_the_same_outage(self, fast_run):
        _, rows = fast_run
        replay = run_chaos_load(**FAST)[0]
        report = rows[0]
        assert replay.fault_events == report.fault_events
        assert replay.transitions == report.transitions
        assert replay.retries == report.retries
        assert replay.availability == report.availability

    def test_fault_specs_are_overridable(self):
        rows = run_chaos_load(fault_specs=(), **FAST)
        report = rows[0]
        assert report.fault_events == 0
        assert report.degrades == 0 and report.recoveries == 0
        assert report.availability == 1.0
        assert report.successes_identical

    def test_default_specs_shape(self):
        specs = default_fault_specs()
        assert [s.name for s in specs] == ["compiled-outage", "tick-latency"]
        assert specs[0].site == "engine:compiled"
        assert specs[1].kind == "latency"
