"""Graph-free batched inference for :class:`~repro.llm.model.TinyLlamaModel`.

:meth:`TinyLlamaModel.forward` is the *training* path: it builds an autograd
graph, loops over attention heads (``4 * h`` small matmuls per layer) and
handles exactly one segment per call.  Evaluation needs none of that — the
perplexity protocol is forward-only — so this module provides the fast path
the experiments run on.  Three stacked optimisations, each bit-identical to
the seed path at float64:

**Stacked-head attention.**  The per-head ``wq/wk/wv/wo`` Parameter lists
stay as they are (the trainer differentiates them head by head), but the
inference path consumes them as head-major ``(h, d, hd)`` stacks — cached
on the model, invalidated via the Parameter version counters — so each
layer runs four broadcast einsums (``np.matmul`` with a stacked operand)
instead of ``4 * h`` Python-loop matmuls.  numpy executes a stacked matmul
as one BLAS GEMM per 2-D slice, i.e. exactly the seed's per-head products,
which is what keeps the results bit-identical rather than merely close.

**Graph-free batched forward.**  :func:`infer` takes a whole ``(B, T)``
token batch, allocates no ``Tensor``, and evaluates every segment in one
pass; the forward-only kernels are shared with the autograd ops
(:mod:`repro.nn.functional`), not re-derived.  Ragged batches ride along
via ``valid_lengths``: rows are grouped by length and each group runs at
its **natural** width (causal attention guarantees a segment's logits
never depend on anything beyond its own tokens), so every BLAS call and
every pairwise reduction has exactly the shape the seed path used — the
structural property behind the bit-identity (zero-padding instead would
perturb numpy's pairwise summations in the last ulp).  A perplexity
evaluation has at most two groups: the full segments and the ragged tail.

**One wide softmax call per layer.**  A batched replacement softmax
(``supports_batch = True``) receives all heads of all same-width segments
as a single head-major ``(h*B*T, T)`` score matrix — row
``h*(B*T) + b*T + i`` holds query row ``i`` of segment ``b`` of head ``h``
— with the per-row causal prefix lengths.  That is exactly the layout
:class:`~repro.mapping.cluster.ApCluster` shards across its per-head APs in
one fused compiled-plan pass, so batching segments multiplies the fused
plan's row space instead of starving it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.llm.model import causal_batched_softmax
from repro.nn.functional import rms_norm_forward, silu_forward, softmax_forward

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.llm.model import SoftmaxFn, TinyLlamaModel

__all__ = ["infer"]


def infer(
    model: "TinyLlamaModel",
    tokens: np.ndarray,
    valid_lengths: Optional[np.ndarray] = None,
    softmax_fn: Optional["SoftmaxFn"] = None,
    backend: Optional[object] = None,
) -> np.ndarray:
    """Next-token logits for a batch of token segments, graph-free.

    Parameters
    ----------
    model:
        The model to evaluate.
    tokens:
        Integer token ids of shape ``(B, T)`` — one row per evaluation
        segment — or a single ``(T,)`` sequence.  ``T <= max_context``.
    valid_lengths:
        Optional per-segment token counts (shape ``(B,)``, entries in
        ``1..T``) for ragged batches: row ``b``'s tokens at positions
        ``>= valid_lengths[b]`` are ignored.  Rows sharing a length are
        evaluated together at that width, so the logits at positions
        ``< valid_lengths[b]`` are bit-identical to forwarding the
        unpadded segment alone; logits at ignored positions are zero.
    softmax_fn:
        Optional replacement attention softmax (same contract as
        :meth:`~repro.llm.model.TinyLlamaModel.forward`: row-by-row
        callable, or batched with ``supports_batch = True``).
    backend:
        Optional replacement attention softmax selected through the
        unified runtime API (name / spec / resolved backend); mutually
        exclusive with ``softmax_fn``.

    Returns
    -------
    numpy.ndarray
        Float64 logits of shape ``(B, T, vocab)`` (``(T, vocab)`` for 1-D
        input).  No autograd graph is recorded.
    """
    if backend is not None:
        if softmax_fn is not None:
            raise ValueError("pass either softmax_fn or backend, not both")
        # Imported lazily: the base substrate must stay importable without
        # pulling the whole runtime/mapping/gpu stack in.
        from repro.runtime.backend import resolve_model_backend

        softmax_fn = resolve_model_backend(
            backend, model.config.num_heads, model.config.max_context
        ).softmax_fn()
    tokens = np.asarray(tokens, dtype=np.int64)
    squeeze = tokens.ndim == 1
    if squeeze:
        tokens = tokens[None, :]
    if tokens.ndim != 2:
        raise ValueError("infer expects a (B, T) token batch or a 1-D sequence")
    batch, t = tokens.shape
    if batch < 1 or t < 1:
        raise ValueError("infer needs at least one token per segment")
    if t > model.config.max_context:
        raise ValueError(
            f"sequence of length {t} exceeds max context {model.config.max_context}"
        )
    lengths = _check_valid_lengths(valid_lengths, batch, t)

    if lengths is None or np.all(lengths == t):
        logits = _forward_batch(model, tokens, softmax_fn)
    else:
        logits = np.zeros((batch, t, model.config.vocab_size))
        for length in np.unique(lengths):
            rows = lengths == length
            logits[rows, :length] = _forward_batch(
                model, tokens[rows][:, :length], softmax_fn
            )
    return logits[0] if squeeze else logits


def _check_valid_lengths(
    valid_lengths: Optional[np.ndarray], batch: int, t: int
) -> Optional[np.ndarray]:
    if valid_lengths is None:
        return None
    lengths = np.asarray(valid_lengths)
    # Strict shape check *before* any flattening: a (B, 1) or (1, B) array
    # reshapes silently to (B,) but almost certainly means the caller built
    # the wrong layout — reject anything that is not already 1-D.
    if lengths.ndim != 1 or lengths.shape != (batch,):
        raise ValueError(
            f"valid_lengths must be 1-D and hold one entry per segment "
            f"({batch}), got shape {lengths.shape}"
        )
    if not np.issubdtype(lengths.dtype, np.integer):
        raise ValueError(
            f"valid_lengths must be integers, got dtype {lengths.dtype}"
        )
    lengths = lengths.astype(np.int64)
    if np.any(lengths < 1) or np.any(lengths > t):
        raise ValueError("valid_lengths must lie in 1..T for every segment")
    return lengths


def _forward_batch(
    model: "TinyLlamaModel",
    tokens: np.ndarray,
    softmax_fn: Optional["SoftmaxFn"],
    kv_sink: Optional[list] = None,
) -> np.ndarray:
    """The batched decoder stack over a uniform-width ``(B, T)`` batch.

    ``kv_sink``, when given, collects each layer's key/value projections as
    ``(B, h, T, hd)`` array pairs — the KV-cache prefill
    (:mod:`repro.llm.generate`) reuses this exact forward pass and seeds its
    cache from the sink, so the cached keys are the very arrays the prefill
    logits were computed from.
    """
    t = tokens.shape[1]
    mask = model.causal_mask(t)
    positions = model.position_ids(t)
    scale_factor = 1.0 / np.sqrt(model.config.head_dim)

    x = model.token_embedding.data[tokens] + model.position_embedding.data[positions]
    for index, layer in enumerate(model.layers):
        x = x + _attention(model, x, index, mask, scale_factor, softmax_fn, kv_sink)
        x = x + _feed_forward(x, layer)
    x = rms_norm_forward(x, model.final_norm.data)
    return np.matmul(x, model.output_head.data)


# --------------------------------------------------------------------------- #
# Blocks                                                                       #
# --------------------------------------------------------------------------- #
def _attention(
    model: "TinyLlamaModel",
    x: np.ndarray,
    layer_index: int,
    mask: np.ndarray,
    scale_factor: float,
    softmax_fn: Optional["SoftmaxFn"],
    kv_sink: Optional[list] = None,
) -> np.ndarray:
    """Multi-head causal self-attention over a ``(B, T, d)`` activation.

    Every projection is one stacked matmul (BLAS runs the seed's per-head
    GEMM per 2-D slice); the head outputs are accumulated in head order so
    the floating-point sum matches the seed's sequential reduction exactly.
    """
    layer = model.layers[layer_index]
    stacks = model.stacked_attention_weights(layer_index)
    normed = rms_norm_forward(x, layer["attn_norm"].data)
    hidden = normed[:, None]  # (B, 1, T, d) broadcast against (h, d, hd)
    q = np.matmul(hidden, stacks.wq)  # (B, h, T, hd)
    k = np.matmul(hidden, stacks.wk)
    v = np.matmul(hidden, stacks.wv)
    if kv_sink is not None:
        kv_sink.append((k, v))
    scores = np.matmul(q, k.transpose(0, 1, 3, 2)) * scale_factor  # (B, h, T, T)

    if softmax_fn is None:
        probabilities = softmax_forward(scores + mask)
    elif getattr(softmax_fn, "supports_batch", False):
        probabilities = _batched_replacement_softmax(scores, softmax_fn)
    else:
        probabilities = _rowwise_replacement_softmax(scores, softmax_fn)

    context = np.matmul(probabilities, v)  # (B, h, T, hd)
    projected = np.matmul(context, stacks.wo)  # (B, h, T, d)
    output = projected[:, 0]
    for head in range(1, model.config.num_heads):
        output = output + projected[:, head]
    return output


def _feed_forward(x: np.ndarray, layer: dict) -> np.ndarray:
    normed = rms_norm_forward(x, layer["ffn_norm"].data)
    gate = silu_forward(np.matmul(normed, layer["w_gate"].data))
    up = np.matmul(normed, layer["w_up"].data)
    return np.matmul(gate * up, layer["w_down"].data)


# --------------------------------------------------------------------------- #
# Replacement softmax dispatch                                                 #
# --------------------------------------------------------------------------- #
def _batched_replacement_softmax(
    scores: np.ndarray, softmax_fn: "SoftmaxFn"
) -> np.ndarray:
    """One head-major softmax call covering every segment, head and row.

    The ``(B, h, T, T)`` score tensor is flattened to ``(h*B*T, T)`` —
    head-major, then segment-major within a head, so the per-head blocks
    match :class:`~repro.mapping.cluster.ApCluster`'s 2-D contract — and
    dispatched through :func:`~repro.llm.model.causal_batched_softmax`,
    the same contract authority the autograd forward uses (tiled causal
    lengths, shape validation, causal re-mask).
    """
    b, h, t = scores.shape[0], scores.shape[1], scores.shape[2]
    stacked = scores.transpose(1, 0, 2, 3).reshape(h * b * t, t)
    probabilities = causal_batched_softmax(stacked, softmax_fn)
    return probabilities.reshape(h, b, t, t).transpose(1, 0, 2, 3)


def _rowwise_replacement_softmax(
    scores: np.ndarray, softmax_fn: "SoftmaxFn"
) -> np.ndarray:
    """The legacy row-by-row contract: one call per causally-valid prefix."""
    b, h, t = scores.shape[0], scores.shape[1], scores.shape[2]
    probabilities = np.zeros_like(scores)
    for segment in range(b):
        for head in range(h):
            for i in range(t):
                probabilities[segment, head, i, : i + 1] = softmax_fn(
                    scores[segment, head, i, : i + 1]
                )
    return probabilities
