"""Gradient checks and unit tests for the numpy autograd substrate."""

import numpy as np
import pytest

from repro.nn.autograd import Parameter, Tensor, no_grad
from repro.nn.functional import (
    add,
    cross_entropy,
    embedding,
    matmul,
    mul,
    rms_norm,
    scale,
    silu,
    softmax_op,
)
from repro.nn.optim import Adam


def numerical_gradient(function, parameter, eps=1e-6):
    """Central finite differences of a scalar-valued function."""
    grad = np.zeros_like(parameter.data)
    flat = parameter.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = function().item()
        flat[i] = original - eps
        minus = function().item()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_gradients(build_loss, parameters, tolerance=1e-5):
    loss = build_loss()
    loss.backward()
    analytic = []
    for parameter in parameters:
        assert parameter.grad is not None, parameter.name
        analytic.append(parameter.grad.copy())
    for parameter, grad in zip(parameters, analytic):
        numeric = numerical_gradient(build_loss, parameter)
        assert np.max(np.abs(grad - numeric)) < tolerance, parameter.name


class TestGradChecks:
    def test_matmul_add_mul_chain(self):
        rng = np.random.default_rng(0)
        a = Parameter(rng.normal(size=(3, 4)), name="a")
        b = Parameter(rng.normal(size=(4, 2)), name="b")
        c = Parameter(rng.normal(size=(3, 2)), name="c")

        def loss():
            a.zero_grad(); b.zero_grad(); c.zero_grad()
            out = add(matmul(a, b), c)
            out = mul(out, out)
            return cross_entropy(out, np.array([0, 1, 0]))

        check_gradients(loss, [a, b, c])

    def test_matmul_transpose_b(self):
        rng = np.random.default_rng(1)
        a = Parameter(rng.normal(size=(3, 4)), name="a")
        b = Parameter(rng.normal(size=(5, 4)), name="b")

        def loss():
            a.zero_grad(); b.zero_grad()
            return cross_entropy(matmul(a, b, transpose_b=True), np.array([0, 2, 4]))

        check_gradients(loss, [a, b])

    def test_rms_norm_and_silu(self):
        rng = np.random.default_rng(2)
        x = Parameter(rng.normal(size=(4, 5)), name="x")
        w = Parameter(np.ones(5), name="w")

        def loss():
            x.zero_grad(); w.zero_grad()
            return cross_entropy(silu(rms_norm(x, w)), np.array([0, 1, 2, 3]))

        check_gradients(loss, [x, w])

    def test_softmax_and_scale(self):
        rng = np.random.default_rng(3)
        x = Parameter(rng.normal(size=(3, 6)), name="x")
        mask = np.triu(np.full((3, 6), -1e30), k=4)

        def loss():
            x.zero_grad()
            return cross_entropy(softmax_op(scale(x, 0.7), mask=mask), np.array([1, 0, 2]))

        check_gradients(loss, [x])

    def test_embedding(self):
        rng = np.random.default_rng(4)
        table = Parameter(rng.normal(size=(7, 3)), name="table")
        indices = np.array([0, 3, 3, 6])

        def loss():
            table.zero_grad()
            return cross_entropy(embedding(table, indices), np.array([0, 1, 2, 0]))

        check_gradients(loss, [table])


class TestTensorMechanics:
    def test_backward_requires_scalar(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ValueError):
            t.backward()

    def test_no_grad_blocks_graph(self):
        a = Parameter(np.ones((2, 2)))
        with no_grad():
            out = matmul(a, a)
        assert out.parents == []
        assert out.backward_fn is None

    def test_gradient_accumulates_over_reuse(self):
        a = Parameter(np.array([[2.0]]))
        out = add(a, a)
        out.backward(np.array([[1.0]]))
        assert a.grad[0, 0] == pytest.approx(2.0)

    def test_cross_entropy_validates_shapes(self):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 3))), np.array([0]))
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros(3)), np.array([0]))


class TestAdam:
    def test_minimises_quadratic(self):
        target = np.array([1.0, -2.0, 3.0])
        parameter = Parameter(np.zeros(3))
        optimizer = Adam([parameter], learning_rate=0.1)
        for _ in range(200):
            optimizer.zero_grad()
            diff = parameter.data - target
            parameter.grad = 2 * diff
            optimizer.step()
        assert np.max(np.abs(parameter.data - target)) < 1e-2

    def test_requires_parameters(self):
        with pytest.raises(ValueError):
            Adam([])

    def test_invalid_learning_rate(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], learning_rate=0)
