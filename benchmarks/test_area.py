"""Benchmark regenerating the AP area figures (0.64 / 0.81 / 1.28 mm^2)."""

from repro.experiments import render_area, run_area


def test_ap_area(benchmark):
    entries = benchmark(run_area)
    print()
    print(render_area(entries))
    for entry in entries:
        assert abs(entry.measured_area_mm2 - entry.paper_area_mm2) / entry.paper_area_mm2 < 0.10
