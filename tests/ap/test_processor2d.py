"""Tests for the 2D AP row-wise operations."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ap.processor2d import AssociativeProcessor2D


class TestReduction:
    @given(st.lists(st.integers(0, 255), min_size=1, max_size=32))
    @settings(max_examples=30, deadline=None)
    def test_reduce_sum_property(self, values):
        ap = AssociativeProcessor2D(rows=len(values), columns=40)
        field = ap.allocate_field("a", 8)
        dest = ap.allocate_field("sum", 8 + 6)
        ap.write_field(field, np.array(values))
        ap.reduce_sum(field, dest)
        assert ap.read_field(dest)[0] == sum(values)

    def test_reduce_levels_match_log2(self):
        ap = AssociativeProcessor2D(rows=16, columns=40)
        field = ap.allocate_field("a", 4)
        dest = ap.allocate_field("sum", 10)
        ap.write_field(field, np.ones(16, dtype=np.int64))
        levels = ap.reduce_sum(field, dest)
        assert levels == 4

    def test_destination_width_validated(self):
        ap = AssociativeProcessor2D(rows=8, columns=30)
        field = ap.allocate_field("a", 8)
        dest = ap.allocate_field("sum", 8)
        ap.write_field(field, np.full(8, 255))
        with pytest.raises(ValueError):
            ap.reduce_sum(field, dest)

    def test_broadcast_row(self):
        ap = AssociativeProcessor2D(rows=4, columns=20)
        field = ap.allocate_field("a", 8)
        ap.write_field(field, np.array([7, 1, 2, 3]))
        ap.broadcast_row(field, source_row=0)
        assert np.all(ap.read_field(field) == 7)

    def test_broadcast_row_out_of_range(self):
        ap = AssociativeProcessor2D(rows=2, columns=10)
        field = ap.allocate_field("a", 2)
        with pytest.raises(IndexError):
            ap.broadcast_row(field, source_row=5)

    def test_reduce_and_broadcast(self):
        ap = AssociativeProcessor2D(rows=8, columns=40)
        field = ap.allocate_field("a", 6)
        dest = ap.allocate_field("sum", 12)
        values = np.arange(1, 9)
        ap.write_field(field, values)
        ap.reduce_and_broadcast(field, dest)
        assert np.all(ap.read_field(dest) == values.sum())

    def test_reduction_charges_cycles(self):
        ap = AssociativeProcessor2D(rows=8, columns=40)
        field = ap.allocate_field("a", 6)
        dest = ap.allocate_field("sum", 12)
        ap.write_field(field, np.ones(8, dtype=np.int64))
        ap.reset_stats()
        ap.reduce_sum(field, dest)
        assert ap.stats.compare_cycles > 0
        assert ap.stats.write_cycles > 0
