"""Tables III & IV — precision sensitivity of the integer-only softmax.

The paper measures WikiText-2 perplexity of Llama2-7b/13b when the attention
softmax is replaced by the integer-only approximation, sweeping the input
precision ``M``, the ``vcorr`` width and the sum headroom ``N``.  The
reproduction substitutes the tiny trained numpy model and synthetic corpus
(DESIGN.md §4) and reports two complementary views:

* :func:`run_perplexity_sweep` — end-to-end perplexity of the substitute
  model for every precision configuration (the direct analogue of
  Tables III/IV, at reduced scale);
* :func:`run_softmax_fidelity_sweep` — distribution-level degradation (KL
  divergence to the FP softmax and the total probability-mass error) on
  attention-score rows of the paper's 2048-token length, which exposes the
  ``N`` saturation effect at the scale the paper studies.

Since PR 2 the perplexity sweep can execute the attention softmax *on the
functional AP cluster* (``softmax_backend="ap-cluster"``), and since the
compiled-plan layer landed that path runs **fused**: every layer's
head-major score matrix executes as one wide compiled-plan pass through
:class:`~repro.mapping.cluster.ApCluster` instead of a per-head Python
loop.  :func:`run_ap_cluster_equivalence` verifies that the fused path is
bit-identical to the pure-software integer pipeline, to the PR 2 per-head
loop and to the pre-cluster row-by-row replacement path, and pins its
speedup over both loops.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from repro.ap.engine import canonical_engine_name
from repro.llm.config import LlamaConfig
from repro.llm.dataset import SyntheticCorpus, make_corpus
from repro.llm.model import SoftmaxFn, TinyLlamaModel
from repro.llm.perplexity import INFERENCE_PATHS, evaluate_perplexity
from repro.llm.trainer import Trainer
from repro.mapping.cluster import ApCluster
from repro.quant.precision import BEST_PRECISION, PrecisionConfig
from repro.reliability import faults
from repro.reliability.faults import FaultInjector
from repro.runtime.backend import canonical_backend_name, resolve_backend
from repro.runtime.registry import Experiment, register
from repro.softmax.integer_softmax import IntegerSoftmax
from repro.softmax.metrics import kl_divergence
from repro.softmax.reference import softmax
from repro.utils.tables import TextTable
from repro.utils.validation import check_in_choices, check_positive_int

__all__ = [
    "PerplexityPoint",
    "FidelityPoint",
    "ClusterEquivalenceReport",
    "InferenceSpeedReport",
    "PerplexityExperiment",
    "FidelityExperiment",
    "ClusterParityExperiment",
    "InferenceSpeedExperiment",
    "train_reference_model",
    "run_perplexity_sweep",
    "run_softmax_fidelity_sweep",
    "run_ap_cluster_equivalence",
    "run_inference_speed",
    "render_perplexity_table",
    "render_fidelity_table",
    "render_cluster_equivalence",
    "render_inference_speed",
    "PERPLEXITY_M_VALUES",
    "PERPLEXITY_N_VALUES",
    "PRECISION_SWEEP_BACKENDS",
    "SOFTMAX_BACKENDS",
]

#: Legacy names of the perplexity sweep's attention-softmax execution paths
#: (kept for backwards compatibility; ``softmax_backend`` now accepts any
#: *precision-consuming* runtime backend name or alias, resolved through
#: :func:`repro.runtime.backend.resolve_backend`):
#: ``"software"`` / ``"software-batched"`` — the integer pipeline in numpy;
#: ``"ap-cluster"`` — the functional multi-AP cluster.
SOFTMAX_BACKENDS: Tuple[str, ...] = ("software", "software-batched", "ap-cluster")

#: Canonical backends the precision sweep accepts.  ``float`` and
#: ``gpu-analytical`` ignore the per-point :class:`PrecisionConfig`, so a
#: sweep over them would silently report the FP baseline on every row —
#: reject them eagerly instead.
PRECISION_SWEEP_BACKENDS: Tuple[str, ...] = ("integer", "ap", "ap-batch", "ap-cluster")

PERPLEXITY_M_VALUES: Tuple[int, ...] = (4, 6, 8)
PERPLEXITY_N_VALUES: Tuple[int, ...] = (8, 12, 16, 20)


@dataclass(frozen=True)
class PerplexityPoint:
    """Perplexity of one precision configuration (Tables III/IV analogue).

    ``seconds`` is the wall-clock time of the point's perplexity
    evaluation (training excluded) — the sweep's per-config telemetry,
    carried through ``to_dict()`` so the timing trajectory is part of the
    JSON artifact.
    """

    precision: Optional[PrecisionConfig]  # None = FP baseline
    perplexity: float
    seconds: float = 0.0

    @property
    def label(self) -> str:
        return "FP softmax" if self.precision is None else self.precision.label()


@dataclass(frozen=True)
class FidelityPoint:
    """Distribution-level softmax degradation for one configuration."""

    precision: PrecisionConfig
    kl_to_fp: float
    mass_error: float
    saturated_fraction: float


def train_reference_model(
    seed: int = 0,
    paragraphs: int = 150,
    training_steps: int = 400,
    hidden_size: int = 64,
    context: int = 96,
) -> Tuple[TinyLlamaModel, SyntheticCorpus]:
    """Train the substitute model used by the perplexity sweep."""
    corpus = make_corpus(paragraphs=paragraphs, seed=seed, max_vocab=96)
    config = LlamaConfig(
        name="TinyLlama-ppl",
        num_layers=2,
        num_heads=4,
        num_kv_heads=4,
        hidden_size=hidden_size,
        intermediate_size=2 * hidden_size,
        vocab_size=corpus.tokenizer.vocab_size,
        max_context=context,
    )
    model = TinyLlamaModel(config, seed=seed)
    trainer = Trainer(model, corpus.train_tokens, segment_length=context - 16,
                      learning_rate=3e-3, seed=seed)
    trainer.train(training_steps)
    return model, corpus


def _sweep_softmax_fn(
    config: PrecisionConfig,
    softmax_backend: str,
    num_heads: int,
    segment_length: int,
    engine: Optional[str] = None,
) -> SoftmaxFn:
    """The attention-softmax callable for one sweep configuration.

    Resolution goes through the unified runtime API, so any registered
    backend name (or legacy alias) works here and a typo fails eagerly
    with a "did you mean" suggestion.  ``engine`` selects the functional
    AP engine for the AP-family backends (any engine-registry name, e.g.
    ``"compiled"``); the pure-software backends ignore it.
    """
    backend = resolve_backend(
        softmax_backend,
        precision=config,
        num_heads=num_heads,
        sequence_length=segment_length,
        engine=engine,
    )
    return backend.softmax_fn()


def _sweep_point(
    model: TinyLlamaModel,
    tokens: np.ndarray,
    segment: int,
    precision: PrecisionConfig,
    softmax_backend: str,
    inference_path: str,
    max_batch: Optional[int],
    engine: Optional[str] = None,
) -> PerplexityPoint:
    """Evaluate one precision configuration, with wall-clock telemetry."""
    softmax_fn = _sweep_softmax_fn(
        precision, softmax_backend, model.config.num_heads, segment, engine
    )
    start = time.perf_counter()
    perplexity = evaluate_perplexity(
        model, tokens, segment, softmax_fn=softmax_fn,
        inference_path=inference_path, max_batch=max_batch,
    )
    return PerplexityPoint(
        precision=precision,
        perplexity=perplexity,
        seconds=time.perf_counter() - start,
    )


#: Per-process sweep context, installed by :func:`_init_sweep_worker`.
_WORKER_CONTEXT: Optional[Dict[str, Any]] = None


def _init_sweep_worker(payload: Dict[str, Any]) -> None:
    """Pool initialiser: rebuild the trained model once per worker process.

    The trained weights travel as a :meth:`TinyLlamaModel.state_dict`
    snapshot serialised **once per worker** (initializer arguments, not
    per-task pickling; no per-worker retraining); every subsequent task in
    the process reuses the rebuilt model.
    """
    global _WORKER_CONTEXT
    model = TinyLlamaModel(payload["config"], seed=0)
    model.load_state_dict(payload["state"])
    # The executor keeps the initargs payload alive for the worker's whole
    # lifetime; drop the serialised snapshot from it so the weights are not
    # held twice (the rebuilt model is the only copy that matters).
    payload.pop("state")
    injector = payload.get("fault_injector")
    if injector is not None:
        # Each worker replays the spec schedule from a fresh state (the
        # injector resets on unpickling), so a seeded crash spec kills a
        # deterministic task regardless of worker/task placement.
        injector.activate()
    _WORKER_CONTEXT = dict(payload, model=model)


def _sweep_point_worker(precision: PrecisionConfig) -> PerplexityPoint:
    """One sweep configuration in a worker process (see the initialiser)."""
    context = _WORKER_CONTEXT
    if context is None:  # pragma: no cover - initializer always runs first
        raise RuntimeError("sweep worker used without _init_sweep_worker")
    # Reliability seam, qualified by the task's own label so a fault spec
    # targets a configuration, not whichever process picked it up.
    faults.fire(f"sweep:task:{precision.label()}")
    return _sweep_point(
        context["model"],
        context["tokens"],
        context["segment"],
        precision,
        context["softmax_backend"],
        context["inference_path"],
        context["max_batch"],
        context.get("engine"),
    )


def _run_sweep_pool(
    configurations: List[PrecisionConfig],
    payload: Dict[str, Any],
    workers: int,
) -> List[PerplexityPoint]:
    """Fan the sweep across a process pool, surviving dead workers.

    A worker crash (``BrokenProcessPool``) poisons every future on its
    pool; the affected configurations are resubmitted **once** on a fresh
    pool with fault injection stripped, slotting the recomputed points
    back into their original positions — same deterministic order, same
    floats as a serial sweep.  Any other per-task exception propagates
    unchanged, as does a crash of the retry pool itself.
    """
    results: List[Optional[PerplexityPoint]] = [None] * len(configurations)
    broken: List[int] = []
    with ProcessPoolExecutor(
        max_workers=min(workers, len(configurations)),
        initializer=_init_sweep_worker,
        initargs=(payload,),
    ) as pool:
        futures = [
            pool.submit(_sweep_point_worker, config)
            for config in configurations
        ]
        for index, future in enumerate(futures):
            try:
                results[index] = future.result()
            except BrokenProcessPool:
                broken.append(index)
    if broken:
        retry_payload = {
            key: value
            for key, value in payload.items()
            if key != "fault_injector"
        }
        retry_payload["fault_injector"] = None
        with ProcessPoolExecutor(
            max_workers=min(workers, len(broken)),
            initializer=_init_sweep_worker,
            initargs=(retry_payload,),
        ) as pool:
            futures_by_index = {
                index: pool.submit(_sweep_point_worker, configurations[index])
                for index in broken
            }
            for index, future in futures_by_index.items():
                results[index] = future.result()
    return [point for point in results if point is not None]


def run_perplexity_sweep(
    model: Optional[TinyLlamaModel] = None,
    corpus: Optional[SyntheticCorpus] = None,
    m_values: Iterable[int] = (6, 8),
    n_values: Iterable[int] = PERPLEXITY_N_VALUES,
    vcorr_deltas: Iterable[int] = (0,),
    include_m4: bool = True,
    training_steps: int = 400,
    seed: int = 0,
    softmax_backend: str = "software",
    inference_path: str = "batched",
    max_batch: Optional[int] = None,
    workers: Optional[int] = None,
    engine: Optional[str] = None,
    fault_injector: Optional[FaultInjector] = None,
) -> List[PerplexityPoint]:
    """End-to-end perplexity for the precision grid (plus the FP baseline).

    ``softmax_backend`` selects how the replacement attention softmax is
    executed — any :data:`repro.runtime.backend.BACKEND_NAMES` entry or
    legacy alias (see :data:`SOFTMAX_BACKENDS`); with ``"ap-cluster"`` the
    whole evaluation runs AP-backed end to end.  Note the software backends
    apply the Barrett correction step by default while the AP dataflow uses
    the raw quotient, so the two families can differ in the last fixed-point
    digit of individual probabilities.

    ``inference_path`` selects the evaluation path per point (``"batched"``
    — the graph-free ``model.infer`` fast path, default — or ``"loop"``,
    the seed per-segment baseline; both produce bit-identical
    perplexities).  ``workers`` fans the independent ``(Δ, M, N)``
    configurations across a ``concurrent.futures`` process pool: the
    trained weights are serialised once (``state_dict``) and shipped to
    each worker, so the points — including the per-point ``seconds``
    telemetry — come back in the same deterministic order as the serial
    sweep, with identical floats.  ``None``/``1`` runs serially.
    ``engine`` selects the functional AP engine for the AP-family backends
    (any engine-registry name — ``reference``/``vectorized``/``compiled``;
    results are pinned bit-identical across all of them).

    The pool is resilient to dying workers: a ``BrokenProcessPool`` (a
    worker crashed — OOM-killed, segfaulted, or chaos-injected via
    ``fault_injector``, which ships to each worker's initializer) makes
    the sweep resubmit exactly the affected configurations **once** on a
    fresh, fault-free pool, preserving the deterministic result order and
    identical floats; a second failure propagates.
    """
    # Validate eagerly (single authority, with a did-you-mean for typos)
    # before spending time training the reference model; only backends that
    # actually consume the swept PrecisionConfig make a meaningful table.
    canonical = canonical_backend_name(softmax_backend)
    if canonical not in PRECISION_SWEEP_BACKENDS:
        raise ValueError(
            f"softmax_backend {softmax_backend!r} ignores the per-point "
            f"precision configuration, so the sweep would report the FP "
            f"baseline on every row; choose one of "
            f"{', '.join(PRECISION_SWEEP_BACKENDS)} (or a legacy alias)"
        )
    check_in_choices(inference_path, INFERENCE_PATHS, "inference_path")
    if engine is not None:
        # Same eager-failure policy as the backend name: an engine typo
        # must not survive until the first attention row of the sweep.
        engine = canonical_engine_name(engine)
    if workers is not None:
        check_positive_int(workers, "workers")
    if model is None or corpus is None:
        model, corpus = train_reference_model(seed=seed, training_steps=training_steps)
    segment = model.config.max_context - 16
    tokens = corpus.validation_tokens
    start = time.perf_counter()
    fp_perplexity = evaluate_perplexity(
        model, tokens, segment, inference_path=inference_path, max_batch=max_batch
    )
    points = [
        PerplexityPoint(
            precision=None,
            perplexity=fp_perplexity,
            seconds=time.perf_counter() - start,
        )
    ]
    configurations: List[PrecisionConfig] = []
    for delta in vcorr_deltas:
        for m in m_values:
            for n in n_values:
                configurations.append(PrecisionConfig(m, delta, n))
    if include_m4:
        configurations.append(PrecisionConfig(4, 0, 16))
    if workers is not None and workers > 1 and len(configurations) > 1:
        payload = {
            "config": model.config,
            "state": model.state_dict(),
            "tokens": tokens,
            "segment": segment,
            "softmax_backend": softmax_backend,
            "inference_path": inference_path,
            "max_batch": max_batch,
            "engine": engine,
            "fault_injector": fault_injector,
        }
        points.extend(_run_sweep_pool(configurations, payload, workers))
    else:
        for config in configurations:
            points.append(
                _sweep_point(
                    model, tokens, segment, config, softmax_backend,
                    inference_path, max_batch, engine,
                )
            )
    return points


@dataclass(frozen=True)
class ClusterEquivalenceReport:
    """Bit-exactness and speed of the fused AP cluster path.

    ``bit_identical`` holds only if the fused cluster probabilities equal
    the pure-software integer pipeline (raw Barrett quotient, i.e.
    ``barrett_correction=False``), the PR 2 per-head loop (one
    per-operation AP-engine execution per head) *and* the pre-cluster
    row-by-row replacement path (one per-vector AP execution).
    ``fused_speedup`` is per-head-loop seconds over fused seconds — the
    pinned win of the compiled-plan layer; ``speedup`` is row-by-row
    seconds over fused seconds (the historical pin).

    The compiled-engine leg re-runs the same fused workload on the
    scratch-arena ``"compiled"`` engine: ``compiled_identical`` pins its
    probabilities bit-identical to the fused (vectorized) pass, and
    ``compiled_speedup`` is vectorized seconds over compiled seconds — the
    pinned win of the buffer-planned executor over the packed interpreter.
    """

    batch: int
    heads: int
    sequence_length: int
    bit_identical: bool
    cluster_seconds: float
    per_head_loop_seconds: float
    row_by_row_seconds: float
    compiled_seconds: float = 0.0
    compiled_identical: bool = True

    @property
    def speedup(self) -> float:
        return self.row_by_row_seconds / self.cluster_seconds

    @property
    def fused_speedup(self) -> float:
        return self.per_head_loop_seconds / self.cluster_seconds

    @property
    def compiled_speedup(self) -> float:
        if self.compiled_seconds <= 0.0:
            return float("inf")
        return self.cluster_seconds / self.compiled_seconds


def run_ap_cluster_equivalence(
    heads: int = 4,
    sequence_length: int = 64,
    batch: int = 32,
    precision: PrecisionConfig = BEST_PRECISION,
    seed: int = 0,
    fast_iterations: int = 3,
) -> ClusterEquivalenceReport:
    """Compare the fused cluster path against its ancestors and successor.

    A ``(batch, heads, seq)`` attention-score tensor is evaluated five
    ways: on the :class:`~repro.mapping.cluster.ApCluster` (one fused
    compiled-plan pass over the head-major row space), on the same cluster
    with the scratch-arena ``"compiled"`` engine, by the PR 2 per-head
    loop (one per-operation AP-engine execution per head —
    :meth:`~repro.mapping.plan.ExecutionPlan.execute_on_ap`, how the
    cluster executed before the plan layer), by the pre-cluster row-by-row
    replacement path (one per-vector AP execution per ``(batch, head)``
    pair), and by the pure-software integer pipeline.  All five must be
    bit-identical; the timings pin the fused path's speedups.

    The two fast legs (vectorized and compiled) finish in microseconds at
    the default shape, so each is warmed once and timed over
    ``fast_iterations`` repeats (average reported) — the slow loop legs
    stay single-shot.
    """
    check_positive_int(fast_iterations, "fast_iterations")
    rng = np.random.default_rng(seed)
    scores = rng.normal(0.0, 2.0, size=(batch, heads, sequence_length))

    cluster = ApCluster(
        num_heads=heads, precision=precision, sequence_length=sequence_length
    )
    cluster.execute(scores)  # warm-up: plan + executor state
    start = time.perf_counter()
    for _ in range(fast_iterations):
        cluster_probabilities = cluster.execute(scores)
    cluster_seconds = (time.perf_counter() - start) / fast_iterations

    cluster.execute(scores, backend="compiled")  # warm-up: arena pool
    start = time.perf_counter()
    for _ in range(fast_iterations):
        compiled_probabilities = cluster.execute(scores, backend="compiled")
    compiled_seconds = (time.perf_counter() - start) / fast_iterations

    # PR 2 baseline: the per-head Python loop, each head's (batch, seq)
    # block issued as per-operation engine sweeps over its own CAM.
    plan = cluster.mapping.plan(sequence_length=sequence_length)
    loop_probabilities = np.empty_like(scores)
    start = time.perf_counter()
    for h in range(heads):
        loop_probabilities[:, h, :] = plan.execute_on_ap(
            scores[:, h, :], engine="vectorized"
        )
    loop_seconds = time.perf_counter() - start

    # PR 1 baseline: one per-vector AP execution per score row.
    row_probabilities = np.empty_like(scores)
    start = time.perf_counter()
    for b in range(batch):
        for h in range(heads):
            row_probabilities[b, h] = plan.execute_on_ap(
                scores[b, h][None, :], engine="vectorized"
            )[0]
    row_seconds = time.perf_counter() - start

    software = IntegerSoftmax(precision, barrett_correction=False)(scores)
    bit_identical = (
        np.array_equal(cluster_probabilities, software)
        and np.array_equal(cluster_probabilities, loop_probabilities)
        and np.array_equal(cluster_probabilities, row_probabilities)
    )
    return ClusterEquivalenceReport(
        batch=batch,
        heads=heads,
        sequence_length=sequence_length,
        bit_identical=bool(bit_identical),
        cluster_seconds=cluster_seconds,
        per_head_loop_seconds=loop_seconds,
        row_by_row_seconds=row_seconds,
        compiled_seconds=compiled_seconds,
        compiled_identical=bool(
            np.array_equal(cluster_probabilities, compiled_probabilities)
        ),
    )


@dataclass(frozen=True)
class InferenceSpeedReport:
    """Speed and bit-exactness of the batched inference path vs the seed.

    The same trained model and precision grid are evaluated twice on the
    same machine: through the graph-free batched ``model.infer`` path (this
    PR's fast path, ``max_batch`` segments per forward call), and through
    the **seed implementation** — the per-segment autograd-forward loop
    with, for the ``integer`` backend, the seed's per-distinct-causal-length
    grouping loop (the implementation that
    ``IntegerSoftmax.forward(valid_lengths=...)`` replaced).
    ``bit_identical`` holds only if every configuration's perplexity is the
    *same float* on both paths; ``speedup`` is seed seconds over batched
    seconds — the pinned end-to-end win of the inference path.
    """

    backend: str
    configurations: int
    segments: int
    segment_length: int
    max_batch: Optional[int]
    batched_seconds: float
    loop_seconds: float
    bit_identical: bool

    @property
    def speedup(self) -> float:
        return self.loop_seconds / self.batched_seconds


class _SeedGroupedIntegerSoftmaxFn:
    """The seed's batched integer attention softmax, kept as a baseline.

    One :class:`~repro.softmax.integer_softmax.IntegerSoftmax` call per
    distinct causal prefix length — for a causal ``(rows, seq)`` score
    matrix that is ``seq`` pipeline invocations per attention call.  This
    is exactly how ``IntegerBackend`` executed before the masked
    ``valid_lengths`` core landed; :func:`run_inference_speed` times it
    (under the seed per-segment forward loop) as the "before" side of the
    sweep speedup, and the parity suite pins that it remains bit-identical
    to the masked single call.
    """

    supports_batch = True

    def __init__(self, precision: PrecisionConfig) -> None:
        self._softmax = IntegerSoftmax(precision=precision)

    def __call__(
        self, scores: np.ndarray, valid_lengths: Optional[np.ndarray] = None
    ) -> np.ndarray:
        scores = np.asarray(scores, dtype=np.float64)
        rows = scores[None, :] if scores.ndim == 1 else scores
        if valid_lengths is None:
            probabilities = self._softmax(rows)
        else:
            lengths = np.asarray(valid_lengths, dtype=np.int64).reshape(-1)
            probabilities = np.zeros_like(rows)
            for length in np.unique(lengths):
                selected = lengths == length
                probabilities[selected, :length] = self._softmax(
                    rows[selected, :length]
                )
        return probabilities.reshape(scores.shape)


def run_inference_speed(
    model: Optional[TinyLlamaModel] = None,
    corpus: Optional[SyntheticCorpus] = None,
    m_values: Iterable[int] = (6, 8),
    n_values: Iterable[int] = (8, 16),
    vcorr_deltas: Iterable[int] = (0,),
    include_m4: bool = False,
    training_steps: int = 200,
    seed: int = 0,
    softmax_backend: str = "integer",
    max_batch: Optional[int] = 4,
    engine: Optional[str] = None,
) -> InferenceSpeedReport:
    """Time the perplexity sweep against the seed path (single worker).

    Training happens once, up front, outside both timed runs — the report
    compares pure evaluation time of the identical precision grid (plus
    the FP baseline point) on identical weights, which is the fair
    same-machine comparison ``benchmarks/test_llm_speed.py`` pins.  The
    baseline side runs ``inference_path="loop"`` with the seed's integer
    grouping (see :class:`_SeedGroupedIntegerSoftmaxFn`); for non-integer
    backends the loop baseline uses the backend unchanged.
    """
    canonical = canonical_backend_name(softmax_backend)
    if canonical not in PRECISION_SWEEP_BACKENDS:
        raise ValueError(
            f"softmax_backend {softmax_backend!r} ignores the precision "
            f"grid; choose one of {', '.join(PRECISION_SWEEP_BACKENDS)}"
        )
    if engine is not None:
        engine = canonical_engine_name(engine)
    if model is None or corpus is None:
        model, corpus = train_reference_model(seed=seed, training_steps=training_steps)
    segment = model.config.max_context - 16
    tokens = corpus.validation_tokens
    configurations: List[PrecisionConfig] = []
    for delta in vcorr_deltas:
        for m in m_values:
            for n in n_values:
                configurations.append(PrecisionConfig(m, delta, n))
    if include_m4:
        configurations.append(PrecisionConfig(4, 0, 16))

    heads = model.config.num_heads

    def batched_fn(config: Optional[PrecisionConfig]) -> Optional[SoftmaxFn]:
        if config is None:
            return None
        return _sweep_softmax_fn(config, softmax_backend, heads, segment, engine)

    def seed_fn(config: Optional[PrecisionConfig]) -> Optional[SoftmaxFn]:
        if config is None:
            return None
        if canonical == "integer":
            return _SeedGroupedIntegerSoftmaxFn(config)
        return _sweep_softmax_fn(config, softmax_backend, heads, segment, engine)

    grid: List[Optional[PrecisionConfig]] = [None] + configurations
    batched_seconds = loop_seconds = 0.0
    bit_identical = True
    for config in grid:
        # Build both callables outside the timed windows: the report is
        # pure evaluation time, not backend construction (an ap-cluster
        # spec builds one AP per head plus its compiled plan).
        fast_fn = batched_fn(config)
        slow_fn = seed_fn(config)
        start = time.perf_counter()
        fast = evaluate_perplexity(
            model, tokens, segment, softmax_fn=fast_fn,
            inference_path="batched", max_batch=max_batch,
        )
        batched_seconds += time.perf_counter() - start
        start = time.perf_counter()
        slow = evaluate_perplexity(
            model, tokens, segment, softmax_fn=slow_fn,
            inference_path="loop",
        )
        loop_seconds += time.perf_counter() - start
        bit_identical = bit_identical and fast == slow
    segments = len(range(0, tokens.shape[0] - 1, segment))
    return InferenceSpeedReport(
        backend=canonical,
        configurations=len(grid),
        segments=segments,
        segment_length=segment,
        max_batch=max_batch,
        batched_seconds=batched_seconds,
        loop_seconds=loop_seconds,
        bit_identical=bool(bit_identical),
    )


def _attention_like_scores(
    rows: int, sequence_length: int, seed: int
) -> np.ndarray:
    """Synthetic attention-score rows: a mixture of flat rows (early-layer
    behaviour) and peaked rows (late-layer behaviour)."""
    rng = np.random.default_rng(seed)
    flat = rng.normal(0.0, 0.5, size=(rows // 2, sequence_length))
    peaked = rng.normal(0.0, 2.0, size=(rows - rows // 2, sequence_length))
    return np.concatenate([flat, peaked], axis=0)


def run_softmax_fidelity_sweep(
    sequence_length: int = 2048,
    rows: int = 64,
    m_values: Iterable[int] = PERPLEXITY_M_VALUES,
    n_values: Iterable[int] = PERPLEXITY_N_VALUES,
    vcorr_deltas: Iterable[int] = (0, 1, 2),
    seed: int = 0,
) -> List[FidelityPoint]:
    """Distribution-level degradation sweep at the paper's row length."""
    scores = _attention_like_scores(rows, sequence_length, seed)
    reference = softmax(scores)
    points: List[FidelityPoint] = []
    for delta in vcorr_deltas:
        for m in m_values:
            for n in n_values:
                config = PrecisionConfig(m, delta, n)
                result = IntegerSoftmax(config).forward(scores)
                mass_error = float(
                    np.mean(np.abs(result.probabilities.sum(axis=-1) - 1.0))
                )
                points.append(
                    FidelityPoint(
                        precision=config,
                        kl_to_fp=kl_divergence(reference, result.probabilities),
                        mass_error=mass_error,
                        saturated_fraction=result.saturated_fraction,
                    )
                )
    return points


def render_perplexity_table(points: List[PerplexityPoint]) -> str:
    """Render the perplexity sweep (Tables III/IV analogue)."""
    table = TextTable(
        ["configuration", "perplexity", "seconds"],
        title="Tables III/IV — perplexity of the substitute model per precision",
        float_digits=4,
    )
    for point in points:
        table.add_row([point.label, point.perplexity, point.seconds])
    return table.render()


def render_fidelity_table(points: List[FidelityPoint]) -> str:
    """Render the softmax-fidelity sweep."""
    table = TextTable(
        ["configuration", "KL(FP || int)", "probability-mass error", "saturated rows"],
        title="Tables III/IV companion — softmax fidelity at sequence length 2048",
        float_digits=4,
    )
    for point in points:
        table.add_row(
            [
                point.precision.label(),
                point.kl_to_fp,
                point.mass_error,
                point.saturated_fraction,
            ]
        )
    return table.render()


def render_cluster_equivalence(report: ClusterEquivalenceReport) -> str:
    """Render the AP-cluster parity report."""
    verdict = "bit-identical" if report.bit_identical else "DIVERGED"
    compiled_verdict = (
        "bit-identical" if report.compiled_identical else "DIVERGED"
    )
    return (
        f"AP cluster parity ({report.batch} batch x {report.heads} heads "
        f"x {report.sequence_length} seq): {verdict} to the software "
        f"pipeline; fused {report.cluster_seconds:.3f}s vs per-head loop "
        f"{report.per_head_loop_seconds:.3f}s -> {report.fused_speedup:.1f}x "
        f"(row-by-row {report.row_by_row_seconds:.3f}s -> "
        f"{report.speedup:.1f}x); compiled engine {compiled_verdict}, "
        f"{report.compiled_seconds:.4f}s -> {report.compiled_speedup:.1f}x "
        f"over vectorized"
    )


def render_inference_speed(report: InferenceSpeedReport) -> str:
    """Render the batched-inference speed report."""
    verdict = "bit-identical" if report.bit_identical else "DIVERGED"
    return (
        f"LLM inference speed ({report.configurations} configs x "
        f"{report.segments} segments x {report.segment_length} tokens, "
        f"backend {report.backend}): batched {report.batched_seconds:.3f}s "
        f"(max_batch={report.max_batch}) vs seed per-segment loop "
        f"{report.loop_seconds:.3f}s -> {report.speedup:.1f}x, "
        f"perplexities {verdict}"
    )


def _tuple_config(kwargs: dict, *keys: str) -> dict:
    for key in keys:
        if key in kwargs:
            kwargs[key] = tuple(kwargs[key])
    return kwargs


@register("table3_4")
class PerplexityExperiment(Experiment):
    """Registry wrapper: the Tables III/IV perplexity sweep.

    ``--backend`` selects the attention-softmax execution path (any
    runtime backend name, e.g. ``integer`` or ``ap-cluster``).
    """

    title = "Tables III/IV"
    description = "perplexity of the substitute model per precision config"
    row_type = PerplexityPoint
    backend_config_key = "softmax_backend"
    supports_workers = True
    fast_config = {
        "m_values": (8,),
        "n_values": (16,),
        "include_m4": False,
        "training_steps": 40,
    }

    def run(self, config=None):
        kwargs = _tuple_config(
            self._config_kwargs(config), "m_values", "n_values", "vcorr_deltas"
        )
        return run_perplexity_sweep(**kwargs)

    def render(self, result):
        return render_perplexity_table(result)


@register("fidelity")
class FidelityExperiment(Experiment):
    """Registry wrapper: the Tables III/IV fidelity companion sweep."""

    title = "Tables III/IV"
    description = "softmax fidelity (KL, mass error, saturation) at length 2048"
    row_type = FidelityPoint
    fast_config = {
        "sequence_length": 512,
        "rows": 8,
        "m_values": (6,),
        "n_values": (8, 16),
        "vcorr_deltas": (0,),
    }

    def run(self, config=None):
        kwargs = _tuple_config(
            self._config_kwargs(config), "m_values", "n_values", "vcorr_deltas"
        )
        return run_softmax_fidelity_sweep(**kwargs)

    def render(self, result):
        return render_fidelity_table(result)


@register("cluster-parity")
class ClusterParityExperiment(Experiment):
    """Registry wrapper: AP-cluster bit-exactness + speedup report."""

    title = "Cluster"
    description = "AP-cluster parity vs software and row-by-row paths"
    row_type = ClusterEquivalenceReport
    scalar_result = True
    fast_config = {"heads": 2, "sequence_length": 32, "batch": 4}

    def run(self, config=None):
        return run_ap_cluster_equivalence(**self._config_kwargs(config))

    def render(self, result):
        return render_cluster_equivalence(result)


@register("llm-speed")
class InferenceSpeedExperiment(Experiment):
    """Registry wrapper: batched-vs-loop inference speed + parity report.

    ``--backend`` selects the replacement attention softmax both timed
    paths execute (any precision-consuming runtime backend name).
    """

    title = "Inference"
    description = "batched inference path speedup vs the per-segment loop"
    row_type = InferenceSpeedReport
    scalar_result = True
    backend_config_key = "softmax_backend"
    fast_config = {
        "m_values": (8,),
        "n_values": (16,),
        "training_steps": 40,
    }

    def run(self, config=None):
        kwargs = _tuple_config(
            self._config_kwargs(config), "m_values", "n_values", "vcorr_deltas"
        )
        return run_inference_speed(**kwargs)

    def render(self, result):
        return render_inference_speed(result)
