"""Error bounds, axis handling, saturation diagnostics and the batched
AP-backed path of :class:`~repro.softmax.integer_softmax.IntegerSoftmax`."""

import numpy as np
import pytest

from repro.quant.precision import PrecisionConfig
from repro.softmax.integer_softmax import IntegerSoftmax
from repro.softmax.metrics import max_abs_error
from repro.softmax.reference import softmax


class TestErrorBounds:
    #: Empirically safe per-M bounds on max |integer - fp| over sigma = 2
    #: logits (observed worst cases with the fixed test seed: 0.35, 0.072,
    #: 0.008 — dominated by the clipping threshold at low M); chosen with
    #: headroom so they only trip on a real accuracy regression.
    BOUNDS = {4: 0.5, 6: 0.12, 8: 0.02}

    @pytest.mark.parametrize("m", [4, 6, 8])
    def test_max_abs_error_within_bound(self, rng, m):
        scores = rng.normal(0.0, 2.0, size=(50, 64))
        integer = IntegerSoftmax(PrecisionConfig(m, 0, 16))
        error = max_abs_error(integer(scores), softmax(scores))
        assert error < self.BOUNDS[m]

    def test_error_shrinks_with_precision(self, rng):
        scores = rng.normal(0.0, 2.0, size=(20, 48))
        reference = softmax(scores)
        errors = [
            max_abs_error(IntegerSoftmax(PrecisionConfig(m, 0, 16))(scores), reference)
            for m in (4, 6, 8)
        ]
        assert errors[0] > errors[1] > errors[2]


class TestAxisHandling:
    def test_axis_zero_matches_transposed_last_axis(self, rng):
        scores = rng.normal(0.0, 1.5, size=(12, 7))
        integer = IntegerSoftmax()
        along_rows = integer(scores, axis=0)
        transposed = integer(scores.T, axis=-1).T
        assert np.array_equal(along_rows, transposed)

    def test_middle_axis_on_3d_tensor(self, rng):
        scores = rng.normal(0.0, 1.5, size=(3, 9, 4))
        integer = IntegerSoftmax()
        middle = integer(scores, axis=1)
        moved = np.moveaxis(integer(np.moveaxis(scores, 1, -1)), -1, 1)
        assert np.array_equal(middle, moved)
        assert np.allclose(middle.sum(axis=1), 1.0, atol=0.05)

    def test_result_fields_follow_axis(self, rng):
        scores = rng.normal(0.0, 1.5, size=(5, 8))
        result = IntegerSoftmax().forward(scores, axis=0)
        assert result.probabilities.shape == scores.shape
        assert result.vapprox.shape == scores.shape


class TestForwardQuantizedValidation:
    def test_rejects_positive_inputs(self):
        integer = IntegerSoftmax()
        with pytest.raises(ValueError):
            integer.forward_quantized(np.array([[-3, 1, 0]]))

    def test_rejects_float_inputs(self):
        integer = IntegerSoftmax()
        with pytest.raises(TypeError):
            integer.forward_quantized(np.array([-3.0, -1.0, 0.0]))

    def test_accepts_non_positive_integers(self):
        integer = IntegerSoftmax()
        result = integer.forward_quantized(np.array([0, -5, -20], dtype=np.int64))
        assert result.probabilities.argmax() == 0


class TestSumRegisterSaturation:
    def test_small_n_saturates_and_reports(self):
        # 2**2 = 4 full-scale terms of headroom against 256 equal maximal
        # summands: the accumulator must clamp at its limit.
        integer = IntegerSoftmax(PrecisionConfig(6, 0, 2))
        result = integer.forward_quantized(np.zeros((1, 256), dtype=np.int64))
        assert result.saturated_fraction == 1.0
        assert int(result.sum_int.ravel()[0]) == integer.sum_limit

    def test_large_n_does_not_saturate(self):
        integer = IntegerSoftmax(PrecisionConfig(6, 0, 16))
        result = integer.forward_quantized(np.zeros((1, 256), dtype=np.int64))
        assert result.saturated_fraction == 0.0
        assert int(result.sum_int.ravel()[0]) == 256 * integer.max_summand

    def test_saturation_flattens_distribution(self, rng):
        vstable = np.zeros((1, 512), dtype=np.int64)
        saturating = IntegerSoftmax(PrecisionConfig(6, 0, 4))
        exact = IntegerSoftmax(PrecisionConfig(6, 0, 16))
        sat_probs = saturating.forward_quantized(vstable).probabilities
        exact_probs = exact.forward_quantized(vstable).probabilities
        # The saturated sum underestimates the denominator, inflating every
        # probability above the exact uniform value.
        assert sat_probs.ravel()[0] > exact_probs.ravel()[0]

    def test_wrap_mode_differs_from_saturate(self):
        vstable = np.zeros((1, 512), dtype=np.int64)
        saturate = IntegerSoftmax(PrecisionConfig(6, 0, 4), sum_overflow="saturate")
        wrap = IntegerSoftmax(PrecisionConfig(6, 0, 4), sum_overflow="wrap")
        assert not np.array_equal(
            saturate.forward_quantized(vstable).sum_int,
            wrap.forward_quantized(vstable).sum_int,
        )


class TestForwardOnAp:
    def test_batched_ap_path_matches_backends(self, rng):
        scores = rng.normal(0.0, 2.0, size=(3, 12))
        integer = IntegerSoftmax()
        fast = integer.forward_on_ap(scores, backend="vectorized")
        slow = integer.forward_on_ap(scores, backend="reference")
        assert np.array_equal(fast, slow)

    def test_ap_path_close_to_software_pipeline(self, rng):
        scores = rng.normal(0.0, 2.0, size=(4, 16))
        integer = IntegerSoftmax()
        ap_probs = integer.forward_on_ap(scores)
        sw_probs = integer(scores)
        assert max_abs_error(ap_probs, sw_probs) < 0.01
        assert np.allclose(ap_probs.sum(axis=-1), 1.0, atol=0.05)

    def test_ap_path_respects_axis(self, rng):
        scores = rng.normal(0.0, 2.0, size=(10, 3))
        integer = IntegerSoftmax()
        along_rows = integer.forward_on_ap(scores, axis=0)
        transposed = integer.forward_on_ap(scores.T, axis=-1).T
        assert np.array_equal(along_rows, transposed)

    def test_scalar_input_rejected(self):
        with pytest.raises(ValueError):
            IntegerSoftmax().forward_on_ap(np.float64(1.0))
