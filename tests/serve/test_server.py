"""SoftmaxServer behaviour: coalescing, bit-identity, caps, TCP, faults.

The tests drive the asyncio server from synchronous pytest functions via
``asyncio.run`` — no plugin needed — and pin the serving contract: every
coalesced response is bit-identical to running its request alone through
the same backend.
"""

import asyncio
import json

import numpy as np
import pytest

from repro.runtime.backend import BackendSpec, resolve_backend
from repro.serve.server import ServerClosed, SoftmaxServer


def _requests():
    """Three concurrent mixed-shape requests (2-D, 1-D, ragged)."""
    rng = np.random.default_rng(42)
    return [
        (rng.standard_normal((2, 16)) * 3, None),
        (rng.standard_normal(8) * 3, None),
        (rng.standard_normal((3, 12)) * 3, np.array([4, 12, 7])),
    ]


def _standalone(spec, scores, lengths):
    """A fresh backend's standalone answer for one request."""
    result = resolve_backend(spec).run_rows(scores, valid_lengths=lengths)
    return (
        result.probabilities[0]
        if np.asarray(scores).ndim == 1
        else result.probabilities
    )


class TestCoalescing:
    SPEC = BackendSpec(name="ap-batch", num_heads=2, sequence_length=16)

    def test_concurrent_requests_coalesce_and_stay_bit_identical(self):
        async def scenario():
            async with SoftmaxServer(self.SPEC, max_wait_ms=50.0) as server:
                responses = await asyncio.gather(
                    *(
                        server.submit(scores, valid_lengths=lengths)
                        for scores, lengths in _requests()
                    )
                )
                return responses, server.stats()

        responses, stats = asyncio.run(scenario())
        # All three landed in one admission tick...
        assert {r.tick for r in responses} == {responses[0].tick}
        assert all(r.batch_requests == 3 for r in responses)
        assert all(r.batch_rows == 6 for r in responses)
        assert stats.ticks == 1 and stats.requests == 3 and stats.rows == 6
        # ...and each response is bit-identical to standalone execution.
        for (scores, lengths), response in zip(_requests(), responses):
            np.testing.assert_array_equal(
                response.probabilities,
                _standalone(self.SPEC, scores, lengths),
            )

    def test_one_dimensional_request_gets_one_dimensional_response(self):
        async def scenario():
            async with SoftmaxServer(self.SPEC, max_wait_ms=1.0) as server:
                return await server.submit(np.arange(8.0))

        response = asyncio.run(scenario())
        assert response.probabilities.ndim == 1
        assert response.result.probabilities.ndim == 1

    def test_max_batch_rows_carries_overflow_to_next_tick(self):
        async def scenario():
            async with SoftmaxServer(
                self.SPEC, max_wait_ms=20.0, max_batch_rows=4
            ) as server:
                rng = np.random.default_rng(0)
                responses = await asyncio.gather(
                    *(
                        server.submit(rng.standard_normal((2, 16)))
                        for _ in range(3)
                    )
                )
                return responses, server.stats()

        responses, stats = asyncio.run(scenario())
        assert all(r.batch_rows <= 4 for r in responses)
        assert stats.ticks >= 2  # 6 rows cannot fit one 4-row tick
        assert stats.requests == 3

    def test_per_request_telemetry_reports_queue_depth_and_occupancy(self):
        spec = BackendSpec(
            name="ap-cluster",
            num_heads=2,
            sequence_length=16,
            options={"pass_row_budget": 64},
        )

        async def scenario():
            async with SoftmaxServer(spec, max_wait_ms=50.0) as server:
                rng = np.random.default_rng(3)
                return await asyncio.gather(
                    *(
                        server.submit(rng.standard_normal((2, 16)))
                        for _ in range(3)
                    )
                )

        responses = asyncio.run(scenario())
        for response in responses:
            plan = response.result.plan
            assert plan is not None
            assert plan.queue_depth == response.batch_requests
            assert plan.row_budget == 64
            assert 0.0 < plan.occupancy <= 1.0
        # Energy shares of a tick sum to the full batch pass energy.
        by_tick = {}
        for response in responses:
            by_tick.setdefault(response.tick, []).append(response)
        for tick_responses in by_tick.values():
            shares = sum(r.result.cost.energy_j for r in tick_responses)
            assert shares > 0.0


class TestThirdPartyBackends:
    def test_run_only_protocol_backend_serves(self):
        """A backend implementing only the required protocol (no
        ``run_rows`` seam) must serve: the server falls back to ``run``."""
        from repro.runtime.backend import (
            BackendTelemetry,
            SoftmaxResult,
            rows_runner,
        )

        class HalfBackend:
            def __init__(self):
                self.spec = BackendSpec(name="float")
                self.telemetry = BackendTelemetry()

            def run(self, scores, valid_lengths=None):
                return SoftmaxResult(
                    probabilities=np.asarray(scores, dtype=np.float64) * 0.5
                )

            def softmax_fn(self):
                return lambda s: np.asarray(s) * 0.5

        backend = HalfBackend()
        assert rows_runner(backend) == backend.run

        async def scenario():
            async with SoftmaxServer(backend, max_wait_ms=50.0) as server:
                return await asyncio.gather(
                    server.submit(np.ones((2, 4))),
                    server.submit(np.full(4, 3.0)),
                )

        wide, flat = asyncio.run(scenario())
        assert wide.batch_requests == 2  # the fallback still coalesces
        np.testing.assert_array_equal(wide.probabilities, np.full((2, 4), 0.5))
        np.testing.assert_array_equal(flat.probabilities, np.full(4, 1.5))


class TestFaultIsolation:
    def test_oversized_companion_cannot_poison_the_tick(self):
        # Capacity is 16; the 64-wide request must fail while its tick
        # companion still gets a (bit-identical) response.
        spec = BackendSpec(name="ap-cluster", num_heads=2, sequence_length=16)

        async def scenario():
            async with SoftmaxServer(spec, max_wait_ms=50.0) as server:
                good_scores = np.random.default_rng(5).standard_normal((2, 16))
                good_task = asyncio.ensure_future(server.submit(good_scores))
                bad_task = asyncio.ensure_future(
                    server.submit(np.zeros((1, 64)))
                )
                results = await asyncio.gather(
                    good_task, bad_task, return_exceptions=True
                )
                return good_scores, results

        good_scores, (good, bad) = asyncio.run(scenario())
        assert isinstance(bad, ValueError)
        np.testing.assert_array_equal(
            good.probabilities, _standalone(spec, good_scores, None)
        )

    def test_malformed_request_fails_at_submission(self):
        async def scenario():
            async with SoftmaxServer("float", max_wait_ms=1.0) as server:
                with pytest.raises(ValueError, match="1..seq"):
                    await server.submit(
                        np.zeros((1, 4)), valid_lengths=[9]
                    )
                response = await server.submit(np.arange(4.0))
                return response

        response = asyncio.run(scenario())
        assert response.probabilities.shape == (4,)


class TestLifecycle:
    def test_close_fails_pending_requests(self):
        async def scenario():
            server = SoftmaxServer("float", max_wait_ms=10_000.0)
            await server.start()
            pending = asyncio.ensure_future(server.submit(np.arange(4.0)))
            await asyncio.sleep(0.05)  # let it reach the admission backlog
            await server.close()
            with pytest.raises(ServerClosed):
                await pending

        asyncio.run(scenario())

    def test_submit_after_close_raises(self):
        async def scenario():
            server = SoftmaxServer("float")
            await server.start()
            await server.close()
            with pytest.raises(ServerClosed):
                await server.submit(np.arange(4.0))

        asyncio.run(scenario())

    def test_start_is_idempotent(self):
        async def scenario():
            async with SoftmaxServer("float", max_wait_ms=1.0) as server:
                await server.start()
                await server.start()
                response = await server.submit(np.arange(4.0))
                return response

        assert asyncio.run(scenario()).probabilities.shape == (4,)

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError, match="max_wait_ms"):
            SoftmaxServer("float", max_wait_ms=-1.0)
        with pytest.raises(ValueError, match="max_batch_rows"):
            SoftmaxServer("float", max_batch_rows=0)


class TestTcpFrontEnd:
    def test_json_round_trip_and_error_reporting(self):
        spec = BackendSpec(name="ap-batch", num_heads=2, sequence_length=16)
        scores = np.random.default_rng(11).standard_normal((2, 12)) * 3
        lengths = [5, 12]

        async def scenario():
            async with SoftmaxServer(spec, max_wait_ms=5.0) as server:
                tcp = await server.serve_tcp(port=0)
                host, port = tcp.sockets[0].getsockname()[:2]
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(
                    json.dumps(
                        {
                            "id": 1,
                            "scores": scores.tolist(),
                            "valid_lengths": lengths,
                        }
                    ).encode()
                    + b"\n"
                )
                writer.write(json.dumps({"id": 2}).encode() + b"\n")
                await writer.drain()
                replies = {}
                for _ in range(2):
                    line = await reader.readline()
                    reply = json.loads(line)
                    replies[reply["id"]] = reply
                writer.close()
                await writer.wait_closed()
                tcp.close()
                await tcp.wait_closed()
                return replies

        replies = asyncio.run(scenario())
        served = np.asarray(replies[1]["probabilities"])
        # JSON list round trip preserves every float64 bit exactly.
        np.testing.assert_array_equal(
            served, _standalone(spec, scores, np.asarray(lengths))
        )
        assert replies[1]["batch_requests"] >= 1
        assert replies[1]["queue_wait_ms"] >= 0.0
        assert "error" in replies[2]  # no "scores" field
