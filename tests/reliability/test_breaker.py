"""Circuit-breaker state machine and the engine-fallback chain."""

import pytest

from repro.reliability.breaker import (
    BreakerTransition,
    CircuitBreaker,
    EngineFallbackChain,
)


class TestCircuitBreaker:
    def test_validation(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError, match="probe_interval"):
            CircuitBreaker(probe_interval=0)
        with pytest.raises(ValueError, match="max_probes"):
            CircuitBreaker(max_probes=0)

    def test_consecutive_failures_trip_the_breaker(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"

    def test_success_resets_the_consecutive_counter(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"  # never two in a row

    def _trip(self, **kwargs):
        breaker = CircuitBreaker(failure_threshold=1, **kwargs)
        breaker.record_failure()
        assert breaker.state == "open"
        return breaker

    def test_probe_after_interval_then_recovery(self):
        breaker = self._trip(probe_interval=2)
        assert not breaker.should_probe()  # countdown not elapsed
        breaker.note_bypass()
        breaker.note_bypass()
        assert breaker.should_probe()
        assert breaker.state == "half-open"
        assert not breaker.should_probe()  # exactly one probe slot
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.probes == 0  # recovery clears the probe count

    def test_probe_failure_reopens_and_rearms(self):
        breaker = self._trip(probe_interval=1)
        breaker.note_bypass()
        assert breaker.should_probe()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.should_probe()  # countdown restarted
        breaker.note_bypass()
        assert breaker.should_probe()

    def test_max_probes_makes_the_open_state_permanent(self):
        breaker = self._trip(probe_interval=1, max_probes=2)
        for _ in range(2):
            breaker.note_bypass()
            assert breaker.should_probe()
            breaker.record_failure()
        assert breaker.exhausted
        breaker.note_bypass()
        assert not breaker.should_probe()  # budget spent: degraded forever

    def test_abort_probe_refunds_the_slot(self):
        breaker = self._trip(probe_interval=3)
        for _ in range(3):
            breaker.note_bypass()
        assert breaker.should_probe()
        breaker.abort_probe()
        assert breaker.state == "open"
        assert breaker.probes == 0  # the trial never reached a verdict
        assert breaker.should_probe()  # countdown left ripe


class TestEngineFallbackChain:
    def _chain(self, **kwargs):
        kwargs.setdefault("failure_threshold", 2)
        kwargs.setdefault("probe_interval", 2)
        return EngineFallbackChain(
            ("compiled", "vectorized", "reference"), **kwargs
        )

    def test_validation(self):
        with pytest.raises(ValueError, match="empty"):
            EngineFallbackChain(())
        with pytest.raises(ValueError, match="duplicates"):
            EngineFallbackChain(("compiled", "compiled"))

    def _degrade(self, chain):
        for _ in range(chain.breaker("compiled").failure_threshold):
            engine, probe = chain.next_call()
            assert (engine, probe) == ("compiled", False)
            chain.on_failure(engine, probe)

    def test_tripping_the_primary_degrades_one_level(self):
        chain = self._chain()
        self._degrade(chain)
        assert chain.current_engine == "vectorized"
        assert chain.degrades == 1 and chain.recoveries == 0
        assert chain.state_of("compiled") == "open"
        assert str(chain.transitions[0]).startswith("compiled->vectorized@")

    def test_successes_below_schedule_a_probe_then_recover(self):
        chain = self._chain()
        self._degrade(chain)
        # Two successes on the degraded engine ripen the probe countdown.
        for _ in range(2):
            engine, probe = chain.next_call()
            assert (engine, probe) == ("vectorized", False)
            chain.on_success(engine, probe)
        engine, probe = chain.next_call()
        assert (engine, probe) == ("compiled", True)
        chain.on_success(engine, probe)
        assert chain.current_engine == "compiled"
        assert chain.recoveries == 1
        assert str(chain.transitions[-1]).startswith("vectorized=>compiled@")

    def test_failed_probe_stays_degraded(self):
        chain = self._chain()
        self._degrade(chain)
        for _ in range(2):
            engine, probe = chain.next_call()
            chain.on_success(engine, probe)
        engine, probe = chain.next_call()
        assert (engine, probe) == ("compiled", True)
        chain.on_failure(engine, probe)
        assert chain.current_engine == "vectorized"
        assert chain.recoveries == 0
        assert chain.state_of("compiled") == "open"

    def test_double_degrade_reaches_the_floor(self):
        chain = self._chain()
        self._degrade(chain)
        for _ in range(2):
            engine, probe = chain.next_call()
            if probe:  # a due compiled probe also fails during the outage
                chain.on_failure(engine, probe)
                engine, probe = chain.next_call()
            assert engine == "vectorized"
            chain.on_failure(engine, probe)
        assert chain.current_engine == "reference"
        assert chain.degrades == 2
        # The floor has no level below it: failures there cannot degrade.
        for _ in range(4):
            engine, probe = chain.next_call()
            if not probe:
                chain.on_failure(engine, probe)
        assert chain.current_engine == "reference"

    def test_abort_probe_keeps_the_chain_degraded(self):
        chain = self._chain()
        self._degrade(chain)
        for _ in range(2):
            chain.on_success("vectorized", False)
        engine, probe = chain.next_call()
        assert (engine, probe) == ("compiled", True)
        chain.abort_probe(engine)  # client error: no verdict on the engine
        assert chain.current_engine == "vectorized"
        assert chain.breaker("compiled").probes == 0

    def test_max_probes_permanent_degrade(self):
        chain = self._chain(probe_interval=1, max_probes=1)
        self._degrade(chain)
        chain.on_success("vectorized", False)
        engine, probe = chain.next_call()
        assert (engine, probe) == ("compiled", True)
        chain.on_failure(engine, probe)
        assert chain.breaker("compiled").exhausted
        for _ in range(4):
            engine, probe = chain.next_call()
            assert (engine, probe) == ("vectorized", False)
            chain.on_success(engine, probe)

    def test_transition_render(self):
        degrade = BreakerTransition("degrade", "compiled", "vectorized", 9)
        recover = BreakerTransition("recover", "vectorized", "compiled", 15)
        assert str(degrade) == "compiled->vectorized@9"
        assert str(recover) == "vectorized=>compiled@15"
