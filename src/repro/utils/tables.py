"""Plain-text table rendering for the experiment harness.

Every experiment in :mod:`repro.experiments` ends by printing a table whose
rows mirror a table or figure series in the paper.  ``TextTable`` renders a
list of rows into an aligned, pipe-separated table that is readable both in
a terminal and when pasted into a Markdown document (EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence

__all__ = ["TextTable", "format_float"]


def format_float(value: float, digits: int = 3) -> str:
    """Format a float compactly: fixed-point for moderate magnitudes,
    scientific notation for very large/small values."""
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1e5 or magnitude < 10 ** (-digits):
        return f"{value:.{digits}e}"
    return f"{value:.{digits}f}".rstrip("0").rstrip(".")


class TextTable:
    """An aligned plain-text table builder.

    Parameters
    ----------
    headers:
        Column titles.
    title:
        Optional caption printed above the table.
    float_digits:
        Number of significant digits used when a cell is a float.
    """

    def __init__(
        self,
        headers: Sequence[str],
        title: Optional[str] = None,
        float_digits: int = 3,
    ) -> None:
        self.headers: List[str] = [str(h) for h in headers]
        self.title = title
        self.float_digits = float_digits
        self._rows: List[List[str]] = []

    def add_row(self, cells: Iterable[Any]) -> None:
        """Append a row; cells are formatted via :func:`format_float` when
        they are floats and ``str`` otherwise."""
        formatted = []
        for cell in cells:
            if isinstance(cell, bool):
                formatted.append(str(cell))
            elif isinstance(cell, float):
                formatted.append(format_float(cell, self.float_digits))
            else:
                formatted.append(str(cell))
        if len(formatted) != len(self.headers):
            raise ValueError(
                f"row has {len(formatted)} cells, expected {len(self.headers)}"
            )
        self._rows.append(formatted)

    def add_rows(self, rows: Iterable[Iterable[Any]]) -> None:
        """Append several rows at once."""
        for row in rows:
            self.add_row(row)

    @property
    def rows(self) -> List[List[str]]:
        """The formatted rows added so far."""
        return [list(row) for row in self._rows]

    def render(self) -> str:
        """Render the table to an aligned pipe-separated string."""
        widths = [len(h) for h in self.headers]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def render_line(cells: Sequence[str]) -> str:
            padded = [cell.ljust(widths[i]) for i, cell in enumerate(cells)]
            return "| " + " | ".join(padded) + " |"

        separator = "|-" + "-|-".join("-" * w for w in widths) + "-|"
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(render_line(self.headers))
        lines.append(separator)
        lines.extend(render_line(row) for row in self._rows)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience alias
        return self.render()
