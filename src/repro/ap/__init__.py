"""Associative Processor (AP) substrate.

The AP is the paper's custom hardware: a Content Addressable Memory (CAM)
of SRAM cells plus key/mask/tag registers and a controller that realises
arithmetic by sweeping Look-Up-Table (LUT) passes of *compare* and *write*
cycles over the stored words — bit-serial across bit positions, word-parallel
across rows (Fig. 3).  A two-dimensional AP additionally operates across
rows, which makes reductions cheap (Section II-B).

This package provides two complementary models:

* a **functional simulator** (:mod:`repro.ap.cam`, :mod:`repro.ap.lut`,
  :mod:`repro.ap.processor`, :mod:`repro.ap.processor2d`) that executes real
  compare/write passes on a bit-level CAM and therefore *computes* correct
  results while counting cycles — used to validate the SoftmAP mapping;
* an **analytical cost model** (:mod:`repro.ap.cost`, :mod:`repro.ap.tech`)
  implementing the Table II runtime formulas and the 16 nm energy/area
  parameters used for the hardware characterization (Figs. 6-8,
  Tables V-VI).
"""

from repro.ap.cam import CamArray, CamStats
from repro.ap.lut import (
    LutPass,
    Lut,
    XOR_LUT,
    AND_LUT,
    OR_LUT,
    NOT_LUT,
    ADD_LUT,
    SUB_LUT,
    COPY_LUT,
)
from repro.ap.fields import Field, FieldAllocator
from repro.ap.processor import AssociativeProcessor
from repro.ap.processor2d import AssociativeProcessor2D
from repro.ap.tech import TechnologyParameters, TECH_16NM
from repro.ap.cost import ApCostModel, OperationCost

__all__ = [
    "CamArray",
    "CamStats",
    "LutPass",
    "Lut",
    "XOR_LUT",
    "AND_LUT",
    "OR_LUT",
    "NOT_LUT",
    "ADD_LUT",
    "SUB_LUT",
    "COPY_LUT",
    "Field",
    "FieldAllocator",
    "AssociativeProcessor",
    "AssociativeProcessor2D",
    "TechnologyParameters",
    "TECH_16NM",
    "ApCostModel",
    "OperationCost",
]
