"""Benchmark regenerating Table VI — comparison with ConSmax / Softermax."""

from repro.experiments import render_table6, run_table6


def test_table6_related_works(benchmark):
    entries = benchmark(run_table6)
    print()
    print(render_table6(entries))
    softmap = entries[-1]
    assert softmap.energy_per_op_pj < min(e.energy_per_op_pj for e in entries[:-1])
