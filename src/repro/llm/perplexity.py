"""Perplexity evaluation with a pluggable attention softmax.

The paper's protocol (Section IV): concatenate the validation set, split it
into non-overlapping segments of the model's context width, feed each
segment to the model, and report the exponentiated average next-token
negative log-likelihood.  :func:`evaluate_perplexity` follows that protocol
on the synthetic corpus.

Since the fast inference path (:mod:`repro.llm.infer`) landed, the
evaluation runs **batched** by default: every non-overlapping segment is
evaluated in one (or a few, when ``max_batch`` caps the batch) graph-free
``model.infer`` calls instead of a per-segment Python loop over the
autograd forward.  Each decoder layer then issues a single head-major
``(h*B*T, T)`` replacement-softmax call covering all segments — row
``h*(B*T) + b*T + i`` is query row ``i`` of segment ``b`` of head ``h``;
see :func:`~repro.llm.model.causal_batched_softmax`, the layout authority
— which is the row space the fused AP-cluster plan shards in one pass.
The result is
bit-identical to the seed per-segment loop — kept reachable via
``inference_path="loop"`` and pinned by ``tests/llm/test_infer.py``.

The replacement attention softmax is selected through the unified runtime
API: pass ``backend=`` a name ("integer", "ap-cluster", ...), a
:class:`~repro.runtime.backend.BackendSpec`, or a resolved
:class:`~repro.runtime.backend.SoftmaxBackend` — the model's head count and
context width are filled in automatically.  The older ``softmax_fn``
argument (a raw callable) remains supported, and
:func:`integer_softmax_fn` / :func:`ap_cluster_softmax_fn` are kept as
*deprecated* thin shims over
:func:`~repro.runtime.backend.resolve_backend` for existing callers (they
emit :class:`DeprecationWarning`).
"""

from __future__ import annotations

import warnings
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.ap.engine import canonical_engine_name
from repro.llm.model import SoftmaxFn, TinyLlamaModel
from repro.nn.autograd import no_grad
from repro.nn.functional import log_softmax_forward
from repro.quant.precision import PrecisionConfig
from repro.runtime.backend import (
    BackendSpec,
    SoftmaxBackend,
    resolve_backend,
    resolve_model_backend,
)
from repro.utils.validation import check_in_choices, check_positive_int

__all__ = [
    "evaluate_perplexity",
    "integer_softmax_fn",
    "ap_cluster_softmax_fn",
    "INFERENCE_PATHS",
]

#: Anything :func:`evaluate_perplexity`'s ``backend`` argument accepts.
BackendLike = Union[str, BackendSpec, SoftmaxBackend]

#: Execution paths of :func:`evaluate_perplexity`: ``"batched"`` — the
#: graph-free ``model.infer`` fast path (default); ``"loop"`` — the seed
#: per-segment autograd-forward loop, kept as the parity baseline.
INFERENCE_PATHS: Tuple[str, ...] = ("batched", "loop")


def integer_softmax_fn(
    precision: PrecisionConfig, batched: bool = False, **kwargs
) -> SoftmaxFn:
    """Deprecated shim: a software integer-softmax callable.

    Equivalent to ``resolve_backend("integer", precision=precision,
    options=kwargs).softmax_fn()``; with ``batched=False`` the returned
    callable follows the original row-by-row contract (no
    ``supports_batch`` attribute), producing bit-identical results.
    Prefer ``evaluate_perplexity(..., backend="integer")`` or
    :func:`~repro.runtime.backend.resolve_backend` directly.
    """
    warnings.warn(
        "integer_softmax_fn is deprecated; use "
        "evaluate_perplexity(..., backend='integer') or "
        "resolve_backend('integer', ...).softmax_fn() instead",
        DeprecationWarning,
        stacklevel=2,
    )
    backend = resolve_backend("integer", precision=precision, options=kwargs)
    if batched:
        return backend.softmax_fn()

    def apply(scores: np.ndarray) -> np.ndarray:
        return backend.run(scores).probabilities

    return apply


def ap_cluster_softmax_fn(
    num_heads: int,
    precision: PrecisionConfig,
    sequence_length: int,
    backend: str = "vectorized",
    **kwargs,
) -> SoftmaxFn:
    """Deprecated shim: an attention softmax on the functional AP cluster.

    Equivalent to ``resolve_backend("ap-cluster", num_heads=...,
    precision=..., sequence_length=..., engine=backend,
    options=kwargs).softmax_fn()`` — the cluster executes every layer's
    head-major score matrix as one fused compiled-plan pass, bit-identical
    to the historical per-head loop and to the software pipeline with
    ``barrett_correction=False`` while the sum accumulator does not
    saturate.  ``backend`` names the functional engine and is validated
    eagerly with a "did you mean" suggestion.  Prefer
    ``evaluate_perplexity(..., backend="ap-cluster")``.
    """
    warnings.warn(
        "ap_cluster_softmax_fn is deprecated; use "
        "evaluate_perplexity(..., backend='ap-cluster') or "
        "resolve_backend('ap-cluster', ...).softmax_fn() instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return resolve_backend(
        "ap-cluster",
        num_heads=num_heads,
        precision=precision,
        sequence_length=sequence_length,
        engine=canonical_engine_name(backend),
        options=kwargs,
    ).softmax_fn()


def _evaluation_segments(
    tokens: np.ndarray, segment_length: int
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """The paper-protocol ``(inputs, targets)`` pairs, in stream order."""
    segments: List[Tuple[np.ndarray, np.ndarray]] = []
    for start in range(0, tokens.shape[0] - 1, segment_length):
        segment = tokens[start : start + segment_length + 1]
        if segment.shape[0] < 2:
            break
        segments.append((segment[:-1], segment[1:]))
    return segments


def _batched_log_likelihood(
    model: TinyLlamaModel,
    segments: List[Tuple[np.ndarray, np.ndarray]],
    softmax_fn: Optional[SoftmaxFn],
    max_batch: Optional[int],
) -> Tuple[float, int]:
    """Total log-likelihood over ``segments`` via the batched infer path.

    Segments are batched together (``max_batch`` per ``model.infer`` call;
    a ragged tail rides along via ``valid_lengths``, which ``infer``
    evaluates at its natural width) and the per-segment sums are then
    accumulated in stream order, so the floating-point accumulation — and
    therefore the perplexity — is bit-identical to the seed loop.
    """
    total_log_likelihood = 0.0
    total_predictions = 0
    step = max_batch or len(segments)
    for chunk_start in range(0, len(segments), step):
        chunk = segments[chunk_start : chunk_start + step]
        lengths = np.array([inputs.shape[0] for inputs, _ in chunk], dtype=np.int64)
        width = int(lengths.max())
        batch_tokens = np.zeros((len(chunk), width), dtype=np.int64)
        for row, (inputs, _) in enumerate(chunk):
            batch_tokens[row, : inputs.shape[0]] = inputs
        ragged = bool(np.any(lengths < width))
        logits = model.infer(
            batch_tokens,
            valid_lengths=lengths if ragged else None,
            softmax_fn=softmax_fn,
        )
        log_probs = log_softmax_forward(logits)
        for row, (inputs, targets) in enumerate(chunk):
            t = targets.shape[0]
            total_log_likelihood += float(
                np.sum(log_probs[row, np.arange(t), targets])
            )
            total_predictions += int(t)
    return total_log_likelihood, total_predictions


def evaluate_perplexity(
    model: TinyLlamaModel,
    tokens: np.ndarray,
    segment_length: Optional[int] = None,
    softmax_fn: Optional[SoftmaxFn] = None,
    backend: Optional[BackendLike] = None,
    inference_path: str = "batched",
    max_batch: Optional[int] = None,
) -> float:
    """Perplexity of ``model`` on ``tokens`` following the paper's protocol.

    Parameters
    ----------
    model:
        The (trained) language model.
    tokens:
        Validation token ids (1-D).
    segment_length:
        Width of the non-overlapping evaluation segments; defaults to the
        model's full context (the paper uses the models' 2048-token context).
    softmax_fn:
        Optional replacement attention softmax as a raw callable (the
        legacy entry point; see :func:`integer_softmax_fn`).
    backend:
        Optional replacement attention softmax as a runtime backend — a
        name ("float", "integer", "ap", "ap-batch", "ap-cluster",
        "gpu-analytical"), a :class:`~repro.runtime.backend.BackendSpec`,
        or a resolved backend instance.  Mutually exclusive with
        ``softmax_fn``.  Pass a resolved instance to read its accumulated
        cost telemetry afterwards.  The AP-family backends execute through
        the compiled-plan layer — every layer's attention softmax is one
        fused wide pass, and each ``SoftmaxResult`` carries its
        :class:`~repro.mapping.plan.PlanTelemetry`.
    inference_path:
        ``"batched"`` (default) evaluates all segments through the
        graph-free :meth:`~repro.llm.model.TinyLlamaModel.infer` fast path
        — one forward call per ``max_batch`` segments, one replacement-
        softmax call per layer per batch; ``"loop"`` is the seed
        per-segment autograd-forward loop.  The two are bit-identical
        (same floats, not approximately) for every backend; note a
        resolved backend's telemetry counts fewer, wider ``run()`` calls
        on the batched path (plus the causal rows of any padded ragged
        tail).
    max_batch:
        Optional cap on the segments per batched forward call (``None``
        evaluates all segments in one call).  Ignored by the loop path.
    """
    # Cheap argument checks first: a typo'd path must not pay for backend
    # construction (an ap-cluster spec builds one AP per head).
    check_in_choices(inference_path, INFERENCE_PATHS, "inference_path")
    if max_batch is not None:
        check_positive_int(max_batch, "max_batch")
    if backend is not None:
        if softmax_fn is not None:
            raise ValueError("pass either softmax_fn or backend, not both")
        softmax_fn = resolve_model_backend(
            backend, model.config.num_heads, model.config.max_context
        ).softmax_fn()
    tokens = np.asarray(tokens, dtype=np.int64)
    if segment_length is None:
        segment_length = model.config.max_context
    check_positive_int(segment_length, "segment_length")
    segment_length = min(segment_length, model.config.max_context)
    if tokens.shape[0] < 2:
        raise ValueError("need at least two tokens to evaluate perplexity")

    segments = _evaluation_segments(tokens, segment_length)
    total_log_likelihood = 0.0
    total_predictions = 0
    with no_grad():
        if inference_path == "batched":
            total_log_likelihood, total_predictions = _batched_log_likelihood(
                model, segments, softmax_fn, max_batch
            )
        else:
            for inputs, targets in segments:
                logits = model.forward(inputs, softmax_fn=softmax_fn).numpy()
                log_probs = log_softmax_forward(logits)
                total_log_likelihood += float(
                    np.sum(log_probs[np.arange(targets.shape[0]), targets])
                )
                total_predictions += int(targets.shape[0])
    if total_predictions == 0:
        raise ValueError("no predictions were made; check the token stream length")
    return float(np.exp(-total_log_likelihood / total_predictions))
