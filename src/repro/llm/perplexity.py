"""Perplexity evaluation with a pluggable attention softmax.

The paper's protocol (Section IV): concatenate the validation set, split it
into non-overlapping segments of the model's context width, feed each
segment to the model, and report the exponentiated average next-token
negative log-likelihood.  :func:`evaluate_perplexity` follows that protocol
on the synthetic corpus; the ``softmax_fn`` argument selects between the
floating-point attention softmax (``None``) and any replacement such as
:class:`~repro.softmax.integer_softmax.IntegerSoftmax`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.llm.model import SoftmaxFn, TinyLlamaModel
from repro.nn.autograd import no_grad
from repro.quant.precision import PrecisionConfig
from repro.softmax.integer_softmax import IntegerSoftmax
from repro.utils.validation import check_positive_int

__all__ = ["evaluate_perplexity", "integer_softmax_fn"]


def integer_softmax_fn(precision: PrecisionConfig, **kwargs) -> SoftmaxFn:
    """Build a replacement softmax callable from a precision configuration.

    The returned callable maps one score vector to probabilities using the
    integer-only pipeline, exactly as the per-head AP would.
    """
    integer_softmax = IntegerSoftmax(precision=precision, **kwargs)

    def apply(scores: np.ndarray) -> np.ndarray:
        return integer_softmax(np.asarray(scores, dtype=np.float64))

    return apply


def evaluate_perplexity(
    model: TinyLlamaModel,
    tokens: np.ndarray,
    segment_length: Optional[int] = None,
    softmax_fn: Optional[SoftmaxFn] = None,
) -> float:
    """Perplexity of ``model`` on ``tokens`` following the paper's protocol.

    Parameters
    ----------
    model:
        The (trained) language model.
    tokens:
        Validation token ids (1-D).
    segment_length:
        Width of the non-overlapping evaluation segments; defaults to the
        model's full context (the paper uses the models' 2048-token context).
    softmax_fn:
        Optional replacement attention softmax (see
        :func:`integer_softmax_fn`).
    """
    tokens = np.asarray(tokens, dtype=np.int64)
    if segment_length is None:
        segment_length = model.config.max_context
    check_positive_int(segment_length, "segment_length")
    segment_length = min(segment_length, model.config.max_context)
    if tokens.shape[0] < 2:
        raise ValueError("need at least two tokens to evaluate perplexity")

    total_log_likelihood = 0.0
    total_predictions = 0
    with no_grad():
        for start in range(0, tokens.shape[0] - 1, segment_length):
            segment = tokens[start : start + segment_length + 1]
            if segment.shape[0] < 2:
                break
            logits = model.forward(segment[:-1], softmax_fn=softmax_fn).numpy()
            shifted = logits - np.max(logits, axis=-1, keepdims=True)
            log_probs = shifted - np.log(np.sum(np.exp(shifted), axis=-1, keepdims=True))
            targets = segment[1:]
            total_log_likelihood += float(
                np.sum(log_probs[np.arange(targets.shape[0]), targets])
            )
            total_predictions += int(targets.shape[0])
    if total_predictions == 0:
        raise ValueError("no predictions were made; check the token stream length")
    return float(np.exp(-total_log_likelihood / total_predictions))
