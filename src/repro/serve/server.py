"""Softmax-as-a-service: the asyncio request server with continuous batching.

:class:`SoftmaxServer` accepts concurrent softmax requests (``submit``
coroutines, or newline-delimited JSON over TCP via :meth:`serve_tcp`) and
serves them through **one** backend pass per scheduling tick: an admission
loop coalesces everything queued — within a ``max_wait_ms`` latency budget
and a ``max_batch_rows`` admission cap — into a single fused head-major
row space (:mod:`repro.serve.batching`), executes it through the backend's
``run_rows`` seam (for ``ap-cluster`` that is the planner's
``pass_row_budget`` tiling and two-stage pipeline schedule), and resolves
each request's future from its slice of the batch result.

Continuous batching falls out of the loop structure: while tick ``k``
executes on the worker thread, the event loop keeps accepting submissions,
so tick ``k + 1`` forms from everything that arrived in the meantime — the
batch composition adapts to the instantaneous load with no fixed batch
boundary.

Bit-identity is the serving contract: every response is **bit-identical**
to running its request alone through the same backend (pinned by
``tests/serve`` and ``benchmarks/test_serve_load.py``), because each
vector's lowered program is independent of its row-space neighbours and
masked ragged execution matches un-padded execution exactly.

Per-request telemetry rides on the uniform
:class:`~repro.runtime.backend.SoftmaxResult` shape: each response carries
its slice of the probabilities, its energy share of the batch pass, the
pass latency, and the batch's :class:`~repro.mapping.plan.PlanTelemetry`
annotated with the tick's ``queue_depth``.
"""

from __future__ import annotations

import asyncio
import json
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Any, Deque, List, Optional, Set, Tuple, Union

import numpy as np

from repro.runtime.backend import (
    BackendCost,
    BackendSpec,
    SoftmaxBackend,
    SoftmaxResult,
    resolve_backend,
    rows_runner,
)
from repro.serve.batching import as_request_matrix, coalesce, split, take_admissible
from repro.utils.validation import check_positive_int

__all__ = ["ServeResponse", "ServerClosed", "ServerStats", "SoftmaxServer"]


class ServerClosed(RuntimeError):
    """Raised by ``submit`` when the server is (or gets) shut down."""


@dataclass(frozen=True)
class ServeResponse:
    """One served request: probabilities plus serving-side telemetry.

    ``result`` is the per-request :class:`SoftmaxResult` view of the batch
    pass (sliced probabilities, pass latency, energy share, the batch's
    plan telemetry with ``queue_depth`` set); ``queue_wait_s`` the time the
    request sat queued before its tick executed; ``batch_requests`` /
    ``batch_rows`` the composition of the coalesced tick that served it.
    """

    probabilities: np.ndarray
    result: SoftmaxResult
    queue_wait_s: float
    batch_requests: int
    batch_rows: int
    tick: int


@dataclass(frozen=True)
class ServerStats:
    """Aggregate admission-loop counters since the server started."""

    ticks: int
    requests: int
    rows: int
    max_queue_depth: int

    @property
    def mean_batch_requests(self) -> float:
        """Mean coalesced requests per scheduling tick."""
        return self.requests / self.ticks if self.ticks else 0.0

    @property
    def mean_batch_rows(self) -> float:
        """Mean fused row-space height per scheduling tick."""
        return self.rows / self.ticks if self.ticks else 0.0


class _Pending:
    """One queued request: normalised payload + the future to resolve."""

    __slots__ = ("scores", "lengths", "squeeze", "future", "enqueued")

    def __init__(self, scores, lengths, squeeze, future, enqueued) -> None:
        self.scores = scores
        self.lengths = lengths
        self.squeeze = squeeze  # 1-D request: give the response back 1-D
        self.future = future
        self.enqueued = enqueued

    @property
    def rows(self) -> int:
        return self.scores.shape[0]


class SoftmaxServer:
    """Asyncio softmax server with continuous-batching admission.

    Parameters
    ----------
    backend:
        Anything :func:`~repro.runtime.backend.resolve_backend` accepts —
        a backend name, a :class:`BackendSpec`, or a built backend
        instance.  The coalesced ticks execute through the backend's
        ``run_rows`` seam, so every runtime backend (including
        ``ap-cluster``, whose row spaces the planner tiles against the
        cluster's ``pass_row_budget``) can serve.
    max_wait_ms:
        Admission latency budget: once a tick has its first request it
        waits at most this long for companions before executing.  Under
        saturation the wait never triggers — the queue is already
        non-empty when a tick forms.
    max_batch_rows:
        Admission cap on the fused row space's height (whole requests
        only; an oversized request becomes a tick of its own and the
        planner tiles it).  ``None`` admits everything queued.
    """

    def __init__(
        self,
        backend: Union[str, BackendSpec, SoftmaxBackend],
        *,
        max_wait_ms: float = 2.0,
        max_batch_rows: Optional[int] = None,
    ) -> None:
        self.backend = resolve_backend(backend)
        self._run_rows = rows_runner(self.backend)
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        self.max_wait_ms = max_wait_ms
        if max_batch_rows is not None:
            check_positive_int(max_batch_rows, "max_batch_rows")
        self.max_batch_rows = max_batch_rows
        self._queue: Optional[asyncio.Queue] = None
        self._backlog: Deque[_Pending] = deque()
        self._admission_task: Optional[asyncio.Task] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._closed = False
        self._ticks = 0
        self._requests = 0
        self._rows = 0
        self._max_queue_depth = 0

    # ------------------------------------------------------------------ #
    # Lifecycle                                                            #
    # ------------------------------------------------------------------ #
    async def start(self) -> "SoftmaxServer":
        """Start the admission loop (idempotent; ``submit`` auto-starts)."""
        if self._closed:
            raise ServerClosed("server is closed")
        if self._admission_task is None:
            self._queue = asyncio.Queue()
            self._executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-serve"
            )
            self._admission_task = asyncio.get_running_loop().create_task(
                self._admission_loop()
            )
        return self

    async def close(self) -> None:
        """Stop admitting, fail queued requests, and release the worker."""
        if self._closed:
            return
        self._closed = True
        if self._admission_task is not None:
            self._admission_task.cancel()
            try:
                await self._admission_task
            except asyncio.CancelledError:
                pass
            self._admission_task = None
        abandoned = list(self._backlog)
        self._backlog.clear()
        if self._queue is not None:
            while not self._queue.empty():
                abandoned.append(self._queue.get_nowait())
            self._queue = None
        for pending in abandoned:
            if not pending.future.done():
                pending.future.set_exception(
                    ServerClosed("server closed before the request ran")
                )
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    async def __aenter__(self) -> "SoftmaxServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    def stats(self) -> ServerStats:
        return ServerStats(
            ticks=self._ticks,
            requests=self._requests,
            rows=self._rows,
            max_queue_depth=self._max_queue_depth,
        )

    # ------------------------------------------------------------------ #
    # Submission                                                           #
    # ------------------------------------------------------------------ #
    async def submit(
        self,
        scores: np.ndarray,
        valid_lengths: Optional[np.ndarray] = None,
    ) -> ServeResponse:
        """Submit one request and await its served response.

        Shape validation happens here, eagerly — a malformed request
        raises at the call site instead of poisoning a coalesced batch.
        """
        if self._closed:
            raise ServerClosed("server is closed")
        squeeze = np.asarray(scores).ndim == 1
        matrix, lengths = as_request_matrix(scores, valid_lengths)
        await self.start()
        loop = asyncio.get_running_loop()
        pending = _Pending(matrix, lengths, squeeze, loop.create_future(), loop.time())
        assert self._queue is not None
        self._queue.put_nowait(pending)
        return await pending.future

    # ------------------------------------------------------------------ #
    # Admission loop                                                       #
    # ------------------------------------------------------------------ #
    async def _admission_loop(self) -> None:
        loop = asyncio.get_running_loop()
        queue = self._queue
        assert queue is not None
        while True:
            if not self._backlog:
                self._backlog.append(await queue.get())
            await self._gather_companions(loop, queue)
            admitted = take_admissible(
                [p.rows for p in self._backlog], self.max_batch_rows
            )
            batch = [self._backlog.popleft() for _ in range(admitted)]
            tick_start = loop.time()
            self._ticks += 1
            self._requests += len(batch)
            self._rows += sum(p.rows for p in batch)
            self._max_queue_depth = max(self._max_queue_depth, len(batch))
            try:
                outcomes = await loop.run_in_executor(
                    self._executor, self._execute_batch, batch, tick_start
                )
            except Exception as error:  # noqa: BLE001 — fail the whole tick
                for pending in batch:
                    if not pending.future.done():
                        pending.future.set_exception(error)
                continue
            for pending, outcome in zip(batch, outcomes):
                if pending.future.done():
                    continue
                if isinstance(outcome, Exception):
                    pending.future.set_exception(outcome)
                else:
                    pending.future.set_result(outcome)

    async def _gather_companions(self, loop, queue) -> None:
        """Fill the backlog until the admission cap or latency budget hits.

        Everything already queued is drained without waiting (the
        continuous-batching fast path under load); only a tick that is
        still below the cap keeps waiting, up to ``max_wait_ms`` past its
        first request.
        """
        deadline = loop.time() + self.max_wait_ms / 1000.0
        while True:
            rows = sum(p.rows for p in self._backlog)
            if self.max_batch_rows is not None and rows >= self.max_batch_rows:
                return
            try:
                self._backlog.append(queue.get_nowait())
                continue
            except asyncio.QueueEmpty:
                pass
            remaining = deadline - loop.time()
            if remaining <= 0:
                return
            try:
                self._backlog.append(
                    await asyncio.wait_for(queue.get(), remaining)
                )
            except asyncio.TimeoutError:
                return

    # ------------------------------------------------------------------ #
    # Batch execution (worker thread)                                      #
    # ------------------------------------------------------------------ #
    def _execute_batch(
        self, batch: List[_Pending], tick_start: float
    ) -> List[Union[ServeResponse, Exception]]:
        """Run one coalesced tick; on failure, isolate the offender.

        A multi-request batch that raises falls back to per-request
        execution so one bad request cannot fail its tick companions —
        the healthy requests still get (standalone, hence bit-identical)
        responses.
        """
        tick = self._ticks
        try:
            fused = coalesce([(p.scores, p.lengths) for p in batch])
            result = self._run_rows(
                fused.scores, valid_lengths=fused.valid_lengths
            )
        except Exception as error:  # noqa: BLE001
            if len(batch) == 1:
                return [error]
            return [
                self._execute_single(pending, tick, tick_start)
                for pending in batch
            ]
        parts = split(fused, result.probabilities)
        plan = (
            None
            if result.plan is None
            else replace(result.plan, queue_depth=len(batch))
        )
        responses: List[Union[ServeResponse, Exception]] = []
        for pending, part in zip(batch, parts):
            share = pending.rows / fused.rows
            cost = (
                None
                if result.cost is None
                else BackendCost(
                    latency_s=result.cost.latency_s,
                    energy_j=result.cost.energy_j * share,
                    area_mm2=result.cost.area_mm2,
                )
            )
            responses.append(
                ServeResponse(
                    probabilities=part[0] if pending.squeeze else part,
                    result=SoftmaxResult(
                        probabilities=part[0] if pending.squeeze else part,
                        cost=cost,
                        cycles=result.cycles,
                        backend=result.backend,
                        plan=plan,
                    ),
                    queue_wait_s=max(0.0, tick_start - pending.enqueued),
                    batch_requests=len(batch),
                    batch_rows=fused.rows,
                    tick=tick,
                )
            )
        return responses

    def _execute_single(
        self, pending: _Pending, tick: int, tick_start: float
    ) -> Union[ServeResponse, Exception]:
        """Standalone fallback execution of one request of a failed tick."""
        try:
            result = self._run_rows(
                pending.scores, valid_lengths=pending.lengths
            )
        except Exception as error:  # noqa: BLE001
            return error
        plan = (
            None if result.plan is None else replace(result.plan, queue_depth=1)
        )
        probabilities = (
            result.probabilities[0] if pending.squeeze else result.probabilities
        )
        return ServeResponse(
            probabilities=probabilities,
            result=replace(result, probabilities=probabilities, plan=plan),
            queue_wait_s=max(0.0, tick_start - pending.enqueued),
            batch_requests=1,
            batch_rows=pending.rows,
            tick=tick,
        )

    # ------------------------------------------------------------------ #
    # TCP front end (newline-delimited JSON)                               #
    # ------------------------------------------------------------------ #
    async def serve_tcp(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> asyncio.AbstractServer:
        """Expose the server over TCP as newline-delimited JSON.

        Request lines are ``{"id": ..., "scores": [[...]], "valid_lengths":
        [...]?}``; each gets one response line ``{"id": ..., "probabilities":
        ..., "batch_requests": n, "batch_rows": r, "tick": t,
        "queue_wait_ms": w}`` (or ``{"id": ..., "error": msg}``).  Requests
        on one connection are handled concurrently, so a pipelining client
        coalesces with itself.  The caller owns the returned
        ``asyncio.Server`` (``server.sockets[0].getsockname()`` for the
        bound port).
        """
        await self.start()
        return await asyncio.start_server(self._handle_connection, host, port)

    async def _handle_connection(self, reader, writer) -> None:
        lock = asyncio.Lock()
        tasks: Set[asyncio.Task] = set()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.get_running_loop().create_task(
                    self._handle_line(line, writer, lock)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown
                pass

    async def _handle_line(self, line: bytes, writer, lock) -> None:
        request_id: Any = None
        try:
            payload = json.loads(line)
            request_id = payload.get("id")
            response = await self.submit(
                np.asarray(payload["scores"], dtype=np.float64),
                valid_lengths=payload.get("valid_lengths"),
            )
            reply = {
                "id": request_id,
                "probabilities": response.probabilities.tolist(),
                "batch_requests": response.batch_requests,
                "batch_rows": response.batch_rows,
                "tick": response.tick,
                "queue_wait_ms": response.queue_wait_s * 1000.0,
            }
        except Exception as error:  # noqa: BLE001 — report, keep serving
            reply = {"id": request_id, "error": str(error)}
        async with lock:
            writer.write(json.dumps(reply).encode() + b"\n")
            await writer.drain()
