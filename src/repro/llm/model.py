"""Tiny Llama-architecture decoder-only transformer in numpy.

The model mirrors the structure of a Llama2 decoder block (Fig. 2 of the
paper): RMSNorm -> multi-head causal self-attention -> residual -> RMSNorm
-> SwiGLU feed-forward -> residual, with a final RMSNorm and a linear
output head.  Two deliberate simplifications versus the full Llama2
architecture are documented in DESIGN.md: learned absolute position
embeddings replace rotary embeddings, and the model is small enough to
train on the synthetic corpus in seconds.

The attention softmax is pluggable: during training the differentiable
floating-point softmax is used; during evaluation an arbitrary callable
(e.g. :class:`~repro.softmax.integer_softmax.IntegerSoftmax`) can be
substituted for it, which is exactly how the SoftmAP hardware would see the
scores (the AP is handed only the valid keys of each query).  Two
replacement contracts are supported:

* a plain callable mapping one 1-D score vector to probabilities — applied
  row by row over each query's causally-valid prefix (the original, slow
  contract);
* a *batched* callable (attribute ``supports_batch = True``) mapping a
  head-major ``(rows, seq)`` score matrix to probabilities of the same
  shape, receiving the per-row causal prefix lengths via a
  ``valid_lengths`` keyword and returning zeros at the masked positions.
  The model then issues **one** call per layer covering every head and
  query row — the shape :class:`~repro.mapping.cluster.ApCluster` shards
  across its per-head APs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.llm.config import LlamaConfig, TINY_LLAMA
from repro.nn.autograd import Parameter, Tensor, no_grad
from repro.nn.functional import (
    add,
    cross_entropy,
    embedding,
    matmul,
    mul,
    rms_norm,
    scale,
    silu,
    softmax_op,
)

__all__ = [
    "TinyLlamaModel",
    "SoftmaxFn",
    "StackedAttentionWeights",
    "causal_batched_softmax",
]


def causal_batched_softmax(
    stacked: np.ndarray,
    softmax_fn: "SoftmaxFn",
    valid_lengths: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Apply a batched replacement softmax to stacked causal score rows.

    This is the single authority for the head-major row-space contract;
    the autograd forward, the graph-free inference path and the KV-cache
    decoder all dispatch through it.  The layout is **head-major, then
    segment-major**: a batch of ``B`` segments of ``T`` queries under ``h``
    heads stacks to an ``(h * B * T, T)`` matrix whose row
    ``head * (B * T) + b * T + i`` is query row ``i`` of segment ``b`` of
    ``head`` — every head's rows form one contiguous block, which is the
    slicing :class:`~repro.mapping.cluster.ApCluster` shards across its
    per-head APs.

    Two row shapes are supported:

    * ``valid_lengths=None`` (prefill): ``stacked`` is ``(blocks * t, t)``
      where every ``t``-row block is one causal ``(t, t)`` score matrix —
      row ``i`` attends to keys ``0..i`` and the per-row prefix lengths
      ``1..t`` are derived by tiling.
    * explicit ``valid_lengths`` (decode): each row is one independent
      query with its own prefix length — an incremental decode step passes
      ``(B * h, t)`` rows all attending to the full ``t``-entry KV cache.

    The callable receives the whole matrix plus the per-row prefix lengths
    and the returned probabilities are re-masked with the validity pattern
    — a no-op for a conforming callable, but it guarantees causality
    regardless of the replacement.
    """
    t = stacked.shape[1]
    if valid_lengths is None:
        if stacked.shape[0] % t != 0:
            raise ValueError(
                f"stacked causal blocks need rows divisible by t={t}, "
                f"got {stacked.shape[0]} rows"
            )
        blocks = stacked.shape[0] // t
        lengths = np.tile(np.arange(1, t + 1, dtype=np.int64), blocks)
    else:
        lengths = np.asarray(valid_lengths, dtype=np.int64)
        if lengths.shape != (stacked.shape[0],):
            raise ValueError(
                f"valid_lengths must have shape ({stacked.shape[0]},) — one "
                f"entry per score row — got {lengths.shape}"
            )
        if lengths.size and (lengths.min() < 1 or lengths.max() > t):
            raise ValueError(
                f"valid_lengths must lie in 1..{t}, got "
                f"[{lengths.min()}, {lengths.max()}]"
            )
    probabilities = np.asarray(
        softmax_fn(stacked, valid_lengths=lengths), dtype=np.float64
    )
    if probabilities.shape != stacked.shape:
        raise ValueError(
            f"batched softmax_fn returned shape {probabilities.shape}, "
            f"expected {stacked.shape}"
        )
    return np.where(
        np.arange(t)[None, :] < lengths[:, None], probabilities, 0.0
    )

#: A softmax replacement: maps a score vector (1-D numpy array) to
#: probabilities of the same length.  Callables carrying the attribute
#: ``supports_batch = True`` instead receive a head-major ``(rows, seq)``
#: score matrix plus a ``valid_lengths`` keyword (one causal prefix length
#: per row) and return a ``(rows, seq)`` probability matrix with zeros at
#: the masked positions.
SoftmaxFn = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class StackedAttentionWeights:
    """One layer's attention projections stacked head-major.

    The trainer keeps per-head ``Parameter`` lists (one small matmul per
    head per projection, which is what the autograd engine differentiates);
    the inference path consumes the same weights as ``(h, d, hd)`` /
    ``(h, hd, d)`` stacks so each layer runs four broadcast einsums instead
    of ``4 * h`` Python-loop matmuls.  Built (and cached) by
    :meth:`TinyLlamaModel.stacked_attention_weights`.
    """

    wq: np.ndarray  # (heads, hidden, head_dim)
    wk: np.ndarray  # (heads, hidden, head_dim)
    wv: np.ndarray  # (heads, hidden, head_dim)
    wo: np.ndarray  # (heads, head_dim, hidden)


class TinyLlamaModel:
    """A small decoder-only transformer with Llama-style blocks.

    Parameters
    ----------
    config:
        Model shape; defaults to :data:`~repro.llm.config.TINY_LLAMA`.
    seed:
        Seed of the weight initialisation.
    """

    def __init__(self, config: LlamaConfig = TINY_LLAMA, seed: int = 0) -> None:
        self.config = config
        rng = np.random.default_rng(seed)
        d = config.hidden_size
        h = config.num_heads
        hd = config.head_dim
        f = config.intermediate_size
        v = config.vocab_size

        def init(*shape):
            return Parameter(rng.normal(0.0, 0.02, size=shape))

        self.token_embedding = init(v, d)
        self.position_embedding = init(config.max_context, d)
        self.layers: List[dict] = []
        for _ in range(config.num_layers):
            layer = {
                "attn_norm": Parameter(np.ones(d)),
                "wq": [init(d, hd) for _ in range(h)],
                "wk": [init(d, hd) for _ in range(h)],
                "wv": [init(d, hd) for _ in range(h)],
                "wo": [init(hd, d) for _ in range(h)],
                "ffn_norm": Parameter(np.ones(d)),
                "w_gate": init(d, f),
                "w_up": init(d, f),
                "w_down": init(f, d),
            }
            self.layers.append(layer)
        self.final_norm = Parameter(np.ones(d))
        self.output_head = init(d, v)
        # Inference-path caches: the (t, t) causal mask / position ids per
        # sequence length, and the per-layer stacked-head attention weights
        # (validated against the constituent Parameter versions).
        self._mask_cache: Dict[int, np.ndarray] = {}
        self._position_cache: Dict[int, np.ndarray] = {}
        self._stacked_cache: Dict[int, Tuple[Tuple[int, ...], StackedAttentionWeights]] = {}

    # ------------------------------------------------------------------ #
    # Parameters                                                           #
    # ------------------------------------------------------------------ #
    def parameters(self) -> List[Parameter]:
        """All trainable parameters (for the optimiser)."""
        params: List[Parameter] = [
            self.token_embedding,
            self.position_embedding,
            self.final_norm,
            self.output_head,
        ]
        for layer in self.layers:
            params.extend([layer["attn_norm"], layer["ffn_norm"],
                           layer["w_gate"], layer["w_up"], layer["w_down"]])
            for key in ("wq", "wk", "wv", "wo"):
                params.extend(layer[key])
        return params

    def parameter_count(self) -> int:
        """Total number of scalar parameters."""
        return int(sum(p.data.size for p in self.parameters()))

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Flat ``name -> weight array`` snapshot of every parameter.

        The arrays are copies, so a snapshot is stable under further
        training.  Together with :meth:`load_state_dict` this is how the
        parallel sweep runner ships trained weights to worker processes
        without re-running the trainer per worker.
        """
        state: Dict[str, np.ndarray] = {
            "token_embedding": self.token_embedding.data.copy(),
            "position_embedding": self.position_embedding.data.copy(),
            "final_norm": self.final_norm.data.copy(),
            "output_head": self.output_head.data.copy(),
        }
        for index, layer in enumerate(self.layers):
            for key in ("attn_norm", "ffn_norm", "w_gate", "w_up", "w_down"):
                state[f"layers.{index}.{key}"] = layer[key].data.copy()
            for key in ("wq", "wk", "wv", "wo"):
                for head, parameter in enumerate(layer[key]):
                    state[f"layers.{index}.{key}.{head}"] = parameter.data.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load a :meth:`state_dict` snapshot (shapes must match).

        Every write is an assignment through ``Parameter.data``, so the
        stacked-weight cache invalidates itself via the version counters.
        """
        def assign(parameter: Parameter, name: str) -> None:
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != parameter.data.shape:
                raise ValueError(
                    f"state entry {name!r} has shape {value.shape}, "
                    f"expected {parameter.data.shape}"
                )
            parameter.data = value

        assign(self.token_embedding, "token_embedding")
        assign(self.position_embedding, "position_embedding")
        assign(self.final_norm, "final_norm")
        assign(self.output_head, "output_head")
        for index, layer in enumerate(self.layers):
            for key in ("attn_norm", "ffn_norm", "w_gate", "w_up", "w_down"):
                assign(layer[key], f"layers.{index}.{key}")
            for key in ("wq", "wk", "wv", "wo"):
                for head, parameter in enumerate(layer[key]):
                    assign(parameter, f"layers.{index}.{key}.{head}")

    # ------------------------------------------------------------------ #
    # Inference-path caches                                                #
    # ------------------------------------------------------------------ #
    def causal_mask(self, sequence_length: int) -> np.ndarray:
        """The additive ``(t, t)`` causal mask, cached per sequence length.

        ``forward`` used to reallocate ``np.triu(np.full((t, t), -1e30))``
        on every call — every segment of every sweep configuration.  The
        cached array is marked read-only; it is only ever *added* to score
        tensors.
        """
        mask = self._mask_cache.get(sequence_length)
        if mask is None:
            mask = np.triu(np.full((sequence_length, sequence_length), -1e30), k=1)
            mask.flags.writeable = False
            self._mask_cache[sequence_length] = mask
        return mask

    def position_ids(self, sequence_length: int) -> np.ndarray:
        """``arange(t)`` position ids, cached per sequence length."""
        positions = self._position_cache.get(sequence_length)
        if positions is None:
            positions = np.arange(sequence_length)
            positions.flags.writeable = False
            self._position_cache[sequence_length] = positions
        return positions

    def stacked_attention_weights(self, layer_index: int) -> StackedAttentionWeights:
        """Layer ``layer_index``'s attention weights stacked head-major.

        The stacks are cached on the model and validated against the
        constituent :class:`~repro.nn.autograd.Parameter` version counters,
        so any optimiser step (an assignment through ``Parameter.data``)
        invalidates them automatically.  In-place *slice* surgery on a
        weight (``p.data[0] = ...``) bypasses the counters — call
        :meth:`invalidate_inference_cache` afterwards.
        """
        layer = self.layers[layer_index]
        versions = tuple(
            p.version for key in ("wq", "wk", "wv", "wo") for p in layer[key]
        )
        cached = self._stacked_cache.get(layer_index)
        if cached is not None and cached[0] == versions:
            return cached[1]
        stacks = StackedAttentionWeights(
            wq=np.stack([p.data for p in layer["wq"]]),
            wk=np.stack([p.data for p in layer["wk"]]),
            wv=np.stack([p.data for p in layer["wv"]]),
            wo=np.stack([p.data for p in layer["wo"]]),
        )
        self._stacked_cache[layer_index] = (versions, stacks)
        return stacks

    def invalidate_inference_cache(self) -> None:
        """Drop the stacked-weight cache (after in-place weight surgery).

        The mask/position caches depend only on shapes and never go stale.
        """
        self._stacked_cache.clear()

    # ------------------------------------------------------------------ #
    # Forward                                                              #
    # ------------------------------------------------------------------ #
    def forward(
        self,
        tokens: np.ndarray,
        softmax_fn: Optional[SoftmaxFn] = None,
        backend: Optional[object] = None,
    ) -> Tensor:
        """Compute next-token logits for a 1-D token id sequence.

        Parameters
        ----------
        tokens:
            Integer token ids of shape ``(T,)`` with ``T <= max_context``.
        softmax_fn:
            Optional replacement for the attention softmax, applied row by
            row over each query's causally-valid prefix.  Must only be used
            for evaluation (no gradients flow through it).
        backend:
            Optional replacement attention softmax selected through the
            unified runtime API — a backend name, a
            :class:`~repro.runtime.backend.BackendSpec` or a resolved
            :class:`~repro.runtime.backend.SoftmaxBackend`; the model's
            head count and context width fill in unspecified spec fields.
            Mutually exclusive with ``softmax_fn``.
        """
        if backend is not None:
            if softmax_fn is not None:
                raise ValueError("pass either softmax_fn or backend, not both")
            # Imported lazily: the base substrate must stay importable
            # without pulling the whole runtime/mapping/gpu stack in.
            from repro.runtime.backend import resolve_model_backend

            softmax_fn = resolve_model_backend(
                backend, self.config.num_heads, self.config.max_context
            ).softmax_fn()
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.ndim != 1:
            raise ValueError("forward expects a 1-D token sequence")
        t = tokens.shape[0]
        if t > self.config.max_context:
            raise ValueError(
                f"sequence of length {t} exceeds max context {self.config.max_context}"
            )
        causal_mask = self.causal_mask(t)
        scale_factor = 1.0 / np.sqrt(self.config.head_dim)

        positions = self.position_ids(t)
        x = add(
            embedding(self.token_embedding, tokens),
            embedding(self.position_embedding, positions),
        )
        for layer in self.layers:
            x = add(x, self._attention(x, layer, causal_mask, scale_factor, softmax_fn))
            x = add(x, self._feed_forward(x, layer))
        x = rms_norm(x, self.final_norm)
        return matmul(x, self.output_head)

    def loss(
        self,
        tokens: np.ndarray,
        softmax_fn: Optional[SoftmaxFn] = None,
        backend: Optional[object] = None,
    ) -> Tensor:
        """Mean next-token cross entropy on a token sequence."""
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.shape[0] < 2:
            raise ValueError("need at least two tokens to form a prediction target")
        logits = self.forward(tokens[:-1], softmax_fn=softmax_fn, backend=backend)
        return cross_entropy(logits, tokens[1:])

    def infer(
        self,
        tokens: np.ndarray,
        valid_lengths: Optional[np.ndarray] = None,
        softmax_fn: Optional[SoftmaxFn] = None,
        backend: Optional[object] = None,
    ) -> np.ndarray:
        """Graph-free batched next-token logits (the fast inference path).

        Accepts a ``(B, T)`` token batch (or a single ``(T,)`` sequence)
        and returns plain float64 logits of shape ``(B, T, vocab)`` (or
        ``(T, vocab)``), bit-identical to :meth:`forward` on each segment
        — see :func:`repro.llm.infer.infer` for the full contract,
        including ragged segments via ``valid_lengths``.
        """
        # Imported lazily: repro.llm.infer imports this module's types.
        from repro.llm.infer import infer

        return infer(
            self,
            tokens,
            valid_lengths=valid_lengths,
            softmax_fn=softmax_fn,
            backend=backend,
        )

    def generate(
        self,
        prompts: np.ndarray,
        max_new_tokens: int,
        valid_lengths: Optional[np.ndarray] = None,
        softmax_fn: Optional[SoftmaxFn] = None,
        backend: Optional[object] = None,
        temperature: float = 0.0,
        top_k: Optional[int] = None,
        seed: int = 0,
        use_cache: bool = True,
    ) -> np.ndarray:
        """Autoregressive decoding with a per-layer KV cache.

        Accepts a ``(B, P)`` prompt batch (or a single ``(P,)`` prompt,
        ragged batches via ``valid_lengths``) and returns the
        ``(B, max_new_tokens)`` (or ``(max_new_tokens,)``) generated token
        ids — greedy at ``temperature=0.0``, seeded temperature/top-k
        sampling otherwise.  ``use_cache=False`` re-prefills the whole
        sequence every step (the naive baseline the benchmark pins the
        cached path against); both paths produce identical tokens — see
        :func:`repro.llm.generate.generate` for the full contract.
        """
        # Imported lazily: repro.llm.generate imports this module's types.
        from repro.llm.generate import generate

        return generate(
            self,
            prompts,
            max_new_tokens,
            valid_lengths=valid_lengths,
            softmax_fn=softmax_fn,
            backend=backend,
            temperature=temperature,
            top_k=top_k,
            seed=seed,
            use_cache=use_cache,
        )

    # ------------------------------------------------------------------ #
    # Blocks                                                               #
    # ------------------------------------------------------------------ #
    def _attention(
        self,
        x: Tensor,
        layer: dict,
        causal_mask: np.ndarray,
        scale_factor: float,
        softmax_fn: Optional[SoftmaxFn],
    ) -> Tensor:
        normed = rms_norm(x, layer["attn_norm"])
        # Phase 1: per-head scores and values (the score tensors of every
        # head must exist before a batched replacement softmax can shard
        # them across the cluster in a single call).
        head_scores: List[Tensor] = []
        head_values: List[Tensor] = []
        for head in range(self.config.num_heads):
            q = matmul(normed, layer["wq"][head])
            k = matmul(normed, layer["wk"][head])
            head_values.append(matmul(normed, layer["wv"][head]))
            head_scores.append(scale(matmul(q, k, transpose_b=True), scale_factor))

        # Phase 2: attention probabilities for every head.
        if softmax_fn is None:
            head_probabilities = [
                softmax_op(scores, mask=causal_mask) for scores in head_scores
            ]
        elif getattr(softmax_fn, "supports_batch", False):
            head_probabilities = self._apply_batched_replacement_softmax(
                [scores.data for scores in head_scores], softmax_fn
            )
        else:
            head_probabilities = [
                Tensor(self._apply_replacement_softmax(scores.data, softmax_fn))
                for scores in head_scores
            ]

        # Phase 3: per-head context and output projection.
        head_outputs: Optional[Tensor] = None
        for head in range(self.config.num_heads):
            context = matmul(head_probabilities[head], head_values[head])
            projected = matmul(context, layer["wo"][head])
            head_outputs = projected if head_outputs is None else add(head_outputs, projected)
        return head_outputs

    def _feed_forward(self, x: Tensor, layer: dict) -> Tensor:
        normed = rms_norm(x, layer["ffn_norm"])
        gate = silu(matmul(normed, layer["w_gate"]))
        up = matmul(normed, layer["w_up"])
        return matmul(mul(gate, up), layer["w_down"])

    @staticmethod
    def _apply_replacement_softmax(
        scores: np.ndarray, softmax_fn: SoftmaxFn
    ) -> np.ndarray:
        """Apply a replacement softmax row by row over the causal prefix.

        Row ``i`` of the score matrix may only attend to keys ``0..i``; the
        replacement softmax (e.g. the integer-only approximation) is handed
        exactly that prefix, and future positions receive probability zero.
        """
        t = scores.shape[0]
        probabilities = np.zeros_like(scores)
        for i in range(t):
            probabilities[i, : i + 1] = softmax_fn(scores[i, : i + 1])
        return probabilities

    @staticmethod
    def _apply_batched_replacement_softmax(
        score_matrices: List[np.ndarray], softmax_fn: SoftmaxFn
    ) -> List[Tensor]:
        """Apply a batched replacement softmax to every head in one call.

        The heads' ``(T, T)`` score matrices are stacked head-major into one
        ``(heads * T, T)`` matrix and dispatched through
        :func:`causal_batched_softmax` (the shared contract authority).
        """
        t = score_matrices[0].shape[0]
        heads = len(score_matrices)
        stacked = np.concatenate(score_matrices, axis=0)
        probabilities = causal_batched_softmax(stacked, softmax_fn)
        return [
            Tensor(probabilities[head * t : (head + 1) * t]) for head in range(heads)
        ]
