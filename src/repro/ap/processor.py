"""Functional bit-serial, word-parallel Associative Processor.

:class:`AssociativeProcessor` executes arithmetic the way the hardware does:
for every bit position it sweeps the compare/write passes of the operation's
LUT over the whole CAM, so all rows (words) are processed in parallel while
bits are processed serially.  The simulator therefore *computes* the correct
result (validated against numpy in the tests) while the underlying
:class:`~repro.ap.cam.CamArray` counts compare/write cycles.

The processor works on unsigned words; the SoftmAP mapping
(:mod:`repro.mapping.softmap`) arranges the dataflow so that every
intermediate value is non-negative (it tracks ``-vstable`` instead of
``vstable``), which keeps the hardware free of signed corner cases exactly
as a real bit-serial design would prefer.

Operations provided: constant/data writes, copy, logic (XOR/AND/OR/NOT),
in-place addition and subtraction, multiplication (shift-add, optionally
conditioned on a predicate column), constant and variable right shifts, and
restoring division — everything the 16-step dataflow of Fig. 5 needs.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.ap.cam import CamArray, CamStats
from repro.ap.engine import (
    BitPlaneEngine,
    canonical_engine_name,
    processor_engine_names,
)
from repro.ap.fields import Field, FieldAllocator
from repro.ap.lut import (
    ADD_LUT,
    AND_LUT,
    COPY_LUT,
    Lut,
    NOT_LUT,
    OR_LUT,
    SUB_LUT,
    XOR_LUT,
)
from repro.utils.validation import (
    check_non_negative_int,
    check_positive_int,
)

__all__ = ["AssociativeProcessor"]


class AssociativeProcessor:
    """A 1D (bit-serial, word-parallel) associative processor.

    Parameters
    ----------
    rows:
        Number of CAM rows (words processed in parallel).
    columns:
        Total number of bit columns available for fields.  Two extra
        service columns (a constant-zero column and a carry/borrow state
        column) are allocated automatically on top of this number.
    backend:
        ``"reference"`` (default) executes every operation as bit-serial
        compare/write LUT sweeps — the paper-faithful ground truth.
        ``"vectorized"`` executes the same instruction set through the
        packed-word :class:`~repro.ap.engine.BitPlaneEngine`, which computes
        bit-identical results (and identical compare/write cycle counts)
        orders of magnitude faster; operations the engine cannot express
        (e.g. aliased operand columns) transparently fall back to the
        reference sweep.
    """

    #: Name of the always-zero service column (used for zero extension).
    ZERO = "__zero__"
    #: Name of the carry/borrow service column.
    STATE = "__state__"
    #: Name of the flag service column (used by division).
    FLAG = "__flag__"

    #: Execution backends accepted by the constructor: the registered
    #: engines that can serve per-operation CAM sweeps.  Plan-only engines
    #: (e.g. ``"compiled"``) are rejected here — they execute whole lowered
    #: programs, not individual instructions.
    BACKENDS = processor_engine_names()

    def __init__(self, rows: int, columns: int, backend: str = "reference") -> None:
        check_positive_int(rows, "rows")
        check_positive_int(columns, "columns")
        self.backend = canonical_engine_name(backend, processor=True)
        service_columns = 3
        self.cam = CamArray(rows, columns + service_columns)
        self.allocator = FieldAllocator(columns + service_columns)
        self._zero_column = self.allocator.allocate(self.ZERO, 1, signed=False).columns[0]
        self._state_column = self.allocator.allocate(self.STATE, 1, signed=False).columns[0]
        self._flag_column = self.allocator.allocate(self.FLAG, 1, signed=False).columns[0]
        self._engine = BitPlaneEngine(self) if self.backend == "vectorized" else None

    # ------------------------------------------------------------------ #
    # Introspection                                                        #
    # ------------------------------------------------------------------ #
    @property
    def rows(self) -> int:
        """Number of CAM rows."""
        return self.cam.rows

    @property
    def stats(self) -> CamStats:
        """Cycle counters of the underlying CAM."""
        return self.cam.stats

    def reset_stats(self) -> None:
        """Zero the cycle counters (the stored data is left untouched)."""
        self.cam.stats.reset()

    # ------------------------------------------------------------------ #
    # Field management and data movement                                   #
    # ------------------------------------------------------------------ #
    def allocate_field(self, name: str, bits: int, signed: bool = False) -> Field:
        """Allocate a named ``bits``-wide field."""
        return self.allocator.allocate(name, bits, signed=signed)

    def field(self, name: str) -> Field:
        """Look up an allocated field."""
        return self.allocator.get(name)

    def write_field(self, field: Field, values: np.ndarray) -> None:
        """Load one word per row into ``field``.

        The cost charged is one write cycle per bit column, matching the
        ``2M`` "write the operands" term of the Table II formulas.  Values
        must be non-negative and fit the field width.
        """
        values = np.asarray(values, dtype=np.int64)
        if values.ndim == 0:
            values = np.full(self.rows, int(values), dtype=np.int64)
        if values.shape != (self.rows,):
            raise ValueError(
                f"expected {self.rows} values for field {field.name!r}, "
                f"got shape {values.shape}"
            )
        if np.any(values < 0):
            raise ValueError("the functional AP stores unsigned words only")
        if np.any(values >= (1 << field.bits)):
            raise OverflowError(
                f"values do not fit in {field.bits}-bit field {field.name!r}"
            )
        bits = self._int_to_bits(values, field.bits)
        self.cam.load_bits(field.columns, bits)
        # Charge one write cycle per column (word-parallel column write).
        self.cam.stats.write_cycles += field.bits
        self.cam.stats.written_bits += field.bits * self.rows
        self.cam.stats.row_writes += field.bits * self.rows

    def write_constant(self, field: Field, value: int) -> None:
        """Broadcast the same constant to every row of ``field``.

        Constants (``mu``, ``vb``, ``vc``, ``vln2``) are computed offline and
        written once; the cost is one write cycle per bit column.
        """
        check_non_negative_int(int(value), "value")
        self.write_field(field, np.full(self.rows, int(value), dtype=np.int64))

    def read_field(self, field: Field) -> np.ndarray:
        """Read the words stored in ``field`` (unsigned)."""
        bits = self.cam.read_bits(field.columns)
        return self._bits_to_int(bits)

    def read_field_signed(self, field: Field) -> np.ndarray:
        """Read ``field`` interpreting the MSB as a two's-complement sign."""
        unsigned = self.read_field(field)
        half = np.int64(1) << np.int64(field.bits - 1)
        full = np.int64(1) << np.int64(field.bits)
        return np.where(unsigned >= half, unsigned - full, unsigned)

    def clear_field(self, field: Field) -> None:
        """Zero every bit of ``field`` (one write cycle per column)."""
        all_rows = np.ones(self.rows, dtype=bool)
        for column in field.columns:
            self.cam.write({column: 0}, tag=all_rows)

    def clear_rows(self, field: Field, row_mask: np.ndarray) -> None:
        """Zero ``field`` in the selected rows only.

        The controller tags the rows once and issues one write cycle per bit
        column — the same tagged column write every LUT pass uses, so the
        operation is identical (data and cycle accounting) on both backends.
        The batched softmax mapping uses this to null the padding words of
        variable-length rows before the segmented reduction.
        """
        row_mask = np.asarray(row_mask, dtype=bool)
        if row_mask.shape != (self.rows,):
            raise ValueError(
                f"row_mask must have shape ({self.rows},), got {row_mask.shape}"
            )
        for column in field.columns:
            self.cam.write({column: 0}, tag=row_mask)

    # ------------------------------------------------------------------ #
    # LUT sweeps                                                           #
    # ------------------------------------------------------------------ #
    def _sweep_logic(
        self,
        lut: Lut,
        a: Field,
        r: Field,
        b: Optional[Field] = None,
        condition: Optional[Tuple[int, int]] = None,
        row_mask: Optional[np.ndarray] = None,
    ) -> None:
        """Sweep an out-of-place logic LUT bit-serially over the operands."""
        bits = r.bits
        for i in range(bits):
            roles = {"r": r.columns[i], "a": self._column_or_zero(a, i)}
            if b is not None:
                roles["b"] = self._column_or_zero(b, i)
            self._apply_passes(lut, roles, condition=condition, row_mask=row_mask)

    def _apply_passes(
        self,
        lut: Lut,
        role_columns: Dict[str, int],
        condition: Optional[Tuple[int, int]] = None,
        row_mask: Optional[np.ndarray] = None,
    ) -> None:
        """Apply every pass of ``lut`` with roles bound to physical columns."""
        for lut_pass in lut.passes:
            key = {role_columns[role]: bit for role, bit in lut_pass.search.items()}
            if condition is not None:
                key[condition[0]] = condition[1]
            tag = self.cam.compare(key, row_mask=row_mask)
            if not np.any(tag):
                # The write cycle is still issued by the hardware controller
                # (it does not know the tag is empty ahead of time).
                pass
            writes = {role_columns[role]: bit for role, bit in lut_pass.write.items()}
            self.cam.write(writes, tag=tag)

    def _column_or_zero(self, field: Field, position: int) -> int:
        """Column of bit ``position`` of ``field``; the constant-zero service
        column when ``position`` is beyond the field width (zero extension)."""
        if position < field.bits:
            return field.columns[position]
        return self._zero_column

    def _try_logic(
        self,
        lut: Lut,
        a: Field,
        r: Field,
        b: Optional[Field] = None,
        condition: Optional[Tuple[int, int]] = None,
        row_mask: Optional[np.ndarray] = None,
    ) -> bool:
        """Run a clear+sweep logic operation on the vectorized engine if the
        backend is selected and the operand layout is expressible."""
        if self._engine is None or not self._engine.supports_logic(
            lut, a, r, b, condition
        ):
            return False
        self._engine.logic(lut, a, r, b=b, condition=condition, row_mask=row_mask)
        return True

    # ------------------------------------------------------------------ #
    # Logic operations                                                     #
    # ------------------------------------------------------------------ #
    def xor(self, a: Field, b: Field, r: Field) -> None:
        """``r <- a XOR b`` (Fig. 3).  ``r`` is cleared first."""
        if self._try_logic(XOR_LUT, a, r, b=b):
            return
        self.clear_field(r)
        self._sweep_logic(XOR_LUT, a, r, b=b)

    def and_(self, a: Field, b: Field, r: Field) -> None:
        """``r <- a AND b``."""
        if self._try_logic(AND_LUT, a, r, b=b):
            return
        self.clear_field(r)
        self._sweep_logic(AND_LUT, a, r, b=b)

    def or_(self, a: Field, b: Field, r: Field) -> None:
        """``r <- a OR b``."""
        if self._try_logic(OR_LUT, a, r, b=b):
            return
        self.clear_field(r)
        self._sweep_logic(OR_LUT, a, r, b=b)

    def not_(self, a: Field, r: Field) -> None:
        """``r <- NOT a`` (bitwise complement over ``r``'s width)."""
        if self._try_logic(NOT_LUT, a, r):
            return
        self.clear_field(r)
        self._sweep_logic(NOT_LUT, a, r)

    def copy(
        self,
        src: Field,
        dst: Field,
        condition: Optional[Tuple[int, int]] = None,
        row_mask: Optional[np.ndarray] = None,
    ) -> None:
        """``dst <- src`` (zero-extended / truncated to ``dst``'s width)."""
        if self._try_logic(COPY_LUT, src, dst, condition=condition, row_mask=row_mask):
            return
        self.clear_field(dst)
        self._sweep_logic(COPY_LUT, src, dst, condition=condition, row_mask=row_mask)

    # ------------------------------------------------------------------ #
    # Arithmetic                                                           #
    # ------------------------------------------------------------------ #
    def add(
        self,
        a: Field,
        b: Field,
        condition: Optional[Tuple[int, int]] = None,
        row_mask: Optional[np.ndarray] = None,
        width: Optional[int] = None,
    ) -> None:
        """In-place addition ``b <- a + b`` (modulo ``2**b.bits``).

        ``a`` is zero-extended when narrower than ``b``.  When ``condition``
        is given as ``(column, bit)``, only rows whose predicate column holds
        that bit are updated (used for the conditional adds of shift-add
        multiplication and restoring division).
        """
        if width is not None and width > b.bits:
            raise ValueError("width cannot exceed the destination width")
        if (
            self._engine is not None
            and self._engine.supports_add(a, b, condition, width)
        ):
            self._engine.add(a, b, condition=condition, row_mask=row_mask, width=width)
            return
        self._clear_state()
        bits = width if width is not None else b.bits
        for i in range(bits):
            roles = {
                "a": self._column_or_zero(a, i),
                "b": b.columns[i],
                "cy": self._state_column,
            }
            self._apply_passes(ADD_LUT, roles, condition=condition, row_mask=row_mask)

    def subtract(
        self,
        a: Field,
        b: Field,
        condition: Optional[Tuple[int, int]] = None,
        row_mask: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """In-place subtraction ``a <- a - b`` (modulo ``2**a.bits``).

        Returns the final borrow per row (True where the result wrapped,
        i.e. ``a < b``), which the caller can use as a comparison outcome —
        this is how restoring division decides whether to restore.
        """
        if (
            self._engine is not None
            and self._engine.supports_add(b, a, condition, None)
        ):
            return self._engine.subtract(a, b, condition=condition, row_mask=row_mask)
        self._clear_state()
        for i in range(a.bits):
            roles = {
                "a": a.columns[i],
                "b": self._column_or_zero(b, i),
                "bw": self._state_column,
            }
            self._apply_passes(SUB_LUT, roles, condition=condition, row_mask=row_mask)
        return self.cam.cells[:, self._state_column].copy()

    def multiply(
        self,
        a: Field,
        b: Field,
        r: Field,
        condition: Optional[Tuple[int, int]] = None,
    ) -> None:
        """Shift-add multiplication ``r <- a * b``.

        ``r`` should be ``a.bits + b.bits`` wide; it is cleared first.  For
        every bit ``j`` of the multiplier ``b``, the multiplicand ``a`` is
        added into ``r`` at offset ``j`` — only in the rows where ``b_j = 1``
        (the predicate is folded into the compare key, which is the
        word-parallel way of doing a conditional add).
        """
        if condition is not None:
            raise NotImplementedError(
                "stacking an extra predicate on multiply is not supported"
            )
        if set(a.columns) & set(b.columns):
            raise ValueError(
                "multiplicand and multiplier must live in disjoint columns; "
                "copy one operand first (the dataflow's explicit Copy step), "
                "or use square() which does so"
            )
        if self._engine is not None and self._engine.supports_multiply(a, b, r):
            self._engine.multiply(a, b, r)
            return
        self.clear_field(r)
        for j in range(b.bits):
            predicate = (b.columns[j], 1)
            self._clear_state()
            for i in range(r.bits - j):
                roles = {
                    "a": self._column_or_zero(a, i),
                    "b": r.columns[i + j],
                    "cy": self._state_column,
                }
                self._apply_passes(ADD_LUT, roles, condition=predicate)

    def square(self, a: Field, scratch: Field, r: Field) -> None:
        """``r <- a * a`` via an explicit copy followed by multiplication.

        The copy into ``scratch`` mirrors steps 10-11 of the SoftmAP
        dataflow: the AP cannot use the same columns as both multiplicand
        and multiplier predicate, so the operand is duplicated first.
        """
        if scratch.bits < a.bits:
            raise ValueError("scratch field must be at least as wide as the operand")
        self.copy(a, scratch)
        self.multiply(scratch, a, r)

    # ------------------------------------------------------------------ #
    # Shifts                                                               #
    # ------------------------------------------------------------------ #
    def shifted_view(self, field: Field, right_shift: int, name: str = "") -> Field:
        """Logical right shift by a constant: a free re-labelling of columns
        ("shift operations are inherently supported by the bit-seriality of
        the AP")."""
        check_non_negative_int(right_shift, "right_shift")
        if right_shift >= field.bits:
            raise ValueError("constant shift discards every bit of the field")
        return field.slice(right_shift, field.bits, name=name or f"{field.name}>>{right_shift}")

    def shift_right_variable(
        self,
        src: Field,
        shift: Field,
        dst: Field,
        max_shift_bits: Optional[int] = None,
    ) -> None:
        """Variable (per-row) logical right shift: ``dst <- src >> shift``.

        Implemented as a barrel shifter: the result is first copied from the
        source, then for every bit ``k`` of the shift amount the rows whose
        shift bit is set have their word moved right by ``2**k`` columns
        (two passes per destination bit per stage).
        """
        stages = max_shift_bits if max_shift_bits is not None else shift.bits
        if stages > shift.bits:
            raise ValueError("max_shift_bits cannot exceed the shift field width")
        if self._engine is not None and self._engine.supports_shift(src, shift, dst):
            self._engine.shift_right_variable(src, shift, dst, stages)
            return
        self.copy(src, dst)
        for k in range(stages):
            offset = 1 << k
            predicate = (shift.columns[k], 1)
            # Move dst right by `offset` for predicated rows, LSB first so a
            # source column is read before it is overwritten.
            for i in range(dst.bits):
                src_position = i + offset
                source_column = (
                    dst.columns[src_position]
                    if src_position < dst.bits
                    else self._zero_column
                )
                roles = {"a": source_column, "r": dst.columns[i]}
                # Conditional copy needs both polarities because dst holds
                # stale data from the previous stage.
                self._apply_passes(
                    Lut(
                        name="cond-copy",
                        passes=(
                            # write 1 where the source bit is 1
                            COPY_LUT.passes[0],
                            # write 0 where the source bit is 0
                            _COPY_ZERO_PASS_LUT.passes[0],
                        ),
                    ),
                    roles,
                    condition=predicate,
                )

    # ------------------------------------------------------------------ #
    # Division                                                             #
    # ------------------------------------------------------------------ #
    def divide(
        self,
        dividend: Field,
        divisor: Field,
        quotient: Field,
        remainder: Field,
        fraction_bits: int = 0,
    ) -> None:
        """Restoring division ``quotient <- (dividend << fraction_bits) / divisor``.

        ``quotient`` must be ``dividend.bits + fraction_bits`` wide and
        ``remainder`` at least ``divisor.bits + 1`` wide.  The classic
        row-parallel restoring algorithm is used: for every output bit the
        partial remainder is shifted left, the next dividend bit brought
        down, the divisor subtracted, and the subtraction undone (restored)
        in the rows where it underflowed.
        """
        check_non_negative_int(fraction_bits, "fraction_bits")
        total_bits = dividend.bits + fraction_bits
        if quotient.bits < total_bits:
            raise ValueError(
                f"quotient needs at least {total_bits} bits, has {quotient.bits}"
            )
        if remainder.bits < divisor.bits + 1:
            raise ValueError(
                f"remainder needs at least {divisor.bits + 1} bits, has {remainder.bits}"
            )
        if self._engine is not None and self._engine.supports_divide(
            dividend, divisor, quotient, remainder, fraction_bits
        ):
            self._engine.divide(dividend, divisor, quotient, remainder, fraction_bits)
            return
        self.clear_field(quotient)
        self.clear_field(remainder)
        all_rows = np.ones(self.rows, dtype=bool)
        for j in reversed(range(total_bits)):
            # remainder <<= 1 (MSB first so no column is clobbered early).
            for i in reversed(range(1, remainder.bits)):
                roles = {"a": remainder.columns[i - 1], "r": remainder.columns[i]}
                self._apply_passes(_FULL_COPY_LUT, roles)
            # Bring down the next dividend bit (or a zero fraction bit).
            if j >= fraction_bits:
                source = dividend.columns[j - fraction_bits]
            else:
                source = self._zero_column
            self._apply_passes(
                _FULL_COPY_LUT, {"a": source, "r": remainder.columns[0]}
            )
            # remainder -= divisor; the returned borrow marks underflow.
            borrow = self.subtract(remainder, divisor)
            # Latch the borrow into the flag column (1 write cycle).
            self.cam.write({self._flag_column: 1}, tag=borrow)
            self.cam.write({self._flag_column: 0}, tag=~borrow)
            # Restore the rows that underflowed: remainder += divisor.
            self.add(divisor, remainder, condition=(self._flag_column, 1))
            # Quotient bit is 1 where no borrow occurred.
            tag = self.cam.compare({self._flag_column: 0})
            self.cam.write({quotient.columns[j]: 1}, tag=tag)

    # ------------------------------------------------------------------ #
    # Internals                                                            #
    # ------------------------------------------------------------------ #
    def _clear_state(self) -> None:
        """Clear the carry/borrow service column (one write cycle)."""
        self.cam.write(
            {self._state_column: 0}, tag=np.ones(self.rows, dtype=bool)
        )

    @staticmethod
    def _int_to_bits(values: np.ndarray, bits: int) -> np.ndarray:
        positions = np.arange(bits, dtype=np.int64)
        return ((values[:, None] >> positions[None, :]) & 1).astype(bool)

    @staticmethod
    def _bits_to_int(bits: np.ndarray) -> np.ndarray:
        positions = np.arange(bits.shape[1], dtype=np.int64)
        weights = (np.int64(1) << positions).astype(np.int64)
        return (bits.astype(np.int64) * weights[None, :]).sum(axis=1)


# LUT helpers used by the barrel shifter / division data movement: a "full"
# copy needs both polarities because the destination may hold stale data.
from repro.ap.lut import LutPass as _LutPass  # noqa: E402  (local alias)

_COPY_ZERO_PASS_LUT = Lut(
    name="copy-zero",
    passes=(_LutPass(search={"a": 0}, write={"r": 0}),),
)

_FULL_COPY_LUT = Lut(
    name="full-copy",
    passes=(
        _LutPass(search={"a": 1}, write={"r": 1}),
        _LutPass(search={"a": 0}, write={"r": 0}),
    ),
)
