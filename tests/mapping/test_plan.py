"""Tests for the compiled execution-plan layer (repro.mapping.plan).

The centrepiece is the randomized property test pinning the tentpole
guarantee: fused cluster execution is bit-identical to the per-head loop
across odd sequence lengths, non-power-of-two head counts, ragged
``valid_lengths`` and both functional engines.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ap.engine import UnknownEngineError, canonical_engine_name
from repro.ap.processor2d import AssociativeProcessor2D
from repro.mapping.cluster import ApCluster
from repro.mapping.plan import ExecutionPlan, WorkloadPass, plan_passes
from repro.mapping.softmap import SoftmAPMapping
from repro.quant.precision import BEST_PRECISION
from repro.runtime.backend import BackendSpec, resolve_backend
from repro.softmax.integer_softmax import IntegerSoftmax


class TestFusedParityProperty:
    """Fused execution == per-head loop, the tentpole's pinned invariant."""

    @settings(max_examples=20, deadline=None)
    @given(
        heads=st.integers(1, 3),          # includes the non-power-of-two 3
        batch=st.integers(1, 2),
        seq=st.integers(2, 9),            # includes odd lengths
        engine=st.sampled_from(["vectorized", "reference", "compiled"]),
        ragged=st.booleans(),
        seed=st.integers(0, 2**16),
    )
    def test_fused_cluster_matches_per_head_loop(
        self, heads, batch, seq, engine, ragged, seed
    ):
        rng = np.random.default_rng(seed)
        scores = rng.normal(0.0, 2.0, size=(batch, heads, seq))
        lengths = rng.integers(1, seq + 1, size=(batch, heads)) if ragged else None

        cluster = ApCluster(num_heads=heads, sequence_length=seq)
        fused = cluster.execute(scores, valid_lengths=lengths, backend=engine)

        # The per-head loop on the functional AP (per-operation engine
        # sweeps): the execution mode the fused pass replaced.  The compiled
        # engine is plan-only, so its loop baseline runs the packed-word
        # processor (itself pinned bit-identical to the reference sweep).
        loop_engine = engine if engine != "compiled" else "vectorized"
        plan = cluster.mapping.plan(sequence_length=seq)
        looped = np.empty_like(scores)
        for h in range(heads):
            looped[:, h, :] = plan.execute_on_ap(
                scores[:, h, :],
                valid_lengths=None if lengths is None else lengths[:, h],
                engine=loop_engine,
            )
        assert np.array_equal(fused, looped)

    def test_fused_matches_software_pipeline(self, rng):
        scores = rng.normal(0.0, 2.0, size=(3, 5, 13))  # odd seq, odd heads
        cluster = ApCluster(num_heads=5, sequence_length=13)
        software = IntegerSoftmax(BEST_PRECISION, barrett_correction=False)(scores)
        assert np.array_equal(cluster.execute(scores), software)

    def test_engines_agree_on_the_fused_row_space(self, rng):
        scores = rng.normal(0.0, 2.0, size=(2, 3, 7))
        cluster = ApCluster(num_heads=3, sequence_length=7)
        vectorized = cluster.execute(scores, backend="vectorized")
        assert np.array_equal(
            vectorized, cluster.execute(scores, backend="reference")
        )
        assert np.array_equal(
            vectorized, cluster.execute(scores, backend="compiled")
        )


class TestCompilation:
    def test_plan_is_compiled_once_per_shape(self):
        mapping = SoftmAPMapping(BEST_PRECISION, sequence_length=32)
        assert mapping.plan() is mapping.plan()
        assert mapping.plan(sequence_length=16) is mapping.plan(sequence_length=16)
        assert mapping.plan(sequence_length=16) is not mapping.plan()

    def test_cluster_shares_one_mapping_across_heads(self):
        """Heads are structurally identical: memory must not scale with the
        head count (the PR 2 cluster built one mapping per head)."""
        cluster = ApCluster(num_heads=7, sequence_length=16)
        assert all(
            cluster.head_mapping(h) is cluster.mapping for h in range(7)
        )
        with pytest.raises(IndexError):
            cluster.head_mapping(7)

    def test_lowered_program_has_resolved_fields_and_costs(self):
        plan = SoftmAPMapping(BEST_PRECISION, sequence_length=64).plan()
        field_names = {f.name for f in plan.fields}
        for op in plan.program:
            for operand in (op.dest, op.a, op.b, op.remainder):
                assert operand is None or operand in field_names
        assert len(plan.step_costs) == 16
        assert plan.cost().cycles == pytest.approx(
            sum(s.cost.cycles for s in plan.step_costs)
        )

    def test_plan_cost_is_the_mapping_cost(self):
        mapping = SoftmAPMapping(BEST_PRECISION, sequence_length=128)
        assert mapping.cost() is mapping.plan().cost()

    def test_execute_rejects_mismatched_shapes(self):
        plan = ExecutionPlan(sequence_length=8)
        with pytest.raises(ValueError):
            plan.execute(np.zeros(8))  # 1-D
        with pytest.raises(ValueError):
            plan.execute(np.zeros((2, 9)))  # compiled for seq=8


class TestPlanner:
    def test_no_budget_is_one_fused_pass(self):
        assert plan_passes(12, 16) == [WorkloadPass(0, 12, 192)]

    def test_budget_tiles_whole_vectors(self):
        passes = plan_passes(10, 16, row_budget=50)  # 3 vectors / pass
        assert [p.vectors for p in passes] == [3, 3, 3, 1]
        assert [p.start for p in passes] == [0, 3, 6, 9]
        assert all(p.words == p.vectors * 16 for p in passes)

    def test_segment_must_fit_one_pass(self):
        with pytest.raises(ValueError, match="segment does not fit"):
            plan_passes(4, 100, row_budget=64)

    def test_tiled_cluster_execution_is_bit_identical(self, rng):
        scores = rng.normal(0.0, 2.0, size=(4, 3, 11))
        lengths = rng.integers(1, 12, size=4)
        single = ApCluster(num_heads=3, sequence_length=11)
        tiled = ApCluster(
            num_heads=3, sequence_length=11, pass_row_budget=2 * 11
        )
        assert len(tiled.workload_passes(12, 11)) == 6
        assert np.array_equal(
            tiled.execute(scores, valid_lengths=lengths),
            single.execute(scores, valid_lengths=lengths),
        )

    def test_budget_opens_sequences_beyond_the_provisioned_length(self, rng):
        """The fused row space spans the whole cluster, so an explicit pass
        budget admits sequences one per-head AP could not hold."""
        scores = rng.normal(0.0, 2.0, size=(1, 2, 24))
        capped = ApCluster(num_heads=2, sequence_length=16)
        with pytest.raises(ValueError, match="exceeds the provisioned"):
            capped.execute(scores)
        budgeted = ApCluster(
            num_heads=2, sequence_length=16, pass_row_budget=32
        )
        software = IntegerSoftmax(BEST_PRECISION, barrett_correction=False)(scores)
        assert np.array_equal(budgeted.execute(scores), software)
        assert budgeted.cost(sequence_length=24).latency_s > 0


class TestEngineValidation:
    def test_unknown_engine_suggests_closest(self):
        with pytest.raises(UnknownEngineError, match="did you mean 'vectorized'"):
            canonical_engine_name("vectorised")
        with pytest.raises(UnknownEngineError, match="did you mean 'reference'"):
            canonical_engine_name("refrence")
        with pytest.raises(UnknownEngineError, match="did you mean 'compiled'"):
            canonical_engine_name("complied")

    def test_validation_is_eager_at_every_construction_seam(self):
        with pytest.raises(UnknownEngineError):
            SoftmAPMapping(BEST_PRECISION, 16, backend="vectorised")
        with pytest.raises(UnknownEngineError):
            ApCluster(num_heads=2, sequence_length=16, backend="vectorised")
        with pytest.raises(UnknownEngineError):
            ExecutionPlan(sequence_length=16, engine="cuda")
        with pytest.raises(UnknownEngineError):
            BackendSpec(name="ap-batch", engine="refrence")
        with pytest.raises(UnknownEngineError):
            AssociativeProcessor2D(rows=2, columns=8, backend="packed")

    def test_compiled_is_selectable_at_every_construction_seam(self):
        assert SoftmAPMapping(BEST_PRECISION, 16, backend="compiled").backend == (
            "compiled"
        )
        assert ApCluster(
            num_heads=2, sequence_length=16, backend="compiled"
        ).backend == "compiled"
        assert ExecutionPlan(sequence_length=16, engine="compiled").engine == (
            "compiled"
        )
        assert BackendSpec(name="ap-batch", engine="compiled").engine == "compiled"

    def test_processor_seams_reject_the_plan_only_engine(self):
        """The compiled engine has no per-operation CAM-sweep mode: the
        processor constructors and execute_on_ap must refuse it with the
        same did-you-mean error family as a typo."""
        with pytest.raises(UnknownEngineError):
            AssociativeProcessor2D(rows=2, columns=8, backend="compiled")
        with pytest.raises(UnknownEngineError):
            ExecutionPlan(sequence_length=8).execute_on_ap(
                np.zeros((1, 8)), engine="compiled"
            )

    def test_unknown_engine_is_a_value_error(self):
        """Callers catching the historical ValueError keep working."""
        assert issubclass(UnknownEngineError, ValueError)


class TestPlanTelemetry:
    def test_cluster_result_carries_plan_telemetry(self, rng):
        backend = resolve_backend("ap-cluster", num_heads=2, sequence_length=8)
        result = backend.run(rng.normal(0.0, 2.0, size=(2, 2, 8)))
        assert result.plan is not None
        assert result.plan.fused and result.plan.engine == "vectorized"
        assert result.plan.passes == 1
        assert result.plan.vectors == 4
        assert result.plan.segment_length == 8
        assert result.plan.words_per_pass == (32,)

    def test_ap_batch_result_carries_plan_telemetry(self, rng):
        backend = resolve_backend("ap-batch", sequence_length=8)
        result = backend.run(rng.normal(0.0, 2.0, size=(3, 8)))
        assert result.plan is not None
        assert result.plan.passes == 1 and result.plan.vectors == 3

    def test_fused_flag_reports_the_actual_execution_path(self, rng):
        """fused must be False when the reference engine interprets the
        program on the AP instead of the packed fast path running."""
        cluster = ApCluster(num_heads=2, sequence_length=8)
        assert cluster.plan_telemetry(4, 8).fused
        assert not cluster.plan_telemetry(4, 8, engine="reference").fused
        backend = resolve_backend(
            "ap-batch", sequence_length=8, engine="reference"
        )
        result = backend.run(rng.normal(0.0, 2.0, size=(2, 8)))
        assert result.plan is not None and not result.plan.fused

    def test_tiled_runs_flow_through_the_cluster_schedule(self, rng):
        backend = resolve_backend(
            "ap-cluster",
            num_heads=2,
            sequence_length=8,
            options={"pass_row_budget": 16},
        )
        result = backend.run(rng.normal(0.0, 2.0, size=(3, 2, 8)))
        assert result.plan.passes == 3
        assert result.plan.words_per_pass == (16, 16, 16)
        schedule = backend.cluster.schedule(3, sequence_length=8)
        assert result.cost.latency_s == pytest.approx(schedule.latency_s)
        one_pass = backend.cluster.cost(sequence_length=8)
        # The pipeline overlaps load under compute, so three passes cost
        # less than three sequential passes but more than one.
        assert one_pass.latency_s < result.cost.latency_s
        assert result.cost.latency_s < 3 * one_pass.latency_s
        # Energy is workload-sized, not pass-sized: same vectors, same total.
        assert result.cost.energy_j == pytest.approx(one_pass.energy_j * 3)

    def test_one_dimensional_over_budget_vector_rejected_eagerly(self):
        """A 1-D vector that exceeds the pass budget must be rejected by
        the planner before any execution, like the fused 2-D/3-D paths."""
        backend = resolve_backend(
            "ap-cluster",
            num_heads=2,
            sequence_length=16,
            options={"pass_row_budget": 8},
        )
        with pytest.raises(ValueError, match="segment does not fit"):
            backend.run(np.zeros(16))
        assert backend.telemetry.calls == 0  # nothing executed or recorded

    def test_row_backend_has_no_plan(self, rng):
        result = resolve_backend("ap", sequence_length=8).run(
            rng.normal(0.0, 2.0, size=(2, 8))
        )
        assert result.plan is None

    def test_compiled_telemetry_reports_arena_and_wall_clock(self, rng):
        backend = resolve_backend(
            "ap-cluster", num_heads=2, sequence_length=8, engine="compiled"
        )
        result = backend.run(rng.normal(0.0, 2.0, size=(2, 2, 8)))
        assert result.plan.fused and result.plan.engine == "compiled"
        assert result.plan.arena_slots > 0
        assert result.plan.arena_bytes > 0  # the executor's pool is live
        assert result.plan.wall_seconds > 0.0
        # The reference engine interprets on the AP: no arena, not fused.
        reference = resolve_backend(
            "ap-cluster", num_heads=2, sequence_length=8, engine="reference"
        ).run(rng.normal(0.0, 2.0, size=(2, 2, 8)))
        assert not reference.plan.fused
        assert reference.plan.arena_slots == 0
        assert reference.plan.arena_bytes == 0

    def test_threaded_passes_surface_through_telemetry(self, rng):
        backend = resolve_backend(
            "ap-cluster",
            num_heads=2,
            sequence_length=8,
            engine="compiled",
            options={"pass_row_budget": 16, "pass_workers": 2},
        )
        result = backend.run(rng.normal(0.0, 2.0, size=(3, 2, 8)))
        assert result.plan.passes == 3
        assert result.plan.threaded_passes == 3
        serial = resolve_backend(
            "ap-cluster",
            num_heads=2,
            sequence_length=8,
            options={"pass_row_budget": 16},
        ).run(rng.normal(0.0, 2.0, size=(3, 2, 8)))
        assert serial.plan.threaded_passes == 0


class TestExecutionSubstrates:
    def test_execute_on_ap_matches_fused_packed_path(self, rng):
        plan = ExecutionPlan(sequence_length=12)
        scores = rng.normal(0.0, 2.0, size=(4, 12))
        lengths = np.array([1, 5, 12, 7])
        fused = plan.execute(scores, valid_lengths=lengths, engine="vectorized")
        on_ap = plan.execute_on_ap(
            scores, valid_lengths=lengths, engine="vectorized"
        )
        reference = plan.execute_on_ap(
            scores, valid_lengths=lengths, engine="reference"
        )
        assert np.array_equal(fused, on_ap)
        assert np.array_equal(fused, reference)
