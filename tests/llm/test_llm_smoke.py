"""Fast smoke tests for the LLM substrate.

Unlike the module-scoped training fixture of ``test_llm_substrate.py`` these
run a single tiny forward/backward step, a tokenizer round trip and a
two-segment perplexity evaluation pinned to a golden constant, so a broken
substrate fails in milliseconds with a precise signature.
"""

import numpy as np
import pytest

from repro.llm.config import LlamaConfig
from repro.llm.dataset import make_corpus
from repro.llm.model import TinyLlamaModel
from repro.llm.perplexity import evaluate_perplexity
from repro.llm.tokenizer import WordTokenizer
from repro.nn.functional import cross_entropy


def tiny_config(vocab_size: int) -> LlamaConfig:
    return LlamaConfig("golden-smoke", 1, 2, 2, 16, 32, vocab_size, 32)


class TestForwardBackward:
    def test_single_step_produces_finite_gradients(self):
        model = TinyLlamaModel(tiny_config(32), seed=0)
        tokens = np.arange(9, dtype=np.int64) % 32
        logits = model.forward(tokens[:-1])
        loss = cross_entropy(logits, tokens[1:])
        loss.backward()
        assert np.isfinite(loss.numpy())
        grads = [p.grad for p in model.parameters() if p.grad is not None]
        assert grads, "backward produced no gradients"
        assert all(np.all(np.isfinite(g)) for g in grads)
        assert any(np.any(g != 0) for g in grads)

    def test_forward_is_deterministic_for_fixed_seed(self):
        tokens = np.arange(6, dtype=np.int64) % 32
        first = TinyLlamaModel(tiny_config(32), seed=3).forward(tokens).numpy()
        second = TinyLlamaModel(tiny_config(32), seed=3).forward(tokens).numpy()
        assert np.array_equal(first, second)


class TestTokenizerRoundTrip:
    def test_round_trip_with_eos(self):
        tokenizer = WordTokenizer(["the quick brown fox the quick"], max_vocab=16)
        text = "quick fox the"
        ids = tokenizer.encode(text)
        assert ids[-1] == tokenizer.eos_id
        assert tokenizer.decode(ids[:-1]) == text

    def test_round_trip_through_corpus_tokenizer(self):
        corpus = make_corpus(paragraphs=8, seed=2, max_vocab=48)
        sample = corpus.validation_text.split()[:12]
        round_tripped = corpus.tokenizer.decode(
            corpus.tokenizer.encode(" ".join(sample), add_eos=False)
        )
        # Every known word survives; rare words may map to <unk>.
        assert len(round_tripped.split()) == len(sample)


class TestGoldenPerplexity:
    #: Perplexity of the untrained seed-0 tiny model on the first two
    #: 32-token validation segments of the seed-5 synthetic corpus.  The
    #: value is produced by the seed code base; any silent change to the
    #: model init, corpus generation, tokenizer or evaluation protocol
    #: shifts it.
    GOLDEN = 45.81547235918856

    def test_two_segment_perplexity_matches_golden(self):
        corpus = make_corpus(paragraphs=24, seed=5, max_vocab=64)
        model = TinyLlamaModel(tiny_config(corpus.tokenizer.vocab_size), seed=0)
        tokens = corpus.validation_tokens[:65]  # two segments + next token
        perplexity = evaluate_perplexity(model, tokens, segment_length=32)
        assert perplexity == pytest.approx(self.GOLDEN, rel=1e-9)

    def test_perplexity_bounded_by_vocabulary(self):
        corpus = make_corpus(paragraphs=24, seed=5, max_vocab=64)
        model = TinyLlamaModel(tiny_config(corpus.tokenizer.vocab_size), seed=0)
        perplexity = evaluate_perplexity(
            model, corpus.validation_tokens[:65], segment_length=32
        )
        # An untrained model must sit near (but below) uniform perplexity.
        assert 1.0 < perplexity < corpus.tokenizer.vocab_size
