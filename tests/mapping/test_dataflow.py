"""Tests for the Fig. 5 dataflow description."""

import pytest

from repro.mapping.dataflow import DataflowStep, StepKind, max_shift_amount, softmax_dataflow
from repro.quant.precision import BEST_PRECISION, PrecisionConfig


class TestSoftmaxDataflow:
    def test_sixteen_steps(self):
        steps = softmax_dataflow(BEST_PRECISION, 2048)
        assert len(steps) == 16
        assert [s.index for s in steps] == list(range(1, 17))

    def test_step_kinds_follow_fig5(self):
        steps = softmax_dataflow(BEST_PRECISION, 2048)
        kinds = [s.kind for s in steps]
        assert kinds[0] is StepKind.WRITE
        assert kinds[1] is StepKind.SUBTRACT
        assert kinds[13] is StepKind.REDUCTION
        assert kinds[15] is StepKind.DIVIDE

    def test_reduction_and_broadcast_are_not_elementwise(self):
        steps = softmax_dataflow(BEST_PRECISION, 1024)
        assert not steps[13].elementwise
        assert not steps[14].elementwise
        assert all(steps[i].elementwise for i in range(13))

    def test_widths_track_precision(self):
        for m in (4, 6, 8):
            config = PrecisionConfig(m, 0, 16)
            steps = softmax_dataflow(config, 512)
            assert steps[1].width == m                      # subtract vstable
            assert steps[11].width == 2 * m                 # write vc
            assert steps[15].width == config.result_column_bits
            assert steps[13].aux_width == 512               # reduced words

    def test_invalid_sequence_length(self):
        with pytest.raises(ValueError):
            softmax_dataflow(BEST_PRECISION, 0)

    def test_step_validation(self):
        with pytest.raises(ValueError):
            DataflowStep(0, "bad", StepKind.WRITE, width=4)
        with pytest.raises(ValueError):
            DataflowStep(1, "bad", StepKind.WRITE, width=4, aux_width=-1)


class TestMaxShiftAmount:
    def test_m6_default(self):
        # S = 7/63, vln2 = 6, most negative input is -63 -> q_max = 10.
        assert max_shift_amount(PrecisionConfig(6, 0, 16)) == 10

    def test_explicit_vln2(self):
        assert max_shift_amount(PrecisionConfig(6, 0, 16), vln2=3) == 21
