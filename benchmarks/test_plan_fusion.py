"""Fused-vs-loop benchmark: the compiled-plan layer's pinned speedup.

The acceptance workload is the Tables III/IV cluster shape — a
``(batch, heads, seq)`` attention-score tensor executed on the
:class:`~repro.mapping.cluster.ApCluster`.  The fused compiled-plan pass
(one wide head-major row space, fields kept packed end to end) must be
**bit-identical** to the PR 2 per-head loop (one per-operation engine
execution per head) and at least **3x faster** wall-clock; in practice the
gap is an order of magnitude or more.

This module is the CI ``benchmark-smoke`` target: it runs without
``--runslow`` and, when ``REPRO_PERF_DIR`` is set, writes the measured
timings as a JSON artifact so the perf trajectory can be tracked across
commits.
"""

import json
import os
import pathlib

from repro.runtime import get_experiment

#: Pinned wall-clock floor of the fused pass over the PR 2 per-head loop.
FUSED_SPEEDUP_FLOOR = 3.0


def _emit_perf_artifact(report) -> None:
    """Write the timing JSON artifact when REPRO_PERF_DIR is set."""
    perf_dir = os.environ.get("REPRO_PERF_DIR")
    if not perf_dir:
        return
    path = pathlib.Path(perf_dir)
    path.mkdir(parents=True, exist_ok=True)
    payload = {
        "benchmark": "fused-vs-loop",
        "workload": {
            "batch": report.batch,
            "heads": report.heads,
            "sequence_length": report.sequence_length,
        },
        "bit_identical": report.bit_identical,
        "fused_seconds": report.cluster_seconds,
        "per_head_loop_seconds": report.per_head_loop_seconds,
        "row_by_row_seconds": report.row_by_row_seconds,
        "fused_speedup": report.fused_speedup,
        "row_by_row_speedup": report.speedup,
        "pinned_floor": FUSED_SPEEDUP_FLOOR,
    }
    with open(path / "fused_speedup.json", "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def test_fused_cluster_pass_beats_per_head_loop(benchmark):
    """Pin: fused >= 3x over the PR 2 per-head loop, bit-identical."""
    experiment = get_experiment("cluster-parity")
    report = benchmark.pedantic(experiment.run, iterations=1, rounds=1)
    print()
    print(experiment.render(report))
    _emit_perf_artifact(report)
    assert report.bit_identical, "fused pass diverged from the loop baselines"
    assert report.fused_speedup >= FUSED_SPEEDUP_FLOOR, (
        f"fused pass only {report.fused_speedup:.1f}x faster than the "
        f"per-head loop (floor {FUSED_SPEEDUP_FLOOR:.0f}x)"
    )
