"""Minimal numpy neural-network substrate.

The perplexity sensitivity study (Tables III/IV) needs a language model that
can be (a) trained offline so its output distribution is meaningful and
(b) evaluated with the floating-point softmax swapped for the integer-only
approximation.  The paper uses the Llama2 checkpoints via PyTorch; this
reproduction builds the substrate from scratch:

* :mod:`repro.nn.autograd` — a small reverse-mode automatic differentiation
  engine over numpy arrays (:class:`Tensor`);
* :mod:`repro.nn.functional` — the operations a Llama-style block needs
  (matmul, RMSNorm, SiLU, causal softmax attention, cross entropy);
* :mod:`repro.nn.optim` — Adam.
"""

from repro.nn.autograd import Tensor, Parameter, no_grad
from repro.nn.functional import (
    add,
    mul,
    matmul,
    scale,
    rms_norm,
    silu,
    softmax_op,
    embedding,
    cross_entropy,
)
from repro.nn.optim import Adam

__all__ = [
    "Tensor",
    "Parameter",
    "no_grad",
    "add",
    "mul",
    "matmul",
    "scale",
    "rms_norm",
    "silu",
    "softmax_op",
    "embedding",
    "cross_entropy",
    "Adam",
]
