"""Compiled execution plans: lower the SoftmAP dataflow once, run it wide.

Until this module existed the hot path re-interpreted the Fig. 5 dataflow on
every call: :meth:`~repro.mapping.softmap.SoftmAPMapping.execute_functional_batch`
re-derived field widths, re-allocated AP fields and re-dispatched the same
sixteen steps through Python for every head of every layer of every pass.
The plan layer splits that into the classic *lower once / execute many*
pipeline:

``compile`` (once per shape)
    :class:`ExecutionPlan` resolves everything that does not depend on the
    score values — quantizer constants, every field width and column, the
    lowered instruction sequence (:class:`PlanOp`) and the analytical
    Table II cost of each dataflow step (:class:`StepCost`).

``execute`` (per score tensor)
    The lowered program runs over the whole workload as **one fused,
    head-major row space**: every softmax vector is a contiguous
    ``segment_length``-row block, heads/batches are just more segments, and
    the segmented reduce/broadcast keeps each vector summing only its own
    block.  Two substrates execute the same program:

    * ``engine="vectorized"`` — the fused packed path: each field lives as
      one ``uint64`` word per row (the :class:`~repro.ap.engine.BitPlaneEngine`
      representation) for the *whole* program, so no per-step scatter/gather
      through the CAM bit matrix remains.  Bit-identical to the AP and
      orders of magnitude faster.
    * ``engine="reference"`` — the program is interpreted on the bit-serial
      functional AP, the paper-faithful ground truth.

    :meth:`ExecutionPlan.execute_on_ap` additionally exposes the pre-plan
    execution mode (per-operation engine sweeps over a real CAM) for
    parity pins and benchmarks against the PR 2 per-head loop.

``plan_passes`` (tiling)
    The planner owns workload tiling: when ``vectors × segment_length``
    words exceed a pass budget the workload is split into
    :class:`WorkloadPass` chunks, which the cluster feeds through its
    two-stage :class:`~repro.mapping.cluster.ClusterSchedule` pipeline —
    opening long-sequence and many-vector workloads a one-AP-per-head
    wiring cannot express.

Every fused execution is bit-identical to the per-head loop (pinned by
``tests/mapping/test_plan.py`` and the cluster parity experiment).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.ap.cost import ApCostModel, OperationCost
from repro.ap.engine import (
    MAX_FIELD_BITS,
    canonical_engine_name,
    engine_info,
    resolve_plan_executor,
)
from repro.ap.processor2d import AssociativeProcessor2D
from repro.ap.tech import TECH_16NM, TechnologyParameters
from repro.mapping.dataflow import (
    DataflowStep,
    StepKind,
    max_shift_amount,
    softmax_dataflow,
)
from repro.quant.precision import BEST_PRECISION, PrecisionConfig
from repro.quant.quantizer import ClippedSoftmaxInputQuantizer
from repro.reliability import faults
from repro.softmax.polynomial import IExpPolynomial
from repro.utils.bitwidth import bits_for_unsigned
from repro.utils.validation import check_positive_int

__all__ = [
    "BufferPlan",
    "ExecutionPlan",
    "MappingCost",
    "PackedExecutor",
    "PlanField",
    "PlanOp",
    "PlanTelemetry",
    "StepCost",
    "WorkloadPass",
    "multiplication_cycles_general",
    "plan_buffers",
    "plan_passes",
]

_ONE = np.uint64(1)
_ZERO = np.uint64(0)


def _mask(bits: int) -> np.uint64:
    """All-ones mask covering the low ``bits`` bits (``bits <= 63``)."""
    return np.uint64((1 << bits) - 1)


# --------------------------------------------------------------------------- #
# Analytical cost records (moved here from repro.mapping.softmap: the plan
# is now the single owner of per-step cost derivation)                         #
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class StepCost:
    """Cost of one dataflow step."""

    step: DataflowStep
    cost: OperationCost


@dataclass(frozen=True)
class MappingCost:
    """Aggregate cost of one softmax pass on one AP."""

    steps: List[StepCost]
    total: OperationCost
    rows: int
    columns: int
    area_mm2: float

    @property
    def cycles(self) -> float:
        """Total compare/write cycles of the pass."""
        return self.total.cycles

    @property
    def latency_s(self) -> float:
        """Latency of the pass in seconds."""
        return self.total.latency_s

    @property
    def energy_j(self) -> float:
        """Energy of the pass in joules."""
        return self.total.energy_j


def multiplication_cycles_general(width: int, multiplier_bits: int) -> int:
    """Table II multiplication generalised to unequal operand widths:
    ``2*width`` operand cycles, ``8*width*multiplier`` shift-add cycles and
    ``2*width`` result handling (reduces to ``2M + 8M^2 + 2M`` when both
    operands are ``M`` bits wide)."""
    check_positive_int(width, "width")
    check_positive_int(multiplier_bits, "multiplier_bits")
    return 2 * width + 8 * width * multiplier_bits + 2 * width


def _analytic_step_cost(
    step: DataflowStep,
    model: ApCostModel,
    words_per_row: int,
    division: str,
    precision: PrecisionConfig,
) -> OperationCost:
    """Translate one dataflow step into Table II / technology-model cost."""
    if step.kind is StepKind.WRITE:
        return model.write(step.width)
    if step.kind is StepKind.SUBTRACT:
        return model.subtraction(step.width)
    if step.kind is StepKind.ADD:
        return model.addition(step.width)
    if step.kind is StepKind.COPY:
        return model.copy(step.width)
    if step.kind is StepKind.MULTIPLY:
        multiplier = step.aux_width if step.aux_width else step.width
        cycles = multiplication_cycles_general(step.width, multiplier)
        return model.cost_from_cycles(f"mul[{step.width}x{multiplier}b]", cycles)
    if step.kind is StepKind.SHIFT:
        addition = model.addition(step.width)
        shift = model.variable_shift(step.width, step.aux_width)
        combined = addition + shift
        return OperationCost(
            name=f"add+shift[{step.width}b]",
            cycles=combined.cycles,
            latency_s=combined.latency_s,
            energy_j=combined.energy_j,
        )
    if step.kind is StepKind.REDUCTION:
        return model.reduction(
            step.width, words=step.aux_width, words_per_row=words_per_row
        )
    if step.kind is StepKind.DIVIDE:
        vapprox = precision.vapprox_bits
        fraction = max(0, step.width - vapprox)
        if division == "restoring":
            return model.division(
                dividend_bits=vapprox,
                divisor_bits=step.aux_width,
                fraction_bits=fraction,
            )
        # Reciprocal mode: the controller computes 1/sum once (off the CAM
        # critical path) and the AP multiplies vapprox by the reciprocal in
        # ``result_column_bits`` fixed-point precision.
        cycles = multiplication_cycles_general(vapprox, step.width)
        return model.cost_from_cycles(f"recip-mul[{vapprox}x{step.width}b]", cycles)
    raise ValueError(f"unknown step kind {step.kind!r}")


# --------------------------------------------------------------------------- #
# Lowered program representation                                               #
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class PlanField:
    """One resolved AP field of the lowered program."""

    name: str
    bits: int


@dataclass(frozen=True)
class PlanOp:
    """One lowered instruction.

    ``op`` names the executor primitive; operands are field names resolved
    against the plan's layout.  ``step`` records the Fig. 5 dataflow step
    the instruction realises (for reporting).

    ========================  ==================================================
    opcode                    semantics
    ========================  ==================================================
    ``write_input``           load the quantized ``z`` words into ``dest``
    ``write_const``           broadcast ``value`` to every row of ``dest``
    ``multiply``              ``dest <- a * b`` truncated to the field width
    ``copy``                  ``dest <- a >> shift`` (zero-extend / truncate)
    ``subtract``              in-place ``a <- a - b`` modulo the field width
    ``add``                   in-place ``b <- b + a`` modulo the field width
    ``shift_right``           barrel shift ``dest <- a >> b`` over ``stages``
    ``mask_padding``          zero ``dest`` in the padding rows (if any)
    ``reduce_broadcast``      per-``segment`` sum of ``a`` into ``dest``,
                              broadcast to every row of the segment
    ``divide``                ``dest <- (a << fraction_bits) / b`` (restoring)
    ========================  ==================================================
    """

    op: str
    dest: Optional[str] = None
    a: Optional[str] = None
    b: Optional[str] = None
    value: int = 0
    shift: int = 0
    stages: int = 0
    fraction_bits: int = 0
    remainder: Optional[str] = None
    step: int = 0


# --------------------------------------------------------------------------- #
# Buffer liveness: fields -> scratch-arena slots                               #
# --------------------------------------------------------------------------- #
def _op_reads(op: PlanOp) -> Tuple[str, ...]:
    """Field names one lowered instruction reads."""
    if op.op in ("multiply", "shift_right", "subtract", "add", "divide"):
        return tuple(name for name in (op.a, op.b) if name is not None)
    if op.op in ("copy", "reduce_broadcast"):
        return (op.a,) if op.a is not None else ()
    if op.op == "mask_padding":
        # Reads and rewrites its destination in place.
        return (op.dest,) if op.dest is not None else ()
    return ()


def _op_writes(op: PlanOp) -> Tuple[str, ...]:
    """Field names one lowered instruction writes."""
    if op.op == "subtract":
        return (op.a,)
    if op.op == "add":
        return (op.b,)
    if op.op == "divide":
        return tuple(name for name in (op.dest, op.remainder) if name is not None)
    return (op.dest,) if op.dest is not None else ()


@dataclass(frozen=True)
class BufferPlan:
    """The lowering layer's buffer-liveness result: fields -> arena slots.

    Computed once per compiled plan from the lowered :class:`PlanOp` list:
    every *vector* field (one word per AP row) gets a first/last-use
    interval and a slot in a preallocated scratch arena, assigned by linear
    scan so fields with disjoint live ranges share storage.  The peak slot
    count — ``num_slots``, the arena height a compiled executor has to
    allocate — is what :class:`PlanTelemetry` reports as ``arena_slots``.

    Three field classes never consume a slot:

    * ``scalar_fields`` — fields whose only writes are ``write_const`` and
      that are never mutated row-wise (``mu``/``vln2``/``vc``): their value
      is one compile-time constant, folded into the consuming instructions.
    * ``dead_fields`` — fields written but never read and not the program
      result (the division ``rem`` scratch): a word-level executor never
      materialises them (the bit-serial AP needs the physical columns, a
      numpy ``floor_divide`` does not).
    * fields absent from the program entirely.

    Slot assignment is conservative: a destination never shares a slot with
    an operand of the same instruction (a freed interval becomes reusable
    only *after* the instruction that last reads it), so in-place execution
    against the arena can never read a half-overwritten operand.
    """

    slots: Dict[str, int]
    num_slots: int
    scalar_fields: Tuple[str, ...]
    dead_fields: Tuple[str, ...]
    first_use: Dict[str, int]
    last_use: Dict[str, int]


def plan_buffers(
    program: Tuple[PlanOp, ...],
    fields: Tuple[PlanField, ...],
    result: str = "out",
) -> BufferPlan:
    """Run the buffer-liveness pass over one lowered program.

    ``result`` names the field whose final value is the program output; it
    is kept live through the end of the program regardless of its last
    textual read.
    """
    field_names = {field.name for field in fields}
    writes_by_field: Dict[str, List[str]] = {}
    read_fields: set = set()
    for op in program:
        for name in _op_writes(op):
            writes_by_field.setdefault(name, []).append(op.op)
        read_fields.update(_op_reads(op))

    scalar_fields = tuple(
        name
        for name in (field.name for field in fields)
        if writes_by_field.get(name) and
        all(write == "write_const" for write in writes_by_field[name])
    )
    scalar_set = set(scalar_fields)
    dead_fields = tuple(
        name
        for name in (field.name for field in fields)
        if name in writes_by_field
        and name not in read_fields
        and name != result
        and name not in scalar_set
    )
    dead_set = set(dead_fields)

    first_use: Dict[str, int] = {}
    last_use: Dict[str, int] = {}
    for index, op in enumerate(program):
        for name in (*_op_reads(op), *_op_writes(op)):
            if name in scalar_set or name in dead_set:
                continue
            if name not in field_names:
                raise ValueError(f"op {index} references unknown field {name!r}")
            first_use.setdefault(name, index)
            last_use[name] = index
    if result in last_use:
        # The result is read by whoever executes the plan, after the
        # program's final instruction.
        last_use[result] = len(program)

    # Linear scan over the op list: release a field's slot only after the
    # instruction that last touches it, so a same-instruction destination
    # can never alias a live operand.
    slots: Dict[str, int] = {}
    free: List[int] = []
    num_slots = 0
    expiring: Dict[int, List[str]] = {}
    for name, end in last_use.items():
        expiring.setdefault(end, []).append(name)
    starting: Dict[int, List[str]] = {}
    for name, start in first_use.items():
        starting.setdefault(start, []).append(name)
    for index in range(len(program) + 1):
        for name in starting.get(index, ()):
            if free:
                slots[name] = free.pop()
            else:
                slots[name] = num_slots
                num_slots += 1
        for name in expiring.get(index, ()):
            free.append(slots[name])
    return BufferPlan(
        slots=slots,
        num_slots=num_slots,
        scalar_fields=scalar_fields,
        dead_fields=dead_fields,
        first_use=first_use,
        last_use=last_use,
    )


# --------------------------------------------------------------------------- #
# Workload tiling                                                              #
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class WorkloadPass:
    """One planner-produced chunk of a fused workload.

    ``start``/``vectors`` index softmax vectors (segments) of the head-major
    row space; ``words`` is the number of AP words the pass occupies
    (``vectors * segment_length``).
    """

    start: int
    vectors: int
    words: int


@dataclass(frozen=True)
class PlanTelemetry:
    """Plan-level execution telemetry attached to a ``SoftmaxResult``.

    Records how the runtime actually executed a pass: whether the fused
    plan path ran, on which engine, how the planner tiled the workload,
    and — since the compiled engine tier — the scratch-arena footprint and
    wall-clock of the execution.

    ``arena_slots`` is the buffer-liveness pass's peak slot count (the
    height of the scratch arena a compiled executor allocates);
    ``arena_bytes`` the bytes the executing engine has actually allocated
    for arenas (0 for engines that do not use one); ``threaded_passes``
    how many planner passes ran on a worker thread (0 for serial
    execution); ``wall_seconds`` the measured wall-clock of the execution
    that produced this telemetry (0.0 where the caller did not time it).

    Since the serving layer landed the record also describes cluster-wide
    utilization: ``row_budget`` is the ``pass_row_budget`` the planner
    tiled against (0 when unbudgeted — one pass holds the whole workload),
    and ``queue_depth`` how many coalesced serving requests shared this
    execution (0 outside the serving layer).  :attr:`words_total` /
    :attr:`occupancy` derive the rows-used-vs-budget report from those.

    Since the reliability layer, ``retries`` / ``backoff_ms`` record how
    many serving-side retry attempts preceded the execution that finally
    succeeded and the total backoff slept between them (both 0 outside
    the serving layer's retry path).
    """

    fused: bool
    engine: str
    passes: int
    vectors: int
    segment_length: int
    words_per_pass: Tuple[int, ...]
    arena_slots: int = 0
    arena_bytes: int = 0
    threaded_passes: int = 0
    wall_seconds: float = 0.0
    row_budget: int = 0
    queue_depth: int = 0
    retries: int = 0
    backoff_ms: float = 0.0

    @property
    def words_total(self) -> int:
        """AP words occupied across every planner pass of the execution."""
        return sum(self.words_per_pass)

    @property
    def occupancy(self) -> float:
        """Fraction of the provisioned pass rows the workload actually used.

        ``words_total / (passes * row_budget)`` under a ``pass_row_budget``;
        1.0 when unbudgeted (a single fused pass is exactly as wide as its
        workload, so the row space has no idle provisioned rows).
        """
        if self.row_budget <= 0 or self.passes == 0:
            return 1.0
        return self.words_total / (self.passes * self.row_budget)


def plan_passes(
    vectors: int, segment_length: int, row_budget: Optional[int] = None
) -> List[WorkloadPass]:
    """Tile ``vectors`` softmax vectors of ``segment_length`` words each.

    With no ``row_budget`` the whole workload is one fused pass.  With a
    budget, as many whole vectors as fit the budget are packed per pass
    (a vector's segmented reduction cannot straddle passes, so one segment
    must fit: ``segment_length <= row_budget``).
    """
    check_positive_int(vectors, "vectors")
    check_positive_int(segment_length, "segment_length")
    if row_budget is None:
        return [WorkloadPass(0, vectors, vectors * segment_length)]
    check_positive_int(row_budget, "row_budget")
    if segment_length > row_budget:
        raise ValueError(
            f"one {segment_length}-word segment does not fit the "
            f"{row_budget}-word pass budget (a softmax vector cannot be "
            f"split across passes)"
        )
    per_pass = row_budget // segment_length
    passes: List[WorkloadPass] = []
    for start in range(0, vectors, per_pass):
        count = min(per_pass, vectors - start)
        passes.append(WorkloadPass(start, count, count * segment_length))
    return passes


# --------------------------------------------------------------------------- #
# The compiled plan                                                            #
# --------------------------------------------------------------------------- #
class ExecutionPlan:
    """The SoftmAP dataflow lowered for one (precision, sequence) shape.

    Instances are immutable after construction and shared freely: the
    cluster keeps **one** plan per runtime sequence length regardless of
    head count.  Construction *is* compilation — constants, field layout,
    lowered program and per-step analytical costs are all resolved here.

    Parameters mirror :class:`~repro.mapping.softmap.SoftmAPMapping` (which
    caches plans per runtime shape); ``output_fraction_bits`` defaults to
    the ``2M + 12`` result-column width.
    """

    def __init__(
        self,
        precision: PrecisionConfig = BEST_PRECISION,
        sequence_length: int = 2048,
        words_per_row: int = 2,
        columns: int = 64,
        tech: TechnologyParameters = TECH_16NM,
        division: str = "restoring",
        clip_threshold: Optional[float] = None,
        engine: str = "vectorized",
        output_fraction_bits: Optional[int] = None,
    ) -> None:
        self.precision = precision
        self.sequence_length = check_positive_int(sequence_length, "sequence_length")
        self.words_per_row = check_positive_int(words_per_row, "words_per_row")
        self.division = division
        self.engine = canonical_engine_name(engine)
        self.quantizer = ClippedSoftmaxInputQuantizer(
            bits=precision.input_bits, clip_threshold=clip_threshold
        )
        self.polynomial = IExpPolynomial(
            input_bits=precision.input_bits, barrett_correction=False
        )
        self.constants = self.polynomial.constants(self.quantizer.scale)
        if output_fraction_bits is None:
            output_fraction_bits = precision.result_column_bits
        self.output_fraction_bits = check_positive_int(
            output_fraction_bits, "output_fraction_bits"
        )

        # ---- analytical view: the 16 costed dataflow steps ---------------- #
        # Ceil division: an odd sequence length still occupies a final,
        # partly filled row (floor division would silently drop its word).
        self.rows = -(-self.sequence_length // self.words_per_row)
        self.cost_columns = check_positive_int(columns, "columns")
        self.cost_model = ApCostModel(
            rows=self.rows, columns=self.cost_columns, tech=tech
        )
        self.dataflow_steps: Tuple[DataflowStep, ...] = tuple(
            softmax_dataflow(precision, self.sequence_length, vln2=self.constants.vln2)
        )
        step_costs: List[StepCost] = []
        for step in self.dataflow_steps:
            cost = _analytic_step_cost(
                step, self.cost_model, self.words_per_row, self.division, precision
            )
            if step.elementwise and self.words_per_row > 1:
                cost = cost.scaled(self.words_per_row, name=cost.name)
            step_costs.append(StepCost(step=step, cost=cost))
        self.step_costs: Tuple[StepCost, ...] = tuple(step_costs)
        self._cost: Optional[MappingCost] = None

        # ---- functional view: resolved layout + lowered program ----------- #
        constants = self.constants
        m = precision.input_bits
        n = self.sequence_length
        shift_bits = max(
            1, bits_for_unsigned(max_shift_amount(precision, constants.vln2))
        )
        mu_bits = max(1, bits_for_unsigned(constants.mu))
        product_bits = m + mu_bits
        q_bits = max(1, product_bits - 2 * m) + 1
        vb_bits = max(1, bits_for_unsigned(constants.vb))
        vc_bits = max(1, bits_for_unsigned(constants.vc))
        poly_bits = 2 * (vb_bits + 1) + max(vc_bits - 2 * vb_bits, 0) + 2
        vapprox_bits = poly_bits
        sum_bits = vapprox_bits + max(1, bits_for_unsigned(max(n - 1, 1)))
        out_bits = vapprox_bits + self.output_fraction_bits
        vln2_bits = max(4, bits_for_unsigned(constants.vln2))
        stages = min(shift_bits, q_bits)

        self.columns_needed = (
            m                      # z
            + m                    # max / vln2 scratch
            + mu_bits              # mu
            + product_bits         # z * mu
            + q_bits * 2 + 4       # q and q * vln2
            + 2 * (vb_bits + 1)    # vb - r and its copy
            + poly_bits            # polynomial
            + vc_bits
            + vapprox_bits
            + sum_bits * 2
            + out_bits
            + sum_bits + 2         # division remainder
            + 8
        )
        self.fields: Tuple[PlanField, ...] = (
            PlanField("z", m),
            PlanField("mu", mu_bits),
            PlanField("z_mu", product_bits),
            PlanField("vln2", vln2_bits),
            PlanField("q", q_bits),
            PlanField("q_vln2", q_bits + vln2_bits),
            PlanField("r", m),
            PlanField("w", vb_bits + 1),
            PlanField("w_copy", vb_bits + 1),
            PlanField("w_sq", poly_bits),
            PlanField("vc", vc_bits),
            PlanField("vapprox", vapprox_bits),
            PlanField("sum", sum_bits),
            PlanField("out", out_bits),
            PlanField("rem", sum_bits + 1),
        )
        self._bits: Dict[str, int] = {f.name: f.bits for f in self.fields}
        self.program: Tuple[PlanOp, ...] = (
            # Step 1: write v (as z = max(v) - v); step 2 is folded into z
            # because the functional mapping tracks the magnitude.
            PlanOp("write_input", dest="z", step=1),
            # Steps 3-4: Barrett quotient q = (z * mu) >> 2M.
            PlanOp("write_const", dest="mu", value=constants.mu, step=3),
            PlanOp("multiply", a="z", b="mu", dest="z_mu", step=4),
            PlanOp("write_const", dest="vln2", value=constants.vln2, step=5),
            PlanOp("copy", a="z_mu", dest="q", shift=2 * m, step=4),
            # Step 6: q * vln2.
            PlanOp("multiply", a="q", b="vln2", dest="q_vln2", step=6),
            # Step 7: r = z - q*vln2 = z mod vln2 (so vcorr = -r).
            PlanOp("copy", a="z", dest="r", step=7),
            PlanOp("subtract", a="r", b="q_vln2", step=7),
            # Steps 8-9: w = vb - r (= vcorr + vb).
            PlanOp("write_const", dest="w", value=constants.vb, step=8),
            PlanOp("subtract", a="w", b="r", step=9),
            # Steps 10-11: copy w, then square it (multiplicand and
            # multiplier predicate must live in different columns).
            PlanOp("copy", a="w", dest="w_copy", step=10),
            PlanOp("multiply", a="w_copy", b="w", dest="w_sq", step=11),
            # Steps 12-13: add vc, then shift right by q.
            PlanOp("write_const", dest="vc", value=constants.vc, step=12),
            PlanOp("add", a="vc", b="w_sq", step=13),
            PlanOp("shift_right", a="w_sq", b="q", dest="vapprox",
                   stages=stages, step=13),
            # Null padding words so they contribute nothing to the segmented
            # sum and divide to an all-zero output word.
            PlanOp("mask_padding", dest="vapprox"),
            # Steps 14-15: segmented reduction + broadcast of the sum.
            PlanOp("reduce_broadcast", a="vapprox", dest="sum", step=14),
            # Step 16: divide (fixed point with output_fraction_bits).
            PlanOp("divide", a="vapprox", b="sum", dest="out", remainder="rem",
                   fraction_bits=self.output_fraction_bits, step=16),
        )
        #: Whether every field fits the packed-word representation; when it
        #: does not (exotic custom widths), vectorized execution falls back
        #: to the per-operation engine on the functional AP.
        self.packable = all(f.bits <= MAX_FIELD_BITS for f in self.fields)
        #: Buffer-liveness result: vector fields assigned to scratch-arena
        #: slots, scalar constants folded out, dead scratch dropped.
        self.buffers: BufferPlan = plan_buffers(self.program, self.fields)
        # Plan executors (engine name -> executor instance), built lazily on
        # first dispatch.  Plain-dict access is safe under concurrent
        # passes: a rare double construction just discards one instance.
        self._executors: Dict[str, object] = {}

    # ------------------------------------------------------------------ #
    # Analytical cost                                                      #
    # ------------------------------------------------------------------ #
    def cost(self) -> MappingCost:
        """The compiled Table II / technology cost of one pass."""
        if self._cost is None:
            total = OperationCost.zero("softmap")
            for step_cost in self.step_costs:
                total = total + step_cost.cost
            total = OperationCost(
                name="softmap-pass",
                cycles=total.cycles,
                latency_s=total.latency_s,
                energy_j=total.energy_j,
            )
            self._cost = MappingCost(
                steps=list(self.step_costs),
                total=total,
                rows=self.rows,
                columns=self.cost_columns,
                area_mm2=self.cost_model.area_mm2(),
            )
        return self._cost

    # ------------------------------------------------------------------ #
    # Execution                                                            #
    # ------------------------------------------------------------------ #
    def execute(
        self,
        scores: np.ndarray,
        valid_lengths: Optional[np.ndarray] = None,
        engine: Optional[str] = None,
    ) -> np.ndarray:
        """Run the plan over a ``(vectors, segment_length)`` score tensor.

        Engines with a registered plan executor (``"vectorized"``'s fused
        packed path, ``"compiled"``'s scratch-arena executor) run the whole
        row space in one wide invocation; ``"reference"`` interprets the
        program on the bit-serial functional AP.  Results are bit-identical
        across every engine and to the pre-plan per-head loop.
        """
        engine = canonical_engine_name(engine) if engine is not None else self.engine
        faults.fire(f"engine:{engine}")
        z, pad_mask, batch = self._prepare(scores, valid_lengths)
        info = engine_info(engine)
        if info.plan_executor is not None and self.packable:
            out = self.plan_executor(engine).run(z, pad_mask, batch)
        else:
            # Plan-only engines cannot serve per-operation CAM sweeps; a
            # non-packable layout falls back to the packed-word AP engine.
            ap_engine = engine if info.supports_processor else "vectorized"
            out = self._run_ap(z, pad_mask, batch, ap_engine)
        return out * (2.0 ** -self.output_fraction_bits)

    def plan_executor(self, engine: Optional[str] = None):
        """The (cached) plan-executor instance for ``engine``.

        Resolved through the engine registry's lazy ``module:attribute``
        reference; one executor is built per (plan, engine) pair and holds
        the engine's reusable execution state (the compiled engine's
        scratch-arena pool).
        """
        engine = canonical_engine_name(engine) if engine is not None else self.engine
        executor = self._executors.get(engine)
        if executor is None:
            executor = resolve_plan_executor(engine)(self)
            self._executors.setdefault(engine, executor)
            executor = self._executors[engine]
        return executor

    def arena_bytes(self, engine: Optional[str] = None) -> int:
        """Scratch-arena bytes the engine's executor has allocated so far.

        0 for engines without a plan executor or whose executor has not
        run yet, and for executors that do not preallocate scratch (the
        packed path allocates per call).
        """
        engine = canonical_engine_name(engine) if engine is not None else self.engine
        executor = self._executors.get(engine)
        return int(getattr(executor, "arena_bytes", 0)) if executor else 0

    def execute_on_ap(
        self,
        scores: np.ndarray,
        valid_lengths: Optional[np.ndarray] = None,
        engine: Optional[str] = None,
    ) -> np.ndarray:
        """Interpret the lowered program on the functional AP.

        This is the pre-plan execution mode — every instruction issued as
        CAM compare/write sweeps through the selected per-operation engine.
        It is the ground-truth substrate the fused path is pinned against
        (and the PR 2 baseline of the fused-vs-loop benchmark).  Plan-only
        engines (``"compiled"``) have no per-operation mode and are
        rejected with a did-you-mean suggestion.
        """
        engine = engine if engine is not None else self.engine
        engine = canonical_engine_name(engine, processor=True)
        z, pad_mask, batch = self._prepare(scores, valid_lengths)
        out = self._run_ap(z, pad_mask, batch, engine)
        return out * (2.0 ** -self.output_fraction_bits)

    # ------------------------------------------------------------------ #
    # Internals                                                            #
    # ------------------------------------------------------------------ #
    def _prepare(
        self, scores: np.ndarray, valid_lengths: Optional[np.ndarray]
    ) -> Tuple[np.ndarray, Optional[np.ndarray], int]:
        """Validate, causally mask and quantize one score tensor."""
        scores = np.asarray(scores, dtype=np.float64)
        if scores.ndim != 2:
            raise ValueError("the plan executes a (batch, seq) score tensor")
        if scores.shape[1] != self.sequence_length:
            raise ValueError(
                f"plan compiled for sequence length {self.sequence_length}, "
                f"got {scores.shape[1]}"
            )
        pad_mask = None  # (batch, seq) boolean, True at padding positions
        if valid_lengths is not None:
            valid_lengths = np.asarray(valid_lengths, dtype=np.int64)
            if valid_lengths.shape != (scores.shape[0],):
                raise ValueError(
                    f"valid_lengths must have shape ({scores.shape[0]},), "
                    f"got {valid_lengths.shape}"
                )
            if np.any(valid_lengths < 1) or np.any(valid_lengths > scores.shape[1]):
                raise ValueError(
                    "valid_lengths must lie in 1..seq for every vector"
                )
            if np.any(valid_lengths < scores.shape[1]):
                pad_mask = (
                    np.arange(scores.shape[1])[None, :] >= valid_lengths[:, None]
                )
                # Padding scores must not influence the per-vector maximum
                # used for stabilisation.
                scores = np.where(pad_mask, -np.inf, scores)
        quantized = self.quantizer.quantize(scores, stabilise=True)
        z = (-quantized.values).astype(np.int64).ravel()  # z = -vstable >= 0
        return z, pad_mask, scores.shape[0]

    def _run_packed(
        self, z: np.ndarray, pad_mask: Optional[np.ndarray], batch: int
    ) -> np.ndarray:
        """The fused wide pass: the whole program on packed uint64 words.

        Field values stay in the engine's packed representation end to end;
        each opcode reproduces the corresponding engine primitive's modulo
        semantics exactly (truncating multiplies, wrapping subtracts, the
        divisor-zero saturation of restoring division), so the result is
        bit-identical to the per-operation AP execution.
        """
        n = self.sequence_length
        bits = self._bits
        state: Dict[str, np.ndarray] = {}
        for op in self.program:
            if op.op == "write_input":
                state[op.dest] = z.astype(np.uint64)
            elif op.op == "write_const":
                state[op.dest] = np.uint64(op.value)
            elif op.op == "multiply":
                state[op.dest] = (state[op.a] * state[op.b]) & _mask(bits[op.dest])
            elif op.op == "copy":
                value = state[op.a]
                if op.shift:
                    value = value >> np.uint64(op.shift)
                state[op.dest] = value & _mask(bits[op.dest])
            elif op.op == "subtract":
                width = bits[op.a]
                state[op.a] = (
                    state[op.a] - (state[op.b] & _mask(width))
                ) & _mask(width)
            elif op.op == "add":
                width = bits[op.b]
                state[op.b] = (
                    state[op.b] + (state[op.a] & _mask(width))
                ) & _mask(width)
            elif op.op == "shift_right":
                current = state[op.a] & _mask(bits[op.dest])
                shift = state[op.b]
                for k in range(op.stages):
                    offset = 1 << k
                    predicate = ((shift >> np.uint64(k)) & _ONE).astype(bool)
                    if offset >= 64:
                        shifted = np.zeros_like(current)
                    else:
                        shifted = current >> np.uint64(offset)
                    current = np.where(predicate, shifted, current)
                state[op.dest] = current
            elif op.op == "mask_padding":
                if pad_mask is not None:
                    state[op.dest] = np.where(
                        pad_mask.ravel(), _ZERO, state[op.dest]
                    )
            elif op.op == "reduce_broadcast":
                totals = state[op.a].reshape(batch, n).sum(
                    axis=1, dtype=np.uint64
                ) & _mask(bits[op.dest])
                state[op.dest] = np.repeat(totals, n)
            elif op.op == "divide":
                dividend = state[op.a]
                divisor = state[op.b]
                total_bits = bits[op.a] + op.fraction_bits
                numerator = dividend << np.uint64(op.fraction_bits)
                quotient = numerator // np.maximum(divisor, _ONE)
                quotient = np.where(divisor > 0, quotient, _mask(total_bits))
                state[op.dest] = quotient & _mask(bits[op.dest])
            else:  # pragma: no cover - lowering and executor move together
                raise ValueError(f"unknown plan opcode {op.op!r}")
        return state["out"].astype(np.float64).reshape(batch, n)

    def _run_ap(
        self,
        z: np.ndarray,
        pad_mask: Optional[np.ndarray],
        batch: int,
        engine: str,
    ) -> np.ndarray:
        """Interpret the program on one wide functional 2D AP."""
        n = self.sequence_length
        ap = AssociativeProcessor2D(
            rows=batch * n, columns=self.columns_needed, backend=engine
        )
        fields = {
            spec.name: ap.allocate_field(spec.name, spec.bits)
            for spec in self.fields
        }
        for op in self.program:
            if op.op == "write_input":
                ap.write_field(fields[op.dest], z)
            elif op.op == "write_const":
                ap.write_constant(fields[op.dest], op.value)
            elif op.op == "multiply":
                ap.multiply(fields[op.a], fields[op.b], fields[op.dest])
            elif op.op == "copy":
                source = fields[op.a]
                if op.shift:
                    source = ap.shifted_view(source, op.shift)
                ap.copy(source, fields[op.dest])
            elif op.op == "subtract":
                ap.subtract(fields[op.a], fields[op.b])
            elif op.op == "add":
                ap.add(fields[op.a], fields[op.b])
            elif op.op == "shift_right":
                ap.shift_right_variable(
                    fields[op.a], fields[op.b], fields[op.dest],
                    max_shift_bits=op.stages,
                )
            elif op.op == "mask_padding":
                if pad_mask is not None:
                    ap.clear_rows(fields[op.dest], pad_mask.ravel())
            elif op.op == "reduce_broadcast":
                ap.reduce_and_broadcast_segments(
                    fields[op.a], fields[op.dest], n
                )
            elif op.op == "divide":
                ap.divide(
                    fields[op.a], fields[op.b], fields[op.dest],
                    fields[op.remainder], fraction_bits=op.fraction_bits,
                )
            else:  # pragma: no cover - lowering and executor move together
                raise ValueError(f"unknown plan opcode {op.op!r}")
        return ap.read_field(fields["out"]).astype(np.float64).reshape(batch, n)


# --------------------------------------------------------------------------- #
# Plan executors                                                               #
# --------------------------------------------------------------------------- #
class PackedExecutor:
    """The ``"vectorized"`` engine's plan executor: the fused packed path.

    A thin adapter satisfying the registry's plan-executor protocol
    (``factory(plan) -> object with run(z, pad_mask, batch)``) over
    :meth:`ExecutionPlan._run_packed` — the dict-of-arrays interpreter that
    allocates fresh temporaries per instruction.  The ``"compiled"``
    engine (:class:`repro.ap.compiled.CompiledEngine`) is the
    buffer-planned, allocation-free successor.
    """

    #: Allocates per call; no preallocated scratch arena to report.
    arena_bytes = 0

    def __init__(self, plan: ExecutionPlan) -> None:
        self._plan = plan

    def run(
        self, z: np.ndarray, pad_mask: Optional[np.ndarray], batch: int
    ) -> np.ndarray:
        return self._plan._run_packed(z, pad_mask, batch)
