"""In-repo benchmark trajectory files (``BENCH_*.json``).

The pinned-floor benchmarks under ``benchmarks/`` guard against
regressions *within* one run, but the measured numbers themselves used to
evaporate with the CI artifact.  This module appends each benchmark's
headline metrics to a committed, append-mode JSON file at the repo root —
one file per benchmark (``BENCH_llm_speed.json``, ``BENCH_llm_generate.json``,
``BENCH_plan_fusion.json``) — so the speed trajectory across PRs is
reviewable in-repo, next to the code that moved it.

Writing is opt-in: nothing happens unless ``REPRO_BENCH_TRAJECTORY_DIR``
names the directory holding the trajectory files (the repo root for
committed updates, ``.`` in CI for the uploaded artifact).  The entry is
labelled by ``REPRO_BENCH_PR`` (default ``"dev"``); re-running a benchmark
under the same label replaces that label's entry instead of appending a
duplicate, so local iteration converges to one row per PR.  Wall-clock
numbers are machine-dependent, so every entry carries a platform
fingerprint — compare trajectories per machine, not across them.
"""

from __future__ import annotations

import json
import os
import platform
from typing import Any, Dict, Optional

import numpy as np

__all__ = [
    "SCHEMA",
    "trajectory_path",
    "machine_fingerprint",
    "record_benchmark",
]

SCHEMA = "repro-bench-trajectory/v1"

#: Environment variable naming the directory trajectory files live in.
TRAJECTORY_DIR_ENV = "REPRO_BENCH_TRAJECTORY_DIR"

#: Environment variable labelling the entry (the PR id, e.g. ``"PR7"``).
PR_ENV = "REPRO_BENCH_PR"


def trajectory_path(benchmark: str, directory: str) -> str:
    """The trajectory file for one benchmark name (``BENCH_<name>.json``)."""
    return os.path.join(directory, f"BENCH_{benchmark}.json")


def machine_fingerprint() -> Dict[str, str]:
    """Coarse platform identity attached to every entry (wall-clock numbers
    are only comparable within one machine)."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }


def record_benchmark(
    benchmark: str,
    metrics: Dict[str, Any],
    directory: Optional[str] = None,
    pr: Optional[str] = None,
) -> Optional[str]:
    """Append (or update) one trajectory entry, returning the file path.

    ``directory``/``pr`` default to the ``REPRO_BENCH_TRAJECTORY_DIR`` /
    ``REPRO_BENCH_PR`` environment variables; with no directory configured
    the call is a no-op returning ``None`` — benchmarks always call this,
    and the environment decides whether a trajectory is being kept.
    """
    directory = directory if directory is not None else os.environ.get(
        TRAJECTORY_DIR_ENV
    )
    if not directory:
        return None
    pr = pr if pr is not None else os.environ.get(PR_ENV, "dev")
    path = trajectory_path(benchmark, directory)
    payload: Dict[str, Any] = {"schema": SCHEMA, "benchmark": benchmark, "entries": []}
    if os.path.exists(path):
        # A malformed or unparseable existing file must not fail the
        # benchmark that is trying to record — start a fresh trajectory
        # (the overwrite preserves nothing salvageable anyway).
        try:
            with open(path, "r", encoding="utf-8") as handle:
                existing = json.load(handle)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            existing = None
        if (
            isinstance(existing, dict)
            and existing.get("schema") == SCHEMA
            and isinstance(existing.get("entries"), list)
        ):
            payload = existing
    # One row per PR label: a re-run (or a sibling benchmark test writing
    # to the same file) merges its metrics into the label's entry.
    for entry in payload["entries"]:
        if entry.get("pr") == pr:
            entry.update(metrics)
            entry["machine"] = machine_fingerprint()
            break
    else:
        payload["entries"].append(
            {"pr": pr, "machine": machine_fingerprint(), **metrics}
        )
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path
