"""Word-level tokenizer for the synthetic corpus.

The paper tokenizes WikiText-2 with each model's own HuggingFace tokenizer;
for the synthetic substitute corpus a simple word-level vocabulary is
sufficient (the perplexity experiment only needs a consistent token stream).
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

__all__ = ["WordTokenizer"]


class WordTokenizer:
    """Whitespace word tokenizer with a fixed vocabulary.

    Parameters
    ----------
    corpus:
        Iterable of text strings used to build the vocabulary (most frequent
        words first).
    max_vocab:
        Maximum vocabulary size including the special tokens.
    """

    UNK = "<unk>"
    EOS = "<eos>"

    def __init__(self, corpus: Iterable[str], max_vocab: int = 512) -> None:
        if max_vocab < 4:
            raise ValueError("max_vocab must be at least 4")
        counts: Dict[str, int] = {}
        for text in corpus:
            for word in text.split():
                counts[word] = counts.get(word, 0) + 1
        ordered = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
        words = [self.UNK, self.EOS] + [w for w, _ in ordered[: max_vocab - 2]]
        self._word_to_id: Dict[str, int] = {w: i for i, w in enumerate(words)}
        self._id_to_word: List[str] = words

    @property
    def vocab_size(self) -> int:
        """Number of tokens in the vocabulary."""
        return len(self._id_to_word)

    @property
    def unk_id(self) -> int:
        """Id of the unknown-word token."""
        return self._word_to_id[self.UNK]

    @property
    def eos_id(self) -> int:
        """Id of the end-of-sequence token."""
        return self._word_to_id[self.EOS]

    def encode(self, text: str, add_eos: bool = True) -> np.ndarray:
        """Encode a text string to an array of token ids."""
        ids = [self._word_to_id.get(word, self.unk_id) for word in text.split()]
        if add_eos:
            ids.append(self.eos_id)
        return np.asarray(ids, dtype=np.int64)

    def decode(self, ids: Iterable[int]) -> str:
        """Decode token ids back to a string."""
        words = []
        for token_id in ids:
            if not 0 <= int(token_id) < self.vocab_size:
                raise ValueError(f"token id {token_id} out of range")
            words.append(self._id_to_word[int(token_id)])
        return " ".join(words)
