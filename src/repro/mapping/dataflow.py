"""The sixteen-step SoftmAP dataflow (Fig. 5 of the paper).

Each decoder-layer attention head owns one AP; the head's softmax input is
laid out across the AP rows and the sixteen steps below are applied to all
rows in parallel (bit-serially within each word).  Offline constants
(``mu``, ``vln2``, ``vb``, ``vc``) only need to be written, not computed.

:func:`softmax_dataflow` instantiates the steps for a given
:class:`~repro.quant.precision.PrecisionConfig` and sequence length,
annotating every step with the operand widths it reads and writes (the
precisions shown in Fig. 4) so the cost model can translate them to cycles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import List, Optional

from repro.quant.precision import PrecisionConfig
from repro.utils.bitwidth import bits_for_unsigned
from repro.utils.validation import check_positive_int

__all__ = ["StepKind", "DataflowStep", "softmax_dataflow"]


class StepKind(str, Enum):
    """Kind of an AP dataflow step; drives the cost-model dispatch."""

    WRITE = "write"
    SUBTRACT = "subtract"
    ADD = "add"
    MULTIPLY = "multiply"
    COPY = "copy"
    SHIFT = "shift"
    REDUCTION = "reduction"
    DIVIDE = "divide"


@dataclass(frozen=True)
class DataflowStep:
    """One step of the SoftmAP dataflow.

    Attributes
    ----------
    index:
        Step number, 1-based, matching Fig. 5.
    name:
        Short description (as in Fig. 5).
    kind:
        The operation class used for cost dispatch.
    width:
        Precision (in bits) of the operand the operation works on.
    aux_width:
        Secondary width where relevant: the multiplier width for multiplies,
        the shift-amount width for variable shifts, the divisor width for
        the division, the number of reduced words for the reduction.
    elementwise:
        Whether the step applies to every stored word (and therefore repeats
        for each word packed in a row) or is a cross-row operation.
    produces:
        Name of the value produced (for reporting).
    """

    index: int
    name: str
    kind: StepKind
    width: int
    aux_width: int = 0
    elementwise: bool = True
    produces: str = ""

    def __post_init__(self) -> None:
        check_positive_int(self.index, "index")
        check_positive_int(self.width, "width")
        if self.aux_width < 0:
            raise ValueError("aux_width must be >= 0")


def max_shift_amount(precision: PrecisionConfig, vln2: Optional[int] = None) -> int:
    """Largest possible shift ``q = floor(-vstable / vln2)`` for the given
    precision: the most negative stabilised input is ``-(2**M - 1)``."""
    if vln2 is None:
        # For the clipping thresholds of the paper, vln2 = floor(ln2 / S)
        # with S = |TC| / (2**M - 1); use that default.
        from repro.quant.quantizer import default_clipping_threshold

        scale = abs(default_clipping_threshold(precision.input_bits)) / (
            2 ** precision.input_bits - 1
        )
        vln2 = int(math.floor(math.log(2.0) / scale))
    vln2 = max(1, int(vln2))
    return (2 ** precision.input_bits - 1) // vln2


def softmax_dataflow(
    precision: PrecisionConfig,
    sequence_length: int,
    vln2: Optional[int] = None,
) -> List[DataflowStep]:
    """Instantiate the sixteen steps of Fig. 5 for a precision/sequence.

    Parameters
    ----------
    precision:
        Mixed-precision configuration (drives every operand width).
    sequence_length:
        Number of softmax elements handled by the AP (it stores two words
        per row, i.e. ``sequence_length / 2`` rows).
    vln2:
        The quantized ``ln 2``; defaults to the value implied by the
        paper's clipping threshold for ``M``.
    """
    check_positive_int(sequence_length, "sequence_length")
    m = precision.input_bits
    shift_bits = max(1, bits_for_unsigned(max_shift_amount(precision, vln2)))
    poly_width = precision.polynomial_bits
    vapprox = precision.vapprox_bits
    sum_width = precision.sum_bits
    result_width = precision.result_column_bits

    steps = [
        DataflowStep(1, "Write v and max(v)", StepKind.WRITE, width=2 * m,
                     produces="v, max(v)"),
        DataflowStep(2, "Subtract v - max(v)", StepKind.SUBTRACT, width=m,
                     produces="vstable"),
        DataflowStep(3, "Write mu", StepKind.WRITE, width=2 * m, produces="mu"),
        DataflowStep(4, "Multiply by mu and shift by 2M", StepKind.MULTIPLY,
                     width=m, aux_width=2 * m, produces="q = floor(-vstable/vln2)"),
        DataflowStep(5, "Write vln2", StepKind.WRITE, width=precision.vln2_bits,
                     produces="vln2"),
        DataflowStep(6, "Multiply q by vln2", StepKind.MULTIPLY, width=m,
                     aux_width=precision.vln2_bits, produces="q * vln2"),
        DataflowStep(7, "Subtract to obtain vcorr", StepKind.SUBTRACT,
                     width=precision.vcorr_bits, produces="vcorr"),
        DataflowStep(8, "Write vb", StepKind.WRITE, width=precision.vb_bits,
                     produces="vb"),
        DataflowStep(9, "Add vcorr + vb", StepKind.ADD, width=precision.vcorr_bits + 1,
                     produces="vcorr + vb"),
        DataflowStep(10, "Copy vcorr + vb", StepKind.COPY,
                     width=precision.vcorr_bits + 1, produces="copy of vcorr + vb"),
        DataflowStep(11, "Square vcorr + vb", StepKind.MULTIPLY,
                     width=precision.vcorr_bits + 1,
                     aux_width=precision.vcorr_bits + 1, produces="(vcorr+vb)^2"),
        DataflowStep(12, "Write vc", StepKind.WRITE, width=precision.vc_bits,
                     produces="vc"),
        DataflowStep(13, "Add vc and shift by q", StepKind.SHIFT, width=poly_width,
                     aux_width=shift_bits, produces="vapprox"),
        DataflowStep(14, "Reduction of vapprox", StepKind.REDUCTION, width=vapprox,
                     aux_width=sequence_length, elementwise=False,
                     produces="sum(vapprox)"),
        DataflowStep(15, "Copy the sum to all rows", StepKind.WRITE,
                     width=sum_width, elementwise=False, produces="broadcast sum"),
        DataflowStep(16, "Divide vapprox by the sum", StepKind.DIVIDE,
                     width=result_width, aux_width=sum_width,
                     produces="softmax output"),
    ]
    return steps
