"""Table II — 2D AP runtime formulas, cross-checked against the functional
simulator.

The experiment evaluates the Table II cycle formulas for the studied
precisions and, for addition/subtraction/multiplication, also measures the
compare/write cycles the functional bit-serial simulator actually issues, so
the analytical and functional views of the AP can be compared directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.ap.cost import ApCostModel
from repro.ap.processor2d import AssociativeProcessor2D
from repro.runtime.registry import Experiment, register
from repro.utils.tables import TextTable

__all__ = ["Table2Experiment", "Table2Row", "run_table2", "render_table2"]


@dataclass(frozen=True)
class Table2Row:
    """One operation at one precision: formula cycles vs simulated cycles."""

    operation: str
    precision: int
    formula_cycles: int
    simulated_cycles: Optional[int]


def _simulate(
    operation: str, precision: int, rows: int = 8, backend: str = "vectorized"
) -> int:
    """Measure the compare/write cycles of one functional operation.

    The vectorized backend is the default because it issues exactly the
    same compare/write cycles as the bit-serial reference (checked by the
    engine parity suite) at a fraction of the wall-clock cost.
    """
    rng = np.random.default_rng(precision)
    ap = AssociativeProcessor2D(rows=rows, columns=6 * precision + 16, backend=backend)
    a = ap.allocate_field("a", precision)
    b = ap.allocate_field("b", precision)
    limit = (1 << precision) - 1
    ap.write_field(a, rng.integers(0, limit + 1, rows))
    ap.write_field(b, rng.integers(0, limit + 1, rows))
    if operation == "addition":
        ap.reset_stats()
        ap.add(a, b)
    elif operation == "subtraction":
        ap.reset_stats()
        ap.subtract(a, b)
    elif operation == "multiplication":
        r = ap.allocate_field("r", 2 * precision)
        ap.reset_stats()
        ap.multiply(a, b, r)
    elif operation == "reduction":
        r = ap.allocate_field("r", precision + 8)
        ap.reset_stats()
        ap.reduce_sum(a, r)
    else:
        raise ValueError(f"unknown operation {operation!r}")
    return int(ap.stats.total_cycles)


def run_table2(
    precisions=(4, 6, 8),
    reduction_words: int = 2048,
    simulate: bool = True,
    backend: str = "vectorized",
) -> List[Table2Row]:
    """Evaluate the Table II formulas (and optionally the functional sim)."""
    rows: List[Table2Row] = []
    for precision in precisions:
        model = ApCostModel(rows=max(2, reduction_words // 2))
        entries = [
            ("addition", model.addition_cycles(precision)),
            ("subtraction", model.subtraction_cycles(precision)),
            ("multiplication", model.multiplication_cycles(precision)),
            ("reduction", model.reduction_cycles(precision, reduction_words)),
            ("matrix-matrix multiplication", model.matmul_cycles(precision, 64)),
        ]
        for operation, cycles in entries:
            simulated = None
            if simulate and operation in ("addition", "subtraction", "multiplication"):
                simulated = _simulate(operation, precision, backend=backend)
            rows.append(
                Table2Row(
                    operation=operation,
                    precision=precision,
                    formula_cycles=int(cycles),
                    simulated_cycles=simulated,
                )
            )
    return rows


def render_table2(rows: List[Table2Row]) -> str:
    """Render the Table II comparison."""
    table = TextTable(
        ["operation", "M", "formula cycles", "functional-sim cycles"],
        title="Table II — 2D AP runtime formulas vs functional simulator",
    )
    for row in rows:
        table.add_row(
            [
                row.operation,
                row.precision,
                row.formula_cycles,
                "-" if row.simulated_cycles is None else row.simulated_cycles,
            ]
        )
    return table.render()


@register("table2")
class Table2Experiment(Experiment):
    """Registry wrapper: Table II through the uniform runtime contract.

    ``--backend`` selects the functional AP *engine* cross-checking the
    formulas (``"vectorized"`` or ``"reference"``).
    """

    title = "Table II"
    description = "2D AP runtime formulas vs the functional simulator"
    row_type = Table2Row
    backend_config_key = "backend"
    backend_choices = AssociativeProcessor2D.BACKENDS
    fast_config = {"precisions": (6,)}

    def run(self, config=None):
        kwargs = self._config_kwargs(config)
        if "precisions" in kwargs:
            kwargs["precisions"] = tuple(kwargs["precisions"])
        return run_table2(**kwargs)

    def render(self, result):
        return render_table2(result)
