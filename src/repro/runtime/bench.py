"""Runnable benchmark registry behind ``repro bench``.

The pinned-floor benchmarks under ``benchmarks/`` each carry a headline
workload, a speedup floor, and a metrics payload that lands in the
committed ``BENCH_<name>.json`` trajectory files (see
:mod:`repro.utils.trajectory`).  This module is the single source of truth
for all three — the pytest benchmarks import their floors, workloads and
payload builders from here, and the ``repro bench`` CLI replays the same
workloads outside pytest to regenerate the committed trajectory files and
render each benchmark's trend table.

One :class:`BenchSpec` per trajectory file:

========================  ==========================================
``llm_speed``             batched inference sweep vs the seed loop
``llm_generate``          KV-cache decode vs naive re-prefill
``plan_fusion``           fused cluster pass + compiled engine
``serve``                 continuous-batching serving vs serial
========================  ==========================================
"""

from __future__ import annotations

import difflib
import json
import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, List

from repro.utils.trajectory import trajectory_path

__all__ = [
    "SWEEP_SPEEDUP_FLOOR",
    "LLM_SPEED_WORKLOAD",
    "GENERATE_SPEEDUP_FLOOR",
    "FUSED_SPEEDUP_FLOOR",
    "COMPILED_SPEEDUP_FLOOR",
    "COMPILED_WORKLOAD",
    "SERVE_SPEEDUP_FLOOR",
    "SERVE_WORKLOAD",
    "llm_speed_payload",
    "llm_generate_payload",
    "plan_fusion_payload",
    "serve_payload",
    "BenchResult",
    "BenchSpec",
    "UnknownBenchmarkError",
    "bench_names",
    "get_bench",
    "iter_benches",
    "run_bench",
    "render_trend",
]

# --------------------------------------------------------------------------- #
# Headline workloads and pinned floors (imported by benchmarks/)               #
# --------------------------------------------------------------------------- #

#: Pinned wall-clock floor of the batched sweep over the seed loop.
SWEEP_SPEEDUP_FLOOR = 5.0

#: The batched-inference acceptance workload (Tables III/IV shape).
LLM_SPEED_WORKLOAD = {
    "m_values": (4, 6, 8),
    "n_values": (8, 16),
    "training_steps": 120,
}

#: Pinned tokens/sec floor of KV-cache decode over naive re-prefill.
GENERATE_SPEEDUP_FLOOR = 3.0

#: Pinned wall-clock floor of the fused pass over the PR 2 per-head loop.
FUSED_SPEEDUP_FLOOR = 3.0

#: Pinned wall-clock floor of the compiled engine over the vectorized
#: (packed-interpreter) engine on the 64-vector x 256-seq shape.
COMPILED_SPEEDUP_FLOOR = 1.5

#: The compiled-vs-vectorized acceptance shape: 16 batch x 4 heads = 64
#: fused vectors of 256 elements.  The fast legs finish in well under a
#: millisecond, so they are averaged over extra iterations for a stable
#: ratio on noisy CI runners.
COMPILED_WORKLOAD = {
    "sequence_length": 256,
    "batch": 16,
    "heads": 4,
    "fast_iterations": 10,
}

#: Pinned throughput floor of the continuous-batching server over the
#: serial one-request-per-pass baseline at a saturating arrival rate.
SERVE_SPEEDUP_FLOOR = 3.0

#: The serving acceptance workload: a saturating burst of single-row
#: requests (the regime where per-pass overhead dominates and coalescing
#: pays), served by the fused ``ap-cluster`` path with an admission cap
#: low enough that tick ``k + 1`` forms while tick ``k`` executes.
SERVE_WORKLOAD = {
    "rates": (1_000_000.0,),
    "num_requests": 256,
    "rows": (1, 1),
    "sequence_lengths": (32,),
    "ragged_fraction": 0.0,
    "max_wait_ms": 2.0,
    "max_batch_rows": 128,
}


# --------------------------------------------------------------------------- #
# Trajectory metrics payloads (shared by benchmarks/ and `repro bench`)        #
# --------------------------------------------------------------------------- #
def llm_speed_payload(report) -> Dict[str, Any]:
    """Trajectory metrics of one batched-inference sweep report."""
    return {
        "workload": {
            "backend": report.backend,
            "configurations": report.configurations,
            "segments": report.segments,
            "segment_length": report.segment_length,
            "max_batch": report.max_batch,
        },
        "bit_identical": report.bit_identical,
        "batched_seconds": report.batched_seconds,
        "seed_loop_seconds": report.loop_seconds,
        "sweep_speedup": report.speedup,
        "pinned_floor": SWEEP_SPEEDUP_FLOOR,
    }


def llm_generate_payload(report) -> Dict[str, Any]:
    """Trajectory metrics of one KV-cache decode report."""
    return {
        "workload": {
            "backend": report.backend,
            "batch": report.batch,
            "prompt_length": report.prompt_length,
            "max_new_tokens": report.max_new_tokens,
            "temperature": report.temperature,
        },
        "tokens_match": report.tokens_match,
        "cached_seconds": report.cached_seconds,
        "reprefill_seconds": report.prefill_seconds,
        "cached_tokens_per_second": report.cached_tokens_per_second,
        "reprefill_tokens_per_second": report.prefill_tokens_per_second,
        "decode_speedup": report.speedup,
        "pinned_floor": GENERATE_SPEEDUP_FLOOR,
    }


def plan_fusion_payload(report, pinned_floor: float) -> Dict[str, Any]:
    """Trajectory metrics of one cluster-parity report."""
    return {
        "workload": {
            "batch": report.batch,
            "heads": report.heads,
            "sequence_length": report.sequence_length,
        },
        "bit_identical": report.bit_identical,
        "fused_seconds": report.cluster_seconds,
        "per_head_loop_seconds": report.per_head_loop_seconds,
        "row_by_row_seconds": report.row_by_row_seconds,
        "fused_speedup": report.fused_speedup,
        "row_by_row_speedup": report.speedup,
        "compiled_seconds": report.compiled_seconds,
        "compiled_identical": report.compiled_identical,
        "compiled_speedup": report.compiled_speedup,
        "pinned_floor": pinned_floor,
    }


def serve_payload(point) -> Dict[str, Any]:
    """Trajectory metrics of one saturating serve-load point."""
    return {
        "workload": {
            "backend": point.backend,
            "engine": point.engine,
            "rate_rps": point.rate_rps,
            "num_requests": point.num_requests,
            "max_wait_ms": point.max_wait_ms,
            "max_batch_rows": point.max_batch_rows,
        },
        "responses_identical": point.responses_identical,
        "served_seconds": point.serve_seconds,
        "serial_seconds": point.serial_seconds,
        "served_throughput_rps": point.throughput_rps,
        "serial_throughput_rps": point.serial_throughput_rps,
        "p50_ms": point.p50_ms,
        "p99_ms": point.p99_ms,
        "mean_batch_requests": point.mean_batch_requests,
        "mean_occupancy": point.mean_occupancy,
        "throughput_speedup": point.speedup,
        "pinned_floor": SERVE_SPEEDUP_FLOOR,
    }


# --------------------------------------------------------------------------- #
# The registry                                                                 #
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class BenchResult:
    """One benchmark run: the rendered report plus its trajectory metrics."""

    name: str
    rendered: str
    metrics: Dict[str, Any]


@dataclass(frozen=True)
class BenchSpec:
    """One runnable benchmark: name, description, and its runner."""

    name: str
    description: str
    runner: Callable[[bool], BenchResult]

    def run(self, fast: bool = False) -> BenchResult:
        result = self.runner(fast)
        if fast:
            # A fast run still records, but the entry is marked so a toy
            # number is never mistaken for a headline measurement.
            result.metrics["fast"] = True
        return result


class UnknownBenchmarkError(KeyError):
    """An unknown benchmark name, with a "did you mean" suggestion."""

    def __init__(self, name: str) -> None:
        valid = bench_names()
        close = difflib.get_close_matches(name, valid, n=1, cutoff=0.5)
        hint = f" — did you mean {close[0]!r}?" if close else ""
        super().__init__(
            f"unknown benchmark {name!r}{hint} "
            f"(run 'repro bench --list' to see all: {', '.join(valid)})"
        )
        self.name = name

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0]


def _run_llm_speed(fast: bool) -> BenchResult:
    from repro.runtime.registry import get_experiment

    experiment = get_experiment("llm-speed")
    config = dict(experiment.fast_config) if fast else dict(LLM_SPEED_WORKLOAD)
    report = experiment.run(config)
    return BenchResult(
        name="llm_speed",
        rendered=experiment.render(report),
        metrics=llm_speed_payload(report),
    )


def _run_llm_generate(fast: bool) -> BenchResult:
    from repro.runtime.registry import get_experiment

    experiment = get_experiment("llm-generate")
    config = dict(experiment.fast_config) if fast else {}
    report = experiment.run(config)
    return BenchResult(
        name="llm_generate",
        rendered=experiment.render(report),
        metrics=llm_generate_payload(report),
    )


def _run_plan_fusion(fast: bool) -> BenchResult:
    from repro.runtime.registry import get_experiment

    experiment = get_experiment("cluster-parity")
    fused = experiment.run(dict(experiment.fast_config) if fast else {})
    compiled_workload = dict(COMPILED_WORKLOAD)
    if fast:
        compiled_workload.update(experiment.fast_config)
    compiled = experiment.run(compiled_workload)
    rendered = "\n".join(
        [experiment.render(fused), "", experiment.render(compiled)]
    )
    return BenchResult(
        name="plan_fusion",
        rendered=rendered,
        metrics={
            "fused_vs_loop": plan_fusion_payload(fused, FUSED_SPEEDUP_FLOOR),
            "compiled_vs_vectorized": plan_fusion_payload(
                compiled, COMPILED_SPEEDUP_FLOOR
            ),
        },
    )


def _run_serve(fast: bool) -> BenchResult:
    from repro.runtime.registry import get_experiment

    experiment = get_experiment("serve-load")
    config = dict(experiment.fast_config) if fast else dict(SERVE_WORKLOAD)
    points = experiment.run(config)
    return BenchResult(
        name="serve",
        rendered=experiment.render(points),
        metrics=serve_payload(points[-1]),
    )


_BENCHES: Dict[str, BenchSpec] = {
    spec.name: spec
    for spec in (
        BenchSpec(
            name="llm_speed",
            description="batched inference sweep vs the seed per-segment loop",
            runner=_run_llm_speed,
        ),
        BenchSpec(
            name="llm_generate",
            description="KV-cache decode vs naive re-prefill",
            runner=_run_llm_generate,
        ),
        BenchSpec(
            name="plan_fusion",
            description="fused cluster pass + compiled engine vs loop paths",
            runner=_run_plan_fusion,
        ),
        BenchSpec(
            name="serve",
            description="continuous-batching serving vs serial per-request",
            runner=_run_serve,
        ),
    )
}


def bench_names() -> List[str]:
    """All registered benchmark names, in registration order."""
    return list(_BENCHES)


def iter_benches() -> List[BenchSpec]:
    """All registered benchmark specs, in registration order."""
    return list(_BENCHES.values())


def get_bench(name: str) -> BenchSpec:
    """Look a benchmark up by name (with a "did you mean" on a miss)."""
    try:
        return _BENCHES[name]
    except KeyError:
        raise UnknownBenchmarkError(name) from None


def run_bench(name: str, fast: bool = False) -> BenchResult:
    """Run one registered benchmark's headline workload."""
    return get_bench(name).run(fast=fast)


# --------------------------------------------------------------------------- #
# Trend rendering                                                              #
# --------------------------------------------------------------------------- #
def _scalar_leaves(entry: Dict[str, Any]) -> Dict[str, Any]:
    """Flatten one trajectory entry into dotted scalar columns.

    The ``machine`` fingerprint and ``workload`` subtrees describe the
    measurement context, not the trajectory, so they are skipped.
    """
    leaves: Dict[str, Any] = {}

    def visit(prefix: str, value: Any) -> None:
        if isinstance(value, dict):
            for key, nested in value.items():
                if key in ("machine", "workload", "pr"):
                    continue
                visit(f"{prefix}.{key}" if prefix else key, nested)
        elif isinstance(value, (bool, int, float)):
            leaves[prefix] = value

    visit("", entry)
    return leaves


def _format_cell(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "NO"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_trend(benchmark: str, directory: str) -> str:
    """Render one benchmark's committed trajectory as a trend table.

    One row per recorded PR label, one column per scalar metric (nested
    subtrees are flattened to dotted names; the machine fingerprint and
    workload description are omitted — wall-clock numbers only compare
    within one machine anyway).
    """
    path = trajectory_path(benchmark, directory)
    if not os.path.exists(path):
        return f"{benchmark}: no trajectory file at {path}"
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        return f"{benchmark}: unreadable trajectory file {path} ({error})"
    entries = payload.get("entries") if isinstance(payload, dict) else None
    if not isinstance(entries, list) or not entries:
        return f"{benchmark}: no entries in {path}"
    columns: List[str] = []
    rows: List[Dict[str, Any]] = []
    for entry in entries:
        leaves = _scalar_leaves(entry)
        for key in leaves:
            if key not in columns:
                columns.append(key)
        rows.append({"pr": str(entry.get("pr", "?")), **leaves})
    widths = {
        column: max(len(column), *(len(_format_cell(row.get(column, ""))) for row in rows))
        for column in columns
    }
    pr_width = max(len("pr"), *(len(row["pr"]) for row in rows))
    lines = [f"Trajectory: {benchmark} ({path})"]
    lines.append(
        "  ".join(
            [f"{'pr':<{pr_width}}"]
            + [f"{column:>{widths[column]}}" for column in columns]
        )
    )
    for row in rows:
        cells = [f"{row['pr']:<{pr_width}}"]
        for column in columns:
            cell = _format_cell(row[column]) if column in row else "-"
            cells.append(f"{cell:>{widths[column]}}")
        lines.append("  ".join(cells))
    return "\n".join(lines)
