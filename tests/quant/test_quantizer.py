"""Tests for the quantizers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.quant.quantizer import (
    ClippedSoftmaxInputQuantizer,
    QuantizedTensor,
    SymmetricQuantizer,
    default_clipping_threshold,
)


class TestDefaultClippingThreshold:
    def test_paper_values(self):
        assert default_clipping_threshold(4) == -4.0
        assert default_clipping_threshold(6) == -7.0
        assert default_clipping_threshold(8) == -7.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            default_clipping_threshold(0)


class TestQuantizedTensor:
    def test_dequantize(self):
        q = QuantizedTensor(values=np.array([1, 2]), scale=0.5, bits=8)
        assert np.allclose(q.dequantize(), [0.5, 1.0])
        assert q.shape == (2,)

    def test_rejects_float_values(self):
        with pytest.raises(TypeError):
            QuantizedTensor(values=np.array([1.0]), scale=1.0, bits=8)

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            QuantizedTensor(values=np.array([1]), scale=0.0, bits=8)


class TestSymmetricQuantizer:
    def test_roundtrip_error_bounded(self):
        rng = np.random.default_rng(0)
        x = rng.normal(0, 3, 100)
        quantizer = SymmetricQuantizer(8)
        q = quantizer.quantize(x)
        error = np.max(np.abs(quantizer.dequantize(q) - x))
        assert error <= q.scale / 2 + 1e-12

    def test_zero_tensor(self):
        quantizer = SymmetricQuantizer(8)
        q = quantizer.quantize(np.zeros(4))
        assert np.all(q.values == 0)

    def test_needs_two_bits(self):
        with pytest.raises(ValueError):
            SymmetricQuantizer(1)

    @given(st.integers(min_value=2, max_value=12))
    def test_values_in_signed_range(self, bits):
        rng = np.random.default_rng(bits)
        x = rng.normal(0, 10, 50)
        q = SymmetricQuantizer(bits).quantize(x)
        assert np.all(q.values <= 2 ** (bits - 1) - 1)
        assert np.all(q.values >= -(2 ** (bits - 1)))


class TestClippedSoftmaxInputQuantizer:
    def test_scale_matches_clip_range(self):
        quantizer = ClippedSoftmaxInputQuantizer(6)
        assert quantizer.scale == pytest.approx(7.0 / 63.0)

    def test_values_non_positive_and_in_range(self):
        rng = np.random.default_rng(1)
        x = rng.normal(0, 3, (4, 32))
        q = ClippedSoftmaxInputQuantizer(6).quantize(x)
        assert np.all(q.values <= 0)
        assert np.all(q.values >= -63)

    def test_stabilisation_makes_max_zero(self):
        x = np.array([[1.0, 3.0, 2.0]])
        q = ClippedSoftmaxInputQuantizer(8).quantize(x)
        assert q.values.max() == 0

    def test_rejects_positive_without_stabilise(self):
        with pytest.raises(ValueError):
            ClippedSoftmaxInputQuantizer(8).quantize(np.array([1.0]), stabilise=False)

    def test_accepts_non_positive_without_stabilise(self):
        q = ClippedSoftmaxInputQuantizer(8).quantize(np.array([-1.0, 0.0]), stabilise=False)
        assert q.values[1] == 0

    def test_clipping_below_threshold(self):
        quantizer = ClippedSoftmaxInputQuantizer(6)
        q = quantizer.quantize(np.array([-100.0, 0.0]), stabilise=False)
        assert q.values[0] == -63

    def test_rejects_positive_threshold(self):
        with pytest.raises(ValueError):
            ClippedSoftmaxInputQuantizer(6, clip_threshold=1.0)

    @given(st.sampled_from([4, 5, 6, 7, 8]), st.integers(0, 1000))
    def test_dequantized_values_within_clip_range(self, bits, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(0, 4, 16)
        quantizer = ClippedSoftmaxInputQuantizer(bits)
        values = quantizer.dequantize(quantizer.quantize(x))
        assert np.all(values <= 1e-12)
        assert np.all(values >= quantizer.clip_threshold - 1e-12)
