"""Hardware characterization of SoftmAP for the Llama2 family.

Reproduces the headline hardware numbers of the paper for a chosen model:
per-head AP area, one-pass latency/energy per sequence length, and the
normalized energy / latency / EDP against the A100 and RTX3090 baselines
(the Figs. 6-8 quantities), plus the Fig. 1 softmax runtime share and the
Amdahl end-to-end impact.  The deployment is then instantiated as a
*functional* multi-AP cluster: a sample attention-score tensor is executed
head by head on the simulated hardware (vectorized backend), verified
bit-identical to the software integer pipeline, and the cluster-level
concurrency cost (latency = max over heads, energy = sum) and pipelined
multi-batch schedule are reported.

Usage::

    python examples/llama_hardware_characterization.py [7b|13b|70b]
"""

import sys

import numpy as np

from repro.experiments import render_comparison
from repro.gpu import A100, GpuTransformerModel
from repro.llm import LLAMA2_MODELS
from repro.mapping import ApDeployment
from repro.runtime import get_experiment
from repro.softmax.integer_softmax import IntegerSoftmax
from repro.utils.tables import TextTable


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "7b"
    if name not in LLAMA2_MODELS:
        raise SystemExit(f"unknown model {name!r}; choose from {sorted(LLAMA2_MODELS)}")
    model = LLAMA2_MODELS[name]

    deployment = ApDeployment(model)
    print(f"=== {model.name}: AP deployment ===")
    print(f"APs (one per head): {deployment.num_aps}")
    print(f"rows per AP       : {deployment.rows_per_ap}")
    print(f"total area        : {deployment.total_area_mm2():.3f} mm^2")
    print()

    table = TextTable(
        ["sequence length", "pass cycles", "pass latency (us)", "pass energy (nJ)"],
        title="One softmax pass on one per-head AP",
    )
    for seq in (128, 512, 1024, 2048, 4096):
        cost = deployment.pass_cost(seq)
        table.add_row([seq, int(cost.cycles), cost.latency_s * 1e6, cost.energy_j * 1e9])
    print(table.render())
    print()

    # Functional cluster through the unified runtime API: run a score
    # tensor through the per-head APs (a short sequence keeps the demo
    # fast; the cost/schedule view below uses the provisioned length) —
    # the SoftmaxResult carries concurrency-accounted cost alongside the
    # CAM-computed probabilities.
    demo_seq, demo_batch = 64, 2
    cluster = deployment.cluster()
    backend = cluster.as_backend()
    rng = np.random.default_rng(0)
    scores = rng.normal(0.0, 2.0, size=(demo_batch, deployment.num_aps, demo_seq))
    result = backend.run(scores)
    software = IntegerSoftmax(deployment.precision, barrett_correction=False)(scores)
    print(f"=== functional AP cluster ({deployment.num_aps} per-head APs) ===")
    print(f"executed a {scores.shape} score tensor on the cluster "
          f"(vectorized backend, via cluster.as_backend())")
    print(f"bit-identical to the software integer pipeline: "
          f"{np.array_equal(result.probabilities, software)}")
    print(f"demo pass at {demo_seq} tokens (from the SoftmaxResult): "
          f"{result.cost.latency_s * 1e6:.2f} us, "
          f"{result.cost.energy_j * 1e9:.1f} nJ")
    cost = cluster.cost(batch=demo_batch)
    print(f"cluster pass at the provisioned length (concurrency accounting): "
          f"latency = max over heads = {cost.latency_s * 1e6:.2f} us, "
          f"energy = sum over heads = {cost.energy_j * 1e9:.1f} nJ, "
          f"area = {cost.area_mm2:.3f} mm^2")
    schedule = cluster.schedule(num_batches=8, batch=demo_batch)
    print(f"pipelined 8-batch schedule: {schedule.latency_s * 1e6:.2f} us "
          f"({schedule.pipeline_speedup:.3f}x vs sequential, "
          f"{schedule.throughput_passes_per_s:.0f} passes/s)")
    print()

    points = get_experiment("figs6_8").run({"models": [name]})
    for metric in ("energy", "latency", "edp"):
        print(render_comparison(points, metric))
        print()

    fig1 = get_experiment("fig1")
    print(fig1.render(fig1.run({"model": name})))
    breakdown = GpuTransformerModel(A100, model).prefill(1, 4096)
    reduction = breakdown.end_to_end_reduction(6.7)
    print()
    print(f"Amdahl: a 6.7x softmax speedup reduces the {model.name} prefill "
          f"time at 4096 tokens by {100 * reduction:.2f}% "
          f"(paper reports 10.71% for Llama2-70b).")


if __name__ == "__main__":
    main()
