"""SoftmAP reproduction library.

A from-scratch Python reproduction of *SoftmAP: Software-Hardware Co-Design
for Integer-Only Softmax on Associative Processors* (DATE 2025), including:

* the integer-only softmax approximation (:mod:`repro.softmax`,
  :mod:`repro.quant`);
* a functional and analytical Associative Processor simulator
  (:mod:`repro.ap`) with two interchangeable execution backends — the
  bit-serial ``"reference"`` ground truth and the bit-identical, much
  faster ``"vectorized"`` packed-word engine
  (:class:`~repro.ap.engine.BitPlaneEngine`); batched ``(batch, seq)``
  softmax tensors map onto the AP in one call via
  :meth:`~repro.mapping.softmap.SoftmAPMapping.execute_functional_batch`
  or :meth:`~repro.softmax.integer_softmax.IntegerSoftmax.forward_on_ap`;
* the SoftmAP dataflow mapping and hardware characterization
  (:mod:`repro.mapping`), executed through compiled plans
  (:mod:`repro.mapping.plan`): the dataflow is lowered once per shape and
  whole ``(batch, heads, seq)`` workloads run as fused wide passes;
* analytical GPU baselines for A100 / RTX3090 (:mod:`repro.gpu`);
* a numpy LLM substrate used for the perplexity sensitivity study
  (:mod:`repro.nn`, :mod:`repro.llm`);
* an experiment harness regenerating every table and figure of the paper
  (:mod:`repro.experiments`);
* the unified runtime API (:mod:`repro.runtime`) — the
  :class:`~repro.runtime.backend.SoftmaxBackend` protocol behind
  :func:`~repro.runtime.backend.resolve_backend`, the experiment registry,
  and the ``python -m repro`` command-line interface.
"""

__version__ = "1.1.0"

from repro.quant import PrecisionConfig, BEST_PRECISION
from repro.softmax import IntegerSoftmax, integer_softmax, softmax

__all__ = [
    "__version__",
    "PrecisionConfig",
    "BEST_PRECISION",
    "IntegerSoftmax",
    "integer_softmax",
    "softmax",
    "BackendSpec",
    "SoftmaxResult",
    "get_experiment",
    "resolve_backend",
]

#: Runtime-API names re-exported lazily (PEP 562): ``import repro`` must
#: stay light — pulling :mod:`repro.runtime` eagerly would drag the whole
#: ap/mapping/gpu stack into every consumer of the base substrate.
_RUNTIME_EXPORTS = frozenset(
    {"BackendSpec", "SoftmaxResult", "get_experiment", "resolve_backend"}
)


def __getattr__(name):
    if name in _RUNTIME_EXPORTS:
        from repro import runtime

        return getattr(runtime, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | _RUNTIME_EXPORTS)
