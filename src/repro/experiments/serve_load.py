"""Sustained-load serving experiment: throughput/latency vs arrival rate.

The ``serve-load`` experiment drives the same seeded Poisson request
stream (:class:`~repro.serve.loadgen.LoadProfile`: mixed row counts,
ragged sequence lengths) through two deployments at each arrival rate:

* **served** — the :class:`~repro.serve.server.SoftmaxServer` admission
  loop, coalescing concurrent requests into one fused head-major row
  space per scheduling tick within the ``max_wait_ms`` /
  ``max_batch_rows`` budget;
* **serial** — the one-request-per-pass baseline: every request executes
  its own standalone backend pass, back to back.

Each :class:`ServeLoadPoint` reports the achieved throughput, the
p50/p99/mean client-observed latency, the admission-loop batch
composition (requests and rows per tick, pass-row-budget occupancy), the
serial sweep's wall-clock, and ``responses_identical`` — every coalesced
response must be **bit-identical** to its standalone execution, which is
the serving layer's correctness contract
(``benchmarks/test_serve_load.py`` pins it across every sweep backend and
engine, together with the >= 3x saturated-throughput floor).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.ap.engine import canonical_engine_name
from repro.runtime.backend import (
    BackendSpec,
    canonical_backend_name,
    resolve_backend,
    rows_runner,
)
from repro.runtime.registry import Experiment, register
from repro.serve.loadgen import LoadProfile, run_load, run_serial_baseline
from repro.serve.server import SoftmaxServer

__all__ = [
    "ServeLoadPoint",
    "run_serve_load",
    "render_serve_load",
    "ServeLoadExperiment",
]


@dataclass(frozen=True)
class ServeLoadPoint:
    """One arrival rate's serving-vs-serial measurements."""

    rate_rps: float
    num_requests: int
    backend: str
    engine: Optional[str]
    max_wait_ms: float
    max_batch_rows: Optional[int]
    throughput_rps: float
    p50_ms: float
    p99_ms: float
    mean_ms: float
    mean_batch_requests: float
    max_batch_requests: int
    mean_batch_rows: float
    mean_occupancy: float
    serve_seconds: float
    serial_seconds: float
    responses_identical: bool

    @property
    def serial_throughput_rps(self) -> float:
        """Requests/sec of the one-request-per-pass baseline."""
        return (
            self.num_requests / self.serial_seconds if self.serial_seconds else 0.0
        )

    @property
    def speedup(self) -> float:
        """Served over serial throughput (>= 1 once arrivals saturate)."""
        serial = self.serial_throughput_rps
        return self.throughput_rps / serial if serial else 0.0


def _backend_spec(
    backend: str,
    engine: Optional[str],
    num_heads: int,
    sequence_length: int,
    pass_row_budget: Optional[int],
) -> BackendSpec:
    options = {}
    if pass_row_budget:
        if backend != "ap-cluster":
            raise ValueError(
                "pass_row_budget is an ap-cluster knob (the planner tiles "
                f"the cluster's fused row space); backend is {backend!r}"
            )
        options["pass_row_budget"] = pass_row_budget
    return BackendSpec(
        name=backend,
        num_heads=num_heads,
        sequence_length=sequence_length,
        engine=engine,
        options=options,
    )


def _warm(backend, sequence_lengths: Tuple[int, ...]) -> None:
    """Compile every plan shape outside the timed windows.

    Both deployments execute the same per-length plans; warming them keeps
    the measurement about serving, not first-touch plan compilation (the
    same practice as the other speed experiments).
    """
    run_rows = rows_runner(backend)
    for seq in sorted(set(sequence_lengths)):
        run_rows(np.zeros((1, seq)))


def run_serve_load(
    rates: Tuple[float, ...] = (50.0, 200.0, 1000.0),
    num_requests: int = 96,
    backend: str = "ap-cluster",
    engine: Optional[str] = None,
    num_heads: int = 4,
    sequence_lengths: Tuple[int, ...] = (16, 32, 64),
    rows: Tuple[int, int] = (1, 4),
    ragged_fraction: float = 0.5,
    max_wait_ms: float = 2.0,
    max_batch_rows: Optional[int] = 256,
    pass_row_budget: Optional[int] = None,
    seed: int = 0,
):
    """Sweep arrival rates; serve and serially replay the same stream.

    Defaults exercise the fused cluster path: an ``ap-cluster`` backend
    with a ``pass_row_budget`` (auto-selected as 4096 when left ``None``),
    so coalesced ticks flow through the planner's tiling and the two-stage
    pipeline schedule.  Pass ``pass_row_budget=0`` to disable the tiling
    budget; a non-zero budget on a non-cluster backend is an error.
    """
    canonical = canonical_backend_name(backend)
    if engine is not None:
        engine = canonical_engine_name(engine)
    if pass_row_budget is None and canonical == "ap-cluster":
        pass_row_budget = 4096
    sequence_length = max(sequence_lengths)
    points = []
    for rate in rates:
        profile = LoadProfile(
            rate_rps=rate,
            num_requests=num_requests,
            rows=rows,
            sequence_lengths=tuple(sequence_lengths),
            ragged_fraction=ragged_fraction,
            seed=seed,
        )
        requests = profile.requests()
        spec = _backend_spec(
            canonical, engine, num_heads, sequence_length, pass_row_budget
        )
        served_backend = resolve_backend(spec)
        _warm(served_backend, tuple(sequence_lengths))
        server = SoftmaxServer(
            served_backend,
            max_wait_ms=max_wait_ms,
            max_batch_rows=max_batch_rows,
        )
        report = run_load(server, requests)
        serial_backend = resolve_backend(spec)
        _warm(serial_backend, tuple(sequence_lengths))
        serial_probabilities, serial_seconds = run_serial_baseline(
            serial_backend, requests
        )
        identical = all(
            np.array_equal(alone, outcome.response.probabilities)
            for alone, outcome in zip(serial_probabilities, report.outcomes)
        )
        points.append(
            ServeLoadPoint(
                rate_rps=rate,
                num_requests=num_requests,
                backend=canonical,
                engine=engine,
                max_wait_ms=max_wait_ms,
                max_batch_rows=max_batch_rows,
                throughput_rps=report.throughput_rps,
                p50_ms=report.p50_ms,
                p99_ms=report.p99_ms,
                mean_ms=report.mean_ms,
                mean_batch_requests=report.mean_batch_requests,
                max_batch_requests=report.max_batch_requests,
                mean_batch_rows=report.mean_batch_rows,
                mean_occupancy=report.mean_occupancy,
                serve_seconds=report.makespan_s,
                serial_seconds=serial_seconds,
                responses_identical=identical,
            )
        )
    return points


def render_serve_load(points) -> str:
    """Render the throughput/latency curve as a text table."""
    if not points:
        return "serve-load: no points"
    first = points[0]
    engine = first.engine or "default"
    header = (
        f"Serving sweep: backend {first.backend} (engine {engine}), "
        f"{first.num_requests} requests/rate, max_wait "
        f"{first.max_wait_ms:g} ms, max_batch_rows {first.max_batch_rows}"
    )
    lines = [
        header,
        f"{'rate':>8}  {'served':>8}  {'p50 ms':>8}  {'p99 ms':>8}  "
        f"{'req/tick':>8}  {'occup':>6}  {'serial':>8}  {'speedup':>8}  "
        f"identical",
    ]
    for p in points:
        lines.append(
            f"{p.rate_rps:>8.0f}  {p.throughput_rps:>8.1f}  {p.p50_ms:>8.2f}  "
            f"{p.p99_ms:>8.2f}  {p.mean_batch_requests:>8.1f}  "
            f"{p.mean_occupancy:>6.2f}  {p.serial_throughput_rps:>8.1f}  "
            f"{p.speedup:>7.1f}x  {'yes' if p.responses_identical else 'NO'}"
        )
    return "\n".join(lines)


@register("serve-load")
class ServeLoadExperiment(Experiment):
    """Registry wrapper: the serving layer's throughput/latency curves.

    ``--backend`` selects the softmax backend the server coalesces onto
    (default ``ap-cluster`` — the fused cluster path); ``--set
    engine=compiled`` etc. picks the functional AP engine underneath.
    """

    title = "Serving"
    description = "continuous-batching throughput + p50/p99 latency vs serial"
    row_type = ServeLoadPoint
    backend_config_key = "backend"
    fast_config = {
        "rates": (400.0,),
        "num_requests": 16,
        "num_heads": 2,
        "sequence_lengths": (8, 16),
        "max_wait_ms": 1.0,
    }

    def run(self, config=None):
        kwargs = self._config_kwargs(config)
        for key in ("rates", "sequence_lengths", "rows"):
            if key in kwargs and isinstance(kwargs[key], list):
                kwargs[key] = tuple(kwargs[key])
        return run_serve_load(**kwargs)

    def render(self, result):
        return render_serve_load(result)
