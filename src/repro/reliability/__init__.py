"""Reliability layer: seeded fault injection, retries, circuit breaking.

Three small, dependency-free building blocks the serving stack composes:

* :mod:`repro.reliability.faults` — deterministic fault injection behind
  zero-overhead seams (``fire(site)`` is a no-op unless an injector is
  installed);
* :mod:`repro.reliability.retry` — per-request retry budgets with capped
  exponential backoff + seeded jitter, and the structured
  :class:`DeadlineExceeded` timeout;
* :mod:`repro.reliability.breaker` — the circuit breaker and the
  engine-fallback chain (compiled -> vectorized -> reference) with
  half-open probing.

See the README's "Reliability" section for the seam map and the
``chaos-load`` experiment for the end-to-end pinned behaviour.
"""

from repro.reliability.breaker import (
    BREAKER_STATES,
    BreakerOpen,
    BreakerTransition,
    CircuitBreaker,
    EngineFallbackChain,
)
from repro.reliability.faults import (
    FAULT_KINDS,
    FaultEvent,
    FaultInjector,
    FaultSpec,
    InjectedFault,
    active_injector,
    fire,
)
from repro.reliability.retry import DeadlineExceeded, RetryPolicy

__all__ = [
    "BREAKER_STATES",
    "BreakerOpen",
    "BreakerTransition",
    "CircuitBreaker",
    "DeadlineExceeded",
    "EngineFallbackChain",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "RetryPolicy",
    "active_injector",
    "fire",
]
