"""SoftmAP: the integer softmax dataflow executed and costed on the AP.

:class:`SoftmAPMapping` is the heart of the co-design reproduction.  It
drives two views of the same Fig. 5 dataflow:

* :meth:`SoftmAPMapping.cost` — the analytical view used for the paper's
  hardware characterization: every step is translated to cycles via the
  Table II formulas (plus documented formulas for copy/shift/divide) and to
  energy via the 16 nm technology parameters.
* :meth:`SoftmAPMapping.execute_functional` — the functional view: the same
  steps are executed on the bit-level 2D AP simulator
  (:class:`~repro.ap.processor2d.AssociativeProcessor2D`) for one softmax
  vector, and the result is bit-identical to the pure-software
  :class:`~repro.softmax.integer_softmax.IntegerSoftmax` pipeline (checked
  in the integration tests).

To keep the hardware free of signed arithmetic the functional mapping tracks
``z = max(v) - v = -vstable`` (non-negative) and evaluates the polynomial as
``(vb - (z mod vln2))**2 + vc``, which is algebraically identical to
Algorithm 1 because ``vcorr = -(z mod vln2)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.ap.cost import ApCostModel, OperationCost
from repro.ap.processor2d import AssociativeProcessor2D
from repro.ap.tech import TECH_16NM, TechnologyParameters
from repro.mapping.dataflow import DataflowStep, StepKind, max_shift_amount, softmax_dataflow
from repro.quant.precision import BEST_PRECISION, PrecisionConfig
from repro.quant.quantizer import ClippedSoftmaxInputQuantizer
from repro.softmax.polynomial import IExpPolynomial
from repro.utils.bitwidth import bits_for_unsigned
from repro.utils.validation import check_in_choices, check_positive_int

__all__ = ["SoftmAPMapping", "MappingCost", "StepCost"]


@dataclass(frozen=True)
class StepCost:
    """Cost of one dataflow step."""

    step: DataflowStep
    cost: OperationCost


@dataclass(frozen=True)
class MappingCost:
    """Aggregate cost of one softmax pass on one AP."""

    steps: List[StepCost]
    total: OperationCost
    rows: int
    columns: int
    area_mm2: float

    @property
    def cycles(self) -> float:
        """Total compare/write cycles of the pass."""
        return self.total.cycles

    @property
    def latency_s(self) -> float:
        """Latency of the pass in seconds."""
        return self.total.latency_s

    @property
    def energy_j(self) -> float:
        """Energy of the pass in joules."""
        return self.total.energy_j


class SoftmAPMapping:
    """Mapping of the integer-only softmax onto one per-head 2D AP.

    Parameters
    ----------
    precision:
        Mixed-precision configuration (defaults to the paper's best:
        ``M=6``, ``vcorr=M``, ``N=16``).
    sequence_length:
        Number of softmax elements; the AP stores ``words_per_row`` words
        per row, so it has ``sequence_length / words_per_row`` rows.
    words_per_row:
        Words packed per CAM row (2 in the paper).
    columns:
        Bit columns per row (operand fields A/B, the ``2M+12`` result column
        and scratch); 64 by default, which reproduces the paper's per-head
        area of ~0.02 mm^2 at 16 nm.
    tech:
        Technology parameters.
    division:
        ``"restoring"`` (bit-serial restoring division, default) or
        ``"reciprocal"`` (the controller computes one reciprocal of the sum
        and the AP multiplies by it) — an ablation of the last step.
    clip_threshold:
        Softmax input clipping threshold; defaults to the paper's per-``M``
        value.
    backend:
        Default execution backend of the functional simulator:
        ``"reference"`` (bit-serial LUT sweeps, the ground truth) or
        ``"vectorized"`` (the packed-word
        :class:`~repro.ap.engine.BitPlaneEngine`, bit-identical and orders
        of magnitude faster).  Can be overridden per call on
        :meth:`execute_functional` / :meth:`execute_functional_batch`.
    """

    #: Realisations of the final normalisation step (see ``division`` above).
    DIVISION_MODES = ("restoring", "reciprocal")

    #: Supported CAM row packing factors.
    WORDS_PER_ROW_CHOICES = (1, 2)

    def __init__(
        self,
        precision: PrecisionConfig = BEST_PRECISION,
        sequence_length: int = 2048,
        words_per_row: int = 2,
        columns: int = 64,
        tech: TechnologyParameters = TECH_16NM,
        division: str = "restoring",
        clip_threshold: Optional[float] = None,
        backend: str = "reference",
    ) -> None:
        self.precision = precision
        self.sequence_length = check_positive_int(sequence_length, "sequence_length")
        self.words_per_row = check_in_choices(
            check_positive_int(words_per_row, "words_per_row"),
            self.WORDS_PER_ROW_CHOICES,
            "words_per_row",
        )
        self.columns = check_positive_int(columns, "columns")
        self.tech = tech
        self.division = check_in_choices(division, self.DIVISION_MODES, "division")
        self.backend = check_in_choices(
            backend, AssociativeProcessor2D.BACKENDS, "backend"
        )
        self.quantizer = ClippedSoftmaxInputQuantizer(
            bits=precision.input_bits, clip_threshold=clip_threshold
        )
        self.polynomial = IExpPolynomial(
            input_bits=precision.input_bits, barrett_correction=False
        )
        self.constants = self.polynomial.constants(self.quantizer.scale)
        # Ceil division: an odd sequence length still occupies a final,
        # partly filled row (floor division would silently drop its word).
        self.rows = -(-self.sequence_length // self.words_per_row)
        self.cost_model = ApCostModel(rows=self.rows, columns=self.columns, tech=tech)

    # ------------------------------------------------------------------ #
    # Analytical cost                                                      #
    # ------------------------------------------------------------------ #
    def steps(self) -> List[DataflowStep]:
        """The sixteen dataflow steps for this configuration."""
        return softmax_dataflow(
            self.precision, self.sequence_length, vln2=self.constants.vln2
        )

    def cost(self) -> MappingCost:
        """Cost every step with the Table II / technology model."""
        step_costs: List[StepCost] = []
        total = OperationCost.zero("softmap")
        for step in self.steps():
            cost = self._step_cost(step)
            if step.elementwise and self.words_per_row > 1:
                cost = cost.scaled(self.words_per_row, name=cost.name)
            step_costs.append(StepCost(step=step, cost=cost))
            total = total + cost
        total = OperationCost(
            name="softmap-pass",
            cycles=total.cycles,
            latency_s=total.latency_s,
            energy_j=total.energy_j,
        )
        return MappingCost(
            steps=step_costs,
            total=total,
            rows=self.rows,
            columns=self.columns,
            area_mm2=self.cost_model.area_mm2(),
        )

    def _step_cost(self, step: DataflowStep) -> OperationCost:
        model = self.cost_model
        if step.kind is StepKind.WRITE:
            return model.write(step.width)
        if step.kind is StepKind.SUBTRACT:
            return model.subtraction(step.width)
        if step.kind is StepKind.ADD:
            return model.addition(step.width)
        if step.kind is StepKind.COPY:
            return model.copy(step.width)
        if step.kind is StepKind.MULTIPLY:
            multiplier = step.aux_width if step.aux_width else step.width
            cycles = self.multiplication_cycles_general(step.width, multiplier)
            return model.cost_from_cycles(
                f"mul[{step.width}x{multiplier}b]", cycles
            )
        if step.kind is StepKind.SHIFT:
            addition = model.addition(step.width)
            shift = model.variable_shift(step.width, step.aux_width)
            combined = addition + shift
            return OperationCost(
                name=f"add+shift[{step.width}b]",
                cycles=combined.cycles,
                latency_s=combined.latency_s,
                energy_j=combined.energy_j,
            )
        if step.kind is StepKind.REDUCTION:
            return model.reduction(
                step.width, words=step.aux_width, words_per_row=self.words_per_row
            )
        if step.kind is StepKind.DIVIDE:
            return self._division_cost(step)
        raise ValueError(f"unknown step kind {step.kind!r}")

    def multiplication_cycles_general(self, width: int, multiplier_bits: int) -> int:
        """Table II multiplication generalised to unequal operand widths:
        ``2*width`` operand cycles, ``8*width*multiplier`` shift-add cycles
        and ``2*width`` result handling (reduces to ``2M + 8M^2 + 2M`` when
        both operands are ``M`` bits wide)."""
        check_positive_int(width, "width")
        check_positive_int(multiplier_bits, "multiplier_bits")
        return 2 * width + 8 * width * multiplier_bits + 2 * width

    def _division_cost(self, step: DataflowStep) -> OperationCost:
        model = self.cost_model
        vapprox = self.precision.vapprox_bits
        fraction = max(0, step.width - vapprox)
        if self.division == "restoring":
            return model.division(
                dividend_bits=vapprox,
                divisor_bits=step.aux_width,
                fraction_bits=fraction,
            )
        # Reciprocal mode: the controller computes 1/sum once (off the CAM
        # critical path) and the AP multiplies vapprox by the reciprocal in
        # ``result_column_bits`` fixed-point precision.
        cycles = self.multiplication_cycles_general(vapprox, step.width)
        return model.cost_from_cycles(f"recip-mul[{vapprox}x{step.width}b]", cycles)

    # ------------------------------------------------------------------ #
    # Functional execution                                                 #
    # ------------------------------------------------------------------ #
    def execute_functional(
        self,
        scores: np.ndarray,
        output_fraction_bits: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> np.ndarray:
        """Execute the dataflow on the functional 2D AP for one vector.

        Parameters
        ----------
        scores:
            One softmax input vector (floating point logits).
        output_fraction_bits:
            Fractional bits of the normalised output; defaults to the
            ``2M + 12`` result-column width.
        backend:
            Functional AP backend (``"reference"`` / ``"vectorized"``);
            defaults to the mapping's configured backend.

        Returns
        -------
        The softmax probabilities computed entirely by CAM compare/write
        passes (one word per row; correctness is what matters here, the
        packing factor only affects the analytical cost).
        """
        scores = np.asarray(scores, dtype=np.float64)
        if scores.ndim != 1:
            raise ValueError("execute_functional processes one vector at a time")
        return self.execute_functional_batch(
            scores[None, :],
            output_fraction_bits=output_fraction_bits,
            backend=backend,
        )[0]

    def execute_functional_batch(
        self,
        scores: np.ndarray,
        output_fraction_bits: Optional[int] = None,
        backend: Optional[str] = None,
        valid_lengths: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Execute the dataflow for a whole ``(batch, seq)`` score tensor.

        All ``batch`` softmax vectors are stacked block by block into one
        tall AP (``batch * seq`` rows) and the sixteen dataflow steps run
        *once*: the element-wise steps are word-parallel over every row of
        every vector, and the reduction/broadcast steps use the segmented 2D
        tree (:meth:`~repro.ap.processor2d.AssociativeProcessor2D.reduce_sum_segmented`)
        so each vector sums only its own block.  With the ``"vectorized"``
        backend this is the fast path for batched softmax evaluation; with
        the ``"reference"`` backend it produces bit-identical results (the
        per-vector programs are independent).

        Parameters
        ----------
        scores:
            ``(batch, seq)`` floating-point logits; each row is one softmax.
        output_fraction_bits:
            Fractional bits of the normalised output; defaults to the
            ``2M + 12`` result-column width.
        backend:
            Functional AP backend; defaults to the mapping's configured one.
        valid_lengths:
            Optional per-vector prefix lengths (shape ``(batch,)``, each in
            ``1..seq``).  Vector ``b`` then softmaxes only its first
            ``valid_lengths[b]`` elements and the remaining positions return
            probability zero — the layout an attention row sees under the
            causal mask.  The padding words are nulled *inside* the AP (a
            tagged column clear of their ``vapprox`` field) so the valid
            prefix is bit-identical to an unpadded run of the same length.

        Returns
        -------
        ``(batch, seq)`` softmax probabilities.
        """
        scores = np.asarray(scores, dtype=np.float64)
        if scores.ndim != 2:
            raise ValueError(
                "execute_functional_batch expects a (batch, seq) score tensor"
            )
        pad_mask = None  # (batch, seq) boolean, True at padding positions
        if valid_lengths is not None:
            valid_lengths = np.asarray(valid_lengths, dtype=np.int64)
            if valid_lengths.shape != (scores.shape[0],):
                raise ValueError(
                    f"valid_lengths must have shape ({scores.shape[0]},), "
                    f"got {valid_lengths.shape}"
                )
            if np.any(valid_lengths < 1) or np.any(valid_lengths > scores.shape[1]):
                raise ValueError(
                    "valid_lengths must lie in 1..seq for every vector"
                )
            if np.any(valid_lengths < scores.shape[1]):
                pad_mask = (
                    np.arange(scores.shape[1])[None, :] >= valid_lengths[:, None]
                )
                # Padding scores must not influence the per-vector maximum
                # used for stabilisation.
                scores = np.where(pad_mask, -np.inf, scores)
        if backend is None:
            backend = self.backend
        else:
            backend = check_in_choices(
                backend, AssociativeProcessor2D.BACKENDS, "backend"
            )
        if output_fraction_bits is None:
            output_fraction_bits = self.precision.result_column_bits
        check_positive_int(output_fraction_bits, "output_fraction_bits")

        constants = self.constants
        m = self.precision.input_bits
        quantized = self.quantizer.quantize(scores, stabilise=True)
        z = (-quantized.values).astype(np.int64).ravel()  # z = -vstable >= 0
        batch, n = scores.shape

        shift_bits = max(1, bits_for_unsigned(max_shift_amount(self.precision, constants.vln2)))
        mu_bits = max(1, bits_for_unsigned(constants.mu))
        product_bits = m + mu_bits
        q_bits = max(1, product_bits - 2 * m) + 1
        vb_bits = max(1, bits_for_unsigned(constants.vb))
        vc_bits = max(1, bits_for_unsigned(constants.vc))
        poly_bits = 2 * (vb_bits + 1) + max(vc_bits - 2 * vb_bits, 0) + 2
        vapprox_bits = poly_bits
        sum_bits = vapprox_bits + max(1, bits_for_unsigned(max(n - 1, 1)))
        out_bits = vapprox_bits + output_fraction_bits

        columns_needed = (
            m                      # z
            + m                    # max / vln2 scratch
            + mu_bits              # mu
            + product_bits         # z * mu
            + q_bits * 2 + 4       # q and q * vln2
            + 2 * (vb_bits + 1)    # vb - r and its copy
            + poly_bits            # polynomial
            + vc_bits
            + vapprox_bits
            + sum_bits * 2
            + out_bits
            + sum_bits + 2         # division remainder
            + 8
        )
        ap = AssociativeProcessor2D(
            rows=batch * n, columns=columns_needed, backend=backend
        )

        # Step 1: write v (as z) and max(v); step 2 is already folded into z
        # because the functional mapping tracks the non-negative magnitude.
        z_field = ap.allocate_field("z", m)
        ap.write_field(z_field, z)

        # Steps 3-4: Barrett quotient q = (z * mu) >> 2M.
        mu_field = ap.allocate_field("mu", mu_bits)
        ap.write_constant(mu_field, constants.mu)
        product = ap.allocate_field("z_mu", product_bits)
        ap.multiply(z_field, mu_field, product)
        q_view = ap.shifted_view(product, 2 * m, name="q")

        # Steps 5-6: q * vln2 (the field is sized for the actual constant;
        # Table I budgets 4 bits, which holds for M <= 6 with the paper's
        # clipping thresholds).
        vln2_field = ap.allocate_field("vln2", max(4, bits_for_unsigned(constants.vln2)))
        ap.write_constant(vln2_field, constants.vln2)
        q_field = ap.allocate_field("q", q_bits)
        ap.copy(q_view, q_field)
        q_vln2 = ap.allocate_field("q_vln2", q_bits + vln2_field.bits)
        ap.multiply(q_field, vln2_field, q_vln2)

        # Step 7: r = z - q*vln2 = z mod vln2 (so vcorr = -r).
        r_field = ap.allocate_field("r", m)
        ap.copy(z_field, r_field)
        ap.subtract(r_field, q_vln2)

        # Steps 8-9: w = vb - r  (= vcorr + vb).
        w_field = ap.allocate_field("w", vb_bits + 1)
        ap.write_constant(w_field, constants.vb)
        ap.subtract(w_field, r_field)

        # Steps 10-11: copy w, then square it (the copy is the dataflow's
        # explicit step 10 — multiplicand and multiplier predicate must live
        # in different columns).
        w_copy = ap.allocate_field("w_copy", vb_bits + 1)
        square = ap.allocate_field("w_sq", poly_bits)
        ap.square(w_field, w_copy, square)

        # Step 12-13: add vc, then shift right by q.
        vc_field = ap.allocate_field("vc", vc_bits)
        ap.write_constant(vc_field, constants.vc)
        ap.add(vc_field, square)
        vapprox = ap.allocate_field("vapprox", vapprox_bits)
        ap.shift_right_variable(square, q_field, vapprox, max_shift_bits=min(shift_bits, q_field.bits))
        if pad_mask is not None:
            # Null the padding words so they contribute nothing to the
            # segmented sum and divide to an all-zero output word.
            ap.clear_rows(vapprox, pad_mask.ravel())

        # Steps 14-15: reduction and broadcast of the sum (segmented so that
        # every vector of the batch sums only its own block of rows).
        total = ap.allocate_field("sum", sum_bits)
        if batch == 1:
            ap.reduce_and_broadcast(vapprox, total)
        else:
            ap.reduce_and_broadcast_segments(vapprox, total, n)

        # Step 16: divide (fixed point with output_fraction_bits fraction).
        quotient = ap.allocate_field("out", out_bits)
        remainder = ap.allocate_field("rem", sum_bits + 1)
        ap.divide(vapprox, total, quotient, remainder, fraction_bits=output_fraction_bits)

        out = ap.read_field(quotient).astype(np.float64).reshape(batch, n)
        return out * (2.0 ** -output_fraction_bits)
