"""AP area figures (Section V-B).

The paper reports the silicon area of the APs needed to accelerate softmax
for Llama2-7b, 13b and 70b as 0.64, 0.81 and 1.28 mm^2 respectively (one AP
per attention head, 16 nm).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.llm.config import LLAMA2_MODELS, LlamaConfig
from repro.mapping.deployment import ApDeployment
from repro.runtime.registry import Experiment, register
from repro.utils.tables import TextTable

__all__ = ["AreaEntry", "AreaExperiment", "run_area", "render_area", "PAPER_AREAS_MM2"]

#: Area figures reported by the paper.
PAPER_AREAS_MM2: Dict[str, float] = {
    "Llama2-7b": 0.64,
    "Llama2-13b": 0.81,
    "Llama2-70b": 1.28,
}


@dataclass(frozen=True)
class AreaEntry:
    """Measured vs reported AP area for one model."""

    model: str
    num_aps: int
    measured_area_mm2: float
    paper_area_mm2: float


def run_area(models: Optional[Dict[str, LlamaConfig]] = None) -> List[AreaEntry]:
    """Compute the deployment area for each Llama2 model."""
    models = models if models is not None else LLAMA2_MODELS
    entries = []
    for model in models.values():
        deployment = ApDeployment(model)
        entries.append(
            AreaEntry(
                model=model.name,
                num_aps=deployment.num_aps,
                measured_area_mm2=deployment.total_area_mm2(),
                paper_area_mm2=PAPER_AREAS_MM2.get(model.name, float("nan")),
            )
        )
    return entries


def render_area(entries: List[AreaEntry]) -> str:
    """Render the area comparison."""
    table = TextTable(
        ["model", "APs (one per head)", "measured area (mm^2)", "paper area (mm^2)"],
        title="AP area for softmax acceleration",
    )
    for entry in entries:
        table.add_row(
            [entry.model, entry.num_aps, entry.measured_area_mm2, entry.paper_area_mm2]
        )
    return table.render()


@register("area")
class AreaExperiment(Experiment):
    """Registry wrapper: the Section V-B area figures."""

    title = "Area"
    description = "per-model AP silicon area vs the paper's mm^2 figures"
    row_type = AreaEntry

    def run(self, config=None):
        kwargs = self._config_kwargs(config)
        if "models" in kwargs and not isinstance(kwargs["models"], dict):
            kwargs["models"] = {
                name: LLAMA2_MODELS[name] for name in kwargs["models"]
            }
        return run_area(**kwargs)

    def render(self, result):
        return render_area(result)
