"""Bit-width arithmetic helpers.

The SoftmAP paper tracks the precision of every intermediate value of the
integer-only softmax (Table I) and the Associative Processor operates on
fixed-width two's-complement words.  The helpers in this module centralise
the range computations, saturation and wrap-around semantics so that the
quantization, softmax and AP packages all agree on what an ``M``-bit signed
word means.

All functions accept either Python integers or numpy arrays and return the
same kind of object (scalars stay scalars, arrays stay arrays).
"""

from __future__ import annotations

from typing import Union

import numpy as np

IntLike = Union[int, np.ndarray]

__all__ = [
    "bits_for_unsigned",
    "bits_for_signed",
    "signed_max",
    "signed_min",
    "unsigned_max",
    "saturate_signed",
    "saturate_unsigned",
    "wrap_signed",
    "wrap_unsigned",
    "fits_signed",
    "fits_unsigned",
    "to_twos_complement",
    "from_twos_complement",
]


def signed_max(bits: int) -> int:
    """Largest value representable by a signed ``bits``-wide word."""
    if bits < 1:
        raise ValueError(f"bit width must be >= 1, got {bits}")
    return (1 << (bits - 1)) - 1


def signed_min(bits: int) -> int:
    """Smallest (most negative) value representable by a signed word."""
    if bits < 1:
        raise ValueError(f"bit width must be >= 1, got {bits}")
    return -(1 << (bits - 1))


def unsigned_max(bits: int) -> int:
    """Largest value representable by an unsigned ``bits``-wide word."""
    if bits < 1:
        raise ValueError(f"bit width must be >= 1, got {bits}")
    return (1 << bits) - 1


def bits_for_unsigned(value: int) -> int:
    """Number of bits needed to store ``value`` as an unsigned integer.

    ``0`` needs one bit by convention (a single zero bit).
    """
    if value < 0:
        raise ValueError(f"value must be non-negative, got {value}")
    return max(1, int(value).bit_length())


def bits_for_signed(value: int) -> int:
    """Number of bits needed to store ``value`` in two's complement."""
    value = int(value)
    if value >= 0:
        return value.bit_length() + 1
    return (-value - 1).bit_length() + 1


def fits_signed(value: IntLike, bits: int) -> Union[bool, np.ndarray]:
    """Whether ``value`` fits in a signed word of ``bits`` bits."""
    lo, hi = signed_min(bits), signed_max(bits)
    result = (value >= lo) & (value <= hi)
    if isinstance(result, np.ndarray):
        return result
    return bool(result)


def fits_unsigned(value: IntLike, bits: int) -> Union[bool, np.ndarray]:
    """Whether ``value`` fits in an unsigned word of ``bits`` bits."""
    result = (value >= 0) & (value <= unsigned_max(bits))
    if isinstance(result, np.ndarray):
        return result
    return bool(result)


def saturate_signed(value: IntLike, bits: int) -> IntLike:
    """Clamp ``value`` to the signed range of a ``bits``-wide word."""
    lo, hi = signed_min(bits), signed_max(bits)
    if isinstance(value, np.ndarray):
        return np.clip(value, lo, hi)
    return int(min(max(int(value), lo), hi))


def saturate_unsigned(value: IntLike, bits: int) -> IntLike:
    """Clamp ``value`` to the unsigned range of a ``bits``-wide word."""
    hi = unsigned_max(bits)
    if isinstance(value, np.ndarray):
        return np.clip(value, 0, hi)
    return int(min(max(int(value), 0), hi))


def wrap_unsigned(value: IntLike, bits: int) -> IntLike:
    """Wrap ``value`` modulo ``2**bits`` (unsigned overflow semantics)."""
    modulus = 1 << bits
    if isinstance(value, np.ndarray):
        return np.mod(value, modulus)
    return int(value) % modulus


def wrap_signed(value: IntLike, bits: int) -> IntLike:
    """Wrap ``value`` into the signed range with two's-complement overflow."""
    modulus = 1 << bits
    half = 1 << (bits - 1)
    wrapped = wrap_unsigned(value, bits)
    if isinstance(wrapped, np.ndarray):
        return np.where(wrapped >= half, wrapped - modulus, wrapped)
    wrapped = int(wrapped)
    return wrapped - modulus if wrapped >= half else wrapped


def to_twos_complement(value: IntLike, bits: int) -> IntLike:
    """Encode a signed value as its unsigned two's-complement bit pattern."""
    in_range = fits_signed(value, bits)
    if isinstance(in_range, np.ndarray):
        if not bool(np.all(in_range)):
            raise OverflowError(f"values do not fit in {bits} signed bits")
    elif not in_range:
        raise OverflowError(f"value {value} does not fit in {bits} signed bits")
    return wrap_unsigned(value, bits)


def from_twos_complement(pattern: IntLike, bits: int) -> IntLike:
    """Decode an unsigned two's-complement bit pattern back to a signed value."""
    in_range = fits_unsigned(pattern, bits)
    if isinstance(in_range, np.ndarray):
        if not bool(np.all(in_range)):
            raise OverflowError(f"patterns do not fit in {bits} bits")
    elif not in_range:
        raise OverflowError(f"pattern {pattern} does not fit in {bits} bits")
    return wrap_signed(pattern, bits)
