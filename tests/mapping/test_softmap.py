"""Tests for the SoftmAP mapping: analytical cost and functional execution."""

import numpy as np
import pytest

from repro.mapping.softmap import SoftmAPMapping
from repro.quant.precision import BEST_PRECISION, PrecisionConfig
from repro.softmax.integer_softmax import IntegerSoftmax
from repro.softmax.reference import softmax


class TestCostModel:
    def test_sixteen_step_costs(self):
        cost = SoftmAPMapping(BEST_PRECISION, sequence_length=2048).cost()
        assert len(cost.steps) == 16
        assert cost.cycles == pytest.approx(sum(s.cost.cycles for s in cost.steps))
        assert cost.latency_s > 0
        assert cost.energy_j > 0

    def test_rows_follow_words_per_row(self):
        assert SoftmAPMapping(BEST_PRECISION, 2048, words_per_row=2).rows == 1024
        assert SoftmAPMapping(BEST_PRECISION, 2048, words_per_row=1).rows == 2048

    @pytest.mark.parametrize("seq,expected", [(1, 1), (3, 2), (7, 4), (2049, 1025)])
    def test_odd_sequence_lengths_round_rows_up(self, seq, expected):
        """Regression: floor division silently dropped the last packed word
        of an odd-length sequence; ceil division provisions it a row."""
        assert SoftmAPMapping(BEST_PRECISION, seq, words_per_row=2).rows == expected

    def test_odd_sequence_length_costs_like_the_next_even_one(self):
        odd = SoftmAPMapping(BEST_PRECISION, 1023).cost()
        even = SoftmAPMapping(BEST_PRECISION, 1024).cost()
        assert odd.rows == even.rows
        assert odd.energy_j == pytest.approx(even.energy_j)

    def test_packing_two_words_doubles_elementwise_work(self):
        one = SoftmAPMapping(BEST_PRECISION, 1024, words_per_row=1).cost()
        two = SoftmAPMapping(BEST_PRECISION, 1024, words_per_row=2).cost()
        assert two.cycles > one.cycles

    def test_latency_nearly_flat_in_sequence_length(self):
        short = SoftmAPMapping(BEST_PRECISION, 128).cost()
        long = SoftmAPMapping(BEST_PRECISION, 4096).cost()
        # Only the reduction's log term grows with the sequence length.
        assert long.cycles < 1.1 * short.cycles

    def test_energy_grows_with_sequence_length(self):
        short = SoftmAPMapping(BEST_PRECISION, 128).cost()
        long = SoftmAPMapping(BEST_PRECISION, 4096).cost()
        assert long.energy_j > 10 * short.energy_j

    def test_higher_precision_costs_more_cycles(self):
        low = SoftmAPMapping(PrecisionConfig(4, 0, 16), 1024).cost()
        high = SoftmAPMapping(PrecisionConfig(8, 0, 16), 1024).cost()
        assert high.cycles > low.cycles

    def test_reciprocal_division_is_cheaper(self):
        restoring = SoftmAPMapping(BEST_PRECISION, 1024, division="restoring").cost()
        reciprocal = SoftmAPMapping(BEST_PRECISION, 1024, division="reciprocal").cost()
        assert reciprocal.cycles < restoring.cycles

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            SoftmAPMapping(BEST_PRECISION, 128, words_per_row=3)
        with pytest.raises(ValueError):
            SoftmAPMapping(BEST_PRECISION, 128, division="newton")

    def test_general_multiplication_reduces_to_table_ii(self):
        mapping = SoftmAPMapping(BEST_PRECISION, 128)
        assert mapping.multiplication_cycles_general(6, 6) == \
            mapping.cost_model.multiplication_cycles(6)


class TestPlanCache:
    def test_length_sweep_stays_bounded(self):
        """Regression: an incremental decode sweeps sequence lengths 1..T;
        the plan cache must evict instead of retaining one compiled plan
        per distinct length forever."""
        mapping = SoftmAPMapping(
            BEST_PRECISION, sequence_length=48, plan_cache_size=8
        )
        for length in range(2, 49):
            mapping.plan(sequence_length=length)
        assert len(mapping._plans) <= 8
        # The provisioned shape is pinned: still cached, still the object
        # the construction-time attributes were read from.
        provisioned = mapping.plan()
        assert provisioned.rows == mapping.rows
        assert len(mapping._plans) <= 8

    def test_recently_used_plans_survive(self):
        mapping = SoftmAPMapping(
            BEST_PRECISION, sequence_length=32, plan_cache_size=4
        )
        hot = mapping.plan(sequence_length=8)
        for length in range(9, 20):
            mapping.plan(sequence_length=8)  # keep the hot shape recent
            mapping.plan(sequence_length=length)
        assert mapping.plan(sequence_length=8) is hot

    def test_eviction_recompiles_transparently(self):
        mapping = SoftmAPMapping(
            BEST_PRECISION, sequence_length=16, plan_cache_size=2
        )
        first = mapping.plan(sequence_length=4)
        for length in range(5, 10):
            mapping.plan(sequence_length=length)  # evicts length 4
        recompiled = mapping.plan(sequence_length=4)
        assert recompiled is not first
        assert recompiled.rows == first.rows

    def test_repeated_plan_calls_cache(self):
        mapping = SoftmAPMapping(BEST_PRECISION, sequence_length=16)
        assert mapping.plan(sequence_length=7) is mapping.plan(sequence_length=7)

    def test_plan_cache_size_validated(self):
        with pytest.raises(ValueError, match="plan_cache_size"):
            SoftmAPMapping(BEST_PRECISION, 16, plan_cache_size=0)


class TestFunctionalExecution:
    @pytest.mark.parametrize("m", [4, 6, 8])
    def test_bit_exact_against_software_pipeline(self, m):
        rng = np.random.default_rng(m)
        precision = PrecisionConfig(m, 0, 20)
        scores = rng.normal(0, 2, 24)
        mapping = SoftmAPMapping(precision, sequence_length=24)
        hardware = mapping.execute_functional(scores)
        software = IntegerSoftmax(precision, barrett_correction=False)(scores)
        assert np.allclose(hardware, software, atol=1e-12)

    def test_close_to_fp_softmax(self):
        rng = np.random.default_rng(0)
        scores = rng.normal(0, 1.5, 32)
        mapping = SoftmAPMapping(PrecisionConfig(8, 0, 20), sequence_length=32)
        hardware = mapping.execute_functional(scores)
        assert np.max(np.abs(hardware - softmax(scores))) < 0.03

    def test_requires_one_dimensional_input(self):
        mapping = SoftmAPMapping(BEST_PRECISION, sequence_length=8)
        with pytest.raises(ValueError):
            mapping.execute_functional(np.zeros((2, 4)))

    @pytest.mark.parametrize("backend", ["vectorized", "reference"])
    def test_odd_length_batch_matches_software(self, backend):
        """Regression companion to the row-capacity fix: an odd sequence
        length must process *every* element (the seed dropped none in the
        functional path, but the fixed row sizing is exercised here)."""
        rng = np.random.default_rng(5)
        scores = rng.normal(0, 2, (3, 13))
        mapping = SoftmAPMapping(BEST_PRECISION, sequence_length=13)
        hardware = mapping.execute_functional_batch(scores, backend=backend)
        software = IntegerSoftmax(BEST_PRECISION, barrett_correction=False)(scores)
        assert np.array_equal(hardware, software)

    @pytest.mark.parametrize("backend", ["vectorized", "reference"])
    def test_valid_lengths_bit_exact_against_unpadded_runs(self, backend):
        """Each masked vector must equal an unpadded run of its own prefix
        bit for bit, with zeros at every padding position."""
        rng = np.random.default_rng(9)
        scores = rng.normal(0, 2, (5, 12))
        lengths = np.array([1, 4, 7, 12, 9])
        mapping = SoftmAPMapping(BEST_PRECISION, sequence_length=12)
        out = mapping.execute_functional_batch(
            scores, backend=backend, valid_lengths=lengths
        )
        for b, length in enumerate(lengths):
            prefix = mapping.execute_functional(scores[b, :length])
            assert np.array_equal(out[b, :length], prefix)
            assert np.all(out[b, length:] == 0.0)

    def test_valid_lengths_validation(self):
        mapping = SoftmAPMapping(BEST_PRECISION, sequence_length=8)
        scores = np.zeros((2, 8))
        with pytest.raises(ValueError):
            mapping.execute_functional_batch(scores, valid_lengths=np.array([1]))
        with pytest.raises(ValueError):
            mapping.execute_functional_batch(scores, valid_lengths=np.array([0, 8]))
        with pytest.raises(ValueError):
            mapping.execute_functional_batch(scores, valid_lengths=np.array([1, 9]))

    @pytest.mark.parametrize("m", [4, 6, 8])
    @pytest.mark.parametrize("backend", ["vectorized", "reference"])
    def test_saturated_shift_field_matches_software(self, m, backend):
        """Extreme logits whose Barrett quotient saturates the variable-shift
        field (the ``max_shift_bits`` clamp of step 13) must still match the
        software pipeline bit for bit on both backends."""
        precision = PrecisionConfig(m, 0, 20)
        # A full-scale spread: one dominant logit and the rest far below the
        # clipping threshold, so their z saturates at 2**M - 1 and the
        # Barrett quotient reaches its maximum.
        scores = np.array([0.0, -1e30, -100.0, -50.0, -7.0, -6.99, -3.5, 0.0])
        mapping = SoftmAPMapping(precision, sequence_length=scores.size)
        quantized = mapping.quantizer.quantize(scores, stabilise=True)
        assert int(np.max(-quantized.values)) == 2 ** m - 1, "z must saturate"
        hardware = mapping.execute_functional(scores, backend=backend)
        software = IntegerSoftmax(precision, barrett_correction=False)(scores)
        assert np.array_equal(hardware, software)
