"""Unit and property tests for bit-width helpers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.bitwidth import (
    bits_for_signed,
    bits_for_unsigned,
    fits_signed,
    fits_unsigned,
    from_twos_complement,
    saturate_signed,
    saturate_unsigned,
    signed_max,
    signed_min,
    to_twos_complement,
    unsigned_max,
    wrap_signed,
    wrap_unsigned,
)


class TestRanges:
    @pytest.mark.parametrize("bits,expected", [(1, 0), (2, 1), (8, 127), (16, 32767)])
    def test_signed_max(self, bits, expected):
        assert signed_max(bits) == expected

    @pytest.mark.parametrize("bits,expected", [(1, -1), (2, -2), (8, -128), (16, -32768)])
    def test_signed_min(self, bits, expected):
        assert signed_min(bits) == expected

    @pytest.mark.parametrize("bits,expected", [(1, 1), (4, 15), (8, 255), (12, 4095)])
    def test_unsigned_max(self, bits, expected):
        assert unsigned_max(bits) == expected

    @pytest.mark.parametrize("bad", [0, -1])
    def test_invalid_width_rejected(self, bad):
        with pytest.raises(ValueError):
            signed_max(bad)
        with pytest.raises(ValueError):
            unsigned_max(bad)


class TestBitsFor:
    @pytest.mark.parametrize("value,expected", [(0, 1), (1, 1), (2, 2), (255, 8), (256, 9)])
    def test_bits_for_unsigned(self, value, expected):
        assert bits_for_unsigned(value) == expected

    def test_bits_for_unsigned_rejects_negative(self):
        with pytest.raises(ValueError):
            bits_for_unsigned(-1)

    @pytest.mark.parametrize("value,expected", [(0, 1), (1, 2), (-1, 1), (127, 8), (-128, 8), (128, 9)])
    def test_bits_for_signed(self, value, expected):
        assert bits_for_signed(value) == expected

    @given(st.integers(min_value=-(2**40), max_value=2**40))
    def test_signed_roundtrip_property(self, value):
        bits = bits_for_signed(value)
        assert fits_signed(value, bits)
        if bits > 1:
            assert not fits_signed(value, bits - 1) or value in (0, -1)


class TestSaturateWrap:
    def test_saturate_signed_scalar(self):
        assert saturate_signed(300, 8) == 127
        assert saturate_signed(-300, 8) == -128
        assert saturate_signed(5, 8) == 5

    def test_saturate_unsigned_array(self):
        values = np.array([-3, 0, 255, 300])
        out = saturate_unsigned(values, 8)
        assert list(out) == [0, 0, 255, 255]

    def test_wrap_unsigned(self):
        assert wrap_unsigned(256, 8) == 0
        assert wrap_unsigned(-1, 8) == 255

    def test_wrap_signed(self):
        assert wrap_signed(128, 8) == -128
        assert wrap_signed(-129, 8) == 127
        assert list(wrap_signed(np.array([128, -129, 5]), 8)) == [-128, 127, 5]

    @given(st.integers(min_value=-(2**30), max_value=2**30), st.integers(min_value=2, max_value=20))
    def test_wrap_signed_in_range_property(self, value, bits):
        wrapped = wrap_signed(value, bits)
        assert signed_min(bits) <= wrapped <= signed_max(bits)
        assert (wrapped - value) % (1 << bits) == 0

    @given(st.integers(min_value=-(2**15), max_value=2**15 - 1))
    def test_twos_complement_roundtrip(self, value):
        pattern = to_twos_complement(value, 16)
        assert fits_unsigned(pattern, 16)
        assert from_twos_complement(pattern, 16) == value

    def test_twos_complement_overflow_raises(self):
        with pytest.raises(OverflowError):
            to_twos_complement(200, 8)
        with pytest.raises(OverflowError):
            from_twos_complement(512, 8)
