"""Analytical AP cost model (Table II + 16 nm energy/area).

The paper characterises the AP with a "Python-based AP simulator that models
the data flow execution ... and relies on the formulations in Table II to
model the energy and latency of performing elementary operations".  This
module is that simulator's costing half:

* the **cycle formulas of Table II** for addition, multiplication, reduction
  and matrix-matrix multiplication, plus documented formulas (derived from
  the LUT structure of the functional simulator) for the remaining
  operations the dataflow needs (subtraction, copy, constant write, variable
  shift, restoring division);
* an **energy model**: every compare/write cycle activates a small number of
  bit columns in every participating row, each costing the per-bit energies
  of :class:`~repro.ap.tech.TechnologyParameters`;
* an **area model**: CAM cells times cell area.

All methods return :class:`OperationCost` records that can be added up by
the dataflow mapping in :mod:`repro.mapping`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.ap.tech import TECH_16NM, TechnologyParameters
from repro.utils.validation import check_positive_int, check_non_negative_int

__all__ = ["OperationCost", "ApCostModel"]


@dataclass(frozen=True)
class OperationCost:
    """Latency/energy cost of one (possibly composite) AP operation."""

    name: str
    cycles: float
    latency_s: float
    energy_j: float

    def __add__(self, other: "OperationCost") -> "OperationCost":
        return OperationCost(
            name=f"{self.name}+{other.name}",
            cycles=self.cycles + other.cycles,
            latency_s=self.latency_s + other.latency_s,
            energy_j=self.energy_j + other.energy_j,
        )

    def scaled(self, factor: float, name: str = "") -> "OperationCost":
        """Cost of repeating the operation ``factor`` times."""
        if factor < 0:
            raise ValueError("factor must be >= 0")
        return OperationCost(
            name=name or f"{factor}x{self.name}",
            cycles=self.cycles * factor,
            latency_s=self.latency_s * factor,
            energy_j=self.energy_j * factor,
        )

    @staticmethod
    def zero(name: str = "zero") -> "OperationCost":
        """A zero-cost placeholder (e.g. constant shifts, free re-labelling)."""
        return OperationCost(name=name, cycles=0.0, latency_s=0.0, energy_j=0.0)


class ApCostModel:
    """Latency/energy/area model of a 2D AP of ``rows`` rows.

    Parameters
    ----------
    rows:
        Number of CAM rows of the AP (``SequenceLength / 2`` in the SoftmAP
        deployment).
    columns:
        Number of bit columns (determines area; defaults to the SoftmAP
        column budget of ``2M + 12`` result bits plus two operand fields and
        service columns, i.e. 64 columns for ``M = 6``).
    tech:
        Technology parameters (16 nm by default).
    active_bits_per_cycle:
        Average number of bit columns touched by one compare/write cycle in
        every participating row (the LUT passes mask 2-3 columns).
    """

    def __init__(
        self,
        rows: int,
        columns: int = 64,
        tech: TechnologyParameters = TECH_16NM,
        active_bits_per_cycle: float = 2.0,
    ) -> None:
        self.rows = check_positive_int(rows, "rows")
        self.columns = check_positive_int(columns, "columns")
        self.tech = tech
        if active_bits_per_cycle <= 0:
            raise ValueError("active_bits_per_cycle must be > 0")
        self.active_bits_per_cycle = float(active_bits_per_cycle)

    # ------------------------------------------------------------------ #
    # Generic cycle -> cost conversion                                     #
    # ------------------------------------------------------------------ #
    def cost_from_cycles(
        self, name: str, cycles: float, active_rows: int = 0
    ) -> OperationCost:
        """Convert a cycle count into latency and energy.

        ``active_rows`` is the number of rows participating in the operation
        (all rows by default); energy scales with it while latency does not
        (word-parallel operation).
        """
        if cycles < 0:
            raise ValueError("cycles must be >= 0")
        rows = self.rows if active_rows <= 0 else min(active_rows, self.rows)
        latency = cycles * self.tech.cycle_time_s
        cell_energy = (
            cycles
            * rows
            * self.active_bits_per_cycle
            * 0.5
            * (self.tech.compare_energy_per_bit_j + self.tech.write_energy_per_bit_j)
        )
        row_energy = cycles * rows * self.tech.row_access_energy_j
        dynamic = cell_energy + row_energy
        static = self.tech.idle_row_leakage_w * self.rows * latency
        return OperationCost(
            name=name, cycles=float(cycles), latency_s=latency, energy_j=dynamic + static
        )

    # ------------------------------------------------------------------ #
    # Table II formulas                                                    #
    # ------------------------------------------------------------------ #
    def addition_cycles(self, precision: int) -> int:
        """Table II: ``2M + 8M + M + 1``."""
        m = check_positive_int(precision, "precision")
        return 2 * m + 8 * m + m + 1

    def multiplication_cycles(self, precision: int) -> int:
        """Table II: ``2M + 8M^2 + 2M``."""
        m = check_positive_int(precision, "precision")
        return 2 * m + 8 * m * m + 2 * m

    def reduction_levels(self, words: int, words_per_row: int = 2) -> int:
        """Binary-tree levels of an ``L``-word reduction across CAM rows.

        With ``words_per_row`` words packed per row the reduction spans
        ``ceil(L / words_per_row)`` rows, and the inter-row tree needs
        ``ceil(log2(rows))`` levels (zero when everything fits in one row).
        This is exactly the level count the functional simulator reports
        from :meth:`~repro.ap.processor2d.AssociativeProcessor2D.reduce_sum_segmented`
        for a segment of that many rows — the parity is pinned by a test.
        """
        length = check_positive_int(words, "words")
        check_positive_int(words_per_row, "words_per_row")
        rows = -(-length // words_per_row)
        return int(math.ceil(math.log2(rows))) if rows > 1 else 0

    def reduction_cycles(
        self, precision: int, words: int, words_per_row: int = 2
    ) -> int:
        """Table II: ``2M + 8M + 8*log2(L/2) + 1`` for ``L`` words.

        The ``log2(L/2)`` term is the inter-row tree depth with the paper's
        two-words-per-row packing; :meth:`reduction_levels` generalises it to
        non-power-of-two word counts (ceil division, so the last partly
        filled row still gets its tree level) and other packing factors.
        """
        m = check_positive_int(precision, "precision")
        levels = self.reduction_levels(words, words_per_row)
        return 2 * m + 8 * m + 8 * levels + 1

    def matmul_cycles(self, precision: int, inner_dimension: int) -> int:
        """Table II: ``2M + 8M^2 + 8*log2(j) + 2M + log2(j)``."""
        m = check_positive_int(precision, "precision")
        j = check_positive_int(inner_dimension, "inner_dimension")
        log_j = max(1, math.ceil(math.log2(j))) if j > 1 else 1
        return 2 * m + 8 * m * m + 8 * log_j + 2 * m + log_j

    # ------------------------------------------------------------------ #
    # Formulas for the remaining dataflow operations (documented; derived  #
    # from the LUT pass structure of the functional simulator)             #
    # ------------------------------------------------------------------ #
    def subtraction_cycles(self, precision: int) -> int:
        """Same LUT structure as addition: ``2M + 8M + M + 1``."""
        return self.addition_cycles(precision)

    def write_cycles(self, precision: int) -> int:
        """Writing an ``M``-bit operand/constant: one cycle per column."""
        return check_positive_int(precision, "precision")

    def copy_cycles(self, precision: int) -> int:
        """Clearing the destination plus one pass per bit: ``3M``."""
        return 3 * check_positive_int(precision, "precision")

    def variable_shift_cycles(self, width: int, shift_bits: int) -> int:
        """Barrel shift: initial copy plus ``shift_bits`` conditional-copy
        stages of 2 passes (4 cycles) per destination bit."""
        width = check_positive_int(width, "width")
        shift_bits = check_non_negative_int(shift_bits, "shift_bits")
        return self.copy_cycles(width) + 4 * width * shift_bits

    def division_cycles(
        self, dividend_bits: int, divisor_bits: int, fraction_bits: int = 0
    ) -> int:
        """Restoring division producing ``dividend_bits + fraction_bits``
        output bits; per output bit: remainder shift, bring-down, subtract,
        flag latch, conditional restore and quotient write."""
        dividend_bits = check_positive_int(dividend_bits, "dividend_bits")
        divisor_bits = check_positive_int(divisor_bits, "divisor_bits")
        fraction_bits = check_non_negative_int(fraction_bits, "fraction_bits")
        remainder_bits = divisor_bits + 1
        per_bit = (
            2 * remainder_bits      # remainder <<= 1
            + 2                     # bring down the next dividend bit
            + self.subtraction_cycles(remainder_bits) - 2 * remainder_bits
            + 2                     # latch the borrow flag
            + self.addition_cycles(remainder_bits) - 2 * remainder_bits
            + 2                     # write the quotient bit
        )
        return (dividend_bits + fraction_bits) * per_bit

    # ------------------------------------------------------------------ #
    # Convenience: costs (cycles -> latency/energy)                        #
    # ------------------------------------------------------------------ #
    def addition(self, precision: int, active_rows: int = 0) -> OperationCost:
        """Cost of a word-parallel addition."""
        return self.cost_from_cycles(
            f"add[{precision}b]", self.addition_cycles(precision), active_rows
        )

    def subtraction(self, precision: int, active_rows: int = 0) -> OperationCost:
        """Cost of a word-parallel subtraction."""
        return self.cost_from_cycles(
            f"sub[{precision}b]", self.subtraction_cycles(precision), active_rows
        )

    def multiplication(self, precision: int, active_rows: int = 0) -> OperationCost:
        """Cost of a word-parallel multiplication."""
        return self.cost_from_cycles(
            f"mul[{precision}b]", self.multiplication_cycles(precision), active_rows
        )

    def reduction(
        self,
        precision: int,
        words: int,
        active_rows: int = 0,
        words_per_row: int = 2,
    ) -> OperationCost:
        """Cost of a full-column reduction of ``words`` words."""
        return self.cost_from_cycles(
            f"reduce[{precision}b,{words}w]",
            self.reduction_cycles(precision, words, words_per_row),
            active_rows,
        )

    def write(self, precision: int, active_rows: int = 0) -> OperationCost:
        """Cost of writing an operand or offline constant."""
        return self.cost_from_cycles(
            f"write[{precision}b]", self.write_cycles(precision), active_rows
        )

    def copy(self, precision: int, active_rows: int = 0) -> OperationCost:
        """Cost of a word-parallel copy."""
        return self.cost_from_cycles(
            f"copy[{precision}b]", self.copy_cycles(precision), active_rows
        )

    def variable_shift(
        self, width: int, shift_bits: int, active_rows: int = 0
    ) -> OperationCost:
        """Cost of a per-row variable right shift."""
        return self.cost_from_cycles(
            f"shift[{width}b>>{shift_bits}b]",
            self.variable_shift_cycles(width, shift_bits),
            active_rows,
        )

    def division(
        self,
        dividend_bits: int,
        divisor_bits: int,
        fraction_bits: int = 0,
        active_rows: int = 0,
    ) -> OperationCost:
        """Cost of a word-parallel restoring division."""
        return self.cost_from_cycles(
            f"div[{dividend_bits}b/{divisor_bits}b]",
            self.division_cycles(dividend_bits, divisor_bits, fraction_bits),
            active_rows,
        )

    # ------------------------------------------------------------------ #
    # Area and per-op energy                                               #
    # ------------------------------------------------------------------ #
    def area_mm2(self) -> float:
        """Layout area of the AP (cells x per-cell area incl. peripherals)."""
        return self.rows * self.columns * self.tech.cell_area_um2 * 1e-6

    def energy_per_elementary_op_pj(
        self, precision: int, include_row_access: bool = False
    ) -> float:
        """Energy of one elementary operation on one word, in pJ.

        This is the quantity compared against ConSmax/Softermax in Table VI:
        the per-word energy of the cheapest elementary arithmetic operation
        (an ``M``-bit addition) at the chosen precision.  By default only the
        cell-level switching energy of the word's own columns is counted
        (the shared match-line/row-access energy is amortised over all words
        packed in the row and over the array leakage budget); pass
        ``include_row_access=True`` for the conservative variant measured by
        the EXPERIMENTS.md comparison.
        """
        cycles = self.addition_cycles(precision)
        dynamic = (
            cycles
            * self.active_bits_per_cycle
            * 0.5
            * (self.tech.compare_energy_per_bit_j + self.tech.write_energy_per_bit_j)
        )
        if include_row_access:
            dynamic += cycles * self.tech.row_access_energy_j
        return dynamic * 1e12
