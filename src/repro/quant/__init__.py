"""Quantization substrate.

The SoftmAP software contribution operates on *quantized* softmax inputs:
attention scores are clipped to ``[TC, 0]`` (the paper uses ``TC = -7`` for
``M`` of 6 or 8 bits and ``TC = -4`` for 4 bits) and mapped to integers with
a scaling factor ``S`` that is fixed offline.  This package provides:

* :class:`~repro.quant.quantizer.SymmetricQuantizer` — classic symmetric
  max-abs quantization used for generic tensors.
* :class:`~repro.quant.quantizer.ClippedSoftmaxInputQuantizer` — the clipped
  non-positive quantizer the paper applies to softmax inputs.
* :class:`~repro.quant.precision.PrecisionConfig` — a mixed-precision
  configuration (``M``, ``vcorr`` width, ``N``) that derives every
  intermediate bit width of Table I.
"""

from repro.quant.quantizer import (
    QuantizedTensor,
    SymmetricQuantizer,
    ClippedSoftmaxInputQuantizer,
    default_clipping_threshold,
)
from repro.quant.precision import (
    PrecisionConfig,
    PrecisionTableEntry,
    table_i,
    TABLE_I_M_VALUES,
    TABLE_I_N_VALUES,
    TABLE_I_VCORR_DELTAS,
    BEST_PRECISION,
)

__all__ = [
    "QuantizedTensor",
    "SymmetricQuantizer",
    "ClippedSoftmaxInputQuantizer",
    "default_clipping_threshold",
    "PrecisionConfig",
    "PrecisionTableEntry",
    "table_i",
    "TABLE_I_M_VALUES",
    "TABLE_I_N_VALUES",
    "TABLE_I_VCORR_DELTAS",
    "BEST_PRECISION",
]
