"""Whole-model GPU runtime breakdown (Fig. 1 and the Amdahl analysis).

Fig. 1 of the paper reports the fraction of Llama2-7b runtime spent in
softmax on an A100 as a function of sequence length: ~3 % at and below 1024
and up to 38 % at 16384.  That growth pattern is characteristic of the
*prefill* phase: weight GEMM time grows linearly with the sequence length
while the attention-score softmax grows quadratically, so its share rises
and then saturates.

:class:`GpuTransformerModel` models one prefill pass as three components:

* **weight GEMMs** — ``2 * parameters * tokens`` FLOPs at a fraction of the
  GPU's peak tensor throughput;
* **attention matmuls** — the ``Q K^T`` and ``P V`` products
  (``4 * layers * hidden * seq^2`` FLOPs);
* **softmax** — the ``[batch, heads, seq, seq]`` score tensor streamed
  ``passes`` times at the GPU's streaming bandwidth plus one kernel launch
  per layer.

It also exposes a decode-step breakdown (weights + KV cache + softmax) used
by the examples, and an Amdahl helper for the paper's "6.7x softmax speedup
=> 10.71 % end-to-end" observation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.softmax_model import GpuSoftmaxModel
from repro.gpu.spec import GpuSpec
from repro.llm.config import LlamaConfig
from repro.utils.validation import check_positive_int

__all__ = ["RuntimeBreakdown", "GpuTransformerModel"]


@dataclass(frozen=True)
class RuntimeBreakdown:
    """Runtime split of one forward pass (prefill or decode step)."""

    model: str
    gpu: str
    phase: str
    batch_size: int
    sequence_length: int
    gemm_time_s: float
    attention_matmul_time_s: float
    softmax_time_s: float
    other_time_s: float

    @property
    def total_s(self) -> float:
        """Total latency of the pass."""
        return (
            self.gemm_time_s
            + self.attention_matmul_time_s
            + self.softmax_time_s
            + self.other_time_s
        )

    @property
    def softmax_fraction(self) -> float:
        """Fraction of the pass spent in softmax (the Fig. 1 quantity)."""
        return self.softmax_time_s / self.total_s

    def with_softmax_speedup(self, speedup: float) -> "RuntimeBreakdown":
        """Amdahl's law: the breakdown after accelerating softmax."""
        if speedup <= 0:
            raise ValueError("speedup must be > 0")
        return RuntimeBreakdown(
            model=self.model,
            gpu=self.gpu,
            phase=self.phase,
            batch_size=self.batch_size,
            sequence_length=self.sequence_length,
            gemm_time_s=self.gemm_time_s,
            attention_matmul_time_s=self.attention_matmul_time_s,
            softmax_time_s=self.softmax_time_s / speedup,
            other_time_s=self.other_time_s,
        )

    def end_to_end_reduction(self, speedup: float) -> float:
        """Relative end-to-end time saved when softmax is sped up by
        ``speedup`` (the paper's 10.71 % figure for 6.7x on Llama2-70b)."""
        accelerated = self.with_softmax_speedup(speedup)
        return 1.0 - accelerated.total_s / self.total_s


class GpuTransformerModel:
    """Analytical runtime model of a Llama2-style model on a GPU.

    Parameters
    ----------
    gpu:
        GPU specification.
    model:
        Model shape configuration.
    compute_efficiency:
        Fraction of peak tensor throughput achieved by the large GEMMs.
    softmax_dtype_bytes / softmax_passes:
        Data type width and memory passes of the attention softmax kernel.
    nonlinear_overhead:
        Extra time (fraction of the GEMM time) for the remaining non-GEMM
        work other than softmax (layer norms, rotary embeddings, SwiGLU
        activations, scheduling).
    weight_dtype_bytes:
        Bytes per weight (2 for fp16), used by the decode-step model.
    """

    def __init__(
        self,
        gpu: GpuSpec,
        model: LlamaConfig,
        compute_efficiency: float = 0.5,
        softmax_dtype_bytes: int = 2,
        softmax_passes: int = 3,
        nonlinear_overhead: float = 0.05,
        weight_dtype_bytes: int = 2,
    ) -> None:
        self.gpu = gpu
        self.model = model
        if not 0 < compute_efficiency <= 1:
            raise ValueError("compute_efficiency must be in (0, 1]")
        self.compute_efficiency = float(compute_efficiency)
        self.softmax_dtype_bytes = check_positive_int(softmax_dtype_bytes, "softmax_dtype_bytes")
        self.softmax_passes = check_positive_int(softmax_passes, "softmax_passes")
        if nonlinear_overhead < 0:
            raise ValueError("nonlinear_overhead must be >= 0")
        self.nonlinear_overhead = float(nonlinear_overhead)
        self.weight_dtype_bytes = check_positive_int(weight_dtype_bytes, "weight_dtype_bytes")
        self.softmax_model = GpuSoftmaxModel(gpu)

    # ------------------------------------------------------------------ #
    # Prefill (Fig. 1)                                                     #
    # ------------------------------------------------------------------ #
    def prefill(self, batch_size: int, sequence_length: int) -> RuntimeBreakdown:
        """Runtime breakdown of one prefill pass over ``sequence_length``
        tokens."""
        check_positive_int(batch_size, "batch_size")
        check_positive_int(sequence_length, "sequence_length")
        throughput = self.gpu.peak_fp16_flops * self.compute_efficiency

        gemm_flops = 2.0 * self.model.parameter_count * sequence_length * batch_size
        gemm_time = gemm_flops / throughput

        attention_flops = (
            4.0
            * self.model.num_layers
            * self.model.hidden_size
            * float(sequence_length) ** 2
            * batch_size
        )
        attention_time = attention_flops / throughput

        score_elements = (
            float(batch_size)
            * self.model.num_heads
            * sequence_length
            * sequence_length
        )
        softmax_bytes = score_elements * self.softmax_dtype_bytes * self.softmax_passes
        softmax_time = self.model.num_layers * (
            self.gpu.kernel_launch_overhead_s
            + softmax_bytes / self.gpu.streaming_bandwidth()
        )

        other_time = self.nonlinear_overhead * gemm_time
        return RuntimeBreakdown(
            model=self.model.name,
            gpu=self.gpu.name,
            phase="prefill",
            batch_size=batch_size,
            sequence_length=sequence_length,
            gemm_time_s=gemm_time,
            attention_matmul_time_s=attention_time,
            softmax_time_s=softmax_time,
            other_time_s=other_time,
        )

    def softmax_fraction(self, batch_size: int, sequence_length: int) -> float:
        """Convenience accessor for the Fig. 1 quantity."""
        return self.prefill(batch_size, sequence_length).softmax_fraction

    # ------------------------------------------------------------------ #
    # Decode step                                                          #
    # ------------------------------------------------------------------ #
    def decode_step(self, batch_size: int, sequence_length: int) -> RuntimeBreakdown:
        """Runtime breakdown of one auto-regressive decode step at context
        length ``sequence_length`` (memory-bound weights + KV cache +
        softmax)."""
        check_positive_int(batch_size, "batch_size")
        check_positive_int(sequence_length, "sequence_length")
        bandwidth = self.gpu.streaming_bandwidth()

        weight_bytes = float(self.model.parameter_count) * self.weight_dtype_bytes
        weight_time = weight_bytes / bandwidth

        kv_bytes = (
            2.0
            * batch_size
            * self.model.num_layers
            * self.model.num_kv_heads
            * self.model.head_dim
            * sequence_length
            * self.weight_dtype_bytes
        )
        kv_time = kv_bytes / bandwidth

        softmax_time = (
            self.model.num_layers
            * self.softmax_model.decode_cost(
                batch_size, self.model.num_heads, sequence_length
            ).latency_s
        )
        other_time = self.nonlinear_overhead * weight_time
        return RuntimeBreakdown(
            model=self.model.name,
            gpu=self.gpu.name,
            phase="decode",
            batch_size=batch_size,
            sequence_length=sequence_length,
            gemm_time_s=weight_time,
            attention_matmul_time_s=kv_time,
            softmax_time_s=softmax_time,
            other_time_s=other_time,
        )
