"""Tests for the Table II cost model and the technology parameters."""

import dataclasses
import math

import pytest

from repro.ap.cost import ApCostModel, OperationCost
from repro.ap.tech import TECH_16NM, TechnologyParameters


class TestTableIIFormulas:
    @pytest.mark.parametrize("m,expected", [(4, 45), (6, 67), (8, 89)])
    def test_addition(self, m, expected):
        assert ApCostModel(rows=64).addition_cycles(m) == expected  # 2M+8M+M+1

    @pytest.mark.parametrize("m,expected", [(4, 144), (6, 312), (8, 544)])
    def test_multiplication(self, m, expected):
        assert ApCostModel(rows=64).multiplication_cycles(m) == expected  # 2M+8M^2+2M

    def test_reduction_formula(self):
        model = ApCostModel(rows=1024)
        m, words = 6, 2048
        expected = 2 * m + 8 * m + 8 * math.ceil(math.log2(words // 2)) + 1
        assert model.reduction_cycles(m, words) == expected

    def test_matmul_formula(self):
        model = ApCostModel(rows=64)
        m, j = 8, 64
        expected = 2 * m + 8 * m * m + 8 * math.ceil(math.log2(j)) + 2 * m + math.ceil(math.log2(j))
        assert model.matmul_cycles(m, j) == expected

    def test_subtraction_equals_addition(self):
        model = ApCostModel(rows=64)
        assert model.subtraction_cycles(6) == model.addition_cycles(6)

    def test_division_scales_with_output_bits(self):
        model = ApCostModel(rows=64)
        base = model.division_cycles(12, 28, 0)
        extended = model.division_cycles(12, 28, 12)
        assert extended == 2 * base  # per-output-bit cost, 24 vs 12 output bits
        assert base > 0

    def test_variable_shift_cycles(self):
        model = ApCostModel(rows=64)
        assert model.variable_shift_cycles(10, 4) == 3 * 10 + 4 * 10 * 4

    def test_write_and_copy(self):
        model = ApCostModel(rows=64)
        assert model.write_cycles(6) == 6
        assert model.copy_cycles(6) == 18


class TestCostConversion:
    def test_latency_matches_frequency(self):
        model = ApCostModel(rows=64)
        cost = model.cost_from_cycles("x", 1000)
        assert cost.latency_s == pytest.approx(1000 / TECH_16NM.frequency_hz)

    def test_energy_scales_with_rows(self):
        small = ApCostModel(rows=64).addition(6)
        large = ApCostModel(rows=2048).addition(6)
        assert large.energy_j > small.energy_j
        assert large.latency_s == small.latency_s  # word-parallel

    def test_active_rows_limits_energy(self):
        model = ApCostModel(rows=1024)
        full = model.addition(6)
        partial = model.addition(6, active_rows=1)
        assert partial.energy_j < full.energy_j

    def test_operation_cost_add_and_scale(self):
        a = OperationCost("a", 10, 1e-8, 1e-12)
        b = OperationCost("b", 5, 0.5e-8, 0.5e-12)
        total = a + b
        assert total.cycles == 15
        doubled = a.scaled(2)
        assert doubled.cycles == 20
        with pytest.raises(ValueError):
            a.scaled(-1)
        assert OperationCost.zero().cycles == 0

    def test_negative_cycles_rejected(self):
        with pytest.raises(ValueError):
            ApCostModel(rows=8).cost_from_cycles("x", -1)


class TestAreaAndEnergyPerOp:
    def test_per_head_ap_area_near_paper(self):
        # 2048 rows x 64 columns at 16 nm ~ 0.02 mm^2 per head.
        area = ApCostModel(rows=2048, columns=64).area_mm2()
        assert 0.015 < area < 0.025

    def test_energy_per_op_close_to_table_vi(self):
        value = ApCostModel(rows=2048).energy_per_elementary_op_pj(6)
        assert 0.004 < value < 0.008  # paper: 5.88e-3 pJ

    def test_energy_per_op_with_row_access_is_larger(self):
        model = ApCostModel(rows=2048)
        assert model.energy_per_elementary_op_pj(6, include_row_access=True) > \
            model.energy_per_elementary_op_pj(6)


class TestTechnologyParameters:
    def test_cycle_time(self):
        assert TECH_16NM.cycle_time_s == pytest.approx(1e-9)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            dataclasses.replace(TECH_16NM, frequency_hz=0)
        with pytest.raises(ValueError):
            dataclasses.replace(TECH_16NM, idle_row_leakage_w=-1)
