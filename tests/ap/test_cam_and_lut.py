"""Tests for the CAM primitives and the LUT definitions."""

import numpy as np
import pytest

from repro.ap.cam import CamArray, CamStats
from repro.ap.lut import ADD_LUT, AND_LUT, COPY_LUT, NOT_LUT, OR_LUT, SUB_LUT, XOR_LUT, Lut, LutPass


class TestCamArray:
    def test_compare_tags_matching_rows(self):
        cam = CamArray(rows=4, columns=3)
        cam.load_bits([0, 1], np.array([[1, 0], [1, 1], [0, 0], [1, 0]], dtype=bool))
        tag = cam.compare({0: 1, 1: 0})
        assert list(tag) == [True, False, False, True]

    def test_write_only_touches_tagged_rows(self):
        cam = CamArray(rows=3, columns=2)
        cam.compare({0: 0})
        cam.write({1: 1})
        assert list(cam.cells[:, 1]) == [True, True, True]
        cam.load_bits([0], np.array([[1], [0], [0]], dtype=bool))
        cam.compare({0: 1})
        cam.write({1: 0})
        assert list(cam.cells[:, 1]) == [False, True, True]

    def test_row_mask_restricts_matches(self):
        cam = CamArray(rows=4, columns=1)
        tag = cam.compare({0: 0}, row_mask=np.array([True, False, True, False]))
        assert list(tag) == [True, False, True, False]

    def test_stats_counting(self):
        cam = CamArray(rows=4, columns=2)
        cam.compare({0: 0, 1: 0})
        cam.write({0: 1})
        assert cam.stats.compare_cycles == 1
        assert cam.stats.write_cycles == 1
        assert cam.stats.compared_bits == 8
        assert cam.stats.total_cycles == 2
        cam.stats.reset()
        assert cam.stats.total_cycles == 0

    def test_stats_merge(self):
        a = CamStats(compare_cycles=1, write_cycles=2, compared_bits=3, written_bits=4, row_writes=5)
        b = CamStats(compare_cycles=10, write_cycles=20, compared_bits=30, written_bits=40, row_writes=50)
        merged = a.merge(b)
        assert merged.compare_cycles == 11
        assert merged.total_cycles == 33

    def test_invalid_column_rejected(self):
        cam = CamArray(rows=2, columns=2)
        with pytest.raises(IndexError):
            cam.compare({5: 1})

    def test_empty_key_rejected(self):
        cam = CamArray(rows=2, columns=2)
        with pytest.raises(ValueError):
            cam.compare({})
        with pytest.raises(ValueError):
            cam.write({})

    def test_clear_columns(self):
        cam = CamArray(rows=2, columns=3)
        cam.load_bits([0, 1, 2], np.ones((2, 3), dtype=bool))
        cam.clear_columns([0, 2])
        assert not cam.cells[:, 0].any()
        assert cam.cells[:, 1].all()

    def test_load_bits_shape_checked(self):
        cam = CamArray(rows=2, columns=3)
        with pytest.raises(ValueError):
            cam.load_bits([0], np.ones((3, 1), dtype=bool))


class TestLutDefinitions:
    @pytest.mark.parametrize("lut,passes", [(XOR_LUT, 2), (AND_LUT, 1), (OR_LUT, 2),
                                            (NOT_LUT, 1), (COPY_LUT, 1), (ADD_LUT, 4), (SUB_LUT, 4)])
    def test_pass_counts(self, lut, passes):
        assert lut.passes_per_bit == passes
        assert lut.cycles_per_bit() == 2 * passes

    def test_roles(self):
        assert set(ADD_LUT.roles) == {"cy", "a", "b"}
        assert set(SUB_LUT.roles) == {"bw", "a", "b"}

    def test_lut_pass_validation(self):
        with pytest.raises(ValueError):
            LutPass(search={}, write={"r": 1})
        with pytest.raises(ValueError):
            LutPass(search={"a": 2}, write={"r": 1})
        with pytest.raises(ValueError):
            Lut(name="empty", passes=())

    @pytest.mark.parametrize("lut", [ADD_LUT, SUB_LUT])
    def test_pass_ordering_is_safe(self, lut):
        """A row rewritten by pass i must never match the key of a later pass."""
        for i, earlier in enumerate(lut.passes):
            state = dict(earlier.search)
            state.update(earlier.write)
            for later in lut.passes[i + 1:]:
                matches = all(state.get(role) == bit for role, bit in later.search.items())
                assert not matches, (
                    f"result state of pass {i} matches a later pass of {lut.name}"
                )

    def test_xor_lut_truth_table(self):
        """The Fig. 3 LUT computes XOR for every input combination."""
        for a in (0, 1):
            for b in (0, 1):
                result = 0  # result column pre-cleared
                for lut_pass in XOR_LUT.passes:
                    if lut_pass.search.get("a") == a and lut_pass.search.get("b") == b:
                        result = lut_pass.write["r"]
                assert result == a ^ b

    def test_full_adder_truth_table(self):
        """ADD_LUT implements a full adder for every (carry, a, b)."""
        for carry in (0, 1):
            for a in (0, 1):
                for b in (0, 1):
                    state = {"cy": carry, "a": a, "b": b}
                    for lut_pass in ADD_LUT.passes:
                        if all(state[k] == v for k, v in lut_pass.search.items()):
                            state.update(lut_pass.write)
                            break
                    total = carry + a + b
                    assert state["b"] == total % 2
                    assert state["cy"] == total // 2

    def test_full_subtractor_truth_table(self):
        """SUB_LUT implements a full subtractor (a - b - borrow)."""
        for borrow in (0, 1):
            for a in (0, 1):
                for b in (0, 1):
                    state = {"bw": borrow, "a": a, "b": b}
                    for lut_pass in SUB_LUT.passes:
                        if all(state[k] == v for k, v in lut_pass.search.items()):
                            state.update(lut_pass.write)
                            break
                    diff = a - b - borrow
                    assert state["a"] == diff % 2
                    assert state["bw"] == (1 if diff < 0 else 0)
