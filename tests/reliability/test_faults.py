"""Deterministic fault injection: specs, seeded replay, seam semantics."""

import pickle
import subprocess
import sys

import pytest

from repro.reliability.faults import (
    FaultInjector,
    FaultSpec,
    InjectedFault,
    active_injector,
    fire,
)


class TestFaultSpec:
    def test_name_defaults_to_site_and_kind(self):
        assert FaultSpec(site="engine:compiled").name == "engine:compiled/raise"
        assert (
            FaultSpec(site="serve:tick", kind="latency", latency_ms=1.0).name
            == "serve:tick/latency"
        )

    def test_explicit_name_wins(self):
        assert FaultSpec(site="x", name="outage").name == "outage"

    def test_prefix_matching_respects_segment_boundaries(self):
        spec = FaultSpec(site="engine")
        assert spec.matches("engine")
        assert spec.matches("engine:compiled")
        assert not spec.matches("engines")
        assert not spec.matches("eng")

    def test_validation(self):
        with pytest.raises(ValueError, match="site"):
            FaultSpec(site="")
        with pytest.raises(ValueError, match="kind"):
            FaultSpec(site="x", kind="explode")
        with pytest.raises(ValueError, match="probability"):
            FaultSpec(site="x", probability=1.5)
        with pytest.raises(ValueError, match="start"):
            FaultSpec(site="x", start=-1)
        with pytest.raises(ValueError, match="count"):
            FaultSpec(site="x", count=0)
        with pytest.raises(ValueError, match="latency_ms"):
            FaultSpec(site="x", latency_ms=-1.0)
        with pytest.raises(ValueError, match="latency_ms > 0"):
            FaultSpec(site="x", kind="latency")


class TestFaultInjector:
    def test_start_arms_then_count_bounds_the_budget(self):
        injector = FaultInjector(
            [FaultSpec(site="seam", start=2, count=2, name="burst")]
        )
        outcomes = []
        for _ in range(6):
            try:
                injector.fire("seam")
                outcomes.append("ok")
            except InjectedFault:
                outcomes.append("fault")
        # Two arming events pass, the next two fire, the budget is spent.
        assert outcomes == ["ok", "ok", "fault", "fault", "ok", "ok"]
        assert injector.fired("burst") == 2
        assert [e.index for e in injector.events] == [1, 2]

    def test_non_matching_sites_do_not_consume_the_schedule(self):
        injector = FaultInjector([FaultSpec(site="a", start=1, count=1)])
        injector.fire("b")  # different seam: invisible to the spec
        injector.fire("a")  # arming event
        with pytest.raises(InjectedFault):
            injector.fire("a")

    def test_probability_stream_is_seeded_and_replayable(self):
        spec = FaultSpec(site="seam", probability=0.3)

        def schedule(injector):
            fired = []
            for index in range(40):
                try:
                    injector.fire("seam")
                except InjectedFault:
                    fired.append(index)
            return fired

        first = schedule(FaultInjector([spec], seed=7))
        second = schedule(FaultInjector([spec], seed=7))
        other = schedule(FaultInjector([spec], seed=8))
        assert first == second
        assert 0 < len(first) < 40  # probabilistic, but not degenerate
        assert first != other

    def test_reset_replays_the_same_event_log(self):
        injector = FaultInjector(
            [FaultSpec(site="seam", probability=0.5)], seed=3
        )

        def run():
            for _ in range(20):
                try:
                    injector.fire("seam")
                except InjectedFault:
                    pass
            return list(injector.events)

        first = run()
        injector.reset()
        assert run() == first

    def test_pickle_round_trip_resets_and_replays(self):
        injector = FaultInjector(
            [FaultSpec(site="seam", probability=0.5)], seed=3
        )
        for _ in range(5):
            try:
                injector.fire("seam")
            except InjectedFault:
                pass
        clone = pickle.loads(pickle.dumps(injector))
        assert clone.specs == injector.specs
        assert clone.seed == injector.seed
        assert clone.events == []  # counters reset in the child process
        injector.reset()

        def schedule(target):
            log = []
            for _ in range(10):
                try:
                    target.fire("seam")
                except InjectedFault:
                    pass
            return list(target.events)

        assert schedule(clone) == schedule(injector)

    def test_first_matching_spec_wins(self):
        injector = FaultInjector(
            [
                FaultSpec(site="seam", count=1, name="first"),
                FaultSpec(site="seam", name="second"),
            ]
        )
        with pytest.raises(InjectedFault) as first:
            injector.fire("seam")
        with pytest.raises(InjectedFault) as second:
            injector.fire("seam")
        assert first.value.spec == "first"  # budget not yet spent
        assert second.value.spec == "second"

    def test_transient_flag_travels_on_the_error(self):
        injector = FaultInjector(
            [FaultSpec(site="seam", transient=False, count=1)]
        )
        with pytest.raises(InjectedFault) as info:
            injector.fire("seam")
        assert info.value.transient is False
        assert info.value.site == "seam"

    def test_latency_spec_logs_without_raising(self):
        injector = FaultInjector(
            [FaultSpec(site="seam", kind="latency", latency_ms=0.1)]
        )
        injector.fire("seam")
        assert injector.events[0].kind == "latency"


class TestInstallation:
    def test_module_fire_is_noop_without_injector(self):
        assert active_injector() is None
        fire("anything")  # must not raise

    def test_install_scopes_and_restores(self):
        outer = FaultInjector([FaultSpec(site="seam")])
        inner = FaultInjector([])
        with outer.install():
            assert active_injector() is outer
            with inner.install():
                assert active_injector() is inner
                fire("seam")  # inner has no specs: no-op
            assert active_injector() is outer
            with pytest.raises(InjectedFault):
                fire("seam")
        assert active_injector() is None

    def test_install_restores_on_error(self):
        injector = FaultInjector([])
        with pytest.raises(RuntimeError, match="boom"):
            with injector.install():
                raise RuntimeError("boom")
        assert active_injector() is None


class TestCrashFault:
    def test_crash_spec_terminates_the_process(self):
        # os._exit cannot be observed in-process; spawn a child.
        code = (
            "from repro.reliability.faults import FaultInjector, FaultSpec\n"
            "injector = FaultInjector("
            "[FaultSpec(site='seam', kind='crash')])\n"
            "injector.activate()\n"
            "from repro.reliability import faults\n"
            "faults.fire('seam')\n"
            "print('survived')\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 13
        assert "survived" not in result.stdout
