"""SoftmAP: mapping the integer-only softmax dataflow onto the AP.

This package is the co-design half of the paper:

* :mod:`repro.mapping.dataflow` — the 16-step dataflow of Fig. 5 with the
  per-step operand widths of Fig. 4 / Table I;
* :mod:`repro.mapping.softmap` — :class:`SoftmAPMapping`, which (a) executes
  the dataflow on the functional 2D AP simulator to validate correctness and
  (b) costs it with the Table II analytical model;
* :mod:`repro.mapping.deployment` — the per-head deployment used for the
  hardware characterization (one AP per attention head, Llama2 7b/13b/70b
  area figures, per-invocation energy/latency);
* :mod:`repro.mapping.cluster` — :class:`ApCluster`, the *functional*
  multi-head deployment: per-head APs executing a sharded
  ``(batch, heads, seq)`` score tensor with concurrency-aware cost
  aggregation and a pipelined multi-batch schedule.
"""

from repro.mapping.dataflow import DataflowStep, StepKind, softmax_dataflow
from repro.mapping.softmap import SoftmAPMapping, MappingCost, StepCost
from repro.mapping.deployment import ApDeployment, DeploymentSummary
from repro.mapping.cluster import (
    ApCluster,
    ClusterCost,
    ClusterSchedule,
    ClusterSoftmaxFn,
)

__all__ = [
    "DataflowStep",
    "StepKind",
    "softmax_dataflow",
    "SoftmAPMapping",
    "MappingCost",
    "StepCost",
    "ApDeployment",
    "DeploymentSummary",
    "ApCluster",
    "ClusterCost",
    "ClusterSchedule",
    "ClusterSoftmaxFn",
]
