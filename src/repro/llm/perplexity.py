"""Perplexity evaluation with a pluggable attention softmax.

The paper's protocol (Section IV): concatenate the validation set, split it
into non-overlapping segments of the model's context width, feed each
segment to the model, and report the exponentiated average next-token
negative log-likelihood.  :func:`evaluate_perplexity` follows that protocol
on the synthetic corpus.

The replacement attention softmax is selected through the unified runtime
API: pass ``backend=`` a name ("integer", "ap-cluster", ...), a
:class:`~repro.runtime.backend.BackendSpec`, or a resolved
:class:`~repro.runtime.backend.SoftmaxBackend` — the model's head count and
context width are filled in automatically.  The older ``softmax_fn``
argument (a raw callable) remains supported, and
:func:`integer_softmax_fn` / :func:`ap_cluster_softmax_fn` are kept as thin
shims over :func:`~repro.runtime.backend.resolve_backend` for existing
callers.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.ap.engine import canonical_engine_name
from repro.llm.model import SoftmaxFn, TinyLlamaModel
from repro.nn.autograd import no_grad
from repro.quant.precision import PrecisionConfig
from repro.runtime.backend import (
    BackendSpec,
    SoftmaxBackend,
    resolve_backend,
    resolve_model_backend,
)
from repro.utils.validation import check_positive_int

__all__ = ["evaluate_perplexity", "integer_softmax_fn", "ap_cluster_softmax_fn"]

#: Anything :func:`evaluate_perplexity`'s ``backend`` argument accepts.
BackendLike = Union[str, BackendSpec, SoftmaxBackend]


def integer_softmax_fn(
    precision: PrecisionConfig, batched: bool = False, **kwargs
) -> SoftmaxFn:
    """Deprecated shim: a software integer-softmax callable.

    Equivalent to ``resolve_backend("integer", precision=precision,
    options=kwargs).softmax_fn()``; with ``batched=False`` the returned
    callable follows the original row-by-row contract (no
    ``supports_batch`` attribute), producing bit-identical results.
    Prefer ``evaluate_perplexity(..., backend="integer")`` or
    :func:`~repro.runtime.backend.resolve_backend` directly.
    """
    backend = resolve_backend("integer", precision=precision, options=kwargs)
    if batched:
        return backend.softmax_fn()

    def apply(scores: np.ndarray) -> np.ndarray:
        return backend.run(scores).probabilities

    return apply


def ap_cluster_softmax_fn(
    num_heads: int,
    precision: PrecisionConfig,
    sequence_length: int,
    backend: str = "vectorized",
    **kwargs,
) -> SoftmaxFn:
    """Deprecated shim: an attention softmax on the functional AP cluster.

    Equivalent to ``resolve_backend("ap-cluster", num_heads=...,
    precision=..., sequence_length=..., engine=backend,
    options=kwargs).softmax_fn()`` — the cluster executes every layer's
    head-major score matrix as one fused compiled-plan pass, bit-identical
    to the historical per-head loop and to the software pipeline with
    ``barrett_correction=False`` while the sum accumulator does not
    saturate.  ``backend`` names the functional engine and is validated
    eagerly with a "did you mean" suggestion.  Prefer
    ``evaluate_perplexity(..., backend="ap-cluster")``.
    """
    return resolve_backend(
        "ap-cluster",
        num_heads=num_heads,
        precision=precision,
        sequence_length=sequence_length,
        engine=canonical_engine_name(backend),
        options=kwargs,
    ).softmax_fn()


def evaluate_perplexity(
    model: TinyLlamaModel,
    tokens: np.ndarray,
    segment_length: Optional[int] = None,
    softmax_fn: Optional[SoftmaxFn] = None,
    backend: Optional[BackendLike] = None,
) -> float:
    """Perplexity of ``model`` on ``tokens`` following the paper's protocol.

    Parameters
    ----------
    model:
        The (trained) language model.
    tokens:
        Validation token ids (1-D).
    segment_length:
        Width of the non-overlapping evaluation segments; defaults to the
        model's full context (the paper uses the models' 2048-token context).
    softmax_fn:
        Optional replacement attention softmax as a raw callable (the
        legacy entry point; see :func:`integer_softmax_fn`).
    backend:
        Optional replacement attention softmax as a runtime backend — a
        name ("float", "integer", "ap", "ap-batch", "ap-cluster",
        "gpu-analytical"), a :class:`~repro.runtime.backend.BackendSpec`,
        or a resolved backend instance.  Mutually exclusive with
        ``softmax_fn``.  Pass a resolved instance to read its accumulated
        cost telemetry afterwards.  The AP-family backends execute through
        the compiled-plan layer — every layer's attention softmax is one
        fused wide pass, and each ``SoftmaxResult`` carries its
        :class:`~repro.mapping.plan.PlanTelemetry`.
    """
    if backend is not None:
        if softmax_fn is not None:
            raise ValueError("pass either softmax_fn or backend, not both")
        softmax_fn = resolve_model_backend(
            backend, model.config.num_heads, model.config.max_context
        ).softmax_fn()
    tokens = np.asarray(tokens, dtype=np.int64)
    if segment_length is None:
        segment_length = model.config.max_context
    check_positive_int(segment_length, "segment_length")
    segment_length = min(segment_length, model.config.max_context)
    if tokens.shape[0] < 2:
        raise ValueError("need at least two tokens to evaluate perplexity")

    total_log_likelihood = 0.0
    total_predictions = 0
    with no_grad():
        for start in range(0, tokens.shape[0] - 1, segment_length):
            segment = tokens[start : start + segment_length + 1]
            if segment.shape[0] < 2:
                break
            logits = model.forward(segment[:-1], softmax_fn=softmax_fn).numpy()
            shifted = logits - np.max(logits, axis=-1, keepdims=True)
            log_probs = shifted - np.log(np.sum(np.exp(shifted), axis=-1, keepdims=True))
            targets = segment[1:]
            total_log_likelihood += float(
                np.sum(log_probs[np.arange(targets.shape[0]), targets])
            )
            total_predictions += int(targets.shape[0])
    if total_predictions == 0:
        raise ValueError("no predictions were made; check the token stream length")
    return float(np.exp(-total_log_likelihood / total_predictions))
