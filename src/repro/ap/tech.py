"""Technology parameters of the SRAM-based AP (16 nm).

The paper's AP simulator "models the SRAM-based AP assuming a 16nm
technology" at a maximum frequency of 1000 MHz (Table VI) and derives energy
and latency from the elementary-operation cycle counts of Table II.  The
authors do not publish their per-cycle energy constants, so this module
defines a parameter set calibrated against two anchors the paper does give:

* the optimum energy per elementary operation of ``5.88e-3 pJ`` (Table VI);
* the AP area of ``0.02 mm^2`` per attention head implied by the reported
  totals (0.64 / 0.81 / 1.28 mm^2 for 32 / 40 / 64 heads).

All constants are plain dataclass fields so ablations can explore other
technology corners.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TechnologyParameters", "TECH_16NM"]


@dataclass(frozen=True)
class TechnologyParameters:
    """Energy / timing / area constants of the AP at a technology node.

    Attributes
    ----------
    name:
        Human-readable node name.
    frequency_hz:
        Clock frequency of the compare/write cycles.
    compare_energy_per_bit_j:
        Energy of one CAM cell taking part in a compare cycle.
    write_energy_per_bit_j:
        Energy of writing one CAM cell.
    row_access_energy_j:
        Energy of activating one row for one cycle (match-line pre-charge,
        tag latch and word-line drivers) — shared by all words packed in the
        row and independent of how many columns are masked.
    idle_row_leakage_w:
        Static power per CAM row (leakage of the SRAM cells and match line
        pre-charge); charged for the duration of an operation.
    cell_area_um2:
        Layout area of one CAM bit cell including its share of the
        peripherals (key/mask/tag registers, controller).
    """

    name: str
    frequency_hz: float
    compare_energy_per_bit_j: float
    write_energy_per_bit_j: float
    row_access_energy_j: float
    idle_row_leakage_w: float
    cell_area_um2: float

    def __post_init__(self) -> None:
        for attribute in (
            "frequency_hz",
            "compare_energy_per_bit_j",
            "write_energy_per_bit_j",
            "row_access_energy_j",
            "cell_area_um2",
        ):
            if getattr(self, attribute) <= 0:
                raise ValueError(f"{attribute} must be > 0")
        if self.idle_row_leakage_w < 0:
            raise ValueError("idle_row_leakage_w must be >= 0")

    @property
    def cycle_time_s(self) -> float:
        """Duration of one compare or write cycle."""
        return 1.0 / self.frequency_hz


#: 16 nm parameter set used throughout the reproduction.  The per-bit
#: compare/write energies are chosen so that the energy of one elementary
#: word operation (Table II cycle counts, one active word) lands at the
#: paper's reported optimum of ~5.9e-3 pJ per operation, and the cell area
#: is chosen so that one per-head AP (2048 rows x ~64 columns) occupies
#: ~0.02 mm^2 as implied by the paper's area totals.
TECH_16NM = TechnologyParameters(
    name="16nm",
    frequency_hz=1.0e9,
    compare_energy_per_bit_j=3.5e-17,
    write_energy_per_bit_j=5.3e-17,
    row_access_energy_j=8.0e-15,
    idle_row_leakage_w=2.0e-9,
    cell_area_um2=0.15,
)
