"""Integer second-order polynomial approximation of the exponential.

I-BERT (Kim et al., 2021) observed that on the interval ``(-ln 2, 0]`` the
exponential is well approximated by a second-order polynomial

``exp(x) ~= a * (x + b)**2 + c``  with  ``a=0.3585, b=1.353, c=0.344``.

In the integer domain the input ``x`` is represented by an integer ``x_int``
with scaling factor ``S`` (``x = x_int * S``); the polynomial becomes

``poly_int = (x_int + vb)**2 + vc``  with output scale ``a * S**2``,

where ``vb = floor(b / S)`` and ``vc = floor(c / (a * S**2))`` are computed
offline (lines 8-10 of Algorithm 1).  :class:`IExpPolynomial` bundles the
constant computation and the integer evaluation and also exposes the full
range-reduced i-exp (polynomial + right shift by the quotient).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

import numpy as np

from repro.softmax.barrett import BarrettReducer
from repro.softmax.reference import IEXP_A, IEXP_B, IEXP_C

__all__ = ["IExpConstants", "IExpPolynomial"]

IntArray = Union[int, np.ndarray]

_LN2 = float(np.log(2.0))


@dataclass(frozen=True)
class IExpConstants:
    """Offline-computed integer constants of Algorithm 1 for a fixed scale.

    Attributes
    ----------
    scale:
        Input scaling factor ``S``.
    vln2:
        ``floor(ln 2 / S)`` — the quantized ``ln 2`` used for range
        reduction (line 5).
    mu:
        Barrett constant ``floor(2**(2M) / vln2)`` (line 6).
    barrett_shift:
        The Barrett shift ``2M``.
    vb:
        ``floor(b / S)`` (line 9).
    vc:
        ``floor(c / (a * S**2))`` (line 10).
    output_scale:
        Scale of the polynomial output, ``a * S**2`` (``Ssm`` before the
        final floor on line 13).
    """

    scale: float
    vln2: int
    mu: int
    barrett_shift: int
    vb: int
    vc: int
    output_scale: float


class IExpPolynomial:
    """Integer-only approximation of ``exp`` on non-positive inputs.

    Parameters
    ----------
    input_bits:
        ``M`` — bit width of the quantized input; only used to size the
        Barrett shift (``2M``), exactly as in line 6 of Algorithm 1.
    coefficients:
        The ``(a, b, c)`` polynomial coefficients; defaults to the I-BERT
        values used by the paper.
    barrett_correction:
        Whether the Barrett quotient applies the correction loop (see
        :class:`~repro.softmax.barrett.BarrettReducer`).
    """

    def __init__(
        self,
        input_bits: int,
        coefficients: Tuple[float, float, float] = (IEXP_A, IEXP_B, IEXP_C),
        barrett_correction: bool = True,
    ) -> None:
        if input_bits < 2:
            raise ValueError(f"input_bits must be >= 2, got {input_bits}")
        self.input_bits = int(input_bits)
        self.a, self.b, self.c = (float(v) for v in coefficients)
        if self.a <= 0:
            raise ValueError("polynomial coefficient 'a' must be positive")
        self.barrett_correction = bool(barrett_correction)

    # ------------------------------------------------------------------ #
    # Offline constants                                                   #
    # ------------------------------------------------------------------ #
    def constants(self, scale: float) -> IExpConstants:
        """Compute the offline constants of Algorithm 1 for scale ``S``."""
        if scale <= 0:
            raise ValueError(f"scale must be > 0, got {scale}")
        vln2 = int(np.floor(_LN2 / scale))
        if vln2 < 1:
            raise ValueError(
                f"scale {scale} is too coarse: floor(ln2 / S) must be >= 1"
            )
        shift = 2 * self.input_bits
        mu = (1 << shift) // vln2
        vb = int(np.floor(self.b / scale))
        vc = int(np.floor(self.c / (self.a * scale * scale)))
        return IExpConstants(
            scale=float(scale),
            vln2=vln2,
            mu=mu,
            barrett_shift=shift,
            vb=vb,
            vc=vc,
            output_scale=self.a * scale * scale,
        )

    def reducer(self, constants: IExpConstants) -> BarrettReducer:
        """Barrett reducer for the range reduction by ``vln2``."""
        return BarrettReducer(
            divisor=constants.vln2,
            shift_bits=constants.barrett_shift,
            correct=self.barrett_correction,
        )

    # ------------------------------------------------------------------ #
    # Integer evaluation                                                  #
    # ------------------------------------------------------------------ #
    def polynomial_int(self, vcorr: IntArray, constants: IExpConstants) -> IntArray:
        """Evaluate ``(vcorr + vb)**2 + vc`` in the integer domain.

        ``vcorr`` must be the range-reduced argument in ``(-vln2, 0]``; the
        result approximates ``exp(vcorr * S) / (a * S**2)``.
        """
        vcorr_arr = np.asarray(vcorr, dtype=np.int64)
        poly = (vcorr_arr + np.int64(constants.vb)) ** 2 + np.int64(constants.vc)
        if np.isscalar(vcorr) or (isinstance(vcorr, np.ndarray) and vcorr.ndim == 0):
            return int(poly)
        return poly

    def iexp_int(
        self, vstable: IntArray, constants: IExpConstants
    ) -> Tuple[IntArray, IntArray, IntArray]:
        """Full integer i-exp: range reduction + polynomial + shift.

        Parameters
        ----------
        vstable:
            Non-positive quantized inputs (after max subtraction).
        constants:
            Offline constants from :meth:`constants`.

        Returns
        -------
        (vapprox, vcorr, quotient):
            ``vapprox`` approximates ``exp(vstable * S) / output_scale``;
            ``vcorr`` is the range-reduced argument and ``quotient`` the
            shift amount (both returned so that the AP mapping and the
            precision bookkeeping can inspect them).
        """
        v = np.asarray(vstable, dtype=np.int64)
        if np.any(v > 0):
            raise ValueError("iexp_int expects non-positive (stabilised) inputs")
        reducer = self.reducer(constants)
        z = -v
        quotient = np.asarray(reducer.quotient(z), dtype=np.int64)
        vcorr = v + quotient * np.int64(constants.vln2)
        poly = self.polynomial_int(vcorr, constants)
        vapprox = np.asarray(poly, dtype=np.int64) >> quotient
        if np.isscalar(vstable) or (isinstance(vstable, np.ndarray) and vstable.ndim == 0):
            return int(vapprox), int(vcorr), int(quotient)
        return vapprox, np.asarray(vcorr, dtype=np.int64), quotient

    # ------------------------------------------------------------------ #
    # Floating-point reference of the same polynomial                     #
    # ------------------------------------------------------------------ #
    def iexp_float(self, x: np.ndarray) -> np.ndarray:
        """Evaluate the same range-reduced polynomial in floating point.

        Useful to separate polynomial error from quantization error.
        """
        x = np.asarray(x, dtype=np.float64)
        if np.any(x > 1e-12):
            raise ValueError("iexp_float expects non-positive inputs")
        q = np.floor(-x / _LN2)
        r = x + q * _LN2
        poly = self.a * (r + self.b) ** 2 + self.c
        return poly * np.power(2.0, -q)
