"""Quickstart: integer-only softmax vs floating-point softmax.

Runs Algorithm 1 of the SoftmAP paper on a random attention-score vector at
the paper's best precision (M=6, vcorr=M, N=16), compares it with the exact
softmax, prints the offline constants the hardware would be loaded with, and
finishes by executing a whole batch of score vectors through the unified
runtime API (``resolve_backend("ap-batch")``), where the functional AP
returns probabilities *and* the analytical cost of the pass in one
``SoftmaxResult``.

Usage::

    python examples/quickstart.py
"""

import time

import numpy as np

from repro.quant import BEST_PRECISION, PrecisionConfig
from repro.runtime import resolve_backend
from repro.softmax import IntegerSoftmax, kl_divergence, max_abs_error, softmax


def main() -> None:
    rng = np.random.default_rng(0)
    scores = rng.normal(0.0, 2.0, 32)

    integer = IntegerSoftmax(BEST_PRECISION)
    result = integer.forward(scores)
    reference = softmax(scores)

    constants = integer.constants
    print("Offline constants (computed once per scaling factor):")
    print(f"  scale S       = {constants.scale:.5f}")
    print(f"  vln2          = {constants.vln2}")
    print(f"  mu (Barrett)  = {constants.mu}")
    print(f"  vb, vc        = {constants.vb}, {constants.vc}")
    print()

    print("First 8 probabilities:")
    print("  integer :", np.array2string(result.probabilities[:8], precision=4))
    print("  fp      :", np.array2string(reference[:8], precision=4))
    print()
    print(f"max abs error  : {max_abs_error(result.probabilities, reference):.5f}")
    print(f"KL(fp || int)  : {kl_divergence(reference, result.probabilities):.6f}")
    print()

    print("Effect of the input precision M (same vector):")
    for m in (4, 6, 8):
        probabilities = IntegerSoftmax(PrecisionConfig(m, 0, 16))(scores)
        error = max_abs_error(probabilities, reference)
        print(f"  M = {m}: max abs error = {error:.5f}")
    print()

    # A whole (batch, seq) score tensor through the unified runtime API:
    # every probability below is produced by CAM compare/write semantics
    # (vectorized packed-word engine), and the SoftmaxResult carries the
    # analytical cost of the pass alongside the probabilities.
    batch = rng.normal(0.0, 2.0, (16, 64))
    backend = resolve_backend("ap-batch", sequence_length=64)
    start = time.perf_counter()
    result = backend.run(batch)
    elapsed = time.perf_counter() - start
    ap_error = max_abs_error(result.probabilities, softmax(batch))
    print('Batched execution via resolve_backend("ap-batch"):')
    print(f"  {batch.shape[0]} softmax vectors of {batch.shape[1]} scores "
          f"in {elapsed * 1e3:.1f} ms")
    print(f"  max abs error vs FP softmax: {ap_error:.5f}")
    print(f"  analytical pass cost: {result.cycles:.0f} cycles, "
          f"{result.cost.latency_s * 1e6:.2f} us, "
          f"{result.cost.energy_j * 1e9:.1f} nJ")


if __name__ == "__main__":
    main()
