"""Table I — mixed-precision bit widths of the integer softmax."""

from __future__ import annotations

from typing import List

from repro.quant.precision import PrecisionTableEntry, table_i
from repro.runtime.registry import Experiment, register
from repro.utils.tables import TextTable

__all__ = ["Table1Experiment", "run_table1", "render_table1"]


def run_table1() -> List[PrecisionTableEntry]:
    """Regenerate every column of Table I."""
    return table_i()


def render_table1(entries: List[PrecisionTableEntry]) -> str:
    """Render Table I (rows = quantities, columns = (vcorr, M) pairs)."""
    if not entries:
        raise ValueError("no Table I entries to render")
    row_names = list(entries[0].widths.keys())
    headers = ["quantity"] + [
        f"vcorr=M+{e.config.vcorr_delta}, M={e.config.input_bits}" for e in entries
    ]
    table = TextTable(headers, title="Table I — bit widths per mixed-precision configuration")
    for name in row_names:
        table.add_row([name] + [e.widths[name] for e in entries])
    return table.render()


@register("table1")
class Table1Experiment(Experiment):
    """Registry wrapper: Table I through the uniform runtime contract."""

    title = "Table I"
    description = "mixed-precision bit widths of the integer softmax"
    row_type = PrecisionTableEntry

    def run(self, config=None):
        return run_table1(**self._config_kwargs(config))

    def render(self, result):
        return render_table1(result)
