"""Retry budgets, capped exponential backoff, and deadline errors.

:class:`RetryPolicy` is a frozen description of how the serving layer
treats **transient** failures (anything carrying a truthy ``transient``
attribute, e.g. :class:`~repro.reliability.faults.InjectedFault`): up to
``max_retries`` further attempts, separated by capped exponential backoff
plus seeded jitter.  The jitter stream is owned by the caller (one
``numpy`` generator per server, consumed only on the single worker
thread), so a seeded chaos run replays the exact same backoff schedule.

:class:`DeadlineExceeded` is the structured timeout: a request whose
``deadline_ms`` elapses — still queued, or mid-retry — fails with it
instead of waiting forever, and the TCP front end maps it to a
``"deadline"`` error code.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DeadlineExceeded", "RetryPolicy"]


class DeadlineExceeded(RuntimeError):
    """A request's ``deadline_ms`` elapsed before it could be served."""

    def __init__(self, deadline_ms: float, waited_ms: float) -> None:
        super().__init__(
            f"deadline of {deadline_ms:g} ms exceeded after "
            f"{waited_ms:.1f} ms"
        )
        self.deadline_ms = deadline_ms
        self.waited_ms = waited_ms


@dataclass(frozen=True)
class RetryPolicy:
    """Per-request retry budget with capped exponential backoff.

    Attempt ``k`` (0-based retry index) backs off
    ``min(base_backoff_ms * multiplier**k, max_backoff_ms)`` plus a
    uniform jitter in ``[0, jitter_ms)`` drawn from the caller's seeded
    generator.  Only transient errors are retried; validation errors and
    other permanent failures surface immediately.
    """

    max_retries: int = 3
    base_backoff_ms: float = 1.0
    max_backoff_ms: float = 50.0
    multiplier: float = 2.0
    jitter_ms: float = 0.5

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.base_backoff_ms < 0:
            raise ValueError(
                f"base_backoff_ms must be >= 0, got {self.base_backoff_ms}"
            )
        if self.max_backoff_ms < self.base_backoff_ms:
            raise ValueError(
                "max_backoff_ms must be >= base_backoff_ms, got "
                f"{self.max_backoff_ms} < {self.base_backoff_ms}"
            )
        if self.multiplier < 1.0:
            raise ValueError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if self.jitter_ms < 0:
            raise ValueError(f"jitter_ms must be >= 0, got {self.jitter_ms}")

    def retryable(self, error: BaseException) -> bool:
        """Transient errors only — permanent failures never retry."""
        return bool(getattr(error, "transient", False))

    def backoff_ms(self, retry: int, rng: np.random.Generator) -> float:
        """Backoff before 0-based retry ``retry`` (deterministic per rng)."""
        base = min(
            self.base_backoff_ms * self.multiplier**retry,
            self.max_backoff_ms,
        )
        if self.jitter_ms:
            base += float(rng.random()) * self.jitter_ms
        return base
