"""Chaos serving experiment: availability and latency under injected faults.

The ``chaos-load`` experiment drives the PR 8 load generator's seeded
Poisson request stream through a :class:`~repro.serve.server.SoftmaxServer`
configured with the full reliability stack — per-request deadlines, a
retry policy with capped exponential backoff + seeded jitter, and an
engine-fallback chain with circuit breakers — while a seeded
:class:`~repro.reliability.faults.FaultInjector` fails the primary plan
engine and stalls serving ticks on a declarative, replayable schedule.

The default fault schedule stages a **compiled-engine outage**: after a
warm-up window the ``engine:compiled`` seam raises a burst of transient
faults, which (a) exercises the per-request retry path, (b) trips the
compiled engine's breaker and degrades the chain to ``vectorized``, and
(c) — once the fault budget is exhausted — lets a half-open probe succeed
and recover the chain.  A low-probability latency spike on ``serve:tick``
perturbs the p99 on top.  The schedule is *event-indexed*: each spec
fires at deterministic positions in its seam's call sequence, so the same
seeds replay the same outage regardless of how ticks coalesce.

The pins (asserted by ``benchmarks/test_chaos_load.py`` and the CI
chaos-smoke job):

* **availability >= 0.99** — the retry budget outlives the breaker's trip
  threshold, so every request survives the outage;
* **bit-identity** — every *successful* response equals the fault-free
  serial baseline bit for bit (engine degradation is invisible in the
  bits, because all plan engines are bit-identical by construction);
* **at least one breaker degrade and one recovery** observed in the
  chain's transition log.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.ap.engine import canonical_engine_name
from repro.reliability.breaker import EngineFallbackChain  # noqa: F401 (docs)
from repro.reliability.faults import FaultInjector, FaultSpec
from repro.reliability.retry import DeadlineExceeded, RetryPolicy
from repro.runtime.backend import (
    BackendSpec,
    canonical_backend_name,
    resolve_backend,
    rows_runner,
)
from repro.runtime.registry import Experiment, register
from repro.serve.loadgen import LoadProfile, drive_load, run_serial_baseline
from repro.serve.server import SoftmaxServer

__all__ = [
    "ChaosLoadReport",
    "default_fault_specs",
    "run_chaos_load",
    "render_chaos_load",
    "ChaosLoadExperiment",
]

#: Engine-fallback chain the chaos server degrades along.
DEFAULT_ENGINE_CHAIN: Tuple[str, ...] = ("compiled", "vectorized")


def default_fault_specs() -> Tuple[FaultSpec, ...]:
    """The default seeded fault schedule: outage + latency spikes.

    ``compiled-outage`` arms after 6 compiled executions and then fails
    the next 4 (enough consecutive failures to trip the default breaker,
    then enough failed half-open probes to exhaust the budget so the
    final probe succeeds and recovers the chain).  ``tick-latency``
    stalls ~10% of serving ticks by 1 ms.
    """
    return (
        FaultSpec(
            site="engine:compiled",
            kind="raise",
            start=6,
            count=4,
            name="compiled-outage",
        ),
        FaultSpec(
            site="serve:tick",
            kind="latency",
            latency_ms=1.0,
            probability=0.1,
            name="tick-latency",
        ),
    )


@dataclass(frozen=True)
class ChaosLoadReport:
    """One chaos run: availability, latency under faults, breaker story."""

    rate_rps: float
    num_requests: int
    backend: str
    engine_chain: str
    fault_events: int
    successes: int
    failures: int
    deadline_expired: int
    availability: float
    p50_ms: float
    p99_ms: float
    retries: int
    backoff_ms: float
    degrades: int
    recoveries: int
    transitions: Tuple[str, ...]
    final_engine: str
    successes_identical: bool


def run_chaos_load(
    rate_rps: float = 600.0,
    num_requests: int = 96,
    backend: str = "ap-cluster",
    engine_chain: Tuple[str, ...] = DEFAULT_ENGINE_CHAIN,
    num_heads: int = 2,
    sequence_lengths: Tuple[int, ...] = (16, 32),
    rows: Tuple[int, int] = (1, 2),
    ragged_fraction: float = 0.5,
    max_wait_ms: float = 2.0,
    max_batch_rows: Optional[int] = 64,
    deadline_ms: float = 5000.0,
    max_retries: int = 5,
    breaker_failure_threshold: int = 3,
    breaker_probe_interval: int = 2,
    fault_seed: int = 0,
    seed: int = 0,
    fault_specs: Optional[Sequence[FaultSpec]] = None,
) -> list:
    """Serve one seeded request stream under a seeded fault schedule.

    Runs the fault-free serial baseline first (the bit-identity
    reference), then the chaos deployment: deadlines + retries + the
    engine-fallback chain, with the :class:`FaultInjector` installed for
    exactly the serving window.  Returns ``[ChaosLoadReport]``.
    """
    canonical = canonical_backend_name(backend)
    chain = tuple(canonical_engine_name(e) for e in engine_chain)
    profile = LoadProfile(
        rate_rps=rate_rps,
        num_requests=num_requests,
        rows=rows,
        sequence_lengths=tuple(sequence_lengths),
        ragged_fraction=ragged_fraction,
        seed=seed,
    )
    requests = profile.requests()
    spec = BackendSpec(
        name=canonical,
        num_heads=num_heads,
        sequence_length=max(sequence_lengths),
    )

    # Fault-free reference: one standalone pass per request on the
    # chain's primary engine.
    serial_backend = resolve_backend(
        BackendSpec(
            name=canonical,
            num_heads=num_heads,
            sequence_length=max(sequence_lengths),
            engine=chain[0],
        )
    )
    reference, _ = run_serial_baseline(serial_backend, requests)

    server = SoftmaxServer(
        spec,
        max_wait_ms=max_wait_ms,
        max_batch_rows=max_batch_rows,
        default_deadline_ms=deadline_ms,
        retry_policy=RetryPolicy(max_retries=max_retries),
        retry_seed=fault_seed,
        engine_chain=chain,
        breaker_failure_threshold=breaker_failure_threshold,
        breaker_probe_interval=breaker_probe_interval,
    )
    # Warm every plan shape outside the injected window so the fault
    # schedule's event indices count served ticks, not compile touches.
    warm = rows_runner(server.backend)
    for seq in sorted(set(sequence_lengths)):
        warm(np.zeros((1, seq)))

    injector = FaultInjector(
        default_fault_specs() if fault_specs is None else fault_specs,
        seed=fault_seed,
    )

    async def _serve():
        async with server:
            report = await drive_load(server, requests)
            return report, server.health()

    with injector.install():
        report, health = asyncio.run(_serve())

    identical = all(
        np.array_equal(alone, outcome.response.probabilities)
        for alone, outcome in zip(reference, report.outcomes)
        if outcome.ok
    )
    deadline_failures = sum(
        1 for o in report.failures if isinstance(o.error, DeadlineExceeded)
    )
    return [
        ChaosLoadReport(
            rate_rps=rate_rps,
            num_requests=num_requests,
            backend=canonical,
            engine_chain="->".join(chain),
            fault_events=len(injector.events),
            successes=len(report.successes),
            failures=len(report.failures),
            deadline_expired=deadline_failures,
            availability=report.availability,
            p50_ms=report.p50_ms,
            p99_ms=report.p99_ms,
            retries=health.retries,
            backoff_ms=health.backoff_ms,
            degrades=health.degrades,
            recoveries=health.recoveries,
            transitions=tuple(health.transitions),
            final_engine=health.engine or chain[0],
            successes_identical=identical,
        )
    ]


def render_chaos_load(rows) -> str:
    """Render the chaos run as a short reliability report."""
    if not rows:
        return "chaos-load: no report"
    r = rows[0]
    transitions = ", ".join(r.transitions) if r.transitions else "none"
    return "\n".join(
        [
            (
                f"Chaos serving: backend {r.backend} (chain {r.engine_chain}), "
                f"{r.num_requests} requests at {r.rate_rps:g} rps, "
                f"{r.fault_events} injected fault events"
            ),
            (
                f"  availability {r.availability:.4f} "
                f"({r.successes} ok / {r.failures} failed, "
                f"{r.deadline_expired} deadline-expired)"
            ),
            (
                f"  latency p50 {r.p50_ms:.2f} ms, p99 {r.p99_ms:.2f} ms; "
                f"{r.retries} retries, {r.backoff_ms:.1f} ms backoff"
            ),
            (
                f"  breaker: {r.degrades} degrade(s), "
                f"{r.recoveries} recovery(ies) [{transitions}]; "
                f"final engine {r.final_engine}"
            ),
            (
                "  successful responses bit-identical to fault-free run: "
                + ("yes" if r.successes_identical else "NO")
            ),
        ]
    )


@register("chaos-load")
class ChaosLoadExperiment(Experiment):
    """Registry wrapper: serving reliability under a seeded fault schedule.

    ``--backend`` picks the served backend; ``--set`` knobs mirror
    :func:`run_chaos_load` (e.g. ``--set fault_seed=7`` replays a
    different but equally deterministic outage).
    """

    title = "Chaos serving"
    description = "availability + p50/p99 + breaker story under injected faults"
    row_type = ChaosLoadReport
    backend_config_key = "backend"
    fast_config = {
        "rate_rps": 800.0,
        "num_requests": 32,
        "sequence_lengths": (8, 16),
        "max_wait_ms": 1.0,
    }

    def run(self, config=None):
        kwargs = self._config_kwargs(config)
        for key in ("engine_chain", "sequence_lengths", "rows"):
            if key in kwargs and isinstance(kwargs[key], list):
                kwargs[key] = tuple(kwargs[key])
        return run_chaos_load(**kwargs)

    def render(self, result):
        return render_chaos_load(result)
