"""Fused-vs-loop benchmark: the compiled-plan layer's pinned speedups.

The acceptance workload is the Tables III/IV cluster shape — a
``(batch, heads, seq)`` attention-score tensor executed on the
:class:`~repro.mapping.cluster.ApCluster`.  Two pins:

* the fused compiled-plan pass (one wide head-major row space, fields kept
  packed end to end) must be **bit-identical** to the PR 2 per-head loop
  (one per-operation engine execution per head) and at least **3x faster**
  wall-clock; in practice the gap is an order of magnitude or more;
* the scratch-arena ``"compiled"`` engine must be **bit-identical** to the
  fused (vectorized) pass and at least **1.5x faster** on the 64-vector x
  256-seq shape — the win of buffer-planned, allocation-free execution
  over the packed interpreter.

This module is the CI ``benchmark-smoke`` target: it runs without
``--runslow`` and, when ``REPRO_PERF_DIR`` is set, writes the measured
timings as JSON artifacts (including ``BENCH_plan_fusion.json``); with
``REPRO_BENCH_TRAJECTORY_DIR`` set the same numbers append to the
committed in-repo trajectory file.
"""

import json
import os
import pathlib

from repro.runtime import get_experiment
from repro.utils.trajectory import record_benchmark

#: Pinned wall-clock floor of the fused pass over the PR 2 per-head loop.
FUSED_SPEEDUP_FLOOR = 3.0

#: Pinned wall-clock floor of the compiled engine over the vectorized
#: (packed-interpreter) engine on the 64-vector x 256-seq shape.
COMPILED_SPEEDUP_FLOOR = 1.5

#: The compiled-vs-vectorized acceptance shape: 16 batch x 4 heads = 64
#: fused vectors of 256 elements.  The fast legs finish in well under a
#: millisecond, so they are averaged over extra iterations for a stable
#: ratio on noisy CI runners.
COMPILED_WORKLOAD = {
    "sequence_length": 256,
    "batch": 16,
    "heads": 4,
    "fast_iterations": 10,
}


def _report_payload(report, pinned_floor):
    return {
        "workload": {
            "batch": report.batch,
            "heads": report.heads,
            "sequence_length": report.sequence_length,
        },
        "bit_identical": report.bit_identical,
        "fused_seconds": report.cluster_seconds,
        "per_head_loop_seconds": report.per_head_loop_seconds,
        "row_by_row_seconds": report.row_by_row_seconds,
        "fused_speedup": report.fused_speedup,
        "row_by_row_speedup": report.speedup,
        "compiled_seconds": report.compiled_seconds,
        "compiled_identical": report.compiled_identical,
        "compiled_speedup": report.compiled_speedup,
        "pinned_floor": pinned_floor,
    }


def _emit_perf_artifact(report, filename, pinned_floor, benchmark_name) -> None:
    """Write the timing JSON artifact when REPRO_PERF_DIR is set."""
    perf_dir = os.environ.get("REPRO_PERF_DIR")
    if not perf_dir:
        return
    path = pathlib.Path(perf_dir)
    path.mkdir(parents=True, exist_ok=True)
    payload = {"benchmark": benchmark_name, **_report_payload(report, pinned_floor)}
    with open(path / filename, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def test_fused_cluster_pass_beats_per_head_loop(benchmark):
    """Pin: fused >= 3x over the PR 2 per-head loop, bit-identical."""
    experiment = get_experiment("cluster-parity")
    report = benchmark.pedantic(experiment.run, iterations=1, rounds=1)
    print()
    print(experiment.render(report))
    _emit_perf_artifact(
        report, "fused_speedup.json", FUSED_SPEEDUP_FLOOR, "fused-vs-loop"
    )
    record_benchmark(
        "plan_fusion", {"fused_vs_loop": _report_payload(report, FUSED_SPEEDUP_FLOOR)}
    )
    assert report.bit_identical, "fused pass diverged from the loop baselines"
    assert report.fused_speedup >= FUSED_SPEEDUP_FLOOR, (
        f"fused pass only {report.fused_speedup:.1f}x faster than the "
        f"per-head loop (floor {FUSED_SPEEDUP_FLOOR:.0f}x)"
    )


def test_compiled_engine_beats_vectorized(benchmark):
    """Pin: compiled >= 1.5x over vectorized on 64x256, bit-identical."""
    experiment = get_experiment("cluster-parity")
    report = benchmark.pedantic(
        experiment.run, args=(dict(COMPILED_WORKLOAD),), iterations=1, rounds=1
    )
    print()
    print(experiment.render(report))
    _emit_perf_artifact(
        report,
        "BENCH_plan_fusion.json",
        COMPILED_SPEEDUP_FLOOR,
        "compiled-vs-vectorized",
    )
    record_benchmark(
        "plan_fusion",
        {"compiled_vs_vectorized": _report_payload(report, COMPILED_SPEEDUP_FLOOR)},
    )
    assert report.bit_identical, "fused pass diverged from the loop baselines"
    assert report.compiled_identical, (
        "compiled engine diverged from the vectorized fused pass"
    )
    assert report.compiled_speedup >= COMPILED_SPEEDUP_FLOOR, (
        f"compiled engine only {report.compiled_speedup:.2f}x faster than "
        f"the vectorized engine (floor {COMPILED_SPEEDUP_FLOOR:.1f}x)"
    )
