"""SoftmAP: the integer softmax dataflow executed and costed on the AP.

:class:`SoftmAPMapping` is the heart of the co-design reproduction.  Since
the compiled-plan layer landed it is a thin, cached front over
:class:`~repro.mapping.plan.ExecutionPlan`: the Fig. 5 dataflow is lowered
**once** per (precision, sequence-length, output-width) shape — resolved
field layout, lowered instruction sequence, per-step Table II cost — and
every call executes the compiled program instead of re-interpreting the
sixteen steps:

* :meth:`SoftmAPMapping.cost` — the analytical view used for the paper's
  hardware characterization: the plan's per-step Table II cycles plus the
  16 nm technology energy model.
* :meth:`SoftmAPMapping.execute_functional` /
  :meth:`SoftmAPMapping.execute_functional_batch` — the functional view:
  the compiled program runs over the whole score tensor as one fused row
  space (``"vectorized"``) or on the bit-serial functional AP
  (``"reference"``), bit-identical to the pure-software
  :class:`~repro.softmax.integer_softmax.IntegerSoftmax` pipeline (checked
  in the integration tests).

To keep the hardware free of signed arithmetic the functional mapping tracks
``z = max(v) - v = -vstable`` (non-negative) and evaluates the polynomial as
``(vb - (z mod vln2))**2 + vc``, which is algebraically identical to
Algorithm 1 because ``vcorr = -(z mod vln2)``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import List, Optional, Tuple

import numpy as np

from repro.ap.engine import canonical_engine_name
from repro.ap.tech import TECH_16NM, TechnologyParameters
from repro.mapping.dataflow import DataflowStep
from repro.mapping.plan import (
    ExecutionPlan,
    MappingCost,
    StepCost,
    multiplication_cycles_general,
)
from repro.quant.precision import BEST_PRECISION, PrecisionConfig
from repro.utils.validation import check_in_choices, check_positive_int

__all__ = ["SoftmAPMapping", "MappingCost", "StepCost"]


class SoftmAPMapping:
    """Mapping of the integer-only softmax onto one per-head 2D AP.

    Parameters
    ----------
    precision:
        Mixed-precision configuration (defaults to the paper's best:
        ``M=6``, ``vcorr=M``, ``N=16``).
    sequence_length:
        Number of softmax elements; the AP stores ``words_per_row`` words
        per row, so it has ``sequence_length / words_per_row`` rows.
    words_per_row:
        Words packed per CAM row (2 in the paper).
    columns:
        Bit columns per row (operand fields A/B, the ``2M+12`` result column
        and scratch); 64 by default, which reproduces the paper's per-head
        area of ~0.02 mm^2 at 16 nm.
    tech:
        Technology parameters.
    division:
        ``"restoring"`` (bit-serial restoring division, default) or
        ``"reciprocal"`` (the controller computes one reciprocal of the sum
        and the AP multiplies by it) — an ablation of the last step.
    clip_threshold:
        Softmax input clipping threshold; defaults to the paper's per-``M``
        value.
    backend:
        Default execution engine of the compiled plan: ``"reference"``
        (bit-serial LUT sweeps on the functional AP, the ground truth) or
        ``"vectorized"`` (the fused packed-word path of
        :class:`~repro.mapping.plan.ExecutionPlan`, bit-identical and
        orders of magnitude faster).  Validated eagerly with a
        "did you mean" suggestion
        (:func:`~repro.ap.engine.canonical_engine_name`); can be overridden
        per call on :meth:`execute_functional` /
        :meth:`execute_functional_batch`.
    plan_cache_size:
        Bound on the per-shape compiled-plan cache (see :meth:`plan`),
        counting the always-pinned provisioned-shape plan.  An
        autoregressive decode sweeps one runtime shape per generated token,
        so an unbounded cache would retain one lowered plan per distinct
        sequence length for the mapping's whole lifetime; the least
        recently used shape is evicted (and transparently recompiled on
        the next request) instead.
    """

    #: Realisations of the final normalisation step (see ``division`` above).
    DIVISION_MODES = ("restoring", "reciprocal")

    #: Supported CAM row packing factors.
    WORDS_PER_ROW_CHOICES = (1, 2)

    #: Default :meth:`plan` cache bound — comfortably above the handful of
    #: shapes a prefill workload touches, while keeping a 1..T decode
    #: length sweep from retaining one compiled plan per length forever.
    DEFAULT_PLAN_CACHE_SIZE = 32

    def __init__(
        self,
        precision: PrecisionConfig = BEST_PRECISION,
        sequence_length: int = 2048,
        words_per_row: int = 2,
        columns: int = 64,
        tech: TechnologyParameters = TECH_16NM,
        division: str = "restoring",
        clip_threshold: Optional[float] = None,
        backend: str = "reference",
        plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE,
    ) -> None:
        self.precision = precision
        self.sequence_length = check_positive_int(sequence_length, "sequence_length")
        self.words_per_row = check_in_choices(
            check_positive_int(words_per_row, "words_per_row"),
            self.WORDS_PER_ROW_CHOICES,
            "words_per_row",
        )
        self.columns = check_positive_int(columns, "columns")
        self.tech = tech
        self.division = check_in_choices(division, self.DIVISION_MODES, "division")
        self.backend = canonical_engine_name(backend)
        self.clip_threshold = clip_threshold
        self.plan_cache_size = check_positive_int(plan_cache_size, "plan_cache_size")
        self._plans: "OrderedDict[Tuple[int, int], ExecutionPlan]" = OrderedDict()
        # The LRU bookkeeping (move_to_end / eviction) mutates shared state,
        # so concurrent planner passes serialise on this lock; plan
        # compilation itself stays outside any hot path.
        self._plan_lock = threading.Lock()
        self._provisioned_key = (
            self.sequence_length,
            self.precision.result_column_bits,
        )
        # The provisioned-shape plan: compiling it here keeps construction
        # errors (invalid precision/threshold combinations) eager and
        # preserves the historical attribute surface.
        provisioned = self.plan()
        self.quantizer = provisioned.quantizer
        self.polynomial = provisioned.polynomial
        self.constants = provisioned.constants
        self.rows = provisioned.rows
        self.cost_model = provisioned.cost_model

    # ------------------------------------------------------------------ #
    # Compilation                                                          #
    # ------------------------------------------------------------------ #
    def plan(
        self,
        sequence_length: Optional[int] = None,
        output_fraction_bits: Optional[int] = None,
    ) -> ExecutionPlan:
        """The compiled :class:`~repro.mapping.plan.ExecutionPlan`.

        Plans are cached per ``(sequence_length, output_fraction_bits)``
        shape, so repeated execution (every head, every layer, every pass)
        lowers the dataflow exactly once.  The cache is an LRU bounded by
        ``plan_cache_size``: a workload that sweeps runtime shapes — an
        autoregressive decode compiles one shape per generated token —
        evicts its least recently used shapes instead of retaining every
        plan it ever lowered.  The provisioned shape (the one compiled at
        construction and exposed through ``rows``/``cost_model``/...) is
        pinned and never evicted.
        """
        if sequence_length is None:
            sequence_length = self.sequence_length
        if output_fraction_bits is None:
            output_fraction_bits = self.precision.result_column_bits
        key = (sequence_length, output_fraction_bits)
        with self._plan_lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._plans.move_to_end(key)
                return plan
        plan = ExecutionPlan(
            precision=self.precision,
            sequence_length=sequence_length,
            words_per_row=self.words_per_row,
            columns=self.columns,
            tech=self.tech,
            division=self.division,
            clip_threshold=self.clip_threshold,
            engine=self.backend,
            output_fraction_bits=output_fraction_bits,
        )
        with self._plan_lock:
            # Two threads may have compiled the same shape concurrently;
            # keep the first (its executors may already hold arena state).
            plan = self._plans.setdefault(key, plan)
            self._plans.move_to_end(key)
            while len(self._plans) > self.plan_cache_size:
                victim = next(
                    (k for k in self._plans if k != self._provisioned_key), None
                )
                if victim is None:
                    break
                del self._plans[victim]
        return plan

    # ------------------------------------------------------------------ #
    # Analytical cost                                                      #
    # ------------------------------------------------------------------ #
    def steps(self) -> List[DataflowStep]:
        """The sixteen dataflow steps for this configuration."""
        return list(self.plan().dataflow_steps)

    def cost(self) -> MappingCost:
        """Cost every step with the Table II / technology model.

        The per-step dispatch lives in the plan's compilation
        (:func:`~repro.mapping.plan._analytic_step_cost`); this method just
        reads the compiled result.
        """
        return self.plan().cost()

    def multiplication_cycles_general(self, width: int, multiplier_bits: int) -> int:
        """See :func:`repro.mapping.plan.multiplication_cycles_general`."""
        return multiplication_cycles_general(width, multiplier_bits)

    # ------------------------------------------------------------------ #
    # Functional execution                                                 #
    # ------------------------------------------------------------------ #
    def execute_functional(
        self,
        scores: np.ndarray,
        output_fraction_bits: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> np.ndarray:
        """Execute the compiled plan for one score vector.

        Parameters
        ----------
        scores:
            One softmax input vector (floating point logits).
        output_fraction_bits:
            Fractional bits of the normalised output; defaults to the
            ``2M + 12`` result-column width.
        backend:
            Functional AP engine (``"reference"`` / ``"vectorized"``);
            defaults to the mapping's configured engine.

        Returns
        -------
        The softmax probabilities computed by the lowered dataflow program
        (one word per row; correctness is what matters here, the packing
        factor only affects the analytical cost).
        """
        scores = np.asarray(scores, dtype=np.float64)
        if scores.ndim != 1:
            raise ValueError("execute_functional processes one vector at a time")
        return self.execute_functional_batch(
            scores[None, :],
            output_fraction_bits=output_fraction_bits,
            backend=backend,
        )[0]

    def execute_functional_batch(
        self,
        scores: np.ndarray,
        output_fraction_bits: Optional[int] = None,
        backend: Optional[str] = None,
        valid_lengths: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Execute the compiled plan for a whole ``(batch, seq)`` tensor.

        All ``batch`` softmax vectors form one fused row space (each vector
        a contiguous ``seq``-row segment) and the lowered program runs
        *once*: element-wise steps are word-parallel over every row of
        every vector, and the reduction/broadcast steps are segmented so
        each vector sums only its own block.  With the ``"vectorized"``
        engine this is the fused packed fast path; the ``"reference"``
        engine interprets the same program on the bit-serial AP and
        produces bit-identical results (the per-vector programs are
        independent).

        Parameters
        ----------
        scores:
            ``(batch, seq)`` floating-point logits; each row is one softmax.
        output_fraction_bits:
            Fractional bits of the normalised output; defaults to the
            ``2M + 12`` result-column width.
        backend:
            Functional AP engine; defaults to the mapping's configured one.
        valid_lengths:
            Optional per-vector prefix lengths (shape ``(batch,)``, each in
            ``1..seq``).  Vector ``b`` then softmaxes only its first
            ``valid_lengths[b]`` elements and the remaining positions return
            probability zero — the layout an attention row sees under the
            causal mask.  The padding words are nulled *inside* the plan (a
            tagged clear of their ``vapprox`` field) so the valid prefix is
            bit-identical to an unpadded run of the same length.

        Returns
        -------
        ``(batch, seq)`` softmax probabilities.
        """
        scores = np.asarray(scores, dtype=np.float64)
        if scores.ndim != 2:
            raise ValueError(
                "execute_functional_batch expects a (batch, seq) score tensor"
            )
        plan = self.plan(
            sequence_length=scores.shape[1],
            output_fraction_bits=output_fraction_bits,
        )
        return plan.execute(scores, valid_lengths=valid_lengths, engine=backend)
