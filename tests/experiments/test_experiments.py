"""Integration tests: the experiment harness reproduces the paper's shapes."""

import numpy as np
import pytest

import repro.experiments as experiments
from repro.experiments.table3_4_perplexity import train_reference_model
from repro.quant.precision import PrecisionConfig


@pytest.fixture(scope="module")
def comparison_points():
    return experiments.run_normalized_comparison(
        sequence_lengths=(128, 1024, 4096), batch_sizes=(1, 8, 32)
    )


class TestFig1:
    def test_fraction_grows_and_lands_in_band(self):
        results = experiments.run_fig1_softmax_proportion()
        fractions = {int(r["sequence_length"]): r["softmax_fraction"] for r in results}
        assert fractions[1024] < 0.10
        assert 0.20 < fractions[16384] < 0.55
        assert fractions[16384] > fractions[4096] > fractions[1024]

    def test_render(self):
        text = experiments.render_fig1(experiments.run_fig1_softmax_proportion())
        assert "softmax share" in text


class TestTables1And2:
    def test_table1_columns(self):
        entries = experiments.run_table1()
        assert len(entries) == 9
        assert "Table I" in experiments.render_table1(entries)

    def test_table2_formula_vs_simulation_same_order(self):
        rows = experiments.run_table2(precisions=(6,), simulate=True)
        for row in rows:
            if row.simulated_cycles is None:
                continue
            ratio = row.simulated_cycles / row.formula_cycles
            assert 0.4 < ratio < 2.5, row

    def test_table2_render(self):
        assert "Table II" in experiments.render_table2(
            experiments.run_table2(precisions=(4,), simulate=False)
        )


class TestNormalizedComparison:
    def test_energy_always_favours_ap(self, comparison_points):
        assert all(p.normalized_energy > 50 for p in comparison_points)

    def test_edp_always_above_one(self, comparison_points):
        # Fig. 8 / Table V: the AP has the best EDP everywhere.
        assert all(p.normalized_edp > 1 for p in comparison_points)

    def test_latency_crossover_with_sequence_length(self, comparison_points):
        a100_7b = {
            (p.sequence_length, p.batch_size): p.normalized_latency
            for p in comparison_points
            if p.gpu == "A100" and p.model == "Llama2-7b"
        }
        # Short sequences favour the GPU, long sequences favour the AP.
        assert a100_7b[(128, 1)] < 1.0
        assert a100_7b[(4096, 32)] > 2.0
        assert a100_7b[(4096, 32)] > a100_7b[(128, 32)]

    def test_rtx3090_ratios_exceed_a100(self, comparison_points):
        for model in ("Llama2-7b", "Llama2-70b"):
            a100 = max(p.normalized_edp for p in comparison_points
                       if p.gpu == "A100" and p.model == model)
            rtx = max(p.normalized_edp for p in comparison_points
                      if p.gpu == "RTX3090" and p.model == model)
            assert rtx > a100

    def test_energy_ratio_highest_at_smallest_point(self, comparison_points):
        series = [p for p in comparison_points
                  if p.gpu == "A100" and p.model == "Llama2-7b" and p.batch_size == 1]
        smallest = min(series, key=lambda p: p.sequence_length)
        assert smallest.normalized_energy == max(p.normalized_energy for p in series)

    def test_render_modes(self, comparison_points):
        for metric in ("energy", "latency", "edp"):
            assert "Normalized" in experiments.render_comparison(comparison_points, metric)
        with pytest.raises(ValueError):
            experiments.render_comparison(comparison_points, "power")


class TestTable5AndTable6:
    def test_table5_orders_of_magnitude(self, comparison_points):
        entries = experiments.run_table5(comparison_points)
        assert len(entries) == 6
        for entry in entries:
            # Paper reports 1068..8851; the reproduction lands within the
            # same order of magnitude.
            assert 200 < entry.highest_edp_ratio < 50000
        assert "Table V" in experiments.render_table5(entries)

    def test_table6_softmap_has_lowest_energy_per_op(self):
        entries = experiments.run_table6()
        softmap = entries[-1]
        others = entries[:-1]
        assert softmap.energy_per_op_pj < min(e.energy_per_op_pj for e in others)
        assert "Table VI" in experiments.render_table6(entries)


class TestArea:
    def test_area_matches_paper(self):
        entries = experiments.run_area()
        for entry in entries:
            assert abs(entry.measured_area_mm2 - entry.paper_area_mm2) / entry.paper_area_mm2 < 0.10
        assert "area" in experiments.render_area(entries).lower()


class TestPerplexityExperiments:
    def test_softmax_fidelity_sweep_shows_n_effect(self):
        points = experiments.run_softmax_fidelity_sweep(
            sequence_length=2048, rows=16, m_values=(6,), n_values=(8, 16),
            vcorr_deltas=(0,),
        )
        by_n = {p.precision.sum_extra_bits: p for p in points}
        assert by_n[8].saturated_fraction > by_n[16].saturated_fraction
        assert by_n[8].mass_error > by_n[16].mass_error

    def test_fidelity_vcorr_has_no_effect(self):
        points = experiments.run_softmax_fidelity_sweep(
            sequence_length=512, rows=8, m_values=(6,), n_values=(16,),
            vcorr_deltas=(0, 1, 2),
        )
        kls = {p.precision.vcorr_delta: p.kl_to_fp for p in points}
        assert kls[0] == pytest.approx(kls[1]) == pytest.approx(kls[2])

    def test_perplexity_sweep_small(self):
        points = experiments.run_perplexity_sweep(
            m_values=(8,), n_values=(16,), include_m4=True, training_steps=40,
        )
        labels = [p.label for p in points]
        assert labels[0] == "FP softmax"
        values = {p.label: p.perplexity for p in points}
        fp = values["FP softmax"]
        assert all(np.isfinite(v) for v in values.values())
        # Integer softmax never beats the FP baseline by more than noise.
        assert values["M=8, vcorr=M, N=16"] >= fp - 0.05
        # Every point carries its wall-clock telemetry.
        assert all(p.seconds > 0 for p in points)
        assert "perplexity" in experiments.render_perplexity_table(points)

    def test_parallel_sweep_matches_serial_bit_exactly(self):
        """workers=N must return the same points (same floats, same order)
        as the serial sweep — the configurations are independent and the
        trained weights are serialised once to the pool."""
        model, corpus = train_reference_model(seed=0, training_steps=30)
        kwargs = dict(
            model=model, corpus=corpus, m_values=(6, 8), n_values=(16,),
            include_m4=True,
        )
        serial = experiments.run_perplexity_sweep(**kwargs)
        parallel = experiments.run_perplexity_sweep(workers=2, **kwargs)
        assert [p.label for p in serial] == [p.label for p in parallel]
        for a, b in zip(serial, parallel):
            assert a.perplexity == b.perplexity  # exact float equality
            assert b.seconds > 0

    def test_sweep_validates_workers_and_inference_path(self):
        with pytest.raises(ValueError, match="inference_path"):
            experiments.run_perplexity_sweep(inference_path="batchd")
        with pytest.raises(ValueError, match="workers"):
            experiments.run_perplexity_sweep(workers=0)

    def test_inference_speed_report_fast(self):
        """The llm-speed experiment: bit-identical paths, positive timings,
        and a render naming the verdict."""
        model, corpus = train_reference_model(seed=0, training_steps=30)
        report = experiments.run_inference_speed(
            model=model, corpus=corpus, m_values=(6,), n_values=(16,),
        )
        assert report.bit_identical
        assert report.batched_seconds > 0 and report.loop_seconds > 0
        rendered = experiments.render_inference_speed(report)
        assert "bit-identical" in rendered
        with pytest.raises(ValueError, match="ignores the precision"):
            experiments.run_inference_speed(
                model=model, corpus=corpus, softmax_backend="float"
            )
