"""SoftmAP: mapping the integer-only softmax dataflow onto the AP.

This package is the co-design half of the paper:

* :mod:`repro.mapping.dataflow` — the 16-step dataflow of Fig. 5 with the
  per-step operand widths of Fig. 4 / Table I;
* :mod:`repro.mapping.softmap` — :class:`SoftmAPMapping`, which (a) executes
  the dataflow on the functional 2D AP simulator to validate correctness and
  (b) costs it with the Table II analytical model;
* :mod:`repro.mapping.deployment` — the per-head deployment used for the
  hardware characterization (one AP per attention head, Llama2 7b/13b/70b
  area figures, per-invocation energy/latency);
* :mod:`repro.mapping.plan` — the compiled-execution layer:
  :class:`ExecutionPlan` lowers the dataflow once (resolved fields, lowered
  program, per-step cost) and executes whole workloads as fused, head-major
  row spaces; :func:`plan_passes` tiles oversized workloads into passes;
* :mod:`repro.mapping.cluster` — :class:`ApCluster`, the *functional*
  multi-head deployment: one shared plan executing a ``(batch, heads, seq)``
  score tensor as fused wide passes with concurrency-aware cost
  aggregation and a pipelined multi-batch/pass schedule.
"""

from repro.mapping.dataflow import DataflowStep, StepKind, softmax_dataflow
from repro.mapping.plan import (
    ExecutionPlan,
    PlanField,
    PlanOp,
    PlanTelemetry,
    WorkloadPass,
    plan_passes,
)
from repro.mapping.softmap import SoftmAPMapping, MappingCost, StepCost
from repro.mapping.deployment import ApDeployment, DeploymentSummary
from repro.mapping.cluster import (
    ApCluster,
    ClusterCost,
    ClusterSchedule,
    ClusterSoftmaxFn,
)

__all__ = [
    "DataflowStep",
    "StepKind",
    "softmax_dataflow",
    "ExecutionPlan",
    "PlanField",
    "PlanOp",
    "PlanTelemetry",
    "WorkloadPass",
    "plan_passes",
    "SoftmAPMapping",
    "MappingCost",
    "StepCost",
    "ApDeployment",
    "DeploymentSummary",
    "ApCluster",
    "ClusterCost",
    "ClusterSchedule",
    "ClusterSoftmaxFn",
]
