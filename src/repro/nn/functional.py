"""Differentiable operations for the tiny Llama-style model.

Each function builds a :class:`~repro.nn.autograd.Tensor` whose backward
closure computes the exact gradients; the test suite checks every operation
against central finite differences.  Shapes are kept two-dimensional
(``tokens x features``) — the model loops over batch elements and attention
heads, which keeps the engine free of reshape/transpose bookkeeping.

The forward *values* of the non-linear operations are factored into plain
numpy kernels (:func:`rms_norm_forward`, :func:`silu_forward`,
:func:`softmax_forward`, :func:`log_softmax_forward`) shared with the
graph-free batched inference path (:mod:`repro.llm.infer`).  Sharing the
kernels — not re-deriving the formulas — is what makes the inference path
bit-identical to the autograd forward by construction: both execute the
exact same sequence of floating-point operations per row.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.autograd import Tensor

__all__ = [
    "add",
    "mul",
    "scale",
    "matmul",
    "rms_norm",
    "silu",
    "softmax_op",
    "embedding",
    "cross_entropy",
    "rms_norm_forward",
    "sigmoid",
    "silu_forward",
    "softmax_forward",
    "log_softmax_forward",
]


# --------------------------------------------------------------------------- #
# Forward-only numpy kernels (shared with the inference path)                  #
# --------------------------------------------------------------------------- #
def _inv_rms(x: np.ndarray, eps: float) -> np.ndarray:
    """``1 / sqrt(mean(x**2, axis=-1) + eps)`` with kept dims."""
    mean_square = np.mean(x ** 2, axis=-1, keepdims=True)
    return 1.0 / np.sqrt(mean_square + eps)


def rms_norm_forward(x: np.ndarray, weight: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Forward value of :func:`rms_norm` on plain arrays (any leading dims)."""
    return (x * _inv_rms(x, eps)) * weight


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Logistic sigmoid ``1 / (1 + exp(-x))``."""
    return 1.0 / (1.0 + np.exp(-x))


def silu_forward(x: np.ndarray) -> np.ndarray:
    """Forward value of :func:`silu` on a plain array."""
    return x * sigmoid(x)


def softmax_forward(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last axis on a plain array."""
    shifted = logits - np.max(logits, axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=-1, keepdims=True)


def log_softmax_forward(logits: np.ndarray) -> np.ndarray:
    """Numerically stable log-softmax over the last axis on a plain array."""
    shifted = logits - np.max(logits, axis=-1, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=-1, keepdims=True))


def _unbroadcast(gradient: np.ndarray, shape) -> np.ndarray:
    """Sum ``gradient`` down to ``shape`` (reverse of numpy broadcasting)."""
    grad = gradient
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


def add(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise (broadcasting) addition."""
    out = a.data + b.data

    def backward(upstream):
        return _unbroadcast(upstream, a.data.shape), _unbroadcast(upstream, b.data.shape)

    return Tensor(out, parents=(a, b), backward_fn=backward, name="add")


def mul(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise (broadcasting) multiplication."""
    out = a.data * b.data

    def backward(upstream):
        return (
            _unbroadcast(upstream * b.data, a.data.shape),
            _unbroadcast(upstream * a.data, b.data.shape),
        )

    return Tensor(out, parents=(a, b), backward_fn=backward, name="mul")


def scale(a: Tensor, factor: float) -> Tensor:
    """Multiplication by a Python scalar."""
    factor = float(factor)
    out = a.data * factor

    def backward(upstream):
        return (upstream * factor,)

    return Tensor(out, parents=(a,), backward_fn=backward, name="scale")


def matmul(a: Tensor, b: Tensor, transpose_b: bool = False) -> Tensor:
    """Matrix product ``a @ b`` (or ``a @ b.T`` when ``transpose_b``)."""
    b_data = b.data.T if transpose_b else b.data
    out = a.data @ b_data

    def backward(upstream):
        grad_a = upstream @ b_data.T
        if transpose_b:
            grad_b = upstream.T @ a.data
        else:
            grad_b = a.data.T @ upstream
        return grad_a, grad_b

    return Tensor(out, parents=(a, b), backward_fn=backward, name="matmul")


def rms_norm(x: Tensor, weight: Tensor, eps: float = 1e-6) -> Tensor:
    """Root-mean-square layer normalisation (as used by Llama).

    ``y = x / sqrt(mean(x**2, axis=-1) + eps) * weight``
    """
    inv_rms = _inv_rms(x.data, eps)
    normalised = x.data * inv_rms
    out = normalised * weight.data

    def backward(upstream):
        d = x.data.shape[-1]
        grad_norm = upstream * weight.data
        # d/dx of x * inv_rms with inv_rms depending on x.
        dot = np.sum(grad_norm * x.data, axis=-1, keepdims=True)
        grad_x = grad_norm * inv_rms - x.data * (inv_rms ** 3) * dot / d
        grad_weight = _unbroadcast(upstream * normalised, weight.data.shape)
        return grad_x, grad_weight

    return Tensor(out, parents=(x, weight), backward_fn=backward, name="rms_norm")


def silu(x: Tensor) -> Tensor:
    """SiLU (swish) activation ``x * sigmoid(x)``."""
    gate = sigmoid(x.data)
    out = x.data * gate

    def backward(upstream):
        grad = gate * (1.0 + x.data * (1.0 - gate))
        return (upstream * grad,)

    return Tensor(out, parents=(x,), backward_fn=backward, name="silu")


def softmax_op(x: Tensor, mask: Optional[np.ndarray] = None) -> Tensor:
    """Softmax along the last axis with an optional additive mask.

    ``mask`` is a constant numpy array (e.g. the causal mask filled with
    ``-inf`` above the diagonal) added to the logits before normalisation.
    """
    logits = x.data if mask is None else x.data + mask
    probabilities = softmax_forward(logits)

    def backward(upstream):
        dot = np.sum(upstream * probabilities, axis=-1, keepdims=True)
        return (probabilities * (upstream - dot),)

    return Tensor(probabilities, parents=(x,), backward_fn=backward, name="softmax")


def embedding(table: Tensor, indices: np.ndarray) -> Tensor:
    """Row gather ``table[indices]`` with scatter-add backward."""
    indices = np.asarray(indices, dtype=np.int64)
    out = table.data[indices]

    def backward(upstream):
        grad_table = np.zeros_like(table.data)
        np.add.at(grad_table, indices, upstream)
        return (grad_table,)

    return Tensor(out, parents=(table,), backward_fn=backward, name="embedding")


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy of ``logits`` (tokens x vocab) against integer
    ``targets`` (tokens,)."""
    targets = np.asarray(targets, dtype=np.int64)
    if logits.data.ndim != 2:
        raise ValueError("cross_entropy expects 2-D logits (tokens x vocab)")
    if targets.shape != (logits.data.shape[0],):
        raise ValueError("targets must have one entry per logits row")
    log_probs = log_softmax_forward(logits.data)
    n = logits.data.shape[0]
    loss = -np.mean(log_probs[np.arange(n), targets])

    def backward(upstream):
        probabilities = np.exp(log_probs)
        grad = probabilities.copy()
        grad[np.arange(n), targets] -= 1.0
        grad /= n
        return (float(upstream) * grad,)

    return Tensor(np.asarray(loss), parents=(logits,), backward_fn=backward,
                  name="cross_entropy")
