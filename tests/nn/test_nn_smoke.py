"""Fast smoke tests for the numpy autograd substrate: one forward/backward
step through a representative op chain, a numeric gradient cross-check and a
short Adam optimisation that must reduce the loss."""

import numpy as np

from repro.nn.autograd import Parameter, Tensor, no_grad
from repro.nn.functional import cross_entropy, matmul, rms_norm, silu, softmax_op
from repro.nn.optim import Adam


class TestForwardBackwardStep:
    def test_op_chain_backward_populates_gradients(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(4, 8)))
        weight = Parameter(rng.normal(size=(8, 8)) * 0.1)
        gain = Parameter(np.ones(8))
        hidden = silu(matmul(rms_norm(x, gain), weight))
        loss = cross_entropy(hidden, np.array([1, 2, 3, 4]))
        loss.backward()
        assert np.isfinite(loss.numpy())
        assert weight.grad is not None and np.any(weight.grad != 0)
        assert gain.grad is not None and np.all(np.isfinite(gain.grad))

    def test_numeric_gradient_of_softmax_chain(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(3, 5))
        targets = np.array([0, 2, 4])

        def loss_of(values):
            return cross_entropy(softmax_op(Parameter(values)), targets)

        logits = Parameter(data)
        loss = cross_entropy(softmax_op(logits), targets)
        loss.backward()
        eps = 1e-6
        for index in [(0, 0), (1, 3), (2, 4)]:
            bumped = data.copy()
            bumped[index] += eps
            numeric = (loss_of(bumped).numpy() - loss.numpy()) / eps
            assert abs(numeric - logits.grad[index]) < 1e-4

    def test_no_grad_suppresses_graph(self):
        with no_grad():
            x = Tensor(np.ones((2, 2)))
            w = Parameter(np.ones((2, 2)))
            out = matmul(x, w)
        assert out.numpy().shape == (2, 2)
        assert out.parents == []
        assert out.backward_fn is None


class TestOptimisationStep:
    def test_adam_reduces_regression_loss(self):
        rng = np.random.default_rng(2)
        inputs = rng.normal(size=(16, 4))
        target_weight = rng.normal(size=(4, 3))
        targets = np.argmax(inputs @ target_weight, axis=1)
        weight = Parameter(np.zeros((4, 3)))
        optimiser = Adam([weight], learning_rate=5e-2)
        losses = []
        for _ in range(30):
            optimiser.zero_grad()
            loss = cross_entropy(matmul(Tensor(inputs), weight), targets)
            loss.backward()
            optimiser.step()
            losses.append(float(loss.numpy()))
        assert losses[-1] < 0.5 * losses[0]
