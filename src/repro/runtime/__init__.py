"""The unified runtime API — the single front door to the reproduction.

Two seams live here:

* **Backends** (:mod:`repro.runtime.backend`) — the
  :class:`SoftmaxBackend` protocol, the declarative :class:`BackendSpec`,
  and :func:`resolve_backend`, which maps any of the named execution paths
  (``float``, ``integer``, ``ap``, ``ap-batch``, ``ap-cluster``,
  ``gpu-analytical``) to a uniform ``run(scores) -> SoftmaxResult``
  object carrying probabilities *and* cost/cycle telemetry.
* **Experiments** (:mod:`repro.runtime.registry`) — the
  :class:`Experiment` contract (``run`` / ``render`` / JSON
  ``to_dict``/``from_dict``) and the ``@register`` registry every
  table/figure module of :mod:`repro.experiments` plugs into; consumed by
  the ``python -m repro`` CLI (:mod:`repro.runtime.cli`).
"""

from repro.runtime.backend import (
    BACKEND_ALIASES,
    BACKEND_NAMES,
    BackendCost,
    BackendSpec,
    BackendTelemetry,
    PlanTelemetry,
    SoftmaxBackend,
    SoftmaxResult,
    UnknownBackendError,
    backend_descriptions,
    canonical_backend_name,
    resolve_backend,
)
from repro.runtime.registry import (
    Experiment,
    UnknownExperimentError,
    experiment_names,
    get_experiment,
    iter_experiments,
    register,
)

__all__ = [
    "BACKEND_ALIASES",
    "BACKEND_NAMES",
    "BackendCost",
    "BackendSpec",
    "BackendTelemetry",
    "PlanTelemetry",
    "SoftmaxBackend",
    "SoftmaxResult",
    "UnknownBackendError",
    "backend_descriptions",
    "canonical_backend_name",
    "resolve_backend",
    "Experiment",
    "UnknownExperimentError",
    "experiment_names",
    "get_experiment",
    "iter_experiments",
    "register",
]
