"""``python -m repro`` — dispatch to the runtime CLI."""

import sys

from repro.runtime.cli import main

if __name__ == "__main__":
    sys.exit(main())
